//! The fleet coordinator: `gcl coordinate --addr HOST:PORT`.
//!
//! One listener serves two populations. Workers dial in, send a `join`
//! frame, and from then on hold a full-duplex connection over which the
//! coordinator pushes `assign` frames and `ping` heartbeats and receives
//! `done` / `fail` / `pong`. Clients speak the familiar single-node verbs
//! (`submit` / `status` / `result` / `shutdown`); the first frame on a
//! connection decides which role it plays.
//!
//! Supervision is two independent deadlines:
//!
//! * **Heartbeat.** Every [`CoordinatorOptions::heartbeat_ms`] the
//!   coordinator pings each live worker; a worker whose last pong is older
//!   than [`CoordinatorOptions::heartbeat_timeout_ms`] is declared dead
//!   ([`WORKER_DEAD`]) and every lease it held returns to the front of the
//!   queue. This catches crashes, partitions, and heartbeat loss alike.
//! * **Lease.** Every assignment carries a deadline
//!   ([`CoordinatorOptions::lease_ms`] out). A lease that expires —
//!   typically a stalled worker — is reclaimed ([`LEASE_EXPIRED`]) and the
//!   job reassigned, even if the worker still looks alive.
//!
//! Both paths give at-least-once execution; results are deduplicated by
//! first-result-wins per job and by content-addressed cache key across
//! submits, so duplicated work never changes an answer (see the
//! [`crate::fleet`] module docs for the determinism argument).

use super::journal::{
    JCounter, Journal, JournalError, Record, RecoveredState, SnapCounters, SnapJob, SnapJobState,
    SnapSession, SnapState,
};
use crate::job::JobSpec;
use crate::proto::{
    decode_key, encode_key, fetch_frame, hex_decode, store_frame, write_frame, FrameError,
    FrameReader,
};
use crate::serve::{error_response, parse_submit, shed_response, ServeError, QUEUE_FULL};
use gcl_mem::Dec;
use gcl_sim::{fnv_fold, LaunchStats};
use gcl_stats::{Accumulator, Json};
use std::collections::{HashMap, HashSet, VecDeque};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Reason logged when a heartbeat deadline declares a worker dead.
pub const WORKER_DEAD: &str = "worker dead";

/// Reason logged when a lease deadline reclaims a running job.
pub const LEASE_EXPIRED: &str = "lease expired";

/// Reason logged when a `decommission` verb retires a worker.
pub const DECOMMISSIONED: &str = "decommissioned";

/// Events a session's replay log retains; older events are truncated and
/// a late re-attach learns it missed some (`"truncated":true` in the ack).
const EVENT_LOG_CAP: usize = 8192;

/// How the coordinator runs.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// Address to bind, e.g. `127.0.0.1:7177` (port 0 picks a free port).
    pub addr: String,
    /// Maximum queued (not yet leased) jobs before submits are rejected
    /// with [`QUEUE_FULL`] backpressure.
    pub queue_cap: usize,
    /// Lease duration per assignment; an expired lease is reassigned.
    pub lease_ms: u64,
    /// Ping interval for worker heartbeats.
    pub heartbeat_ms: u64,
    /// A worker whose last pong is older than this is dead.
    pub heartbeat_timeout_ms: u64,
    /// Largest frame accepted (result frames carry hex-encoded stats, so
    /// this is larger than the single-node default).
    pub max_frame: usize,
    /// Per-connection write deadline.
    pub write_timeout_ms: u64,
    /// Print the per-worker outcome table on drain.
    pub print_outcomes: bool,
    /// Replica-set size R: every verified result is fanned out to the top
    /// R rendezvous-ranked live workers, so a key survives any node loss
    /// short of its entire replica set dying.
    pub replicas: usize,
    /// How long a replica `fetch` probe may go unanswered before the
    /// lookup advances to the next replica (or to recomputation).
    pub probe_timeout_ms: u64,
    /// Admission control: a session with this many unfinished submits gets
    /// structured shed responses instead of deeper queueing (0 disables).
    pub session_inflight_cap: u64,
    /// Write-ahead journal path; `None` keeps state purely in memory.
    pub journal: Option<PathBuf>,
    /// Replay the journal on startup instead of truncating it. Requires
    /// `journal` to be set.
    pub recover: bool,
    /// Expose the destructive chaos verbs (`decommission`, `reset`) to
    /// clients. Off by default: a production coordinator sheds them with a
    /// structured error.
    pub chaos_verbs: bool,
    /// Interval for the proactive replica rebalancer, which re-fans
    /// under-replicated keys back to R = `replicas` after any membership
    /// change (0 disables; repair then only happens on a read miss).
    pub rebalance_ms: u64,
    /// Journal size that triggers compaction into a snapshot record.
    pub journal_compact_bytes: u64,
    /// After `--recover`, hold recovered non-terminal jobs this long
    /// before dispatching, so re-joining workers can reconcile running
    /// leases and replica inventories instead of the coordinator
    /// re-running (or vainly probing) work that is still in flight.
    pub recover_grace_ms: u64,
}

impl Default for CoordinatorOptions {
    fn default() -> CoordinatorOptions {
        CoordinatorOptions {
            addr: "127.0.0.1:7177".to_string(),
            queue_cap: 64,
            lease_ms: 60_000,
            heartbeat_ms: 500,
            heartbeat_timeout_ms: 2_000,
            max_frame: 1024 * 1024,
            write_timeout_ms: 5_000,
            print_outcomes: true,
            replicas: 2,
            probe_timeout_ms: 2_000,
            session_inflight_cap: 1_024,
            journal: None,
            recover: false,
            chaos_verbs: false,
            rebalance_ms: 0,
            journal_compact_bytes: 1024 * 1024,
            recover_grace_ms: 3_000,
        }
    }
}

/// A completed job's payload, as verified from a worker's `done` frame or
/// decoded from a replica `fetched` hit.
#[derive(Debug, Clone)]
struct FleetResult {
    stats: LaunchStats,
    wall_ms: f64,
    /// Wall time measured on the worker that executed the job, including
    /// any stall injection — the fleet-side counterpart of the local
    /// manifest's wall column (0 for replica hits; nothing executed).
    worker_wall_ms: f64,
    cached: bool,
    worker: String,
}

/// Lifecycle of one fleet job.
#[derive(Debug)]
enum FleetJobState {
    Queued,
    /// A replica `fetch` is in flight at `worker` for replica-set rank
    /// `rank`; a miss, a timeout or the worker's death advances the rank.
    Probing {
        worker: usize,
        rank: usize,
        deadline: Instant,
    },
    Leased {
        worker: usize,
        deadline: Instant,
    },
    Done(Box<FleetResult>),
    Failed(String),
}

struct FleetJob {
    spec: JobSpec,
    key: u64,
    state: FleetJobState,
    /// Times this job has been assigned (> 1 means it was reassigned).
    assigns: u64,
    /// The worker that last held this job's lease. Rendezvous placement is
    /// deterministic per (key, worker), so without anti-affinity a
    /// reclaimed job would bounce back to the same straggler forever;
    /// assignment avoids this worker whenever any other candidate exists.
    last_worker: Option<usize>,
    /// Next replica rank to probe for this job's key.
    probe_rank: usize,
    /// Every replica rank answered "miss" (or died): stop probing and
    /// recompute.
    probe_done: bool,
    /// Sessions subscribed to this job's lifecycle events.
    sessions: Vec<String>,
    /// Recovery grace: dispatch skips this job until the deadline, giving
    /// re-joining workers time to reclaim it via their `inventory` frame.
    hold_until: Option<Instant>,
}

/// All jobs ever submitted, plus the dispatch queue and the cache-key
/// dedup index.
#[derive(Default)]
struct JobTable {
    map: HashMap<u64, FleetJob>,
    /// Dispatch order; reclaimed jobs go to the *front* so recovery work
    /// is not starved by a deep queue.
    queue: VecDeque<u64>,
    /// Cache key → job id: a resubmitted spec joins the existing job.
    by_key: HashMap<u64, u64>,
    /// Keys whose payload was fanned out to a replica set at least once.
    /// Only these are worth probing — a never-stored key can only miss.
    stored: HashSet<u64>,
    /// Keys with a rebalance `fetch` probe in flight (value: its
    /// deadline), so the rebalancer does not re-probe every tick.
    rebalance_inflight: HashMap<u64, Instant>,
    next_id: u64,
}

/// One registered worker, live or dead.
struct WorkerEntry {
    name: String,
    slots: usize,
    /// Write half of the worker's connection; `None` once dead.
    writer: Option<TcpStream>,
    alive: bool,
    last_pong: Instant,
    last_ping: Instant,
    ping_seq: u64,
    /// Job ids currently leased to this worker.
    leased: HashSet<u64>,
    /// Job ids with a replica probe in flight at this worker.
    probing: HashSet<u64>,
    /// Cache keys the coordinator believes this worker's replica store
    /// holds: seeded from successful `store` sends, corrected by the
    /// worker's own `inventory` frame (ground truth on rejoin) and by
    /// `fetched` misses. The rebalancer reads this to find
    /// under-replicated keys.
    keys: HashSet<u64>,
    // Outcome counters for the drain-time table.
    done: u64,
    failed: u64,
    corrupt: u64,
    reassigned: u64,
}

/// Fleet-wide cache and admission counters, exposed by `status` and
/// asserted on by the chaos tests (recomputation accounting).
#[derive(Debug, Default, Clone)]
struct FleetCounters {
    /// Accepted `done` results that were actually simulated (not served
    /// from any cache) — the fleet's recomputation count.
    sims: u64,
    /// `store` frames successfully sent to replica holders.
    stores: u64,
    /// Replica hits answered by rank 0 (the key's primary).
    primary_hits: u64,
    /// Replica hits answered by a surviving non-primary replica.
    read_through: u64,
    /// Write-repair fan-outs triggered by a non-primary hit.
    repairs: u64,
    /// Stored keys whose entire replica set missed — truly lost.
    misses: u64,
    /// Submits answered by joining an existing job (cache-key dedup).
    dedup_hits: u64,
    /// Submits refused with a structured shed response.
    sheds: u64,
    /// Under-replicated keys proactively re-fanned by the rebalancer.
    rebalances: u64,
    /// Leases resumed from a re-joining worker's inventory after
    /// `--recover` (work that kept running across a coordinator crash).
    resumed: u64,
}

/// One client session: a durable event log and an inflight count for
/// admission control. Survives the connection that created it.
#[derive(Debug, Default)]
struct Session {
    /// Replay log; `front()` has sequence number `base_seq`.
    log: VecDeque<Json>,
    base_seq: u64,
    next_seq: u64,
    /// Submitted-but-not-terminal jobs attributed to this session.
    inflight: u64,
}

#[derive(Default)]
struct SessionTable {
    map: HashMap<String, Session>,
    next: u64,
}

impl SessionTable {
    /// Append one event (with a per-session sequence number) to every
    /// subscribed session's log, truncating from the front at the cap.
    fn log_event(&mut self, subscribers: &[String], kind: &str, fields: &[(&str, Json)]) {
        for sid in subscribers {
            let Some(s) = self.map.get_mut(sid) else {
                continue;
            };
            let seq = s.next_seq;
            s.next_seq += 1;
            let mut pairs = vec![
                ("event", Json::Str(kind.to_string())),
                ("seq", Json::UInt(seq)),
            ];
            pairs.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
            s.log.push_back(Json::obj(pairs));
            while s.log.len() > EVENT_LOG_CAP {
                s.log.pop_front();
                s.base_seq += 1;
            }
        }
    }
}

/// Decrement the inflight count of every session subscribed to a job that
/// just reached a terminal state.
fn settle_subscribers(sessions: &mut SessionTable, subscribers: &[String]) {
    for sid in subscribers {
        if let Some(s) = sessions.map.get_mut(sid) {
            s.inflight = s.inflight.saturating_sub(1);
        }
    }
}

/// Everything the accept loop, session handlers, and supervisor share.
///
/// Lock order: `jobs` → `workers` → `sessions` → `counters` → `depth` →
/// `journal`; never the reverse of any pair. The journal is innermost so
/// any handler can append a record while holding whatever state locks it
/// already has.
struct CoordShared {
    opts: CoordinatorOptions,
    jobs: Mutex<JobTable>,
    workers: Mutex<Vec<WorkerEntry>>,
    sessions: Mutex<SessionTable>,
    counters: Mutex<FleetCounters>,
    draining: AtomicBool,
    /// Set once the drain completes; accept and supervisor loops exit.
    finished: AtomicBool,
    /// Queue-depth samples, taken each supervisor tick.
    depth: Mutex<Accumulator>,
    /// Write-ahead journal, when `--journal` is set.
    journal: Option<Mutex<Journal>>,
}

/// Append one record to the journal (no-op without `--journal`). Append
/// failures are warned about, never fatal: the fleet keeps serving and
/// the journal simply ends at its last good record.
fn jlog(shared: &CoordShared, rec: &Record) {
    if let Some(journal) = &shared.journal {
        let mut j = journal.lock().expect("journal poisoned");
        if let Err(e) = j.append(rec) {
            eprintln!("warning: {e}");
        }
    }
}

/// Flush batched journal appends (fsync), once per supervisor tick and
/// after accepting a submit.
fn jsync(shared: &CoordShared) {
    if let Some(journal) = &shared.journal {
        let mut j = journal.lock().expect("journal poisoned");
        if let Err(e) = j.sync() {
            eprintln!("warning: {e}");
        }
    }
}

/// A bound, not-yet-running coordinator. Binding is separated from running
/// so callers (and tests) can learn the actual address before blocking.
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<CoordShared>,
}

impl Coordinator {
    /// Bind the listener and set up shared state.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] if the options are inconsistent,
    /// [`ServeError::Bind`] if the address cannot be bound.
    pub fn bind(opts: CoordinatorOptions) -> Result<Coordinator, ServeError> {
        if opts.queue_cap == 0 {
            return Err(ServeError::Config(
                "coordinator needs a positive queue capacity".to_string(),
            ));
        }
        if opts.lease_ms == 0
            || opts.heartbeat_ms == 0
            || opts.heartbeat_timeout_ms == 0
            || opts.probe_timeout_ms == 0
        {
            return Err(ServeError::Config(
                "coordinator deadlines must be positive".to_string(),
            ));
        }
        if opts.heartbeat_timeout_ms <= opts.heartbeat_ms {
            return Err(ServeError::Config(format!(
                "heartbeat timeout ({} ms) must exceed the ping interval ({} ms)",
                opts.heartbeat_timeout_ms, opts.heartbeat_ms
            )));
        }
        if opts.replicas == 0 {
            return Err(ServeError::Config(
                "coordinator needs at least one replica (--replicas 1)".to_string(),
            ));
        }
        // Open the journal before binding: an unusable journal is a
        // config error the operator must fix, not something to retry.
        let mut recovered: Option<RecoveredState> = None;
        let journal = match (&opts.journal, opts.recover) {
            (Some(path), true) => {
                let (j, rec) = Journal::open_recover(path).map_err(journal_error)?;
                recovered = Some(rec);
                Some(Mutex::new(j))
            }
            (Some(path), false) => Some(Mutex::new(Journal::create(path).map_err(journal_error)?)),
            (None, true) => {
                return Err(ServeError::Config(
                    "--recover needs --journal PATH".to_string(),
                ))
            }
            (None, false) => None,
        };
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| ServeError::Bind(format!("cannot bind {}: {e}", opts.addr)))?;
        let shared = Arc::new(CoordShared {
            jobs: Mutex::new(JobTable::default()),
            workers: Mutex::new(Vec::new()),
            sessions: Mutex::new(SessionTable::default()),
            counters: Mutex::new(FleetCounters::default()),
            draining: AtomicBool::new(false),
            finished: AtomicBool::new(false),
            depth: Mutex::new(Accumulator::default()),
            journal,
            opts,
        });
        if let Some(rec) = recovered {
            restore_state(&shared, rec);
        }
        Ok(Coordinator { listener, shared })
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] if the socket address cannot be read.
    pub fn addr(&self) -> Result<std::net::SocketAddr, ServeError> {
        self.listener
            .local_addr()
            .map_err(|e| ServeError::Bind(format!("cannot read bound address: {e}")))
    }

    /// Run until a `shutdown` request drains every job to a terminal
    /// state. Blocks the calling thread; sessions and the supervisor run
    /// on their own threads.
    ///
    /// # Errors
    ///
    /// [`ServeError::Net`] on listener failure.
    pub fn run(self) -> Result<(), ServeError> {
        self.listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Net(format!("cannot set nonblocking accept: {e}")))?;
        std::thread::scope(|scope| {
            {
                let shared = Arc::clone(&self.shared);
                scope.spawn(move || supervisor_loop(&shared));
            }
            loop {
                if self.shared.finished.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        let shared = Arc::clone(&self.shared);
                        scope.spawn(move || handle_session(stream, &shared));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(20));
                    }
                    Err(e) => eprintln!("warning: accept failed: {e}"),
                }
            }
        });
        if self.shared.opts.print_outcomes {
            print_outcome_table(&self.shared);
        }
        Ok(())
    }
}

/// Map a journal failure onto the exit-code scheme: a journal this build
/// cannot read is a configuration error (exit 1 — fix the path, don't
/// retry), while an I/O failure is an environment fault (exit 3).
fn journal_error(e: JournalError) -> ServeError {
    match e {
        JournalError::Unrecoverable { .. } => ServeError::Config(e.to_string()),
        JournalError::Io { .. } => ServeError::Net(e.to_string()),
    }
}

/// Rebuild the in-memory tables from a replayed journal.
///
/// Recovered sessions restart their event numbering at the journal's
/// per-session watermark (an upper bound on what was delivered pre-crash),
/// so any cursor a surviving client holds is ≤ `base_seq` and a re-attach
/// replays every post-recovery event. Each recovered job replays its
/// lifecycle as synthetic events ("queued" plus a terminal event if it
/// has one); non-terminal jobs are requeued under a grace hold so
/// re-joining workers can resume still-running leases via `inventory`
/// instead of the coordinator re-running them.
fn restore_state(shared: &CoordShared, rec: RecoveredState) {
    let now = Instant::now();
    let grace = Duration::from_millis(shared.opts.recover_grace_ms);
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    let mut counters = shared.counters.lock().expect("counters poisoned");
    sessions.next = rec.state.session_next;
    for s in &rec.state.sessions {
        sessions.map.insert(
            s.id.clone(),
            Session {
                log: VecDeque::new(),
                base_seq: s.events,
                next_seq: s.events,
                inflight: 0,
            },
        );
    }
    jobs.next_id = rec.state.next_id;
    let mut snap_jobs = rec.state.jobs;
    snap_jobs.sort_by_key(|j| j.id);
    let mut resumable = 0u64;
    for sj in snap_jobs {
        let mut cfg = if sj.tiny {
            gcl_sim::GpuConfig::small()
        } else {
            gcl_sim::GpuConfig::fermi()
        };
        cfg.sanitize = sj.sanitize;
        if let Some(mc) = sj.max_cycles {
            cfg.max_cycles = mc;
        }
        let spec = JobSpec::new(sj.workload.clone(), sj.tiny, cfg);
        let (state, was_leased) = match sj.state {
            SnapJobState::Queued { was_leased } => (FleetJobState::Queued, was_leased),
            SnapJobState::Done {
                cached,
                wall_ms,
                worker_wall_ms,
                worker,
                payload,
            } => {
                let mut d = Dec::new(&payload);
                match LaunchStats::ckpt_decode(&mut d) {
                    Ok(stats) => (
                        FleetJobState::Done(Box::new(FleetResult {
                            stats,
                            wall_ms,
                            worker_wall_ms,
                            cached,
                            worker,
                        })),
                        false,
                    ),
                    // A payload the journal preserved but this build
                    // cannot decode: recompute rather than refuse.
                    Err(_) => (FleetJobState::Queued, false),
                }
            }
            SnapJobState::Failed(msg) => (FleetJobState::Failed(msg), false),
        };
        let terminal = matches!(state, FleetJobState::Done(_) | FleetJobState::Failed(_));
        if was_leased {
            resumable += 1;
        }
        sessions.log_event(
            &sj.sessions,
            "queued",
            &[
                ("job", Json::UInt(sj.id)),
                ("workload", Json::Str(sj.workload.clone())),
                ("deduped", Json::Bool(false)),
                ("recovered", Json::Bool(true)),
            ],
        );
        match &state {
            FleetJobState::Done(result) => {
                sessions.log_event(
                    &sj.sessions,
                    "done",
                    &[
                        ("job", Json::UInt(sj.id)),
                        ("workload", Json::Str(sj.workload.clone())),
                        ("cached", Json::Bool(result.cached)),
                        ("wall_ms", Json::Float(result.wall_ms)),
                        ("worker_wall_ms", Json::Float(result.worker_wall_ms)),
                        ("worker", Json::Str(result.worker.clone())),
                    ],
                );
            }
            FleetJobState::Failed(msg) => {
                sessions.log_event(
                    &sj.sessions,
                    "failed",
                    &[
                        ("job", Json::UInt(sj.id)),
                        ("error", Json::Str(msg.clone())),
                    ],
                );
            }
            _ => {
                for sid in &sj.sessions {
                    if let Some(s) = sessions.map.get_mut(sid) {
                        s.inflight += 1;
                    }
                }
            }
        }
        jobs.by_key.insert(sj.key, sj.id);
        if !terminal {
            jobs.queue.push_back(sj.id);
        }
        jobs.map.insert(
            sj.id,
            FleetJob {
                spec,
                key: sj.key,
                state,
                assigns: u64::from(terminal || was_leased),
                last_worker: None,
                probe_rank: 0,
                probe_done: false,
                sessions: sj.sessions,
                hold_until: (!terminal).then_some(now + grace),
            },
        );
    }
    for key in rec.state.stored {
        jobs.stored.insert(key);
    }
    let c = rec.state.counters;
    *counters = FleetCounters {
        sims: c.sims,
        stores: c.stores,
        primary_hits: c.primary_hits,
        read_through: c.read_through,
        repairs: c.repairs,
        misses: c.misses,
        dedup_hits: c.dedup_hits,
        sheds: c.sheds,
        rebalances: c.rebalances,
        resumed: c.resumed,
    };
    let pending = jobs.queue.len();
    eprintln!(
        "fleet: recovered {} record(s): {} job(s) ({} pending, {} resumable), \
         {} session(s), {} stored key(s){}",
        rec.records,
        jobs.map.len(),
        pending,
        resumable,
        sessions.map.len(),
        jobs.stored.len(),
        if rec.truncated {
            " — torn tail truncated"
        } else {
            ""
        }
    );
}

/// Print the per-worker outcome table a drain leaves behind: graceful
/// degradation is only trustworthy when you can see who did what.
fn print_outcome_table(shared: &CoordShared) {
    let workers = shared.workers.lock().expect("workers poisoned");
    eprintln!("fleet outcome ({} workers):", workers.len());
    eprintln!("  worker            state  done  failed  corrupt  reassigned");
    for w in workers.iter() {
        eprintln!(
            "  {:<16} {:>6}  {:>4}  {:>6}  {:>7}  {:>10}",
            w.name,
            if w.alive { "alive" } else { "dead" },
            w.done,
            w.failed,
            w.corrupt,
            w.reassigned
        );
    }
    let depth = shared.depth.lock().expect("depth poisoned");
    if depth.count > 0 {
        eprintln!(
            "  queue depth: mean {:.1}, max {:.0} over {} samples",
            depth.mean(),
            depth.max,
            depth.count
        );
    }
    let c = shared.counters.lock().expect("counters poisoned").clone();
    eprintln!(
        "  cache: {} sims, {} stores, {} primary hits, {} read-through, \
         {} repairs, {} lost, {} dedup, {} sheds, {} rebalances, {} resumed",
        c.sims,
        c.stores,
        c.primary_hits,
        c.read_through,
        c.repairs,
        c.misses,
        c.dedup_hits,
        c.sheds,
        c.rebalances,
        c.resumed
    );
}

/// Declare worker `idx` dead for `reason`: tear down its socket, return
/// every lease it held to the front of the queue, advance every probe it
/// owed past its rank. Caller holds jobs, workers and sessions locks (in
/// that order); the journal (innermost) is taken per reclaim.
fn mark_dead(
    shared: &CoordShared,
    jobs: &mut JobTable,
    workers: &mut [WorkerEntry],
    sessions: &mut SessionTable,
    idx: usize,
    reason: &str,
) {
    let w = &mut workers[idx];
    if !w.alive {
        return;
    }
    w.alive = false;
    if let Some(writer) = w.writer.take() {
        let _ = writer.shutdown(Shutdown::Both);
    }
    w.keys.clear();
    let leases: Vec<u64> = w.leased.drain().collect();
    let probes: Vec<u64> = w.probing.drain().collect();
    if !leases.is_empty() {
        eprintln!(
            "fleet: {reason}: `{}` loses {} lease(s), reassigning",
            w.name,
            leases.len()
        );
    } else {
        eprintln!("fleet: {reason}: `{}`", w.name);
    }
    for id in leases {
        w.reassigned += 1;
        let subscribers = jobs
            .map
            .get(&id)
            .map(|j| j.sessions.clone())
            .unwrap_or_default();
        jlog(
            shared,
            &Record::Reclaim {
                id,
                reason: reason.to_string(),
            },
        );
        sessions.log_event(
            &subscribers,
            "reassigned",
            &[
                ("job", Json::UInt(id)),
                ("reason", Json::Str(reason.to_string())),
            ],
        );
        requeue_front(jobs, id);
    }
    for id in probes {
        probe_requeue(jobs, id, idx);
    }
}

/// Return a leased job to the front of the queue (if it has not already
/// reached a terminal state through a late result).
fn requeue_front(jobs: &mut JobTable, id: u64) {
    if let Some(job) = jobs.map.get_mut(&id) {
        if matches!(job.state, FleetJobState::Leased { .. }) {
            job.state = FleetJobState::Queued;
            jobs.queue.push_front(id);
        }
    }
}

/// Return a probing job to the queue front, advancing past the rank that
/// was being probed at `worker` (miss, timeout, or a dead worker).
fn probe_requeue(jobs: &mut JobTable, id: u64, worker: usize) {
    if let Some(job) = jobs.map.get_mut(&id) {
        if let FleetJobState::Probing {
            worker: w, rank, ..
        } = job.state
        {
            if w == worker {
                job.probe_rank = rank + 1;
                job.state = FleetJobState::Queued;
                jobs.queue.push_front(id);
            }
        }
    }
}

/// Live workers ranked by rendezvous weight for `key`, highest first. The
/// top [`CoordinatorOptions::replicas`] entries are the key's replica set
/// for the current fleet; the ranking degrades gracefully as workers die
/// (survivors keep their relative order).
fn ranked_live(workers: &[WorkerEntry], key: u64) -> Vec<usize> {
    let mut live: Vec<usize> = workers
        .iter()
        .enumerate()
        .filter(|(_, w)| w.alive && w.writer.is_some())
        .map(|(i, _)| i)
        .collect();
    live.sort_by_key(|&i| std::cmp::Reverse(fnv_fold(key, i as u64)));
    live
}

/// Fan a verified payload out to `key`'s replica set (minus `exclude`,
/// which already holds it). Dead sends bury the worker; returns how many
/// stores landed. Caller holds jobs, workers and sessions locks.
#[allow(clippy::too_many_arguments)]
fn fan_out_store(
    shared: &CoordShared,
    jobs: &mut JobTable,
    workers: &mut [WorkerEntry],
    sessions: &mut SessionTable,
    key: u64,
    hex: &str,
    sum: &str,
    wall_ms: f64,
    exclude: Option<usize>,
) -> u64 {
    let targets: Vec<usize> = ranked_live(workers, key)
        .into_iter()
        .take(shared.opts.replicas)
        .filter(|widx| Some(*widx) != exclude)
        .collect();
    let frame = store_frame(key, hex, sum, wall_ms);
    let mut sent = 0;
    for widx in targets {
        if send_to_worker(&mut workers[widx], &frame).is_err() {
            mark_dead(shared, jobs, workers, sessions, widx, WORKER_DEAD);
        } else {
            workers[widx].keys.insert(key);
            sent += 1;
        }
    }
    if let Some(holder) = exclude {
        if let Some(w) = workers.get_mut(holder) {
            w.keys.insert(key);
        }
    }
    if sent > 0 || exclude.is_some() {
        jobs.stored.insert(key);
        jlog(shared, &Record::Stored { key, count: sent });
    }
    sent
}

/// The supervisor: heartbeats, deadline enforcement, assignment,
/// rebalancing, journal upkeep, drain.
fn supervisor_loop(shared: &Arc<CoordShared>) {
    let tick = Duration::from_millis(20);
    let mut next_rebalance = Instant::now();
    loop {
        if shared.finished.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        {
            let mut jobs = shared.jobs.lock().expect("jobs poisoned");
            let mut workers = shared.workers.lock().expect("workers poisoned");
            let mut sessions = shared.sessions.lock().expect("sessions poisoned");

            // Heartbeats: ping on schedule, bury on deadline.
            let hb = Duration::from_millis(shared.opts.heartbeat_ms);
            let hb_timeout = Duration::from_millis(shared.opts.heartbeat_timeout_ms);
            for idx in 0..workers.len() {
                if !workers[idx].alive {
                    continue;
                }
                if now.duration_since(workers[idx].last_pong) > hb_timeout {
                    mark_dead(
                        shared,
                        &mut jobs,
                        &mut workers,
                        &mut sessions,
                        idx,
                        WORKER_DEAD,
                    );
                    continue;
                }
                if now.duration_since(workers[idx].last_ping) >= hb {
                    workers[idx].ping_seq += 1;
                    let seq = workers[idx].ping_seq;
                    workers[idx].last_ping = now;
                    let ping = Json::obj(vec![
                        ("op", Json::Str("ping".into())),
                        ("seq", Json::UInt(seq)),
                    ]);
                    if send_to_worker(&mut workers[idx], &ping).is_err() {
                        mark_dead(
                            shared,
                            &mut jobs,
                            &mut workers,
                            &mut sessions,
                            idx,
                            WORKER_DEAD,
                        );
                    }
                }
            }

            // Leases: reclaim expired ones even from live workers — a
            // straggler keeps its connection but loses the job.
            let expired: Vec<(u64, usize)> = jobs
                .map
                .iter()
                .filter_map(|(id, job)| match job.state {
                    FleetJobState::Leased { worker, deadline } if now >= deadline => {
                        Some((*id, worker))
                    }
                    _ => None,
                })
                .collect();
            for (id, widx) in expired {
                if let Some(w) = workers.get_mut(widx) {
                    w.leased.remove(&id);
                    w.reassigned += 1;
                    eprintln!(
                        "fleet: {LEASE_EXPIRED}: job {id} reclaimed from `{}`",
                        w.name
                    );
                }
                let subscribers = jobs
                    .map
                    .get(&id)
                    .map(|j| j.sessions.clone())
                    .unwrap_or_default();
                jlog(
                    shared,
                    &Record::Reclaim {
                        id,
                        reason: LEASE_EXPIRED.to_string(),
                    },
                );
                sessions.log_event(
                    &subscribers,
                    "reassigned",
                    &[
                        ("job", Json::UInt(id)),
                        ("reason", Json::Str(LEASE_EXPIRED.to_string())),
                    ],
                );
                requeue_front(&mut jobs, id);
            }

            // Replica probes that never got an answer: advance the rank.
            let stale_probes: Vec<(u64, usize)> = jobs
                .map
                .iter()
                .filter_map(|(id, job)| match job.state {
                    FleetJobState::Probing {
                        worker, deadline, ..
                    } if now >= deadline => Some((*id, worker)),
                    _ => None,
                })
                .collect();
            for (id, widx) in stale_probes {
                if let Some(w) = workers.get_mut(widx) {
                    w.probing.remove(&id);
                }
                eprintln!("fleet: replica probe for job {id} timed out; advancing");
                probe_requeue(&mut jobs, id, widx);
            }

            // Dispatch: pop the queue; a key known to be replicated is
            // probed (read-through) before costing a simulation, everything
            // else is sharded across live workers with free slots,
            // rendezvous-hashing on the content-addressed key so placement
            // is deterministic for a fixed fleet.
            let mut stuck = VecDeque::new();
            while let Some(id) = jobs.queue.pop_front() {
                let Some(job) = jobs.map.get(&id) else {
                    continue;
                };
                if !matches!(job.state, FleetJobState::Queued) {
                    continue;
                }
                // Recovery grace: leave held jobs alone until the deadline
                // so a re-joining worker's inventory can resume them.
                if job.hold_until.is_some_and(|t| now < t) {
                    stuck.push_back(id);
                    continue;
                }
                let key = job.key;
                let avoid = job.last_worker;
                let probe_rank = job.probe_rank;
                let probe_pending = jobs.stored.contains(&key) && !job.probe_done;
                if probe_pending {
                    let ranked = ranked_live(&workers, key);
                    let max_rank = shared.opts.replicas.min(ranked.len());
                    if probe_rank < max_rank {
                        let widx = ranked[probe_rank];
                        if send_to_worker(&mut workers[widx], &fetch_frame(id, key)).is_err() {
                            mark_dead(
                                shared,
                                &mut jobs,
                                &mut workers,
                                &mut sessions,
                                widx,
                                WORKER_DEAD,
                            );
                            jobs.queue.push_front(id);
                            continue;
                        }
                        let job = jobs.map.get_mut(&id).expect("job exists");
                        job.state = FleetJobState::Probing {
                            worker: widx,
                            rank: probe_rank,
                            deadline: now + Duration::from_millis(shared.opts.probe_timeout_ms),
                        };
                        workers[widx].probing.insert(id);
                        continue;
                    }
                    // Every replica rank missed or died: the key is truly
                    // lost; fall through and recompute it.
                    let job = jobs.map.get_mut(&id).expect("job exists");
                    job.probe_done = true;
                    jlog(
                        shared,
                        &Record::Counter {
                            counter: JCounter::Misses,
                            delta: 1,
                        },
                    );
                    shared.counters.lock().expect("counters poisoned").misses += 1;
                }
                let free =
                    |w: &WorkerEntry| w.alive && w.writer.is_some() && w.leased.len() < w.slots;
                let candidates: Vec<usize> = workers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| free(w))
                    .map(|(widx, _)| widx)
                    .collect();
                let chosen = candidates
                    .iter()
                    .copied()
                    // Anti-affinity: never hand a reclaimed job straight
                    // back to the worker it was just taken from, unless it
                    // is the only one left.
                    .filter(|widx| candidates.len() == 1 || Some(*widx) != avoid)
                    .max_by_key(|widx| fnv_fold(key, *widx as u64));
                let Some(widx) = chosen else {
                    // No capacity (or no fleet yet): hold the job.
                    stuck.push_back(id);
                    continue;
                };
                let job = jobs.map.get_mut(&id).expect("job exists");
                let mut assign_fields = vec![
                    ("op", Json::Str("assign".into())),
                    ("job", Json::UInt(id)),
                    ("workload", Json::Str(job.spec.workload.clone())),
                    ("tiny", Json::Bool(job.spec.tiny)),
                    ("sanitize", Json::Bool(job.spec.cfg.sanitize)),
                ];
                // Non-default cycle budgets (loadgen variants) must survive
                // the trip to the worker or the digest would differ.
                let default_cycles = if job.spec.tiny {
                    gcl_sim::GpuConfig::small().max_cycles
                } else {
                    gcl_sim::GpuConfig::fermi().max_cycles
                };
                if job.spec.cfg.max_cycles != default_cycles {
                    assign_fields.push(("max_cycles", Json::UInt(job.spec.cfg.max_cycles)));
                }
                let assign = Json::obj(assign_fields);
                if send_to_worker(&mut workers[widx], &assign).is_err() {
                    mark_dead(
                        shared,
                        &mut jobs,
                        &mut workers,
                        &mut sessions,
                        widx,
                        WORKER_DEAD,
                    );
                    // mark_dead may have requeued other jobs; this one is
                    // still ours to put back.
                    jobs.queue.push_front(id);
                    continue;
                }
                let wname = workers[widx].name.clone();
                let job = jobs.map.get_mut(&id).expect("job exists");
                job.assigns += 1;
                job.last_worker = Some(widx);
                job.state = FleetJobState::Leased {
                    worker: widx,
                    deadline: now + Duration::from_millis(shared.opts.lease_ms),
                };
                let subscribers = job.sessions.clone();
                workers[widx].leased.insert(id);
                jlog(
                    shared,
                    &Record::Lease {
                        id,
                        worker: wname.clone(),
                    },
                );
                sessions.log_event(
                    &subscribers,
                    "leased",
                    &[("job", Json::UInt(id)), ("worker", Json::Str(wname))],
                );
            }
            // Jobs with nowhere to go wait at the front, in order.
            for id in stuck.into_iter().rev() {
                jobs.queue.push_front(id);
            }

            // Proactive rebalancing: scan the replica directory and re-fan
            // any under-replicated key back to R, without waiting for a
            // read miss. The payload comes from a terminal job when one is
            // still in the table, else it is fetched back from a surviving
            // holder (the `fetched` handler finishes that fan-out).
            if shared.opts.rebalance_ms > 0 && now >= next_rebalance {
                next_rebalance = now + Duration::from_millis(shared.opts.rebalance_ms);
                rebalance(shared, &mut jobs, &mut workers, &mut sessions, now);
            }

            shared
                .depth
                .lock()
                .expect("depth poisoned")
                .add(jobs.queue.len() as f64);

            // Drain: once every job is terminal, dismiss the fleet.
            if shared.draining.load(Ordering::SeqCst) {
                let all_terminal = jobs
                    .map
                    .values()
                    .all(|j| matches!(j.state, FleetJobState::Done(_) | FleetJobState::Failed(_)));
                if all_terminal {
                    let close = Json::obj(vec![("op", Json::Str("close".into()))]);
                    for w in workers.iter_mut() {
                        if w.alive {
                            let _ = send_to_worker(w, &close);
                        }
                        if let Some(writer) = w.writer.take() {
                            let _ = writer.shutdown(Shutdown::Both);
                        }
                    }
                    shared.finished.store(true, Ordering::SeqCst);
                }
            }

            // Journal upkeep: one batched fsync per tick, and compaction
            // into a snapshot once the file outgrows its budget.
            if let Some(journal) = &shared.journal {
                let needs_compact = {
                    let j = journal.lock().expect("journal poisoned");
                    j.bytes() > shared.opts.journal_compact_bytes
                };
                if needs_compact {
                    let snap = {
                        let counters = shared.counters.lock().expect("counters poisoned");
                        snapshot_state(&jobs, &sessions, &counters)
                    };
                    let mut j = journal.lock().expect("journal poisoned");
                    let before = j.bytes();
                    match j.compact(&snap) {
                        Ok(()) => {
                            eprintln!("fleet: journal compacted ({before} -> {} bytes)", j.bytes())
                        }
                        Err(e) => eprintln!("warning: journal compaction failed: {e}"),
                    }
                }
            }
            jsync(shared);
        }
        std::thread::sleep(tick);
    }
}

/// Re-fan every under-replicated stored key toward R live replicas.
/// Caller holds jobs, workers and sessions locks.
fn rebalance(
    shared: &CoordShared,
    jobs: &mut JobTable,
    workers: &mut [WorkerEntry],
    sessions: &mut SessionTable,
    now: Instant,
) {
    jobs.rebalance_inflight
        .retain(|_, deadline| now < *deadline);
    let stored: Vec<u64> = jobs.stored.iter().copied().collect();
    for key in stored {
        if jobs.rebalance_inflight.contains_key(&key) {
            continue;
        }
        let targets: Vec<usize> = ranked_live(workers, key)
            .into_iter()
            .take(shared.opts.replicas)
            .collect();
        if targets.is_empty()
            || targets
                .iter()
                .all(|widx| workers[*widx].keys.contains(&key))
        {
            continue;
        }
        // Prefer a payload still in the job table: re-fan it directly.
        let payload = jobs
            .by_key
            .get(&key)
            .and_then(|id| jobs.map.get(id))
            .and_then(|j| match &j.state {
                FleetJobState::Done(result) => Some((result.stats.clone(), result.wall_ms)),
                _ => None,
            });
        if let Some((stats, wall_ms)) = payload {
            let (hex, sum) = super::encode_stats_payload(&stats);
            let sent = fan_out_store(
                shared, jobs, workers, sessions, key, &hex, &sum, wall_ms, None,
            );
            if sent > 0 {
                jlog(
                    shared,
                    &Record::Counter {
                        counter: JCounter::Rebalances,
                        delta: 1,
                    },
                );
                let mut c = shared.counters.lock().expect("counters poisoned");
                c.rebalances += 1;
                c.stores += sent;
            }
            continue;
        }
        // The job table no longer has the bytes (reset, or recovery with
        // the payload on a worker): fetch them back from the best-ranked
        // surviving holder. Job id 0 marks the reply as a rebalance fetch.
        let holder = ranked_live(workers, key)
            .into_iter()
            .find(|widx| workers[*widx].keys.contains(&key));
        let Some(widx) = holder else {
            continue;
        };
        if send_to_worker(&mut workers[widx], &fetch_frame(0, key)).is_err() {
            mark_dead(shared, jobs, workers, sessions, widx, WORKER_DEAD);
            continue;
        }
        jobs.rebalance_inflight.insert(
            key,
            now + Duration::from_millis(shared.opts.probe_timeout_ms),
        );
    }
}

/// Capture the complete durable state for a compaction snapshot. Caller
/// holds the jobs, sessions and counters locks.
fn snapshot_state(jobs: &JobTable, sessions: &SessionTable, counters: &FleetCounters) -> SnapState {
    let mut snap_jobs: Vec<SnapJob> = jobs
        .map
        .iter()
        .map(|(id, job)| {
            let default_cycles = if job.spec.tiny {
                gcl_sim::GpuConfig::small().max_cycles
            } else {
                gcl_sim::GpuConfig::fermi().max_cycles
            };
            let state = match &job.state {
                FleetJobState::Queued | FleetJobState::Probing { .. } => {
                    SnapJobState::Queued { was_leased: false }
                }
                FleetJobState::Leased { .. } => SnapJobState::Queued { was_leased: true },
                FleetJobState::Done(result) => {
                    let mut enc = gcl_mem::Enc::new();
                    result.stats.ckpt_encode(&mut enc);
                    SnapJobState::Done {
                        cached: result.cached,
                        wall_ms: result.wall_ms,
                        worker_wall_ms: result.worker_wall_ms,
                        worker: result.worker.clone(),
                        payload: enc.into_bytes(),
                    }
                }
                FleetJobState::Failed(msg) => SnapJobState::Failed(msg.clone()),
            };
            SnapJob {
                id: *id,
                key: job.key,
                workload: job.spec.workload.clone(),
                tiny: job.spec.tiny,
                sanitize: job.spec.cfg.sanitize,
                max_cycles: (job.spec.cfg.max_cycles != default_cycles)
                    .then_some(job.spec.cfg.max_cycles),
                sessions: job.sessions.clone(),
                state,
            }
        })
        .collect();
    snap_jobs.sort_by_key(|j| j.id);
    let mut stored: Vec<u64> = jobs.stored.iter().copied().collect();
    stored.sort_unstable();
    let mut snap_sessions: Vec<SnapSession> = sessions
        .map
        .iter()
        .map(|(sid, s)| SnapSession {
            id: sid.clone(),
            events: s.next_seq,
        })
        .collect();
    snap_sessions.sort_by(|a, b| a.id.cmp(&b.id));
    SnapState {
        next_id: jobs.next_id,
        jobs: snap_jobs,
        stored,
        session_next: sessions.next,
        sessions: snap_sessions,
        counters: SnapCounters {
            sims: counters.sims,
            stores: counters.stores,
            primary_hits: counters.primary_hits,
            read_through: counters.read_through,
            repairs: counters.repairs,
            misses: counters.misses,
            dedup_hits: counters.dedup_hits,
            sheds: counters.sheds,
            rebalances: counters.rebalances,
            resumed: counters.resumed,
        },
    }
}

fn send_to_worker(worker: &mut WorkerEntry, frame: &Json) -> Result<(), FrameError> {
    let Some(writer) = worker.writer.as_mut() else {
        return Err(FrameError::Closed);
    };
    write_frame(writer, frame)
}

/// First frame decides the role: `join` starts a worker session, anything
/// else is a client request.
fn handle_session(stream: TcpStream, shared: &Arc<CoordShared>) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(
        shared.opts.write_timeout_ms.max(1),
    )));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("warning: connection clone failed: {e}");
            return;
        }
    };
    let mut reader = FrameReader::new(stream, shared.opts.max_frame);
    let first = loop {
        match reader.next_frame() {
            Ok(line) => break line,
            Err(FrameError::Timeout) => {
                if shared.finished.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(FrameError::TooLarge { limit }) => {
                let _ = write_frame(
                    &mut writer,
                    &error_response(format!("frame too large (cap {limit} bytes)")),
                );
                return;
            }
            Err(_) => return,
        }
    };
    let request = match Json::parse(&first) {
        Ok(j) => j,
        Err(e) => {
            let _ = write_frame(&mut writer, &error_response(format!("bad request: {e}")));
            return;
        }
    };
    if request.get("op").and_then(Json::as_str) == Some("join") {
        worker_session(&request, reader, writer, shared);
    } else {
        client_session(&request, reader, writer, shared);
    }
}

/// Register the worker and relay its frames until the connection ends.
fn worker_session(
    join: &Json,
    mut reader: FrameReader<TcpStream>,
    mut writer: TcpStream,
    shared: &Arc<CoordShared>,
) {
    let name = join
        .get("name")
        .and_then(Json::as_str)
        .unwrap_or("worker")
        .to_string();
    let slots = join.get("slots").and_then(Json::as_u64).unwrap_or(1).max(1) as usize;
    if shared.draining.load(Ordering::SeqCst) {
        let _ = write_frame(&mut writer, &error_response("coordinator is draining"));
        return;
    }
    let idx = {
        let mut workers = shared.workers.lock().expect("workers poisoned");
        let now = Instant::now();
        workers.push(WorkerEntry {
            name: name.clone(),
            slots,
            writer: Some(match writer.try_clone() {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("warning: worker stream clone failed: {e}");
                    return;
                }
            }),
            alive: true,
            last_pong: now,
            last_ping: now,
            ping_seq: 0,
            leased: HashSet::new(),
            probing: HashSet::new(),
            keys: HashSet::new(),
            done: 0,
            failed: 0,
            corrupt: 0,
            reassigned: 0,
        });
        workers.len() - 1
    };
    eprintln!("fleet: worker `{name}` joined with {slots} slot(s)");
    if write_frame(&mut writer, &Json::obj(vec![("ok", Json::Bool(true))])).is_err() {
        let mut jobs = shared.jobs.lock().expect("jobs poisoned");
        let mut workers = shared.workers.lock().expect("workers poisoned");
        let mut sessions = shared.sessions.lock().expect("sessions poisoned");
        mark_dead(
            shared,
            &mut jobs,
            &mut workers,
            &mut sessions,
            idx,
            WORKER_DEAD,
        );
        return;
    }
    loop {
        let line = match reader.next_frame() {
            Ok(line) => line,
            Err(FrameError::Timeout) => {
                if shared.finished.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            // EOF or transport error: the worker is gone. (TooLarge from a
            // worker means a result overflow — same recovery: bury it.)
            Err(_) => {
                let mut jobs = shared.jobs.lock().expect("jobs poisoned");
                let mut workers = shared.workers.lock().expect("workers poisoned");
                let mut sessions = shared.sessions.lock().expect("sessions poisoned");
                mark_dead(
                    shared,
                    &mut jobs,
                    &mut workers,
                    &mut sessions,
                    idx,
                    WORKER_DEAD,
                );
                return;
            }
        };
        let Ok(frame) = Json::parse(&line) else {
            continue;
        };
        match frame.get("op").and_then(Json::as_str) {
            Some("pong") => {
                let mut workers = shared.workers.lock().expect("workers poisoned");
                if let Some(w) = workers.get_mut(idx) {
                    w.last_pong = Instant::now();
                }
            }
            Some("done") => handle_done(&frame, idx, shared),
            Some("fail") => handle_fail(&frame, idx, shared),
            Some("fetched") => handle_fetched(&frame, idx, shared),
            Some("inventory") => handle_inventory(&frame, idx, shared),
            _ => {}
        }
    }
}

/// Reconcile a (re-)joining worker's `inventory` frame: its replica-store
/// keys become ground truth for the directory, and any job it reports
/// still running has its lease resumed — a recovered coordinator then
/// waits for the in-flight result instead of re-running the simulation.
fn handle_inventory(frame: &Json, idx: usize, shared: &Arc<CoordShared>) {
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut workers = shared.workers.lock().expect("workers poisoned");
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    let keys: HashSet<u64> = match frame.get("keys") {
        Some(Json::Arr(items)) => items
            .iter()
            .filter_map(|k| k.as_str().and_then(|s| decode_key(s).ok()))
            .collect(),
        _ => HashSet::new(),
    };
    for key in &keys {
        jobs.stored.insert(*key);
    }
    let name = match workers.get_mut(idx) {
        Some(w) => {
            w.keys = keys;
            w.name.clone()
        }
        None => return,
    };
    let running: Vec<u64> = match frame.get("running") {
        Some(Json::Arr(items)) => items.iter().filter_map(Json::as_u64).collect(),
        _ => Vec::new(),
    };
    let now = Instant::now();
    let mut resumed = 0u64;
    for id in running {
        let Some(job) = jobs.map.get_mut(&id) else {
            continue;
        };
        if !matches!(job.state, FleetJobState::Queued) {
            continue;
        }
        job.state = FleetJobState::Leased {
            worker: idx,
            deadline: now + Duration::from_millis(shared.opts.lease_ms),
        };
        job.hold_until = None;
        job.last_worker = Some(idx);
        job.assigns = job.assigns.max(1);
        let subscribers = job.sessions.clone();
        workers[idx].leased.insert(id);
        jlog(
            shared,
            &Record::Lease {
                id,
                worker: name.clone(),
            },
        );
        jlog(
            shared,
            &Record::Counter {
                counter: JCounter::Resumed,
                delta: 1,
            },
        );
        sessions.log_event(
            &subscribers,
            "leased",
            &[
                ("job", Json::UInt(id)),
                ("worker", Json::Str(name.clone())),
                ("resumed", Json::Bool(true)),
            ],
        );
        resumed += 1;
    }
    if resumed > 0 {
        shared.counters.lock().expect("counters poisoned").resumed += resumed;
        eprintln!("fleet: resumed {resumed} in-flight lease(s) from `{name}`'s inventory");
    }
}

/// Verify and record a worker's `done` frame. A bad checksum or an
/// undecodable payload is treated exactly like a lost worker's job: the
/// corruption is counted and the job reassigned.
fn handle_done(frame: &Json, idx: usize, shared: &Arc<CoordShared>) {
    let Some(id) = frame.get("job").and_then(Json::as_u64) else {
        return;
    };
    let verified = verify_result(frame);
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut workers = shared.workers.lock().expect("workers poisoned");
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    if let Some(w) = workers.get_mut(idx) {
        w.leased.remove(&id);
    }
    if !jobs.map.contains_key(&id) {
        return;
    }
    match verified {
        Ok((stats, wall_ms, worker_wall_ms, cached)) => {
            // First result wins; a duplicate from a reassigned job carries
            // identical bytes (the run is a pure function of the spec), so
            // dropping it is sound.
            let job = jobs.map.get_mut(&id).expect("job exists");
            if !matches!(
                job.state,
                FleetJobState::Leased { .. } | FleetJobState::Queued
            ) {
                return;
            }
            let worker_name = workers
                .get(idx)
                .map_or_else(String::new, |w| w.name.clone());
            let key = job.key;
            let workload = job.spec.workload.clone();
            let subscribers = job.sessions.clone();
            job.state = FleetJobState::Done(Box::new(FleetResult {
                stats,
                wall_ms,
                worker_wall_ms,
                cached,
                worker: worker_name.clone(),
            }));
            // It may have been requeued by a pessimistic deadline; drop
            // the stale queue entry lazily (assignment skips non-Queued
            // ids).
            if let Some(w) = workers.get_mut(idx) {
                w.done += 1;
            }
            // Journal before the event log: the per-session watermark the
            // journal accumulates must never fall below what clients see.
            let payload = frame
                .get("stats")
                .and_then(Json::as_str)
                .and_then(|hex| hex_decode(hex).ok())
                .unwrap_or_default();
            jlog(
                shared,
                &Record::Done {
                    id,
                    cached,
                    wall_ms,
                    worker_wall_ms,
                    worker: worker_name.clone(),
                    payload,
                },
            );
            sessions.log_event(
                &subscribers,
                "done",
                &[
                    ("job", Json::UInt(id)),
                    ("workload", Json::Str(workload)),
                    ("cached", Json::Bool(cached)),
                    ("wall_ms", Json::Float(wall_ms)),
                    ("worker_wall_ms", Json::Float(worker_wall_ms)),
                    ("worker", Json::Str(worker_name)),
                ],
            );
            settle_subscribers(&mut sessions, &subscribers);
            if !cached {
                shared.counters.lock().expect("counters poisoned").sims += 1;
            }
            // Durability: fan the already-verified payload bytes out to
            // the key's replica set; a later submit of this key can then
            // be served by any surviving replica.
            if let (Some(hex), Some(sum)) = (
                frame.get("stats").and_then(Json::as_str),
                frame.get("sum").and_then(Json::as_str),
            ) {
                let sent = fan_out_store(
                    shared,
                    &mut jobs,
                    &mut workers,
                    &mut sessions,
                    key,
                    hex,
                    sum,
                    wall_ms,
                    None,
                );
                shared.counters.lock().expect("counters poisoned").stores += sent;
            }
        }
        Err(why) => {
            eprintln!("fleet: corrupt result for job {id}: {why}; reassigning");
            if let Some(w) = workers.get_mut(idx) {
                w.corrupt += 1;
                w.reassigned += 1;
            }
            let subscribers = jobs
                .map
                .get(&id)
                .map(|j| j.sessions.clone())
                .unwrap_or_default();
            jlog(
                shared,
                &Record::Reclaim {
                    id,
                    reason: "corrupt result".to_string(),
                },
            );
            sessions.log_event(
                &subscribers,
                "reassigned",
                &[
                    ("job", Json::UInt(id)),
                    ("reason", Json::Str("corrupt result".to_string())),
                ],
            );
            requeue_front(&mut jobs, id);
        }
    }
}

/// Decode and checksum-verify the `stats` payload of a `done` frame.
/// Returns `(stats, wall_ms, worker_wall_ms, cached)`.
fn verify_result(frame: &Json) -> Result<(LaunchStats, f64, f64, bool), String> {
    let hex = frame
        .get("stats")
        .and_then(Json::as_str)
        .ok_or("missing stats payload")?;
    let sum_text = frame
        .get("sum")
        .and_then(Json::as_str)
        .ok_or("missing checksum")?;
    let stats = super::decode_stats_payload(hex, sum_text)?;
    let wall_ms = frame.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
    let worker_wall_ms = frame
        .get("worker_wall_ms")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let cached = frame.get("cached").and_then(Json::as_bool).unwrap_or(false);
    Ok((stats, wall_ms, worker_wall_ms, cached))
}

/// A worker's answer to a replica probe. A verified hit completes the job
/// from the replica store (and write-repairs the set when a non-primary
/// answered); a miss or a corrupt payload advances to the next rank.
fn handle_fetched(frame: &Json, idx: usize, shared: &Arc<CoordShared>) {
    let Some(id) = frame.get("job").and_then(Json::as_u64) else {
        return;
    };
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut workers = shared.workers.lock().expect("workers poisoned");
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    if let Some(w) = workers.get_mut(idx) {
        w.probing.remove(&id);
    }
    // Job id 0 never exists: this is the rebalancer's fetch coming back.
    if id == 0 {
        handle_rebalance_fetched(frame, idx, shared, &mut jobs, &mut workers, &mut sessions);
        return;
    }
    let Some(job) = jobs.map.get_mut(&id) else {
        return;
    };
    let (worker, rank) = match &job.state {
        FleetJobState::Probing { worker, rank, .. } => (*worker, *rank),
        // Stale answer: the probe already timed out and moved on.
        _ => return,
    };
    if worker != idx {
        return;
    }
    let hit = frame.get("hit").and_then(Json::as_bool).unwrap_or(false);
    if hit {
        let payload = match (
            frame.get("stats").and_then(Json::as_str),
            frame.get("sum").and_then(Json::as_str),
        ) {
            (Some(hex), Some(sum)) => super::decode_stats_payload(hex, sum)
                .map(|stats| (stats, hex.to_string(), sum.to_string())),
            _ => Err("fetched hit without payload".to_string()),
        };
        match payload {
            Ok((stats, hex, sum)) => {
                let wall_ms = frame.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
                let worker_name = workers
                    .get(idx)
                    .map_or_else(String::new, |w| w.name.clone());
                let key = job.key;
                let workload = job.spec.workload.clone();
                let subscribers = job.sessions.clone();
                job.state = FleetJobState::Done(Box::new(FleetResult {
                    stats,
                    wall_ms,
                    worker_wall_ms: 0.0,
                    cached: true,
                    worker: worker_name.clone(),
                }));
                if let Some(w) = workers.get_mut(idx) {
                    w.keys.insert(key);
                }
                jlog(
                    shared,
                    &Record::Done {
                        id,
                        cached: true,
                        wall_ms,
                        worker_wall_ms: 0.0,
                        worker: worker_name.clone(),
                        payload: hex_decode(&hex).unwrap_or_default(),
                    },
                );
                jlog(
                    shared,
                    &Record::Counter {
                        counter: if rank == 0 {
                            JCounter::PrimaryHits
                        } else {
                            JCounter::ReadThrough
                        },
                        delta: 1,
                    },
                );
                sessions.log_event(
                    &subscribers,
                    "done",
                    &[
                        ("job", Json::UInt(id)),
                        ("workload", Json::Str(workload)),
                        ("cached", Json::Bool(true)),
                        ("wall_ms", Json::Float(wall_ms)),
                        ("worker_wall_ms", Json::Float(0.0)),
                        ("worker", Json::Str(worker_name)),
                    ],
                );
                settle_subscribers(&mut sessions, &subscribers);
                {
                    let mut c = shared.counters.lock().expect("counters poisoned");
                    if rank == 0 {
                        c.primary_hits += 1;
                    } else {
                        c.read_through += 1;
                    }
                }
                if rank > 0 {
                    // Write-repair: the primary is gone; re-replicate onto
                    // the current replica set so the key survives the next
                    // node loss too.
                    let sent = fan_out_store(
                        shared,
                        &mut jobs,
                        &mut workers,
                        &mut sessions,
                        key,
                        &hex,
                        &sum,
                        wall_ms,
                        Some(idx),
                    );
                    jlog(
                        shared,
                        &Record::Counter {
                            counter: JCounter::Repairs,
                            delta: 1,
                        },
                    );
                    let mut c = shared.counters.lock().expect("counters poisoned");
                    c.repairs += 1;
                    c.stores += sent;
                }
            }
            Err(why) => {
                eprintln!("fleet: corrupt replica payload for job {id}: {why}; advancing");
                probe_requeue(&mut jobs, id, idx);
            }
        }
    } else {
        if let (Some(w), Some(key)) = (
            workers.get_mut(idx),
            frame
                .get("key")
                .and_then(Json::as_str)
                .and_then(|s| decode_key(s).ok()),
        ) {
            // The probe said miss: correct the directory's view.
            w.keys.remove(&key);
        }
        probe_requeue(&mut jobs, id, idx);
    }
}

/// Finish a rebalance fetch (job id 0): a verified hit is re-fanned to
/// the key's current replica set; a miss corrects the directory so the
/// next rebalance pass tries another holder (or gives the key up for
/// lost — a later submit recomputes it).
fn handle_rebalance_fetched(
    frame: &Json,
    idx: usize,
    shared: &Arc<CoordShared>,
    jobs: &mut JobTable,
    workers: &mut [WorkerEntry],
    sessions: &mut SessionTable,
) {
    let Some(key) = frame
        .get("key")
        .and_then(Json::as_str)
        .and_then(|s| decode_key(s).ok())
    else {
        return;
    };
    jobs.rebalance_inflight.remove(&key);
    let hit = frame.get("hit").and_then(Json::as_bool).unwrap_or(false);
    if !hit {
        if let Some(w) = workers.get_mut(idx) {
            w.keys.remove(&key);
        }
        return;
    }
    let verified = match (
        frame.get("stats").and_then(Json::as_str),
        frame.get("sum").and_then(Json::as_str),
    ) {
        (Some(hex), Some(sum)) => {
            super::decode_stats_payload(hex, sum).map(|_| (hex.to_string(), sum.to_string()))
        }
        _ => Err("fetched hit without payload".to_string()),
    };
    match verified {
        Ok((hex, sum)) => {
            let wall_ms = frame.get("wall_ms").and_then(Json::as_f64).unwrap_or(0.0);
            if let Some(w) = workers.get_mut(idx) {
                w.keys.insert(key);
            }
            let sent = fan_out_store(
                shared,
                jobs,
                workers,
                sessions,
                key,
                &hex,
                &sum,
                wall_ms,
                Some(idx),
            );
            if sent > 0 {
                jlog(
                    shared,
                    &Record::Counter {
                        counter: JCounter::Rebalances,
                        delta: 1,
                    },
                );
                let mut c = shared.counters.lock().expect("counters poisoned");
                c.rebalances += 1;
                c.stores += sent;
            }
        }
        Err(why) => {
            eprintln!(
                "fleet: corrupt rebalance payload for key {}: {why}",
                encode_key(key)
            );
            if let Some(w) = workers.get_mut(idx) {
                w.keys.remove(&key);
            }
        }
    }
}

/// Record a worker's structured `fail` frame. Failures are deterministic
/// (the simulation is a pure function of the spec), so a failed job is
/// terminal — rerunning it elsewhere would fail identically.
fn handle_fail(frame: &Json, idx: usize, shared: &Arc<CoordShared>) {
    let Some(id) = frame.get("job").and_then(Json::as_u64) else {
        return;
    };
    let error = frame
        .get("error")
        .and_then(Json::as_str)
        .unwrap_or("unknown error")
        .to_string();
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut workers = shared.workers.lock().expect("workers poisoned");
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    if let Some(w) = workers.get_mut(idx) {
        w.leased.remove(&id);
    }
    if let Some(job) = jobs.map.get_mut(&id) {
        if matches!(
            job.state,
            FleetJobState::Leased { .. } | FleetJobState::Queued
        ) {
            let subscribers = job.sessions.clone();
            job.state = FleetJobState::Failed(error.clone());
            if let Some(w) = workers.get_mut(idx) {
                w.failed += 1;
            }
            jlog(
                shared,
                &Record::Failed {
                    id,
                    error: error.clone(),
                },
            );
            sessions.log_event(
                &subscribers,
                "failed",
                &[("job", Json::UInt(id)), ("error", Json::Str(error))],
            );
            settle_subscribers(&mut sessions, &subscribers);
        }
    }
}

/// Serve client verbs on this connection until EOF or drain. A `session`
/// request upgrades the connection to an event stream (see
/// [`session_stream`]); everything else is request/response.
fn client_session(
    first: &Json,
    mut reader: FrameReader<TcpStream>,
    mut writer: TcpStream,
    shared: &Arc<CoordShared>,
) {
    let mut request = first.clone();
    loop {
        if request.get("op").and_then(Json::as_str) == Some("session") {
            match session_attach(&request, shared) {
                Ok((sid, start, truncated)) => {
                    let ack = Json::obj(vec![
                        ("ok", Json::Bool(true)),
                        ("session", Json::Str(sid.clone())),
                        ("from", Json::UInt(start)),
                        ("truncated", Json::Bool(truncated)),
                    ]);
                    if write_frame(&mut writer, &ack).is_err() {
                        return;
                    }
                    session_stream(&sid, start, &mut reader, &mut writer, shared);
                    jlog(
                        shared,
                        &Record::SessionDetach {
                            session: sid.clone(),
                        },
                    );
                    return;
                }
                Err(resp) => {
                    if write_frame(&mut writer, &resp).is_err() {
                        return;
                    }
                }
            }
        } else {
            let response = handle_client_request(&request, shared);
            if write_frame(&mut writer, &response).is_err() {
                return;
            }
        }
        request = loop {
            match reader.next_frame() {
                Ok(line) => match Json::parse(&line) {
                    Ok(j) => break j,
                    Err(e) => {
                        if write_frame(&mut writer, &error_response(format!("bad request: {e}")))
                            .is_err()
                        {
                            return;
                        }
                    }
                },
                Err(FrameError::Timeout) => {
                    if shared.finished.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(FrameError::TooLarge { limit }) => {
                    let _ = write_frame(
                        &mut writer,
                        &error_response(format!("frame too large (cap {limit} bytes)")),
                    );
                    return;
                }
                Err(_) => return,
            }
        };
    }
}

/// Resolve a `session` request: create a fresh session, or re-attach to an
/// existing one at the requested replay position. Returns
/// `(id, start_seq, truncated)`, or the error response to send.
fn session_attach(request: &Json, shared: &Arc<CoordShared>) -> Result<(String, u64, bool), Json> {
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    match request.get("id").and_then(Json::as_str) {
        None => {
            sessions.next += 1;
            let sid = format!("s-{}", sessions.next);
            sessions.map.insert(sid.clone(), Session::default());
            jlog(
                shared,
                &Record::SessionOpen {
                    session: sid.clone(),
                },
            );
            Ok((sid, 0, false))
        }
        Some(sid) => {
            let Some(s) = sessions.map.get(sid) else {
                return Err(error_response(format!("unknown session `{sid}`")));
            };
            let from = request.get("from").and_then(Json::as_u64).unwrap_or(0);
            // Events older than base_seq were truncated by the log cap;
            // the client learns it missed some and starts at the cut.
            let truncated = from < s.base_seq;
            Ok((
                sid.to_string(),
                from.max(s.base_seq).min(s.next_seq),
                truncated,
            ))
        }
    }
}

/// A live-only (never logged, no sequence number) queue heartbeat event.
fn depth_event(shared: &Arc<CoordShared>) -> Json {
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    let (queued, probing, running, _, _) = count_states(&jobs);
    Json::obj(vec![
        ("event", Json::Str("depth".to_string())),
        ("queue", Json::UInt(jobs.queue.len() as u64)),
        ("queued", Json::UInt(queued + probing)),
        ("running", Json::UInt(running)),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
    ])
}

/// Stream a session's events over this connection while still answering
/// interleaved requests (responses carry `"ok"`, events carry `"event"`).
/// Replays the log from `cursor`, then follows it live with queue-depth
/// heartbeats; returns when the client disconnects (the session and its
/// log survive for a later re-attach) or the coordinator finishes.
fn session_stream(
    sid: &str,
    mut cursor: u64,
    reader: &mut FrameReader<TcpStream>,
    writer: &mut TcpStream,
    shared: &Arc<CoordShared>,
) {
    let hb = Duration::from_millis(shared.opts.heartbeat_ms.max(100));
    let mut last_beat = Instant::now();
    let mut first_beat = true;
    loop {
        // Observe `finished` before draining the log: events are logged
        // before the flag is set, so finished + an empty drain means the
        // stream is complete.
        let finished = shared.finished.load(Ordering::SeqCst);
        let pending: Vec<Json> = {
            let sessions = shared.sessions.lock().expect("sessions poisoned");
            let Some(s) = sessions.map.get(sid) else {
                return;
            };
            if cursor < s.base_seq {
                cursor = s.base_seq;
            }
            let skip = (cursor - s.base_seq) as usize;
            let out: Vec<Json> = s.log.iter().skip(skip).cloned().collect();
            cursor = s.next_seq;
            out
        };
        for event in &pending {
            if write_frame(writer, event).is_err() {
                return;
            }
        }
        if first_beat || last_beat.elapsed() >= hb {
            first_beat = false;
            last_beat = Instant::now();
            if write_frame(writer, &depth_event(shared)).is_err() {
                return;
            }
        }
        if finished && pending.is_empty() {
            return;
        }
        match reader.next_frame() {
            Ok(line) => {
                let response = match Json::parse(&line) {
                    Ok(request) => handle_client_request(&request, shared),
                    Err(e) => error_response(format!("bad request: {e}")),
                };
                if write_frame(writer, &response).is_err() {
                    return;
                }
            }
            Err(FrameError::Timeout) => {}
            Err(FrameError::TooLarge { limit }) => {
                let _ = write_frame(
                    writer,
                    &error_response(format!("frame too large (cap {limit} bytes)")),
                );
                return;
            }
            Err(_) => return,
        }
    }
}

fn handle_client_request(request: &Json, shared: &Arc<CoordShared>) -> Json {
    match request.get("op").and_then(Json::as_str) {
        Some("submit") => handle_submit(request, shared),
        Some("status") => handle_status(shared),
        Some("result") => handle_result(request, shared),
        // Destructive chaos-test verbs are opt-in: a production
        // coordinator refuses them with a structured error.
        Some("decommission") if !shared.opts.chaos_verbs => error_response("chaos verbs disabled"),
        Some("reset") if !shared.opts.chaos_verbs => error_response("chaos verbs disabled"),
        Some("decommission") => handle_decommission(request, shared),
        Some("reset") => handle_reset(shared),
        // A `session` frame inside an already-streaming connection (the
        // stream loop dispatches here) cannot re-upgrade.
        Some("session") => error_response("session already active on this connection"),
        Some("shutdown") => {
            shared.draining.store(true, Ordering::SeqCst);
            let pending = {
                let jobs = shared.jobs.lock().expect("jobs poisoned");
                jobs.queue.len()
            };
            Json::obj(vec![
                ("ok", Json::Bool(true)),
                ("draining", Json::Bool(true)),
                ("pending", Json::UInt(pending as u64)),
            ])
        }
        Some(other) => error_response(format!(
            "unknown op `{other}` (expected submit, status, result, session, \
             decommission, reset, shutdown)"
        )),
        None => error_response("missing `op` field"),
    }
}

/// Administratively retire a live worker by name: exactly what a heartbeat
/// death does, but deterministic — chaos tests use it to kill a specific
/// replica holder without racing the failure detector.
fn handle_decommission(request: &Json, shared: &Arc<CoordShared>) -> Json {
    let Some(name) = request.get("worker").and_then(Json::as_str) else {
        return error_response("decommission needs a `worker` field");
    };
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut workers = shared.workers.lock().expect("workers poisoned");
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    let Some(idx) = workers.iter().position(|w| w.alive && w.name == name) else {
        return error_response(format!("no live worker named `{name}`"));
    };
    mark_dead(
        shared,
        &mut jobs,
        &mut workers,
        &mut sessions,
        idx,
        DECOMMISSIONED,
    );
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("worker", Json::Str(name.to_string())),
    ])
}

/// Start a new measurement epoch on a warm fleet: clear the job table and
/// dedup index while keeping workers, sessions, counters, and — crucially
/// — the replica stores (`stored` keys), so the next sweep exercises the
/// replicated cache instead of the dedup index.
fn handle_reset(shared: &Arc<CoordShared>) -> Json {
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let busy = jobs
        .map
        .values()
        .any(|j| !matches!(j.state, FleetJobState::Done(_) | FleetJobState::Failed(_)));
    if busy {
        return error_response("reset requires every job to be terminal");
    }
    let cleared = jobs.map.len() as u64;
    jobs.map.clear();
    jobs.queue.clear();
    jobs.by_key.clear();
    jlog(shared, &Record::Reset);
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    for s in sessions.map.values_mut() {
        s.inflight = 0;
    }
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("cleared", Json::UInt(cleared)),
    ])
}

fn handle_submit(request: &Json, shared: &Arc<CoordShared>) -> Json {
    if shared.draining.load(Ordering::SeqCst) {
        return error_response("coordinator is draining (shutdown requested)");
    }
    let spec = match parse_submit(request) {
        Ok(spec) => spec,
        Err(e) => return error_response(e),
    };
    let key = match spec.fingerprint() {
        Ok(fp) => fp.key(),
        Err(e) => return error_response(e.to_string()),
    };
    let workload = spec.workload.clone();
    let sid = request.get("session").and_then(Json::as_str);
    let mut jobs = shared.jobs.lock().expect("jobs poisoned");
    let mut sessions = shared.sessions.lock().expect("sessions poisoned");
    if let Some(sid) = sid {
        if !sessions.map.contains_key(sid) {
            return error_response(format!("unknown session `{sid}`"));
        }
    }
    // Dedup by content-addressed key: a resubmit of the same spec joins
    // the existing job (unless that job failed — a client retrying a
    // failure deserves a fresh attempt). A joining session still gets the
    // job's lifecycle events; a job already terminal replays its outcome
    // as synthetic events so the subscriber never waits on silence.
    if let Some(&existing) = jobs.by_key.get(&key) {
        if let Some(job) = jobs.map.get_mut(&existing) {
            if !matches!(job.state, FleetJobState::Failed(_)) {
                shared
                    .counters
                    .lock()
                    .expect("counters poisoned")
                    .dedup_hits += 1;
                jlog(
                    shared,
                    &Record::Counter {
                        counter: JCounter::DedupHits,
                        delta: 1,
                    },
                );
                if let Some(sid) = sid {
                    jlog(
                        shared,
                        &Record::Subscribe {
                            id: existing,
                            session: sid.to_string(),
                        },
                    );
                    let subscriber = [sid.to_string()];
                    sessions.log_event(
                        &subscriber,
                        "queued",
                        &[
                            ("job", Json::UInt(existing)),
                            ("workload", Json::Str(workload.clone())),
                            ("deduped", Json::Bool(true)),
                        ],
                    );
                    if let FleetJobState::Done(result) = &job.state {
                        sessions.log_event(
                            &subscriber,
                            "done",
                            &[
                                ("job", Json::UInt(existing)),
                                ("workload", Json::Str(workload)),
                                ("cached", Json::Bool(true)),
                                ("wall_ms", Json::Float(result.wall_ms)),
                                ("worker_wall_ms", Json::Float(result.worker_wall_ms)),
                                ("worker", Json::Str(result.worker.clone())),
                            ],
                        );
                    } else {
                        job.sessions.push(sid.to_string());
                        if let Some(s) = sessions.map.get_mut(sid) {
                            s.inflight += 1;
                        }
                    }
                }
                return Json::obj(vec![
                    ("ok", Json::Bool(true)),
                    ("id", Json::UInt(existing)),
                    ("deduped", Json::Bool(true)),
                ]);
            }
        }
    }
    // Admission control: per-session inflight bound, then the global
    // queue bound. Both shed with a structured response so overloaded
    // clients can tell deliberate backpressure from failure.
    if let Some(sid) = sid {
        let cap = shared.opts.session_inflight_cap;
        let inflight = sessions.map.get(sid).map_or(0, |s| s.inflight);
        if cap > 0 && inflight >= cap {
            shared.counters.lock().expect("counters poisoned").sheds += 1;
            jlog(
                shared,
                &Record::Counter {
                    counter: JCounter::Sheds,
                    delta: 1,
                },
            );
            return shed_response(format!(
                "session inflight cap reached ({inflight} inflight, cap {cap})"
            ));
        }
    }
    if jobs.queue.len() >= shared.opts.queue_cap {
        shared.counters.lock().expect("counters poisoned").sheds += 1;
        jlog(
            shared,
            &Record::Counter {
                counter: JCounter::Sheds,
                delta: 1,
            },
        );
        return shed_response(format!(
            "{QUEUE_FULL} ({} pending, cap {})",
            jobs.queue.len(),
            shared.opts.queue_cap
        ));
    }
    jobs.next_id += 1;
    let id = jobs.next_id;
    let default_cycles = if spec.tiny {
        gcl_sim::GpuConfig::small().max_cycles
    } else {
        gcl_sim::GpuConfig::fermi().max_cycles
    };
    jlog(
        shared,
        &Record::Submit {
            id,
            key,
            workload: workload.clone(),
            tiny: spec.tiny,
            sanitize: spec.cfg.sanitize,
            max_cycles: (spec.cfg.max_cycles != default_cycles).then_some(spec.cfg.max_cycles),
            session: sid.map(str::to_string),
        },
    );
    jobs.map.insert(
        id,
        FleetJob {
            spec,
            key,
            state: FleetJobState::Queued,
            assigns: 0,
            last_worker: None,
            probe_rank: 0,
            probe_done: false,
            hold_until: None,
            sessions: sid.map(|s| vec![s.to_string()]).unwrap_or_default(),
        },
    );
    jobs.queue.push_back(id);
    jobs.by_key.insert(key, id);
    if let Some(sid) = sid {
        let subscriber = [sid.to_string()];
        sessions.log_event(
            &subscriber,
            "queued",
            &[
                ("job", Json::UInt(id)),
                ("workload", Json::Str(workload)),
                ("deduped", Json::Bool(false)),
            ],
        );
        if let Some(s) = sessions.map.get_mut(sid) {
            s.inflight += 1;
        }
    }
    // The ack promises durability: flush the Submit record before the
    // client can observe the job id.
    jsync(shared);
    Json::obj(vec![("ok", Json::Bool(true)), ("id", Json::UInt(id))])
}

fn count_states(jobs: &MutexGuard<'_, JobTable>) -> (u64, u64, u64, u64, u64) {
    let (mut queued, mut probing, mut running, mut done, mut failed) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for job in jobs.map.values() {
        match job.state {
            FleetJobState::Queued => queued += 1,
            FleetJobState::Probing { .. } => probing += 1,
            FleetJobState::Leased { .. } => running += 1,
            FleetJobState::Done(_) => done += 1,
            FleetJobState::Failed(_) => failed += 1,
        }
    }
    (queued, probing, running, done, failed)
}

fn handle_status(shared: &Arc<CoordShared>) -> Json {
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    let workers = shared.workers.lock().expect("workers poisoned");
    let (queued, probing, running, done, failed) = count_states(&jobs);
    // Replica convergence: a key is "full" when every member of its
    // current top-R rendezvous set holds it (per worker inventory).
    let replicas = shared.opts.replicas.max(1);
    let full_keys = jobs
        .stored
        .iter()
        .filter(|&&key| {
            let ranked = ranked_live(&workers, key);
            let targets: Vec<usize> = ranked.into_iter().take(replicas).collect();
            !targets.is_empty() && targets.iter().all(|&w| workers[w].keys.contains(&key))
        })
        .count() as u64;
    let replica_summary = Json::obj(vec![
        ("keys", Json::UInt(jobs.stored.len() as u64)),
        ("full", Json::UInt(full_keys)),
    ]);
    let worker_rows = workers
        .iter()
        .map(|w| {
            Json::obj(vec![
                ("name", Json::Str(w.name.clone())),
                ("alive", Json::Bool(w.alive)),
                ("slots", Json::UInt(w.slots as u64)),
                ("leased", Json::UInt(w.leased.len() as u64)),
                ("done", Json::UInt(w.done)),
                ("failed", Json::UInt(w.failed)),
                ("corrupt", Json::UInt(w.corrupt)),
                ("reassigned", Json::UInt(w.reassigned)),
            ])
        })
        .collect();
    let sessions = shared.sessions.lock().expect("sessions poisoned");
    let session_count = sessions.map.len() as u64;
    drop(sessions);
    let c = shared.counters.lock().expect("counters poisoned").clone();
    let hits = c.primary_hits + c.read_through;
    let hit_rate = if hits + c.sims > 0 {
        hits as f64 / (hits + c.sims) as f64
    } else {
        0.0
    };
    let depth = shared.depth.lock().expect("depth poisoned");
    Json::obj(vec![
        ("ok", Json::Bool(true)),
        ("queue_depth", Json::UInt(jobs.queue.len() as u64)),
        (
            "draining",
            Json::Bool(shared.draining.load(Ordering::SeqCst)),
        ),
        (
            "jobs",
            Json::obj(vec![
                ("queued", Json::UInt(queued)),
                ("probing", Json::UInt(probing)),
                ("running", Json::UInt(running)),
                ("done", Json::UInt(done)),
                ("failed", Json::UInt(failed)),
            ]),
        ),
        ("workers", Json::Arr(worker_rows)),
        (
            "cache",
            Json::obj(vec![
                ("sims", Json::UInt(c.sims)),
                ("stores", Json::UInt(c.stores)),
                ("primary_hits", Json::UInt(c.primary_hits)),
                ("read_through", Json::UInt(c.read_through)),
                ("repairs", Json::UInt(c.repairs)),
                ("misses", Json::UInt(c.misses)),
                ("dedup_hits", Json::UInt(c.dedup_hits)),
                ("rebalances", Json::UInt(c.rebalances)),
                ("resumed", Json::UInt(c.resumed)),
                ("hit_rate", Json::Float(hit_rate)),
            ]),
        ),
        ("replicas", replica_summary),
        ("sheds", Json::UInt(c.sheds)),
        ("sessions", Json::UInt(session_count)),
        ("queue_depth_stats", depth.to_json()),
    ])
}

fn handle_result(request: &Json, shared: &Arc<CoordShared>) -> Json {
    let Some(id) = request.get("id").and_then(Json::as_u64) else {
        return error_response("result needs a numeric `id` field");
    };
    let jobs = shared.jobs.lock().expect("jobs poisoned");
    let Some(job) = jobs.map.get(&id) else {
        return error_response(format!("no job with id {id}"));
    };
    let mut fields = vec![("ok", Json::Bool(true)), ("id", Json::UInt(id))];
    match &job.state {
        FleetJobState::Queued => fields.push(("state", Json::Str("queued".into()))),
        FleetJobState::Probing { .. } => fields.push(("state", Json::Str("probing".into()))),
        FleetJobState::Leased { .. } => fields.push(("state", Json::Str("running".into()))),
        FleetJobState::Failed(msg) => {
            fields.push(("state", Json::Str("failed".into())));
            fields.push(("error", Json::Str(msg.clone())));
        }
        FleetJobState::Done(result) => {
            let (hex, sum) = super::encode_stats_payload(&result.stats);
            fields.push(("state", Json::Str("done".into())));
            fields.push(("workload", Json::Str(job.spec.workload.clone())));
            fields.push(("cached", Json::Bool(result.cached)));
            fields.push(("cycles", Json::UInt(result.stats.cycles)));
            fields.push(("warp_insts", Json::UInt(result.stats.sm.warp_insts)));
            fields.push(("wall_ms", Json::Float(result.wall_ms)));
            fields.push(("worker_wall_ms", Json::Float(result.worker_wall_ms)));
            fields.push((
                "digest",
                match result.stats.digest {
                    Some(d) => Json::Str(format!("0x{d:016x}")),
                    None => Json::Null,
                },
            ));
            fields.push(("worker", Json::Str(result.worker.clone())));
            fields.push(("assigns", Json::UInt(job.assigns)));
            fields.push(("key", Json::Str(encode_key(job.key))));
            let workers = shared.workers.lock().expect("workers poisoned");
            let replicas = ranked_live(&workers, job.key)
                .into_iter()
                .take(shared.opts.replicas)
                .map(|i| Json::Str(workers[i].name.clone()))
                .collect();
            fields.push(("replicas", Json::Arr(replicas)));
            fields.push(("stats", Json::Str(hex)));
            fields.push(("sum", Json::Str(sum)));
        }
    }
    Json::obj(fields)
}
