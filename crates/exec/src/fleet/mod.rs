//! Fleet mode: a coordinator supervising N serve workers.
//!
//! `gcl coordinate` turns the single-node job engine into a fault-tolerant
//! fleet. Workers dial in with `gcl serve --join COORD:PORT` and hold one
//! full-duplex NDJSON connection each; clients speak the familiar
//! `submit` / `status` / `result` / `shutdown` verbs to the same port. The
//! coordinator shards queued jobs across workers by content-addressed
//! cache key, supervises them with heartbeats (ping/pong with a pong
//! deadline) and per-job leases, and reassigns work from dead, partitioned
//! or stalled workers — at-least-once execution whose results are deduped
//! by cache key, so reassignment can never change an answer (each result
//! is a pure function of its spec; the sanitizer's digest audit proves
//! it). A sweep through the fleet is digest-identical to `gcl suite -j1`.
//!
//! The failure matrix is exercised, not hoped for: [`FleetInject`] is the
//! fleet's chaos layer (mirroring simsan's `SanInject`), with one injected
//! mode per failure class — drop-heartbeat, stall-worker, kill-mid-job,
//! corrupt-result-frame, partition — and one test per mode proving both
//! detection and recovery.
//!
//! Results are durable beyond the worker that computed them: on every
//! accepted `done` the coordinator fans the checksummed payload out to an
//! R-member replica set chosen by rendezvous hashing, and resubmits of a
//! warm key probe that set (primary first, read-through from survivors,
//! write-repair back to full strength) before ever re-running a
//! simulation. Clients can open a `session` for an NDJSON event stream
//! with resumable cursors, and the coordinator sheds structured errors
//! under overload instead of stalling.
//!
//! The coordinator itself is no longer a single point of data loss:
//! `--journal PATH` appends every job-table transition to a checksummed
//! write-ahead [`journal`](Journal), `--recover` replays it after a crash
//! (tolerating a torn tail), re-joining workers reconcile held leases and
//! replica inventories over a new `inventory` frame, and a background
//! rebalancer (`--rebalance-ms`) proactively re-fans under-replicated
//! keys back to full strength on any membership change.

mod coordinator;
mod inject;
mod journal;
mod worker;

pub use coordinator::{
    Coordinator, CoordinatorOptions, DECOMMISSIONED, LEASE_EXPIRED, WORKER_DEAD,
};
pub use inject::FleetInject;
pub use journal::{
    JCounter, Journal, JournalError, Record, RecoveredState, SnapCounters, SnapJob, SnapJobState,
    SnapSession, SnapState, JOURNAL_MAGIC, JOURNAL_VERSION,
};
pub use worker::{run_worker, WorkerOptions, WorkerReport};

use crate::proto::{hex_decode, hex_encode};
use gcl_mem::{Dec, Enc};
use gcl_sim::{fnv_fold_bytes, LaunchStats, FNV_OFFSET};

/// Encode a result payload for the wire: the complete wire-format
/// [`LaunchStats`] as hex, plus an FNV checksum over the bytes. The
/// checksum is what lets the coordinator (and `suite --fleet` clients)
/// reject a corrupted frame instead of recording a wrong result.
pub fn encode_stats_payload(stats: &LaunchStats) -> (String, String) {
    let mut enc = Enc::new();
    stats.ckpt_encode(&mut enc);
    let bytes = enc.into_bytes();
    let sum = fnv_fold_bytes(FNV_OFFSET, &bytes);
    (hex_encode(&bytes), format!("0x{sum:016x}"))
}

/// Decode and checksum-verify a result payload produced by
/// [`encode_stats_payload`].
///
/// # Errors
///
/// A human-readable message on a checksum mismatch, bad hex, or an
/// undecodable stats body — all treated by callers as frame corruption.
pub fn decode_stats_payload(hex: &str, sum_text: &str) -> Result<LaunchStats, String> {
    let sum = u64::from_str_radix(sum_text.trim_start_matches("0x"), 16)
        .map_err(|e| format!("bad checksum field: {e}"))?;
    let bytes = hex_decode(hex)?;
    let actual = fnv_fold_bytes(FNV_OFFSET, &bytes);
    if actual != sum {
        return Err(format!(
            "checksum mismatch (frame says 0x{sum:016x}, payload folds to 0x{actual:016x})"
        ));
    }
    let mut dec = Dec::new(&bytes);
    let stats =
        LaunchStats::ckpt_decode(&mut dec).map_err(|e| format!("undecodable stats: {e}"))?;
    if !dec.is_done() {
        return Err("trailing bytes after stats payload".to_string());
    }
    Ok(stats)
}

#[cfg(test)]
mod payload_tests {
    use super::*;

    #[test]
    fn stats_payload_round_trips_and_detects_corruption() {
        let stats = LaunchStats::default();
        let (hex, sum) = encode_stats_payload(&stats);
        let back = decode_stats_payload(&hex, &sum).unwrap();
        assert_eq!(back, stats);
        // Flip one payload byte: the checksum must catch it.
        let mut corrupt = hex.into_bytes();
        corrupt[0] = if corrupt[0] == b'0' { b'1' } else { b'0' };
        let corrupt = String::from_utf8(corrupt).unwrap();
        let err = decode_stats_payload(&corrupt, &sum).unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(decode_stats_payload("zz", &sum).is_err());
        assert!(decode_stats_payload("", "0xnope").is_err());
    }
}
