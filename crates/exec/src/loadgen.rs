//! `gcl loadgen` — closed-loop load generation against a serve daemon or
//! fleet coordinator, with the harness itself as a measured system.
//!
//! N submitter threads each run a closed loop: think (seeded jitter from
//! [`gcl_rng`]), submit one job, record the submit round-trip latency,
//! then wait for the job to reach a terminal state before thinking again.
//! Closed-loop means offered load self-limits to what the server can
//! absorb — the interesting signal is *where* the latency and shedding go
//! as N grows, which is exactly what the periodic sampler records: p50/p99
//! submit latency (log2-bucketed [`Histogram`]), server queue depth,
//! cache-hit rate, and shed counts, as a JSON time series under
//! `results/load/`.
//!
//! Sheds are a success condition, not an error: a coordinator under
//! overload must answer `{"ok":false,"shed":true,…}` quickly instead of
//! stalling, and the generator counts those separately from transport
//! errors so the distinction is visible in the series.

use crate::job::ExecError;
use crate::proto::{write_frame, FrameError, FrameReader};
use gcl_rng::Rng;
use gcl_stats::{Histogram, Json};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Weyl-sequence increment used to derive per-submitter seeds.
const GOLDEN: u64 = 0x9e37_79b9_7f4a_7c15;

/// How a load generation run drives its target.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Server or coordinator address, `HOST:PORT`.
    pub addr: String,
    /// Concurrent closed-loop submitters.
    pub submitters: usize,
    /// How long to generate load, in milliseconds.
    pub duration_ms: u64,
    /// Mean think time between a completed job and the next submit.
    pub think_ms: u64,
    /// Seed for every jitter stream (submitter i uses `seed ^ i·GOLDEN`).
    pub seed: u64,
    /// Submit tiny-scale workloads (keep this on for smoke runs).
    pub tiny: bool,
    /// Distinct cache-key variants per workload (`max_cycles` nudges);
    /// smaller values mean hotter keys and a higher hit rate.
    pub distinct: usize,
    /// Sampling period for the time series, in milliseconds.
    pub sample_ms: u64,
    /// Workloads to cycle through.
    pub workloads: Vec<String>,
    /// Where the JSON time series lands.
    pub out: PathBuf,
}

impl Default for LoadgenOptions {
    fn default() -> LoadgenOptions {
        LoadgenOptions {
            addr: "127.0.0.1:7177".to_string(),
            submitters: 100,
            duration_ms: 5_000,
            think_ms: 10,
            seed: 0x006c_6f61_6400, // "load"
            tiny: true,
            distinct: 8,
            sample_ms: 500,
            workloads: vec![
                "bfs".to_string(),
                "spmv".to_string(),
                "2mm".to_string(),
                "dwt".to_string(),
            ],
            out: PathBuf::from("results/load/loadgen.json"),
        }
    }
}

/// Totals from one load generation run (the series itself is on disk).
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Submit round trips attempted.
    pub submits: u64,
    /// Submits the server accepted.
    pub accepted: u64,
    /// Structured shed responses (queue full / inflight cap).
    pub sheds: u64,
    /// Transport-level failures (connect, timeout, torn frame).
    pub errors: u64,
    /// Jobs observed reaching a terminal state.
    pub finished: u64,
    /// Upper-bound p50 submit latency, microseconds.
    pub p50_us: u64,
    /// Upper-bound p99 submit latency, microseconds.
    pub p99_us: u64,
    /// Rows in the emitted time series.
    pub samples: usize,
}

#[derive(Default)]
struct Agg {
    submit_us: Histogram,
    submits: u64,
    accepted: u64,
    sheds: u64,
    errors: u64,
    finished: u64,
}

struct SampleRow {
    t_ms: u64,
    submits: u64,
    accepted: u64,
    sheds: u64,
    errors: u64,
    finished: u64,
    p50_us: u64,
    p99_us: u64,
    queue_depth: u64,
    hit_rate: f64,
}

impl SampleRow {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("t_ms", Json::UInt(self.t_ms)),
            ("submits", Json::UInt(self.submits)),
            ("accepted", Json::UInt(self.accepted)),
            ("sheds", Json::UInt(self.sheds)),
            ("errors", Json::UInt(self.errors)),
            ("finished", Json::UInt(self.finished)),
            ("p50_us", Json::UInt(self.p50_us)),
            ("p99_us", Json::UInt(self.p99_us)),
            ("queue_depth", Json::UInt(self.queue_depth)),
            ("hit_rate", Json::Float(self.hit_rate)),
        ])
    }
}

/// One submitter's private connection: raw frames, no retry magic — a
/// failed round trip is counted and the connection redialed, because the
/// generator's job is to *measure* failures, not to hide them.
struct Line {
    reader: FrameReader<TcpStream>,
    writer: TcpStream,
}

fn dial(addr: &str) -> Result<Line, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .map_err(|e| format!("cannot set read deadline: {e}"))?;
    stream
        .set_write_timeout(Some(Duration::from_millis(5_000)))
        .map_err(|e| format!("cannot set write deadline: {e}"))?;
    let writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    // Result payloads carry full wire-encoded stats; give them headroom.
    Ok(Line {
        reader: FrameReader::new(stream, 4 * 1024 * 1024),
        writer,
    })
}

fn roundtrip(line: &mut Line, request: &Json, deadline_ms: u64) -> Result<Json, String> {
    write_frame(&mut line.writer, request).map_err(|e| e.to_string())?;
    let deadline = Instant::now() + Duration::from_millis(deadline_ms.max(1));
    loop {
        match line.reader.next_frame() {
            Ok(text) => return Json::parse(&text).map_err(|e| format!("bad frame: {e}")),
            Err(FrameError::Timeout) => {
                if Instant::now() >= deadline {
                    return Err("response deadline exceeded".to_string());
                }
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

fn submitter_loop(idx: usize, opts: &LoadgenOptions, agg: &Mutex<Agg>, stop: &AtomicBool) {
    let mut rng = Rng::new(opts.seed ^ (idx as u64).wrapping_mul(GOLDEN));
    let mut line: Option<Line> = None;
    let base_cycles: u64 = if opts.tiny { 20_000_000 } else { 200_000_000 };
    while !stop.load(Ordering::SeqCst) {
        // Think first so a freshly started fleet of N submitters does not
        // arrive as one synchronized thundering herd.
        let think = opts.think_ms / 2 + u64::from(rng.u32_below(opts.think_ms.max(1) as u32 + 1));
        std::thread::sleep(Duration::from_millis(think));
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if line.is_none() {
            match dial(&opts.addr) {
                Ok(l) => line = Some(l),
                Err(_) => {
                    agg.lock().expect("agg poisoned").errors += 1;
                    std::thread::sleep(Duration::from_millis(20 + u64::from(rng.u32_below(80))));
                    continue;
                }
            }
        }
        let workload = &opts.workloads[rng.u32_below(opts.workloads.len() as u32) as usize];
        let variant = u64::from(rng.u32_below(opts.distinct.max(1) as u32));
        let mut request = vec![
            ("op", Json::Str("submit".into())),
            ("workload", Json::Str(workload.clone())),
            ("tiny", Json::Bool(opts.tiny)),
            ("sanitize", Json::Bool(false)),
        ];
        if variant > 0 {
            // Nudge max_cycles to mint a distinct cache key: same
            // simulation, different fingerprint.
            request.push(("max_cycles", Json::UInt(base_cycles + variant)));
        }
        let request = Json::obj(request);
        let t0 = Instant::now();
        let response = roundtrip(line.as_mut().expect("dialed"), &request, 10_000);
        let rtt_us = t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
        let id = {
            let mut a = agg.lock().expect("agg poisoned");
            a.submits += 1;
            a.submit_us.add(rtt_us);
            match &response {
                Ok(r) if matches!(r.get("ok"), Some(Json::Bool(true))) => {
                    a.accepted += 1;
                    r.get("id").and_then(Json::as_u64)
                }
                Ok(r) if matches!(r.get("shed"), Some(Json::Bool(true))) => {
                    a.sheds += 1;
                    None
                }
                Ok(_) => {
                    a.errors += 1;
                    None
                }
                Err(_) => {
                    a.errors += 1;
                    line = None;
                    None
                }
            }
        };
        // Closed loop: wait for our accepted job to finish before the
        // next think. Terminal state is what closes the loop — a lost
        // connection mid-wait just abandons the wait (the job still runs).
        if let Some(id) = id {
            let poll = Json::obj(vec![
                ("op", Json::Str("result".into())),
                ("id", Json::UInt(id)),
            ]);
            while !stop.load(Ordering::SeqCst) {
                let Some(l) = line.as_mut() else { break };
                match roundtrip(l, &poll, 10_000) {
                    Ok(r) => match r.get("state").and_then(Json::as_str) {
                        Some("done" | "failed") => {
                            agg.lock().expect("agg poisoned").finished += 1;
                            break;
                        }
                        _ => std::thread::sleep(Duration::from_millis(
                            5 + u64::from(rng.u32_below(20)),
                        )),
                    },
                    Err(_) => {
                        agg.lock().expect("agg poisoned").errors += 1;
                        line = None;
                    }
                }
            }
        }
    }
}

/// Ask the target for queue depth and cache hit rate; zeros when the
/// status call fails (the sampler must never stall the run).
fn sample_status(addr: &str) -> (u64, f64) {
    let Ok(mut line) = dial(addr) else {
        return (0, 0.0);
    };
    let Ok(status) = roundtrip(
        &mut line,
        &Json::obj(vec![("op", Json::Str("status".into()))]),
        2_000,
    ) else {
        return (0, 0.0);
    };
    let depth = status
        .get("queue_depth")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    let hit_rate = status
        .get("cache")
        .and_then(|c| c.get("hit_rate"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    (depth, hit_rate)
}

fn write_series(
    opts: &LoadgenOptions,
    rows: &[SampleRow],
    report: &LoadgenReport,
) -> Result<(), String> {
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    let doc = Json::obj(vec![
        ("version", Json::UInt(1)),
        ("addr", Json::Str(opts.addr.clone())),
        ("submitters", Json::UInt(opts.submitters as u64)),
        ("duration_ms", Json::UInt(opts.duration_ms)),
        ("think_ms", Json::UInt(opts.think_ms)),
        ("distinct", Json::UInt(opts.distinct as u64)),
        ("seed", Json::UInt(opts.seed)),
        (
            "workloads",
            Json::Arr(
                opts.workloads
                    .iter()
                    .map(|w| Json::Str(w.clone()))
                    .collect(),
            ),
        ),
        (
            "samples",
            Json::Arr(rows.iter().map(SampleRow::to_json).collect()),
        ),
        (
            "totals",
            Json::obj(vec![
                ("submits", Json::UInt(report.submits)),
                ("accepted", Json::UInt(report.accepted)),
                ("sheds", Json::UInt(report.sheds)),
                ("errors", Json::UInt(report.errors)),
                ("finished", Json::UInt(report.finished)),
                ("p50_us", Json::UInt(report.p50_us)),
                ("p99_us", Json::UInt(report.p99_us)),
            ]),
        ),
    ]);
    let tmp = opts.out.with_extension("json.tmp");
    let mut f =
        std::fs::File::create(&tmp).map_err(|e| format!("cannot create {}: {e}", tmp.display()))?;
    writeln!(f, "{doc}").map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    f.sync_all().ok();
    drop(f);
    std::fs::rename(&tmp, &opts.out).map_err(|e| format!("cannot move series into place: {e}"))?;
    Ok(())
}

/// Read back a series document produced by a loadgen (or soak) run.
///
/// # Errors
///
/// [`ExecError::Io`] naming the file on a read or parse failure, so
/// callers report *which* artifact is missing or corrupt.
pub fn read_series(path: &std::path::Path) -> Result<Json, ExecError> {
    let text = std::fs::read_to_string(path).map_err(|e| ExecError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    Json::parse(&text).map_err(|e| ExecError::Io {
        path: path.display().to_string(),
        error: format!("bad series JSON: {e}"),
    })
}

/// Run one load generation session against `opts.addr` and write the time
/// series to `opts.out`.
///
/// # Errors
///
/// A human-readable message when the options are inconsistent or the
/// series file cannot be written. Transport failures during the run are
/// *data* (counted in the series), not errors.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    if opts.submitters == 0 {
        return Err("loadgen needs at least one submitter (--submitters 1)".to_string());
    }
    if opts.duration_ms == 0 {
        return Err("loadgen needs a positive duration (--duration-ms)".to_string());
    }
    if opts.workloads.is_empty() {
        return Err("loadgen needs at least one workload".to_string());
    }
    let agg = Mutex::new(Agg::default());
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let mut rows: Vec<SampleRow> = Vec::new();
    std::thread::scope(|scope| {
        for idx in 0..opts.submitters {
            let agg = &agg;
            let stop = &stop;
            // Submitter threads are shallow (no simulation runs locally),
            // so a small stack keeps thousands of them cheap.
            std::thread::Builder::new()
                .stack_size(256 * 1024)
                .name(format!("loadgen-{idx}"))
                .spawn_scoped(scope, move || submitter_loop(idx, opts, agg, stop))
                .expect("spawn submitter");
        }
        // The main thread is the sampler.
        let period = Duration::from_millis(opts.sample_ms.max(50));
        let deadline = started + Duration::from_millis(opts.duration_ms);
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep(period.min(deadline - now));
            let (queue_depth, hit_rate) = sample_status(&opts.addr);
            let a = agg.lock().expect("agg poisoned");
            rows.push(SampleRow {
                t_ms: started.elapsed().as_millis() as u64,
                submits: a.submits,
                accepted: a.accepted,
                sheds: a.sheds,
                errors: a.errors,
                finished: a.finished,
                p50_us: a.submit_us.percentile(0.50),
                p99_us: a.submit_us.percentile(0.99),
                queue_depth,
                hit_rate,
            });
        }
        stop.store(true, Ordering::SeqCst);
    });
    let a = agg.lock().expect("agg poisoned");
    let report = LoadgenReport {
        submits: a.submits,
        accepted: a.accepted,
        sheds: a.sheds,
        errors: a.errors,
        finished: a.finished,
        p50_us: a.submit_us.percentile(0.50),
        p99_us: a.submit_us.percentile(0.99),
        samples: rows.len(),
    };
    drop(a);
    write_series(opts, &rows, &report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_are_validated() {
        let mut opts = LoadgenOptions {
            submitters: 0,
            ..LoadgenOptions::default()
        };
        assert!(run_loadgen(&opts).unwrap_err().contains("submitter"));
        opts.submitters = 1;
        opts.duration_ms = 0;
        assert!(run_loadgen(&opts).unwrap_err().contains("duration"));
        opts.duration_ms = 100;
        opts.workloads.clear();
        assert!(run_loadgen(&opts).unwrap_err().contains("workload"));
    }

    #[test]
    fn unreachable_target_yields_errors_not_hangs() {
        let dir = std::env::temp_dir().join(format!("gcl-loadgen-test-{}", std::process::id()));
        let opts = LoadgenOptions {
            addr: "127.0.0.1:9".to_string(), // discard port: nothing listens
            submitters: 2,
            duration_ms: 300,
            think_ms: 5,
            sample_ms: 100,
            out: dir.join("series.json"),
            ..LoadgenOptions::default()
        };
        let report = run_loadgen(&opts).expect("run completes");
        assert!(report.errors > 0, "connect failures must be counted");
        assert_eq!(report.accepted, 0);
        assert!(opts.out.exists(), "series file written even on failure");
        let doc = read_series(&opts.out).expect("series reads back");
        assert!(doc.get("samples").is_some());
        assert!(doc.get("totals").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn read_series_errors_carry_the_path() {
        let dir = std::env::temp_dir().join(format!("gcl-series-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        let err = read_series(&missing).unwrap_err();
        assert!(matches!(&err, ExecError::Io { path, .. } if path.contains("nope.json")));
        assert!(err.to_string().contains("nope.json"), "{err}");

        let garbled = dir.join("garbled.json");
        std::fs::write(&garbled, "{not json").unwrap();
        let err = read_series(&garbled).unwrap_err();
        assert!(
            matches!(&err, ExecError::Io { path, error }
                if path.contains("garbled.json") && error.contains("bad series JSON")),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
