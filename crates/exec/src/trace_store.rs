//! Content-addressed trace store: captured `GCLTRACE1` containers filed
//! under the same spec key the result cache uses.
//!
//! A trace is a pure function of the [`SpecFingerprint`](crate::job::
//! SpecFingerprint) — configuration, kernels, workload parameters — exactly
//! like a cached result, so the two stores share one addressing scheme:
//! `results/traces/<key>.gcltrace` next to `results/cache/<key>.bin`. A
//! suite run under `--replay` resolves each job to its trace by fingerprint
//! and feeds the timing model from the container instead of functional
//! execution; a fleet can ship a trace directory to workers and sweep
//! configurations without ever re-executing the workloads.
//!
//! Unlike the result cache, a broken trace is **not** a silent miss: replay
//! was explicitly requested, so an unreadable or mismatched container is a
//! structured job failure ([`ExecError::TraceUnreadable`] /
//! [`ExecError::TraceMismatch`]) — never a quiet fallback to execution,
//! which would invalidate any replay-speed measurement built on top.

use crate::job::{ExecError, JobSpec};
use gcl_sim::{kernel_fingerprint, Gpu, LaunchStats};
use gcl_trace::{read_trace, TraceError, TraceSummary, TraceWriter};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Default in-memory column-buffer budget per captured launch; past this
/// the writer spills chunks to its scratch file.
pub const DEFAULT_CAPTURE_BUDGET: usize = 8 << 20;

/// A directory of content-addressed trace containers.
#[derive(Debug, Clone)]
pub struct TraceStore {
    dir: PathBuf,
}

impl TraceStore {
    /// A store rooted at `dir` (created lazily on first capture).
    pub fn new(dir: impl Into<PathBuf>) -> TraceStore {
        TraceStore { dir: dir.into() }
    }

    /// The conventional location: `results/traces` under the working
    /// directory, next to the result cache.
    pub fn default_dir() -> TraceStore {
        TraceStore::new("results/traces")
    }

    /// The directory containers live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the container for `key` (a [`SpecFingerprint::key`]).
    ///
    /// [`SpecFingerprint::key`]: crate::job::SpecFingerprint::key
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.gcltrace"))
    }

    /// Path of the container `spec` resolves to.
    ///
    /// # Errors
    ///
    /// [`ExecError::UnknownWorkload`] if the spec names no workload.
    pub fn path_for(&self, spec: &JobSpec) -> Result<PathBuf, ExecError> {
        Ok(self.entry_path(spec.fingerprint()?.key()))
    }

    /// Whether a container exists for `spec` (existence only; [`replay`]
    /// still validates it fully).
    ///
    /// [`replay`]: Self::replay
    pub fn contains(&self, spec: &JobSpec) -> Result<bool, ExecError> {
        Ok(self.path_for(spec)?.exists())
    }

    /// Execute `spec` once with a capture sink attached, filing the
    /// container under the spec's key. Returns the execution-driven
    /// statistics (the replay reference) and the capture summary.
    ///
    /// A failed simulation removes the partial container: the store only
    /// ever holds complete, checksummed captures.
    ///
    /// # Errors
    ///
    /// [`ExecError::UnknownWorkload`], [`ExecError::Sim`], or
    /// [`ExecError::Io`] when the container cannot be written.
    pub fn capture(&self, spec: &JobSpec) -> Result<(LaunchStats, TraceSummary), ExecError> {
        let fp = spec.fingerprint()?;
        let w = spec.find_workload()?;
        let path = self.entry_path(fp.key());
        std::fs::create_dir_all(&self.dir).map_err(|e| ExecError::Io {
            path: self.dir.display().to_string(),
            error: e.to_string(),
        })?;
        let io_err = |e: TraceError| ExecError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        };
        let writer =
            TraceWriter::create(&path, fp.config_fp, DEFAULT_CAPTURE_BUDGET).map_err(io_err)?;
        let sink = Arc::new(Mutex::new(writer));
        let mut gpu = Gpu::new(spec.cfg.clone())?;
        gpu.set_trace_sink(Some(Box::new(sink.clone())));
        let run = w.run(&mut gpu);
        gpu.set_trace_sink(None);
        let writer = Arc::try_unwrap(sink)
            .expect("capture sink detached")
            .into_inner()
            .expect("capture sink lock poisoned");
        match run {
            Ok(run) => {
                let summary = writer.finish().map_err(io_err)?;
                Ok((run.stats, summary))
            }
            Err(e) => {
                // Dropping the writer removes its scratch files; no partial
                // container was published (finish is what renames into
                // place).
                drop(writer);
                Err(ExecError::Sim(e))
            }
        }
    }

    /// Replay `spec` from its stored container: feed the timing model the
    /// captured instruction streams, launch by launch in capture order on
    /// one GPU (so warm-cache state carries across launches exactly as it
    /// did at capture), and return the merged statistics.
    ///
    /// # Errors
    ///
    /// * [`ExecError::TraceUnreadable`] — no container for this spec, or
    ///   the container fails structural validation.
    /// * [`ExecError::TraceMismatch`] — the container is valid but was
    ///   captured under a different format version, configuration, or
    ///   kernel set than the spec resolves to.
    /// * [`ExecError::Sim`] — the replay itself faulted.
    pub fn replay(&self, spec: &JobSpec) -> Result<LaunchStats, ExecError> {
        let fp = spec.fingerprint()?;
        let path = self.entry_path(fp.key());
        let path_str = path.display().to_string();
        let trace = read_trace(&path).map_err(|e| match e {
            // A version-skewed container is a protocol mismatch (the file
            // is fine, this build just speaks another format); everything
            // else means the container cannot be trusted at all.
            TraceError::VersionMismatch { .. } => ExecError::TraceMismatch {
                path: path_str.clone(),
                error: e.to_string(),
            },
            _ => ExecError::TraceUnreadable {
                path: path_str.clone(),
                error: e.to_string(),
            },
        })?;
        if trace.config_fp != fp.config_fp {
            return Err(ExecError::TraceMismatch {
                path: path_str,
                error: format!(
                    "captured under configuration {:016x}, spec resolves to {:016x}",
                    trace.config_fp, fp.config_fp
                ),
            });
        }
        let w = spec.find_workload()?;
        let kernels = w.kernels();
        let mut gpu = Gpu::new(spec.cfg.clone())?;
        let mut merged = LaunchStats::default();
        for launch in &trace.launches {
            let kernel = kernels
                .iter()
                .find(|k| kernel_fingerprint(k) == launch.replay.kernel_fp)
                .ok_or_else(|| ExecError::TraceMismatch {
                    path: path_str.clone(),
                    error: format!(
                        "captured kernel `{}` ({:016x}) matches no kernel of `{}`",
                        launch.kernel_name, launch.replay.kernel_fp, spec.workload
                    ),
                })?;
            let stats = gpu.launch_replay(kernel, &launch.replay)?;
            merged.merge(&stats);
        }
        // The runner names merged stats after the workload; replay output
        // must compare equal to the execution-driven result.
        merged.name = spec.workload.clone();
        Ok(merged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::GpuConfig;

    fn store() -> (TraceStore, tempdir::Guard) {
        tempdir::fresh("trace-store")
    }

    /// Minimal self-cleaning temp directory (no external crates).
    mod tempdir {
        use super::TraceStore;
        use std::path::PathBuf;

        pub struct Guard(PathBuf);
        impl Drop for Guard {
            fn drop(&mut self) {
                let _ = std::fs::remove_dir_all(&self.0);
            }
        }

        pub fn fresh(tag: &str) -> (TraceStore, Guard) {
            static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
            let mut p = std::env::temp_dir();
            p.push(format!(
                "gcl-exec-{tag}-{}-{}",
                std::process::id(),
                N.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ));
            (TraceStore::new(&p), Guard(p))
        }
    }

    fn spec(name: &str) -> JobSpec {
        let mut cfg = GpuConfig::small();
        cfg.sanitize = true;
        JobSpec::new(name, true, cfg)
    }

    #[test]
    fn capture_then_replay_reproduces_stats() {
        let (store, _guard) = store();
        let spec = spec("2mm");
        assert!(!store.contains(&spec).unwrap());
        let (exec_stats, summary) = store.capture(&spec).unwrap();
        assert!(store.contains(&spec).unwrap());
        assert_eq!(summary.launches, exec_stats.launches);
        let replayed = store.replay(&spec).unwrap();
        assert_eq!(replayed, exec_stats);
    }

    #[test]
    fn missing_trace_is_unreadable_not_a_fallback() {
        let (store, _guard) = store();
        match store.replay(&spec("2mm")) {
            Err(ExecError::TraceUnreadable { path, .. }) => {
                assert!(path.ends_with(".gcltrace"));
            }
            other => panic!("missing container gave {other:?}"),
        }
    }

    #[test]
    fn config_mismatch_is_structured() {
        let (store, _guard) = store();
        let captured = spec("2mm");
        store.capture(&captured).unwrap();
        // Same key would be a different file; force the mismatch by moving
        // the container under the other spec's key.
        let mut other = captured.clone();
        other.cfg.max_cycles += 1;
        std::fs::rename(
            store.path_for(&captured).unwrap(),
            store.path_for(&other).unwrap(),
        )
        .unwrap();
        match store.replay(&other) {
            Err(ExecError::TraceMismatch { error, .. }) => {
                assert!(error.contains("configuration"), "got: {error}");
            }
            other => panic!("config mismatch gave {other:?}"),
        }
    }

    #[test]
    fn unknown_workload_rejected_before_touching_disk() {
        let (store, _guard) = store();
        assert!(matches!(
            store.capture(&spec("nope")),
            Err(ExecError::UnknownWorkload(_))
        ));
        assert!(!store.dir().exists());
    }
}
