//! # gcl-workloads — the paper's 15 benchmarks, rebuilt from scratch
//!
//! Each application of the paper's Table I is re-implemented in the
//! [`gcl_ptx`] subset, with synthetic inputs from [`gen`] and [`graph`],
//! and driven by a host program ([`Workload::run`]) that launches kernels
//! on a [`gcl_sim::Gpu`] — including the frontier/fixpoint host loops of
//! the graph applications.
//!
//! | Category | Workloads |
//! |----------|-----------|
//! | [`linear`] | `2mm`, `gaus`, `grm`, `lu`, `spmv` |
//! | [`image`] | `htw`, `mriq`, `dwt`, `bpr`, `srad` |
//! | [`graph_apps`] | `bfs`, `sssp`, `ccl`, `mst`, `mis` |
//!
//! Every workload is verified against a host-side reference implementation
//! in its unit tests, and its kernels carry the load-class structure the
//! paper describes (e.g. `bfs`'s `edges[i]`/`visited[id]` gathers are
//! non-deterministic; `2mm` is purely deterministic).
//!
//! ```
//! use gcl_sim::{Gpu, GpuConfig};
//! use gcl_workloads::{linear::Spmv, Workload};
//!
//! let mut gpu = Gpu::new(GpuConfig::small())?;
//! let result = Spmv::tiny().run(&mut gpu)?;
//! assert!(result.stats.nondet_load_fraction() > 0.0);
//! # Ok::<(), gcl_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gen;
pub mod graph;
pub mod graph_apps;
pub mod image;
pub mod kutil;
pub mod linear;
mod workload;

pub use workload::{
    alloc_f32, alloc_u32, upload_f32, upload_u32, Category, RunResult, Runner, Workload,
};

/// Every workload at its default (benchmark) scale, in Table I order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(linear::Mm2::default()),
        Box::new(linear::Gaus::default()),
        Box::new(linear::Grm::default()),
        Box::new(linear::Lu::default()),
        Box::new(linear::Spmv::default()),
        Box::new(image::Htw::default()),
        Box::new(image::Mriq::default()),
        Box::new(image::Dwt::default()),
        Box::new(image::Bpr::default()),
        Box::new(image::Srad::default()),
        Box::new(graph_apps::Bfs::default()),
        Box::new(graph_apps::Sssp::default()),
        Box::new(graph_apps::Ccl::default()),
        Box::new(graph_apps::Mst::default()),
        Box::new(graph_apps::Mis::default()),
    ]
}

/// Every workload at test (tiny) scale, in Table I order.
pub fn tiny_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(linear::Mm2::tiny()),
        Box::new(linear::Gaus::tiny()),
        Box::new(linear::Grm::tiny()),
        Box::new(linear::Lu::tiny()),
        Box::new(linear::Spmv::tiny()),
        Box::new(image::Htw::tiny()),
        Box::new(image::Mriq::tiny()),
        Box::new(image::Dwt::tiny()),
        Box::new(image::Bpr::tiny()),
        Box::new(image::Srad::tiny()),
        Box::new(graph_apps::Bfs::tiny()),
        Box::new(graph_apps::Sssp::tiny()),
        Box::new(graph_apps::Ccl::tiny()),
        Box::new(graph_apps::Mst::tiny()),
        Box::new(graph_apps::Mis::tiny()),
    ]
}
