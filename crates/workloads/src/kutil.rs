//! Kernel-construction helpers shared by the benchmark kernels: global
//! thread ids, bounds-check exits, and counted loops.

use gcl_ptx::{CmpOp, KernelBuilder, Label, Operand, Reg, Special, Type};

/// Global x index: `ctaid.x * ntid.x + tid.x`.
pub fn gid_x(b: &mut KernelBuilder) -> Reg {
    b.thread_linear_id()
}

/// Global y index: `ctaid.y * ntid.y + tid.y`.
pub fn gid_y(b: &mut KernelBuilder) -> Reg {
    let ctaid = b.sreg(Special::CtaIdY);
    let ntid = b.sreg(Special::NTidY);
    let tid = b.sreg(Special::TidY);
    b.mad(Type::U32, ctaid, ntid, tid)
}

/// Predicated exit for lanes where `v >= bound` (the ubiquitous
/// `if (tid >= n) return;`).
pub fn exit_if_ge(b: &mut KernelBuilder, v: Reg, bound: impl Into<Operand>) {
    let p = b.setp(CmpOp::Ge, Type::U32, v, bound);
    b.guard_next(p, false);
    b.exit();
}

/// An open counted loop created by [`loop_begin`]; close it with
/// [`loop_end`].
#[derive(Debug, Clone, Copy)]
pub struct LoopCtx {
    /// The loop counter register.
    pub counter: Reg,
    head: Label,
    exit: Label,
}

/// Open a `for counter in init..bound` loop (u32 comparison). The body is
/// whatever the caller emits before the matching [`loop_end`].
pub fn loop_begin(
    b: &mut KernelBuilder,
    init: impl Into<Operand>,
    bound: impl Into<Operand>,
) -> LoopCtx {
    let counter = b.reg();
    b.push(gcl_ptx::Op::Mov {
        ty: Type::U32,
        dst: counter,
        src: init.into(),
    });
    let head = b.new_label();
    let exit = b.new_label();
    b.place(head);
    let done = b.setp(CmpOp::Ge, Type::U32, counter, bound);
    b.bra_if(done, exit);
    LoopCtx {
        counter,
        head,
        exit,
    }
}

/// Close a loop: increment the counter and branch back.
pub fn loop_end(b: &mut KernelBuilder, l: LoopCtx) {
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U32,
        dst: l.counter,
        a: l.counter.into(),
        b: 1i64.into(),
    });
    b.bra(l.head);
    b.place(l.exit);
}

/// Accumulate into an existing register: `acc = a * b + acc` (f32 FMA).
pub fn fma_acc(b: &mut KernelBuilder, acc: Reg, x: impl Into<Operand>, y: impl Into<Operand>) {
    b.push(gcl_ptx::Op::Mad {
        ty: Type::F32,
        dst: acc,
        a: x.into(),
        b: y.into(),
        c: acc.into(),
        wide: false,
    });
}

/// In-place u32 add: `dst += v`.
pub fn add_assign(b: &mut KernelBuilder, dst: Reg, v: impl Into<Operand>) {
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U32,
        dst,
        a: dst.into(),
        b: v.into(),
    });
}

/// Overwrite a register: `dst = v` (u32 move onto an existing register).
pub fn mov_into(b: &mut KernelBuilder, ty: Type, dst: Reg, v: impl Into<Operand>) {
    b.push(gcl_ptx::Op::Mov {
        ty,
        dst,
        src: v.into(),
    });
}

/// A CTA-cooperative shared-memory tree reduction (f32 sum) over
/// `n_threads` values already stored at `smem[4 * tid]`. Leaves the total in
/// `smem[0]`; all threads synchronize before and after each step.
/// `n_threads` must be a power of two.
pub fn shared_reduce_f32(b: &mut KernelBuilder, tid: Reg, n_threads: u32) {
    assert!(
        n_threads.is_power_of_two(),
        "reduction width must be a power of two"
    );
    let mut stride = n_threads / 2;
    while stride > 0 {
        b.bar();
        let p = b.setp(CmpOp::Lt, Type::U32, tid, i64::from(stride));
        let skip = b.new_label();
        b.bra_unless(p, skip);
        let my_off = b.mul(Type::U32, tid, 4i64);
        let partner = b.add(Type::U32, tid, i64::from(stride));
        let their_off = b.mul(Type::U32, partner, 4i64);
        let mine = b.ld_shared(Type::F32, my_off);
        let theirs = b.ld_shared(Type::F32, their_off);
        let sum = b.add(Type::F32, mine, theirs);
        b.st_shared(Type::F32, my_off, sum);
        b.place(skip);
        stride /= 2;
    }
    b.bar();
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_sim::{pack_params, Dim3, Gpu, GpuConfig};

    #[test]
    fn counted_loop_runs_exact_trip_count() {
        // out[tid] = sum of i for i in 2..7 = 20
        let mut b = KernelBuilder::new("k");
        let p = b.param("out", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = gid_x(&mut b);
        let acc = b.imm32(0);
        let l = loop_begin(&mut b, 2i64, 7i64);
        add_assign(&mut b, acc, l.counter);
        loop_end(&mut b, l);
        let a = b.index64(base, tid, 4);
        b.st_global(Type::U32, a, acc);
        b.exit();
        let k = b.build().unwrap();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let out = gpu.mem().alloc_array(Type::U32, 32).unwrap();
        let params = pack_params(&k, &[out]);
        gpu.launch(&k, Dim3::x(1), Dim3::x(32), &params).unwrap();
        assert!(gpu.mem().read_u32_slice(out, 32).iter().all(|&v| v == 20));
    }

    #[test]
    fn exit_if_ge_masks_tail() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("out", Type::U64);
        let n = b.param("n", Type::U32);
        let base = b.ld_param(Type::U64, p);
        let nv = b.ld_param(Type::U32, n);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, nv);
        let a = b.index64(base, tid, 4);
        b.st_global(Type::U32, a, 1i64);
        b.exit();
        let k = b.build().unwrap();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let out = gpu.mem().alloc_array(Type::U32, 32).unwrap();
        let params = pack_params(&k, &[out, 10]);
        gpu.launch(&k, Dim3::x(1), Dim3::x(32), &params).unwrap();
        let v = gpu.mem().read_u32_slice(out, 32);
        assert!(v[..10].iter().all(|&x| x == 1));
        assert!(v[10..].iter().all(|&x| x == 0));
    }

    #[test]
    fn shared_reduction_sums_block() {
        // Each thread writes tid as f32 into smem, reduce, thread 0 stores.
        let nt = 64u32;
        let mut b = KernelBuilder::new("k");
        b.shared(4 * nt);
        let p = b.param("out", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let f = b.cvt(Type::F32, Type::U32, tid);
        let off = b.mul(Type::U32, tid, 4i64);
        b.st_shared(Type::F32, off, f);
        shared_reduce_f32(&mut b, tid, nt);
        let is0 = b.setp(CmpOp::Eq, Type::U32, tid, 0i64);
        let skip = b.new_label();
        b.bra_unless(is0, skip);
        let zero = b.imm32(0);
        let total = b.ld_shared(Type::F32, zero);
        let a = b.index64(base, zero, 4);
        b.st_global(Type::F32, a, total);
        b.place(skip);
        b.exit();
        let k = b.build().unwrap();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let out = gpu.mem().alloc_array(Type::F32, 1).unwrap();
        let params = pack_params(&k, &[out]);
        gpu.launch(&k, Dim3::x(1), Dim3::x(nt), &params).unwrap();
        let want: f32 = (0..nt).map(|v| v as f32).sum();
        assert_eq!(gpu.mem().read_f32_slice(out, 1)[0], want);
    }
}
