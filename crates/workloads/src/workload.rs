//! The workload abstraction: a host program that allocates inputs, launches
//! kernels (possibly in a loop) and returns merged statistics.

use gcl_ptx::Kernel;
use gcl_sim::{pack_params, Dim3, Gpu, LaunchStats, SimError};
use std::fmt;

/// The paper's three application categories (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Linear-algebra kernels (2mm, gaus, grm, lu, spmv).
    Linear,
    /// Image-processing kernels (htw, mriq, dwt, bpr, srad).
    Image,
    /// Graph kernels (bfs, sssp, ccl, mst, mis).
    Graph,
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Category::Linear => write!(f, "Linear"),
            Category::Image => write!(f, "Image"),
            Category::Graph => write!(f, "Graph"),
        }
    }
}

/// Result of running one workload end to end.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Statistics merged over every kernel launch.
    pub stats: LaunchStats,
    /// Total CTAs launched (Table I "No. of CTAs").
    pub total_ctas: u64,
    /// Threads per CTA (Table I).
    pub threads_per_cta: u32,
    /// The distinct kernels the workload ran (for static classification).
    pub kernels: Vec<Kernel>,
    /// Launch geometries in launch order: `(kernel name, grid, block)` —
    /// the ground truth the locality cross-validation feeds to
    /// `gcl-analyze`'s [`LaunchCtx`](gcl_sim::Dim3) construction.
    pub geometries: Vec<(String, Dim3, Dim3)>,
}

/// A benchmark: owns its input sizes and drives its own host loop.
///
/// `Send + Sync` is a supertrait so `Box<dyn Workload>` can be fanned out
/// across the `gcl-exec` worker pool; every implementation is a plain value
/// type, so this costs nothing.
pub trait Workload: Send + Sync {
    /// Short benchmark name as in the paper's Table I (`"bfs"`, `"2mm"`, ...).
    fn name(&self) -> &'static str;
    /// The application category.
    fn category(&self) -> Category;
    /// The distinct kernels this workload launches, constructible without
    /// running the simulator — the subjects of `gcl-analyze`'s static
    /// pre-flight.
    fn kernels(&self) -> Vec<Kernel>;
    /// Run to completion on `gpu`.
    ///
    /// # Errors
    ///
    /// Propagates simulator errors (timeouts, CTA sizing).
    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError>;
}

/// Helper that merges stats over a workload's kernel launches.
#[derive(Debug, Default)]
pub struct Runner {
    stats: LaunchStats,
    total_ctas: u64,
    threads_per_cta: u32,
    kernels: Vec<Kernel>,
    geometries: Vec<(String, Dim3, Dim3)>,
}

impl Runner {
    /// A fresh runner.
    pub fn new() -> Runner {
        Runner::default()
    }

    /// Launch `kernel` and fold its statistics in. `params` holds one raw
    /// 64-bit value per kernel parameter.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] from the launch.
    pub fn launch(
        &mut self,
        gpu: &mut Gpu,
        kernel: &Kernel,
        grid: impl Into<Dim3>,
        block: impl Into<Dim3>,
        params: &[u64],
    ) -> Result<(), SimError> {
        let grid = grid.into();
        let block = block.into();
        let packed = pack_params(kernel, params);
        let stats = gpu.launch(kernel, grid, block, &packed)?;
        self.stats.merge(&stats);
        self.total_ctas += grid.count();
        self.threads_per_cta = block.count() as u32;
        if !self.kernels.iter().any(|k| k.name() == kernel.name()) {
            self.kernels.push(kernel.clone());
        }
        self.geometries
            .push((kernel.name().to_string(), grid, block));
        Ok(())
    }

    /// Finish, naming the merged stats after the workload.
    pub fn finish(mut self, name: &str) -> RunResult {
        self.stats.name = name.to_string();
        RunResult {
            stats: self.stats,
            total_ctas: self.total_ctas,
            threads_per_cta: self.threads_per_cta,
            kernels: self.kernels,
            geometries: self.geometries,
        }
    }
}

/// Upload a `u32` slice to device memory; returns its address.
///
/// # Errors
///
/// Fails if the device allocation is rejected ([`gcl_sim::AllocError`]).
pub fn upload_u32(gpu: &mut Gpu, data: &[u32]) -> Result<u64, SimError> {
    let addr = gpu
        .mem()
        .alloc_array(gcl_ptx::Type::U32, data.len() as u64)?;
    gpu.mem().write_u32_slice(addr, data);
    Ok(addr)
}

/// Upload an `f32` slice to device memory; returns its address.
///
/// # Errors
///
/// Fails if the device allocation is rejected ([`gcl_sim::AllocError`]).
pub fn upload_f32(gpu: &mut Gpu, data: &[f32]) -> Result<u64, SimError> {
    let addr = gpu
        .mem()
        .alloc_array(gcl_ptx::Type::F32, data.len() as u64)?;
    gpu.mem().write_f32_slice(addr, data);
    Ok(addr)
}

/// Allocate `n` zeroed `u32` words on the device.
///
/// # Errors
///
/// Fails if the device allocation is rejected ([`gcl_sim::AllocError`]).
pub fn alloc_u32(gpu: &mut Gpu, n: u64) -> Result<u64, SimError> {
    Ok(gpu.mem().alloc_array(gcl_ptx::Type::U32, n)?)
}

/// Allocate `n` zeroed `f32` words on the device.
///
/// # Errors
///
/// Fails if the device allocation is rejected ([`gcl_sim::AllocError`]).
pub fn alloc_f32(gpu: &mut Gpu, n: u64) -> Result<u64, SimError> {
    Ok(gpu.mem().alloc_array(gcl_ptx::Type::F32, n)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::{KernelBuilder, Type};
    use gcl_sim::GpuConfig;

    #[test]
    fn runner_merges_launches() {
        let mut b = KernelBuilder::new("touch");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.thread_linear_id();
        let a = b.index64(base, tid, 4);
        b.st_global(Type::U32, a, tid);
        b.exit();
        let k = b.build().unwrap();

        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let buf = alloc_u32(&mut gpu, 64).unwrap();
        let mut r = Runner::new();
        r.launch(&mut gpu, &k, 2u32, 32u32, &[buf]).unwrap();
        r.launch(&mut gpu, &k, 2u32, 32u32, &[buf]).unwrap();
        let res = r.finish("touch-twice");
        assert_eq!(res.stats.launches, 2);
        assert_eq!(res.total_ctas, 4);
        assert_eq!(res.threads_per_cta, 32);
        assert_eq!(res.kernels.len(), 1);
        assert_eq!(res.stats.name, "touch-twice");
    }

    #[test]
    fn upload_round_trips() {
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let a = upload_u32(&mut gpu, &[5, 6, 7]).unwrap();
        assert_eq!(gpu.mem().read_u32_slice(a, 3), vec![5, 6, 7]);
        let f = upload_f32(&mut gpu, &[1.5, 2.5]).unwrap();
        assert_eq!(gpu.mem().read_f32_slice(f, 2), vec![1.5, 2.5]);
    }
}
