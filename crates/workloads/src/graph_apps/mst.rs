//! `mst` — minimum spanning forest, Borůvka-style (LonestarGPU proxy):
//! each round every component finds its lightest outgoing edge
//! (non-deterministic gathers over CSR), components merge through their
//! candidates, and a pointer-jumping kernel flattens the component forest —
//! the pointer-chasing loads the paper highlights in irregular kernels.

use crate::graph::Csr;
use crate::kutil::{exit_if_ge, gid_x, loop_begin, loop_end};
use crate::workload::{upload_u32, Category, RunResult, Runner, Workload};
use gcl_ptx::{AtomOp, CmpOp, Kernel, KernelBuilder, Type};
use gcl_sim::{Gpu, SimError};

/// Sentinel for "no candidate edge".
pub const NONE: u32 = 0xFFFF_FFFF;

/// The `mst` workload.
#[derive(Debug, Clone)]
pub struct Mst {
    /// Number of vertices.
    pub n: usize,
    /// Mean degree.
    pub deg: usize,
    /// Threads per CTA (paper: 384).
    pub block: u32,
    /// Borůvka rounds (log n suffices).
    pub rounds: u32,
}

impl Default for Mst {
    fn default() -> Mst {
        Mst {
            n: 3072,
            deg: 8,
            block: 384,
            rounds: 10,
        }
    }
}

impl Mst {
    /// A tiny instance for tests.
    pub fn tiny() -> Mst {
        Mst {
            n: 48,
            deg: 4,
            block: 32,
            rounds: 6,
        }
    }

    /// Find, per vertex, the lightest edge leaving its component. Packs
    /// `(weight << 20 | dest_component)` and `atom.min`s it into the
    /// component's candidate slot.
    pub fn find_kernel() -> Kernel {
        let mut b = KernelBuilder::new("mst_find");
        let prp = b.param("row_ptr", Type::U64);
        let pci = b.param("col_idx", Type::U64);
        let pw = b.param("weight", Type::U64);
        let pcomp = b.param("comp", Type::U64);
        let pcand = b.param("cand", Type::U64);
        let pn = b.param("n", Type::U32);
        let rp = b.ld_param(Type::U64, prp);
        let ci = b.ld_param(Type::U64, pci);
        let wt = b.ld_param(Type::U64, pw);
        let comp = b.ld_param(Type::U64, pcomp);
        let cand = b.ld_param(Type::U64, pcand);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        let mca = b.index64(comp, tid, 4);
        let my_comp = b.ld_global(Type::U32, mca); // deterministic
        let rpa = b.index64(rp, tid, 4);
        let lo = b.ld_global(Type::U32, rpa);
        let tid1 = b.add(Type::U32, tid, 1i64);
        let rpa1 = b.index64(rp, tid1, 4);
        let hi = b.ld_global(Type::U32, rpa1);
        let l = loop_begin(&mut b, lo, hi);
        let ca = b.index64(ci, l.counter, 4);
        let dest = b.ld_global(Type::U32, ca); // non-deterministic
        let dca = b.index64(comp, dest, 4);
        let dest_comp = b.ld_global(Type::U32, dca); // non-deterministic
        let cross = b.setp(CmpOp::Ne, Type::U32, dest_comp, my_comp);
        let skip = b.new_label();
        b.bra_unless(cross, skip);
        let wa = b.index64(wt, l.counter, 4);
        let w = b.ld_global(Type::U32, wa); // non-deterministic
        let packed_hi = b.shl(Type::U32, w, 20i64);
        let packed = b.or(Type::U32, packed_hi, dest_comp);
        let slot = b.index64(cand, my_comp, 4);
        let _ = b.atom(AtomOp::Min, Type::U32, slot, packed); // non-det atomic
        b.place(skip);
        loop_end(&mut b, l);
        b.exit();
        b.build().expect("mst find kernel is valid")
    }

    /// Merge components through their candidate edges:
    /// `comp[c] = min(comp[c], dest_component_of(cand[c]))`.
    pub fn merge_kernel() -> Kernel {
        let mut b = KernelBuilder::new("mst_merge");
        let pcomp = b.param("comp", Type::U64);
        let pcand = b.param("cand", Type::U64);
        let pflag = b.param("flag", Type::U64);
        let pn = b.param("n", Type::U32);
        let comp = b.ld_param(Type::U64, pcomp);
        let cand = b.ld_param(Type::U64, pcand);
        let flag = b.ld_param(Type::U64, pflag);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        // Only component roots act (comp[tid] == tid).
        let mca = b.index64(comp, tid, 4);
        let my_comp = b.ld_global(Type::U32, mca); // deterministic
        let is_root = b.setp(CmpOp::Eq, Type::U32, my_comp, tid);
        let done = b.new_label();
        b.bra_unless(is_root, done);
        let ca = b.index64(cand, tid, 4);
        let packed = b.ld_global(Type::U32, ca); // deterministic
        let has = b.setp(CmpOp::Ne, Type::U32, packed, i64::from(NONE));
        b.bra_unless(has, done);
        let dest_comp = b.and(Type::U32, packed, 0xF_FFFFi64);
        // Point the larger root at the smaller to avoid cycles.
        let smaller = b.min(Type::U32, dest_comp, tid);
        let larger = b.max(Type::U32, dest_comp, tid);
        let la = b.index64(comp, larger, 4);
        b.st_global(Type::U32, la, smaller); // non-det scatter
        let zero = b.imm32(0);
        let fa = b.index64(flag, zero, 4);
        b.st_global(Type::U32, fa, 1i64);
        b.place(done);
        b.exit();
        b.build().expect("mst merge kernel is valid")
    }

    /// Pointer-jumping kernel: `comp[tid] = comp[comp[tid]]` — the classic
    /// non-deterministic pointer chase.
    pub fn jump_kernel() -> Kernel {
        let mut b = KernelBuilder::new("mst_jump");
        let pcomp = b.param("comp", Type::U64);
        let pflag = b.param("flag", Type::U64);
        let pn = b.param("n", Type::U32);
        let comp = b.ld_param(Type::U64, pcomp);
        let flag = b.ld_param(Type::U64, pflag);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        let mca = b.index64(comp, tid, 4);
        let c = b.ld_global(Type::U32, mca); // deterministic
        let pa = b.index64(comp, c, 4);
        let parent = b.ld_global(Type::U32, pa); // non-deterministic
        let changed = b.setp(CmpOp::Ne, Type::U32, parent, c);
        let done = b.new_label();
        b.bra_unless(changed, done);
        b.st_global(Type::U32, mca, parent);
        let zero = b.imm32(0);
        let fa = b.index64(flag, zero, 4);
        b.st_global(Type::U32, fa, 1i64);
        b.place(done);
        b.exit();
        b.build().expect("mst jump kernel is valid")
    }

    /// Host reference: the connected components that Borůvka merging reaches
    /// (undirected closure of candidate merges is hard to replicate exactly;
    /// instead we check the *invariant* — see the test).
    pub fn components(comp: &[u32]) -> usize {
        comp.iter()
            .enumerate()
            .filter(|(i, &c)| c as usize == *i)
            .count()
    }

    fn graph(&self) -> Csr {
        Csr::uniform(self.n, self.deg, 0x357)
    }
}

impl Workload for Mst {
    fn name(&self) -> &'static str {
        "mst"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Mst::find_kernel(), Mst::merge_kernel(), Mst::jump_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let csr = self.graph();
        let n = csr.n() as u32;
        let drp = upload_u32(gpu, &csr.row_ptr)?;
        let dci = upload_u32(gpu, &csr.col_idx)?;
        let dwt = upload_u32(gpu, &csr.weight)?;
        let comp: Vec<u32> = (0..n).collect();
        let dcomp = upload_u32(gpu, &comp)?;
        let dcand = upload_u32(gpu, &vec![NONE; csr.n()])?;
        let dflag = upload_u32(gpu, &[0u32])?;
        let find = Mst::find_kernel();
        let merge = Mst::merge_kernel();
        let jump = Mst::jump_kernel();
        let mut r = Runner::new();
        let grid = n.div_ceil(self.block);
        let nu = u64::from(n);
        for _round in 0..self.rounds {
            gpu.mem().write_u32_slice(dcand, &vec![NONE; csr.n()]);
            r.launch(
                gpu,
                &find,
                grid,
                self.block,
                &[drp, dci, dwt, dcomp, dcand, nu],
            )?;
            gpu.mem().write_u32_slice(dflag, &[0]);
            r.launch(gpu, &merge, grid, self.block, &[dcomp, dcand, dflag, nu])?;
            let merged_any = gpu.mem().read_u32_slice(dflag, 1)[0] != 0;
            // Flatten the forest.
            loop {
                gpu.mem().write_u32_slice(dflag, &[0]);
                r.launch(gpu, &jump, grid, self.block, &[dcomp, dflag, nu])?;
                if gpu.mem().read_u32_slice(dflag, 1)[0] == 0 {
                    break;
                }
            }
            if !merged_any {
                break;
            }
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn kernels_have_expected_load_mix() {
        let (d, n) = classify(&Mst::find_kernel()).global_load_counts();
        assert_eq!((d, n), (3, 4));
        let (d, n) = classify(&Mst::merge_kernel()).global_load_counts();
        assert_eq!((d, n), (2, 0));
        let (d, n) = classify(&Mst::jump_kernel()).global_load_counts();
        assert_eq!((d, n), (1, 1));
    }

    #[test]
    fn merging_reaches_a_flat_valid_forest() {
        let w = Mst::tiny();
        let csr = w.graph();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        w.run(&mut gpu).unwrap();
        let align = |v: u64| v.div_ceil(128) * 128;
        let mut addr = HEAP_BASE;
        for words in [csr.row_ptr.len(), csr.col_idx.len(), csr.weight.len()] {
            addr = align(addr) + (words * 4) as u64;
        }
        let dcomp = align(addr);
        let comp = gpu.mem_ref().read_u32_slice(dcomp, csr.n());
        // Invariants: flat forest (comp[comp[v]] == comp[v]) and every
        // cross-edge-connected pair that merged shares a root; moreover no
        // component has an outgoing candidate edge left unmerged only
        // because rounds ran out (tiny graphs converge well within bounds).
        for (v, &c) in comp.iter().enumerate() {
            assert_eq!(comp[c as usize], c, "forest not flat at {v}");
        }
        // Progress: strictly fewer components than vertices (the graph has
        // edges).
        assert!(Mst::components(&comp) < csr.n());
    }
}
