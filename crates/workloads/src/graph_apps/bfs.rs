//! `bfs` — breadth-first search (Rodinia), the paper's running example
//! (Code 1): a host loop over frontier levels with two kernels. The
//! frontier-mask and node-offset loads are deterministic; the edge and
//! visited-flag gathers are non-deterministic.

use crate::graph::Csr;
use crate::kutil::{exit_if_ge, gid_x, loop_begin, loop_end};
use crate::workload::{upload_u32, Category, RunResult, Runner, Workload};
use gcl_ptx::{CmpOp, Kernel, KernelBuilder, Type};
use gcl_sim::{Gpu, SimError};

/// The `bfs` workload.
#[derive(Debug, Clone)]
pub struct Bfs {
    /// R-MAT scale (vertices = `2^scale`).
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: usize,
    /// Threads per CTA (paper: 512).
    pub block: u32,
    /// Source vertex.
    pub source: u32,
}

impl Default for Bfs {
    fn default() -> Bfs {
        Bfs {
            scale: 12,
            edge_factor: 8,
            block: 512,
            source: 0,
        }
    }
}

impl Bfs {
    /// A tiny instance for tests.
    pub fn tiny() -> Bfs {
        Bfs {
            scale: 6,
            edge_factor: 4,
            block: 32,
            source: 0,
        }
    }

    /// Kernel 1: expand the frontier (the paper's Code 1).
    pub fn expand_kernel() -> Kernel {
        let mut b = KernelBuilder::new("bfs_expand");
        let pmask = b.param("mask", Type::U64);
        let pupd = b.param("updating", Type::U64);
        let pvis = b.param("visited", Type::U64);
        let prp = b.param("row_ptr", Type::U64);
        let pedg = b.param("edges", Type::U64);
        let pcost = b.param("cost", Type::U64);
        let pn = b.param("n", Type::U32);
        let mask = b.ld_param(Type::U64, pmask);
        let upd = b.ld_param(Type::U64, pupd);
        let vis = b.ld_param(Type::U64, pvis);
        let rp = b.ld_param(Type::U64, prp);
        let edges = b.ld_param(Type::U64, pedg);
        let cost = b.ld_param(Type::U64, pcost);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        // if (!g_graph_mask[tid]) return;            — deterministic load
        let ma = b.index64(mask, tid, 4);
        let mv = b.ld_global(Type::U32, ma);
        let active = b.setp(CmpOp::Ne, Type::U32, mv, 0i64);
        let done = b.new_label();
        b.bra_unless(active, done);
        // g_graph_mask[tid] = false;
        b.st_global(Type::U32, ma, 0i64);
        // my cost (deterministic) and edge range (deterministic loads).
        let ca = b.index64(cost, tid, 4);
        let my_cost = b.ld_global(Type::U32, ca);
        let next_cost = b.add(Type::U32, my_cost, 1i64);
        let rpa = b.index64(rp, tid, 4);
        let lo = b.ld_global(Type::U32, rpa);
        let tid1 = b.add(Type::U32, tid, 1i64);
        let rpa1 = b.index64(rp, tid1, 4);
        let hi = b.ld_global(Type::U32, rpa1);
        let l = loop_begin(&mut b, lo, hi);
        // int id = g_graph_edges[i];               — non-deterministic load
        let ea = b.index64(edges, l.counter, 4);
        let id = b.ld_global(Type::U32, ea);
        // if (!g_graph_visited[id])                — non-deterministic load
        let va = b.index64(vis, id, 4);
        let vv = b.ld_global(Type::U32, va);
        let unvisited = b.setp(CmpOp::Eq, Type::U32, vv, 0i64);
        let skip = b.new_label();
        b.bra_unless(unvisited, skip);
        // cost[id] = cost[tid] + 1; updating[id] = true;  (scattered stores)
        let cia = b.index64(cost, id, 4);
        b.st_global(Type::U32, cia, next_cost);
        let ua = b.index64(upd, id, 4);
        b.st_global(Type::U32, ua, 1i64);
        b.place(skip);
        loop_end(&mut b, l);
        b.place(done);
        b.exit();
        b.build().expect("bfs expand kernel is valid")
    }

    /// Kernel 2: commit the new frontier and raise the continue flag.
    pub fn commit_kernel() -> Kernel {
        let mut b = KernelBuilder::new("bfs_commit");
        let pmask = b.param("mask", Type::U64);
        let pupd = b.param("updating", Type::U64);
        let pvis = b.param("visited", Type::U64);
        let pflag = b.param("flag", Type::U64);
        let pn = b.param("n", Type::U32);
        let mask = b.ld_param(Type::U64, pmask);
        let upd = b.ld_param(Type::U64, pupd);
        let vis = b.ld_param(Type::U64, pvis);
        let flag = b.ld_param(Type::U64, pflag);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        let ua = b.index64(upd, tid, 4);
        let uv = b.ld_global(Type::U32, ua);
        let fresh = b.setp(CmpOp::Ne, Type::U32, uv, 0i64);
        let done = b.new_label();
        b.bra_unless(fresh, done);
        let ma = b.index64(mask, tid, 4);
        b.st_global(Type::U32, ma, 1i64);
        let va = b.index64(vis, tid, 4);
        b.st_global(Type::U32, va, 1i64);
        b.st_global(Type::U32, ua, 0i64);
        let zero = b.imm32(0);
        let fa = b.index64(flag, zero, 4);
        b.st_global(Type::U32, fa, 1i64);
        b.place(done);
        b.exit();
        b.build().expect("bfs commit kernel is valid")
    }

    /// Host reference BFS levels (u32::MAX = unreachable).
    pub fn reference(csr: &Csr, source: u32) -> Vec<u32> {
        let mut cost = vec![u32::MAX; csr.n()];
        cost[source as usize] = 0;
        let mut frontier = vec![source];
        while !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &d in csr.neighbors(v as usize) {
                    if cost[d as usize] == u32::MAX {
                        cost[d as usize] = cost[v as usize] + 1;
                        next.push(d);
                    }
                }
            }
            frontier = next;
        }
        cost
    }

    fn graph(&self) -> Csr {
        Csr::rmat(self.scale, self.edge_factor, 0xBF5)
    }
}

impl Workload for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Bfs::expand_kernel(), Bfs::commit_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let csr = self.graph();
        let n = csr.n() as u32;
        let drp = upload_u32(gpu, &csr.row_ptr)?;
        let dedge = upload_u32(gpu, &csr.col_idx)?;
        let mut mask = vec![0u32; csr.n()];
        let mut visited = vec![0u32; csr.n()];
        let mut cost = vec![0u32; csr.n()];
        mask[self.source as usize] = 1;
        visited[self.source as usize] = 1;
        // Unreached cost stays 0 in the Rodinia kernel until written; we use
        // a sentinel so the host can compare against the reference.
        for (i, c) in cost.iter_mut().enumerate() {
            *c = if i == self.source as usize {
                0
            } else {
                u32::MAX - 1
            };
        }
        let dmask = upload_u32(gpu, &mask)?;
        let dupd = upload_u32(gpu, &vec![0u32; csr.n()])?;
        let dvis = upload_u32(gpu, &visited)?;
        let dcost = upload_u32(gpu, &cost)?;
        let dflag = upload_u32(gpu, &[0u32])?;
        let expand = Bfs::expand_kernel();
        let commit = Bfs::commit_kernel();
        let mut r = Runner::new();
        let grid = n.div_ceil(self.block);
        for _level in 0..csr.n() {
            gpu.mem().write_u32_slice(dflag, &[0]);
            r.launch(
                gpu,
                &expand,
                grid,
                self.block,
                &[dmask, dupd, dvis, drp, dedge, dcost, u64::from(n)],
            )?;
            r.launch(
                gpu,
                &commit,
                grid,
                self.block,
                &[dmask, dupd, dvis, dflag, u64::from(n)],
            )?;
            if gpu.mem().read_u32_slice(dflag, 1)[0] == 0 {
                break;
            }
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::{classify, LoadClass};
    use gcl_sim::GpuConfig;

    #[test]
    fn expand_kernel_matches_paper_classification() {
        let c = classify(&Bfs::expand_kernel());
        let (d, n) = c.global_load_counts();
        // mask, cost[tid], row_ptr×2 are deterministic; edges[i] and
        // visited[id] are not — exactly the paper's Code 1 discussion.
        assert_eq!(d, 4, "{c:?}");
        assert_eq!(n, 2, "{c:?}");
    }

    #[test]
    fn commit_kernel_is_deterministic() {
        let c = classify(&Bfs::commit_kernel());
        assert_eq!(c.global_load_counts().1, 0);
    }

    #[test]
    fn bfs_levels_match_reference() {
        let w = Bfs::tiny();
        let csr = w.graph();
        let want = Bfs::reference(&csr, w.source);
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = w.run(&mut gpu).unwrap();
        // cost is the 7th allocation.
        let align = |v: u64| v.div_ceil(128) * 128;
        let mut addr = gcl_sim::HEAP_BASE;
        for words in [
            csr.row_ptr.len(),
            csr.col_idx.len(),
            csr.n(),
            csr.n(),
            csr.n(),
        ] {
            addr = align(addr) + (words * 4) as u64;
        }
        let dcost = align(addr);
        let got = gpu.mem_ref().read_u32_slice(dcost, csr.n());
        for (v, (g, w_)) in got.iter().zip(want.iter()).enumerate() {
            let expect = if *w_ == u32::MAX { u32::MAX - 1 } else { *w_ };
            assert_eq!(*g, expect, "cost[{v}]");
        }
        // The dynamic run must show substantial non-deterministic loads.
        assert!(res.stats.class(LoadClass::NonDeterministic).warp_loads > 0);
        assert!(res.stats.launches >= 4, "needs several frontier levels");
    }
}
