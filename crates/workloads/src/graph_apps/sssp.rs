//! `sssp` — single-source shortest paths (LonestarGPU-style Bellman–Ford):
//! every vertex relaxes its out-edges each round; `atom.min` scatters to
//! neighbor distances are non-deterministic.

use crate::graph::Csr;
use crate::kutil::{exit_if_ge, gid_x, loop_begin, loop_end};
use crate::workload::{upload_u32, Category, RunResult, Runner, Workload};
use gcl_ptx::{AtomOp, CmpOp, Kernel, KernelBuilder, Type};
use gcl_sim::{Gpu, SimError};

/// "Infinite" distance sentinel (small enough that `d + w` cannot wrap).
pub const INF: u32 = 0x0FFF_FFFF;

/// The `sssp` workload.
#[derive(Debug, Clone)]
pub struct Sssp {
    /// R-MAT scale.
    pub scale: u32,
    /// Edges per vertex.
    pub edge_factor: usize,
    /// Threads per CTA (paper: 512).
    pub block: u32,
    /// Source vertex.
    pub source: u32,
}

impl Default for Sssp {
    fn default() -> Sssp {
        Sssp {
            scale: 11,
            edge_factor: 8,
            block: 512,
            source: 0,
        }
    }
}

impl Sssp {
    /// A tiny instance for tests.
    pub fn tiny() -> Sssp {
        Sssp {
            scale: 6,
            edge_factor: 4,
            block: 32,
            source: 0,
        }
    }

    /// The relaxation kernel.
    pub fn relax_kernel() -> Kernel {
        let mut b = KernelBuilder::new("sssp_relax");
        let prp = b.param("row_ptr", Type::U64);
        let pci = b.param("col_idx", Type::U64);
        let pw = b.param("weight", Type::U64);
        let pd = b.param("dist", Type::U64);
        let pflag = b.param("flag", Type::U64);
        let pn = b.param("n", Type::U32);
        let rp = b.ld_param(Type::U64, prp);
        let ci = b.ld_param(Type::U64, pci);
        let wt = b.ld_param(Type::U64, pw);
        let dist = b.ld_param(Type::U64, pd);
        let flag = b.ld_param(Type::U64, pflag);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        let da = b.index64(dist, tid, 4);
        let my_d = b.ld_global(Type::U32, da); // deterministic
        let reachable = b.setp(CmpOp::Lt, Type::U32, my_d, i64::from(INF));
        let done = b.new_label();
        b.bra_unless(reachable, done);
        let rpa = b.index64(rp, tid, 4);
        let lo = b.ld_global(Type::U32, rpa); // deterministic
        let tid1 = b.add(Type::U32, tid, 1i64);
        let rpa1 = b.index64(rp, tid1, 4);
        let hi = b.ld_global(Type::U32, rpa1); // deterministic
        let l = loop_begin(&mut b, lo, hi);
        let ca = b.index64(ci, l.counter, 4);
        let dest = b.ld_global(Type::U32, ca); // non-deterministic
        let wa = b.index64(wt, l.counter, 4);
        let w = b.ld_global(Type::U32, wa); // non-deterministic
        let alt = b.add(Type::U32, my_d, w);
        let dda = b.index64(dist, dest, 4);
        // old = atom.min(dist[dest], alt)       — non-deterministic atomic
        let old = b.atom(AtomOp::Min, Type::U32, dda, alt);
        let improved = b.setp(CmpOp::Lt, Type::U32, alt, old);
        let skip = b.new_label();
        b.bra_unless(improved, skip);
        let zero = b.imm32(0);
        let fa = b.index64(flag, zero, 4);
        b.st_global(Type::U32, fa, 1i64);
        b.place(skip);
        loop_end(&mut b, l);
        b.place(done);
        b.exit();
        b.build().expect("sssp relax kernel is valid")
    }

    /// Host reference: Bellman–Ford distances.
    pub fn reference(csr: &Csr, source: u32) -> Vec<u32> {
        let mut dist = vec![INF; csr.n()];
        dist[source as usize] = 0;
        loop {
            let mut changed = false;
            for v in 0..csr.n() {
                if dist[v] >= INF {
                    continue;
                }
                for (i, &d) in csr.neighbors(v).iter().enumerate() {
                    let alt = dist[v] + csr.weights(v)[i];
                    if alt < dist[d as usize] {
                        dist[d as usize] = alt;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        dist
    }

    fn graph(&self) -> Csr {
        Csr::rmat(self.scale, self.edge_factor, 0x555A)
    }
}

impl Workload for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Sssp::relax_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let csr = self.graph();
        let n = csr.n() as u32;
        let drp = upload_u32(gpu, &csr.row_ptr)?;
        let dci = upload_u32(gpu, &csr.col_idx)?;
        let dwt = upload_u32(gpu, &csr.weight)?;
        let mut dist = vec![INF; csr.n()];
        dist[self.source as usize] = 0;
        let ddist = upload_u32(gpu, &dist)?;
        let dflag = upload_u32(gpu, &[0u32])?;
        let relax = Sssp::relax_kernel();
        let mut r = Runner::new();
        let grid = n.div_ceil(self.block);
        for _round in 0..csr.n() {
            gpu.mem().write_u32_slice(dflag, &[0]);
            r.launch(
                gpu,
                &relax,
                grid,
                self.block,
                &[drp, dci, dwt, ddist, dflag, u64::from(n)],
            )?;
            if gpu.mem().read_u32_slice(dflag, 1)[0] == 0 {
                break;
            }
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::{classify, LoadClass};
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn classification_matches_structure() {
        let c = classify(&Sssp::relax_kernel());
        let (d, n) = c.global_load_counts();
        // dist[tid], row_ptr×2 deterministic; col, weight, atom.min
        // non-deterministic.
        assert_eq!(d, 3, "{c:?}");
        assert_eq!(n, 3, "{c:?}");
    }

    #[test]
    fn distances_match_reference() {
        let w = Sssp::tiny();
        let csr = w.graph();
        let want = Sssp::reference(&csr, w.source);
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = w.run(&mut gpu).unwrap();
        let align = |v: u64| v.div_ceil(128) * 128;
        let mut addr = HEAP_BASE;
        for words in [csr.row_ptr.len(), csr.col_idx.len(), csr.weight.len()] {
            addr = align(addr) + (words * 4) as u64;
        }
        let ddist = align(addr);
        let got = gpu.mem_ref().read_u32_slice(ddist, csr.n());
        assert_eq!(got, want);
        assert!(res.stats.class(LoadClass::NonDeterministic).warp_loads > 0);
    }
}
