//! The graph workloads of Table I: `bfs`, `sssp`, `ccl`, `mst`, `mis`.

mod bfs;
mod ccl;
mod mis;
mod mst;
mod sssp;

pub use bfs::Bfs;
pub use ccl::Ccl;
pub use mis::{Mis, IN_SET, REMOVED, UNDECIDED};
pub use mst::Mst;
pub use sssp::{Sssp, INF};
