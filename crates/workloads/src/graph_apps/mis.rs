//! `mis` — maximal independent set (Luby's algorithm): vertices with a
//! locally-maximal random priority join the set; their neighbors drop out.
//! Neighbor state/priority gathers are non-deterministic.

use crate::gen;
use crate::graph::Csr;
use crate::kutil::{exit_if_ge, gid_x, loop_begin, loop_end};
use crate::workload::{upload_u32, Category, RunResult, Runner, Workload};
use gcl_ptx::{CmpOp, Kernel, KernelBuilder, Type};
use gcl_sim::{Gpu, SimError};

/// Vertex states.
pub const UNDECIDED: u32 = 0;
/// In the independent set.
pub const IN_SET: u32 = 1;
/// Removed (a neighbor is in the set).
pub const REMOVED: u32 = 2;

/// The `mis` workload.
#[derive(Debug, Clone)]
pub struct Mis {
    /// Number of vertices.
    pub n: usize,
    /// Mean degree.
    pub deg: usize,
    /// Threads per CTA (paper: 1536/CTA for mis — we keep it SM-fillable).
    pub block: u32,
}

impl Default for Mis {
    fn default() -> Mis {
        Mis {
            n: 4096,
            deg: 8,
            block: 256,
        }
    }
}

impl Mis {
    /// A tiny instance for tests.
    pub fn tiny() -> Mis {
        Mis {
            n: 64,
            deg: 3,
            block: 32,
        }
    }

    /// Select kernel: an undecided vertex with priority beating every
    /// undecided neighbor joins the set.
    pub fn select_kernel() -> Kernel {
        let mut b = KernelBuilder::new("mis_select");
        let prp = b.param("row_ptr", Type::U64);
        let pci = b.param("col_idx", Type::U64);
        let pprio = b.param("prio", Type::U64);
        let pstate = b.param("state", Type::U64);
        let pflag = b.param("flag", Type::U64);
        let pn = b.param("n", Type::U32);
        let rp = b.ld_param(Type::U64, prp);
        let ci = b.ld_param(Type::U64, pci);
        let prio = b.ld_param(Type::U64, pprio);
        let state = b.ld_param(Type::U64, pstate);
        let flag = b.ld_param(Type::U64, pflag);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        let sa = b.index64(state, tid, 4);
        let sv = b.ld_global(Type::U32, sa); // deterministic
        let undecided = b.setp(CmpOp::Eq, Type::U32, sv, i64::from(UNDECIDED));
        let done = b.new_label();
        b.bra_unless(undecided, done);
        let pa = b.index64(prio, tid, 4);
        let my_p = b.ld_global(Type::U32, pa); // deterministic
        let best = b.imm32(1);
        let rpa = b.index64(rp, tid, 4);
        let lo = b.ld_global(Type::U32, rpa);
        let tid1 = b.add(Type::U32, tid, 1i64);
        let rpa1 = b.index64(rp, tid1, 4);
        let hi = b.ld_global(Type::U32, rpa1);
        let l = loop_begin(&mut b, lo, hi);
        let ca = b.index64(ci, l.counter, 4);
        let nb = b.ld_global(Type::U32, ca); // non-deterministic
        let nsa = b.index64(state, nb, 4);
        let ns = b.ld_global(Type::U32, nsa); // non-deterministic
        let live = b.setp(CmpOp::Ne, Type::U32, ns, i64::from(REMOVED));
        let skip = b.new_label();
        b.bra_unless(live, skip);
        let npa = b.index64(prio, nb, 4);
        let np = b.ld_global(Type::U32, npa); // non-deterministic
                                              // Beaten if neighbor priority is greater, or equal with larger id.
        let gt = b.setp(CmpOp::Gt, Type::U32, np, my_p);
        let eq = b.setp(CmpOp::Eq, Type::U32, np, my_p);
        let id_gt = b.setp(CmpOp::Gt, Type::U32, nb, tid);
        // Materialize the predicates before the integer logic (predicate
        // registers cannot feed and.u32/or.u32 directly).
        let gt_i = b.selp(Type::U32, 1i64, 0i64, gt);
        let eq_i = b.selp(Type::U32, 1i64, 0i64, eq);
        let id_gt_i = b.selp(Type::U32, 1i64, 0i64, id_gt);
        let tie = b.and(Type::U32, eq_i, id_gt_i);
        let beaten = b.or(Type::U32, gt_i, tie);
        let zero_best = b.setp(CmpOp::Ne, Type::U32, beaten, 0i64);
        let keep = b.new_label();
        b.bra_unless(zero_best, keep);
        crate::kutil::mov_into(&mut b, Type::U32, best, 0i64);
        b.place(keep);
        b.place(skip);
        loop_end(&mut b, l);
        let won = b.setp(CmpOp::Ne, Type::U32, best, 0i64);
        b.bra_unless(won, done);
        b.st_global(Type::U32, sa, i64::from(IN_SET));
        let zero = b.imm32(0);
        let fa = b.index64(flag, zero, 4);
        b.st_global(Type::U32, fa, 1i64);
        b.place(done);
        b.exit();
        b.build().expect("mis select kernel is valid")
    }

    /// Removal kernel: undecided vertices adjacent to an `IN_SET` vertex
    /// drop out.
    pub fn remove_kernel() -> Kernel {
        let mut b = KernelBuilder::new("mis_remove");
        let prp = b.param("row_ptr", Type::U64);
        let pci = b.param("col_idx", Type::U64);
        let pstate = b.param("state", Type::U64);
        let pn = b.param("n", Type::U32);
        let rp = b.ld_param(Type::U64, prp);
        let ci = b.ld_param(Type::U64, pci);
        let state = b.ld_param(Type::U64, pstate);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        let sa = b.index64(state, tid, 4);
        let sv = b.ld_global(Type::U32, sa);
        let undecided = b.setp(CmpOp::Eq, Type::U32, sv, i64::from(UNDECIDED));
        let done = b.new_label();
        b.bra_unless(undecided, done);
        let rpa = b.index64(rp, tid, 4);
        let lo = b.ld_global(Type::U32, rpa);
        let tid1 = b.add(Type::U32, tid, 1i64);
        let rpa1 = b.index64(rp, tid1, 4);
        let hi = b.ld_global(Type::U32, rpa1);
        let l = loop_begin(&mut b, lo, hi);
        let ca = b.index64(ci, l.counter, 4);
        let nb = b.ld_global(Type::U32, ca); // non-deterministic
        let nsa = b.index64(state, nb, 4);
        let ns = b.ld_global(Type::U32, nsa); // non-deterministic
        let in_set = b.setp(CmpOp::Eq, Type::U32, ns, i64::from(IN_SET));
        let skip = b.new_label();
        b.bra_unless(in_set, skip);
        b.st_global(Type::U32, sa, i64::from(REMOVED));
        b.place(skip);
        loop_end(&mut b, l);
        b.place(done);
        b.exit();
        b.build().expect("mis remove kernel is valid")
    }

    /// Check MIS invariants on the *symmetrized* graph used by selection:
    /// independence and maximality over out-neighborhoods.
    pub fn is_maximal_independent(csr: &Csr, state: &[u32]) -> bool {
        // Build the undirected adjacency implied by out-edges in either
        // direction — selection compares via out-edges only, so use those.
        for v in 0..csr.n() {
            if state[v] == IN_SET {
                for &d in csr.neighbors(v) {
                    if state[d as usize] == IN_SET {
                        return false; // not independent
                    }
                }
            }
            if state[v] == UNDECIDED {
                return false; // not decided ⇒ not maximal yet
            }
        }
        true
    }

    fn graph(&self) -> Csr {
        // Symmetric graph: selection and removal must see edges both ways
        // for the invariant to hold.
        let base = Csr::uniform(self.n, self.deg, 0x315);
        let mut edges = Vec::new();
        for v in 0..base.n() {
            for &d in base.neighbors(v) {
                edges.push((v as u32, d));
                edges.push((d, v as u32));
            }
        }
        Csr::from_edges(self.n, &edges, 0x316)
    }
}

impl Workload for Mis {
    fn name(&self) -> &'static str {
        "mis"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Mis::select_kernel(), Mis::remove_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let csr = self.graph();
        let n = csr.n() as u32;
        let drp = upload_u32(gpu, &csr.row_ptr)?;
        let dci = upload_u32(gpu, &csr.col_idx)?;
        let prio = gen::random_u32(csr.n(), u32::MAX, 0x317);
        let dprio = upload_u32(gpu, &prio)?;
        let dstate = upload_u32(gpu, &vec![UNDECIDED; csr.n()])?;
        let dflag = upload_u32(gpu, &[0u32])?;
        let select = Mis::select_kernel();
        let remove = Mis::remove_kernel();
        let mut r = Runner::new();
        let grid = n.div_ceil(self.block);
        for _round in 0..csr.n() {
            gpu.mem().write_u32_slice(dflag, &[0]);
            r.launch(
                gpu,
                &select,
                grid,
                self.block,
                &[drp, dci, dprio, dstate, dflag, u64::from(n)],
            )?;
            r.launch(
                gpu,
                &remove,
                grid,
                self.block,
                &[drp, dci, dstate, u64::from(n)],
            )?;
            if gpu.mem().read_u32_slice(dflag, 1)[0] == 0 {
                break;
            }
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn classification_matches_structure() {
        let (d, n) = classify(&Mis::select_kernel()).global_load_counts();
        assert_eq!((d, n), (4, 3));
        let (d, n) = classify(&Mis::remove_kernel()).global_load_counts();
        assert_eq!((d, n), (3, 2));
    }

    #[test]
    fn produces_a_maximal_independent_set() {
        let w = Mis::tiny();
        let csr = w.graph();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        w.run(&mut gpu).unwrap();
        let align = |v: u64| v.div_ceil(128) * 128;
        let mut addr = HEAP_BASE;
        for words in [csr.row_ptr.len(), csr.col_idx.len(), csr.n()] {
            addr = align(addr) + (words * 4) as u64;
        }
        let dstate = align(addr);
        let state = gpu.mem_ref().read_u32_slice(dstate, csr.n());
        assert!(
            Mis::is_maximal_independent(&csr, &state),
            "invalid MIS: {state:?}"
        );
        assert!(state.contains(&IN_SET));
    }
}
