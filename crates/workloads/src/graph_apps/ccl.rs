//! `ccl` — connected-component labeling by iterative label propagation:
//! every vertex pulls its neighbors' labels (non-deterministic gathers) and
//! keeps the minimum, until a fixpoint.

use crate::graph::Csr;
use crate::kutil::{exit_if_ge, gid_x, loop_begin, loop_end};
use crate::workload::{upload_u32, Category, RunResult, Runner, Workload};
use gcl_ptx::{AluOp, CmpOp, Kernel, KernelBuilder, Type};
use gcl_sim::{Gpu, SimError};

/// The `ccl` workload.
#[derive(Debug, Clone)]
pub struct Ccl {
    /// Number of vertices.
    pub n: usize,
    /// Mean degree.
    pub deg: usize,
    /// Threads per CTA (paper: 256).
    pub block: u32,
}

impl Default for Ccl {
    fn default() -> Ccl {
        Ccl {
            n: 4096,
            deg: 8,
            block: 256,
        }
    }
}

impl Ccl {
    /// A tiny instance for tests.
    pub fn tiny() -> Ccl {
        Ccl {
            n: 64,
            deg: 3,
            block: 32,
        }
    }

    /// One label-propagation step.
    pub fn propagate_kernel() -> Kernel {
        let mut b = KernelBuilder::new("ccl_propagate");
        let prp = b.param("row_ptr", Type::U64);
        let pci = b.param("col_idx", Type::U64);
        let pl = b.param("label", Type::U64);
        let pflag = b.param("flag", Type::U64);
        let pn = b.param("n", Type::U32);
        let rp = b.ld_param(Type::U64, prp);
        let ci = b.ld_param(Type::U64, pci);
        let label = b.ld_param(Type::U64, pl);
        let flag = b.ld_param(Type::U64, pflag);
        let n = b.ld_param(Type::U32, pn);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        let la = b.index64(label, tid, 4);
        let mine = b.ld_global(Type::U32, la); // deterministic
        let best = b.reg();
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: best,
            src: mine.into(),
        });
        let rpa = b.index64(rp, tid, 4);
        let lo = b.ld_global(Type::U32, rpa); // deterministic
        let tid1 = b.add(Type::U32, tid, 1i64);
        let rpa1 = b.index64(rp, tid1, 4);
        let hi = b.ld_global(Type::U32, rpa1); // deterministic
        let l = loop_begin(&mut b, lo, hi);
        let ca = b.index64(ci, l.counter, 4);
        let nb = b.ld_global(Type::U32, ca); // non-deterministic
        let nla = b.index64(label, nb, 4);
        let nl = b.ld_global(Type::U32, nla); // non-deterministic
        b.push(gcl_ptx::Op::Alu {
            op: AluOp::Min,
            ty: Type::U32,
            dst: best,
            a: best.into(),
            b: nl.into(),
        });
        loop_end(&mut b, l);
        let improved = b.setp(CmpOp::Lt, Type::U32, best, mine);
        let done = b.new_label();
        b.bra_unless(improved, done);
        b.st_global(Type::U32, la, best);
        let zero = b.imm32(0);
        let fa = b.index64(flag, zero, 4);
        b.st_global(Type::U32, fa, 1i64);
        b.place(done);
        b.exit();
        b.build().expect("ccl kernel is valid")
    }

    /// Host reference: per-vertex minimum reachable label over the
    /// *undirected closure* implied by propagation on a directed graph run
    /// to fixpoint (pull-based, so only directed reachability applies).
    pub fn reference(csr: &Csr) -> Vec<u32> {
        let mut label: Vec<u32> = (0..csr.n() as u32).collect();
        loop {
            let mut changed = false;
            for v in 0..csr.n() {
                let mut best = label[v];
                for &d in csr.neighbors(v) {
                    best = best.min(label[d as usize]);
                }
                if best < label[v] {
                    label[v] = best;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        label
    }

    fn graph(&self) -> Csr {
        Csr::uniform(self.n, self.deg, 0xCC1)
    }
}

impl Workload for Ccl {
    fn name(&self) -> &'static str {
        "ccl"
    }

    fn category(&self) -> Category {
        Category::Graph
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Ccl::propagate_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let csr = self.graph();
        let n = csr.n() as u32;
        let drp = upload_u32(gpu, &csr.row_ptr)?;
        let dci = upload_u32(gpu, &csr.col_idx)?;
        let labels: Vec<u32> = (0..n).collect();
        let dl = upload_u32(gpu, &labels)?;
        let dflag = upload_u32(gpu, &[0u32])?;
        let k = Ccl::propagate_kernel();
        let mut r = Runner::new();
        let grid = n.div_ceil(self.block);
        for _round in 0..csr.n() {
            gpu.mem().write_u32_slice(dflag, &[0]);
            r.launch(
                gpu,
                &k,
                grid,
                self.block,
                &[drp, dci, dl, dflag, u64::from(n)],
            )?;
            if gpu.mem().read_u32_slice(dflag, 1)[0] == 0 {
                break;
            }
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn classification_matches_structure() {
        let c = classify(&Ccl::propagate_kernel());
        let (d, n) = c.global_load_counts();
        assert_eq!(d, 3, "{c:?}");
        assert_eq!(n, 2, "{c:?}");
    }

    #[test]
    fn labels_match_reference_fixpoint() {
        let w = Ccl::tiny();
        let csr = w.graph();
        let want = Ccl::reference(&csr);
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        w.run(&mut gpu).unwrap();
        let align = |v: u64| v.div_ceil(128) * 128;
        let mut addr = HEAP_BASE;
        for words in [csr.row_ptr.len(), csr.col_idx.len()] {
            addr = align(addr) + (words * 4) as u64;
        }
        let dl = align(addr);
        let got = gpu.mem_ref().read_u32_slice(dl, csr.n());
        assert_eq!(got, want);
    }
}
