//! `spmv` — sparse matrix × dense vector in CSR form (Parboil): the one
//! linear-algebra workload with non-deterministic loads. The row bounds come
//! from `row_ptr` (deterministic), but the loop counter they initialize is
//! load-derived, so the `val`, `col_idx` and gathered `x[col]` loads are all
//! non-deterministic — exactly the paper's account of spmv.

use crate::gen;
use crate::graph::Csr;
use crate::kutil::{exit_if_ge, fma_acc, gid_x, loop_begin, loop_end};
use crate::workload::{upload_f32, upload_u32, Category, RunResult, Runner, Workload};
use gcl_ptx::{Kernel, KernelBuilder, Type};
use gcl_sim::{Gpu, SimError};

/// The `spmv` workload.
#[derive(Debug, Clone)]
pub struct Spmv {
    /// Number of matrix rows.
    pub n: u32,
    /// Mean nonzeros per row.
    pub nnz_per_row: u32,
    /// Threads per CTA (paper: 192).
    pub block: u32,
}

impl Default for Spmv {
    fn default() -> Spmv {
        Spmv {
            n: 4096,
            nnz_per_row: 24,
            block: 192,
        }
    }
}

impl Spmv {
    /// A tiny instance for tests.
    pub fn tiny() -> Spmv {
        Spmv {
            n: 96,
            nnz_per_row: 4,
            block: 32,
        }
    }

    /// The CSR `y = A·x` kernel.
    pub fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("spmv_csr");
        let prp = b.param("row_ptr", Type::U64);
        let pci = b.param("col_idx", Type::U64);
        let pv = b.param("val", Type::U64);
        let px = b.param("x", Type::U64);
        let py = b.param("y", Type::U64);
        let pn = b.param("n", Type::U32);
        let rp = b.ld_param(Type::U64, prp);
        let ci = b.ld_param(Type::U64, pci);
        let val = b.ld_param(Type::U64, pv);
        let x = b.ld_param(Type::U64, px);
        let y = b.ld_param(Type::U64, py);
        let n = b.ld_param(Type::U32, pn);
        let row = gid_x(&mut b);
        exit_if_ge(&mut b, row, n);
        // lo = row_ptr[row], hi = row_ptr[row+1]  (deterministic loads)
        let rpa = b.index64(rp, row, 4);
        let lo = b.ld_global(Type::U32, rpa);
        let row1 = b.add(Type::U32, row, 1i64);
        let rpa1 = b.index64(rp, row1, 4);
        let hi = b.ld_global(Type::U32, rpa1);
        let acc = b.immf32(0.0);
        // j runs lo..hi — load-derived, so everything it indexes is
        // non-deterministic.
        let l = loop_begin(&mut b, lo, hi);
        let ca = b.index64(ci, l.counter, 4);
        let col = b.ld_global(Type::U32, ca);
        let va = b.index64(val, l.counter, 4);
        let v = b.ld_global(Type::F32, va);
        let xa = b.index64(x, col, 4);
        let xv = b.ld_global(Type::F32, xa);
        fma_acc(&mut b, acc, v, xv);
        loop_end(&mut b, l);
        let ya = b.index64(y, row, 4);
        b.st_global(Type::F32, ya, acc);
        b.exit();
        b.build().expect("spmv kernel is valid")
    }

    fn matrix(&self) -> Csr {
        Csr::uniform(self.n as usize, self.nnz_per_row as usize, 0x57B7)
    }

    /// Host reference.
    pub fn reference(csr: &Csr, vals: &[f32], x: &[f32]) -> Vec<f32> {
        (0..csr.n())
            .map(|r| {
                let lo = csr.row_ptr[r] as usize;
                let hi = csr.row_ptr[r + 1] as usize;
                let mut acc = 0.0f32;
                for j in lo..hi {
                    acc += vals[j] * x[csr.col_idx[j] as usize];
                }
                acc
            })
            .collect()
    }
}

impl Workload for Spmv {
    fn name(&self) -> &'static str {
        "spmv"
    }

    fn category(&self) -> Category {
        Category::Linear
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Spmv::kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let csr = self.matrix();
        let vals = gen::dense_vector(csr.m(), 0.1, 1.0, 0x57B8);
        let x = gen::dense_vector(csr.n(), 0.1, 1.0, 0x57B9);
        let drp = upload_u32(gpu, &csr.row_ptr)?;
        let dci = upload_u32(gpu, &csr.col_idx)?;
        let dval = upload_f32(gpu, &vals)?;
        let dx = upload_f32(gpu, &x)?;
        let dy = gpu.mem().alloc_array(Type::F32, csr.n() as u64)?;
        let k = Spmv::kernel();
        let mut r = Runner::new();
        r.launch(
            gpu,
            &k,
            self.n.div_ceil(self.block),
            self.block,
            &[drp, dci, dval, dx, dy, u64::from(self.n)],
        )?;
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::{classify, LoadClass};
    use gcl_sim::GpuConfig;

    #[test]
    fn classification_mixes_d_and_n() {
        let c = classify(&Spmv::kernel());
        let (d, n) = c.global_load_counts();
        // row_ptr loads are deterministic; col/val/x are not.
        assert_eq!(d, 2, "{c:?}");
        assert_eq!(n, 3, "{c:?}");
    }

    #[test]
    fn matches_host_reference() {
        let w = Spmv::tiny();
        let csr = w.matrix();
        let vals = gen::dense_vector(csr.m(), 0.1, 1.0, 0x57B8);
        let x = gen::dense_vector(csr.n(), 0.1, 1.0, 0x57B9);
        let want = Spmv::reference(&csr, &vals, &x);
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = w.run(&mut gpu).unwrap();
        // y is the last allocation; recompute its address by sizes.
        let align = |x: u64| x.div_ceil(128) * 128;
        let mut addr = gcl_sim::HEAP_BASE;
        for bytes in [
            (csr.row_ptr.len() * 4) as u64,
            (csr.col_idx.len() * 4) as u64,
            (vals.len() * 4) as u64,
            (x.len() * 4) as u64,
        ] {
            addr = align(addr) + bytes;
        }
        let dy = align(addr);
        let got = gpu.mem_ref().read_f32_slice(dy, csr.n());
        for (i, (g, w_)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w_).abs() <= w_.abs() * 1e-4 + 1e-4,
                "y[{i}] = {g}, want {w_}"
            );
        }
        // Dynamic execution saw both load classes.
        assert!(res.stats.class(LoadClass::Deterministic).warp_loads > 0);
        assert!(res.stats.class(LoadClass::NonDeterministic).warp_loads > 0);
    }

    #[test]
    fn nondet_loads_generate_more_requests_per_warp() {
        let w = Spmv::tiny();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = w.run(&mut gpu).unwrap();
        let d = res
            .stats
            .class(LoadClass::Deterministic)
            .requests_per_warp();
        let n = res
            .stats
            .class(LoadClass::NonDeterministic)
            .requests_per_warp();
        assert!(n > d, "N {n} should exceed D {d}");
    }
}
