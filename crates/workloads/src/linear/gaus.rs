//! `gaus` — Gaussian elimination (Rodinia): a host loop over pivots with
//! two kernels per step (`Fan1` computes multipliers, `Fan2` updates the
//! trailing submatrix). Many small launches with 16-thread CTAs, exactly
//! like the paper's Table I entry.

use crate::gen;
use crate::kutil::{exit_if_ge, gid_x, gid_y};
use crate::workload::{upload_f32, Category, RunResult, Runner, Workload};
use gcl_ptx::{Kernel, KernelBuilder, Type};
use gcl_sim::{Dim3, Gpu, SimError};

/// The `gaus` workload.
#[derive(Debug, Clone)]
pub struct Gaus {
    /// Matrix dimension.
    pub n: u32,
}

impl Default for Gaus {
    fn default() -> Gaus {
        Gaus { n: 48 }
    }
}

impl Gaus {
    /// A tiny instance for tests.
    pub fn tiny() -> Gaus {
        Gaus { n: 12 }
    }

    /// `Fan1`: `m[i] = a[i*n+k] / a[k*n+k]` for `i` in `k+1..n`.
    pub fn fan1() -> Kernel {
        let mut b = KernelBuilder::new("gaus_fan1");
        let pa = b.param("a", Type::U64);
        let pm = b.param("m", Type::U64);
        let pn = b.param("n", Type::U32);
        let pk = b.param("k", Type::U32);
        let a_base = b.ld_param(Type::U64, pa);
        let m_base = b.ld_param(Type::U64, pm);
        let n = b.ld_param(Type::U32, pn);
        let k = b.ld_param(Type::U32, pk);
        let g = gid_x(&mut b);
        // i = k + 1 + g
        let i0 = b.add(Type::U32, g, k);
        let i = b.add(Type::U32, i0, 1i64);
        exit_if_ge(&mut b, i, n);
        // pivot = a[k*n+k]
        let kk = b.mad(Type::U32, k, n, k);
        let pa_addr = b.index64(a_base, kk, 4);
        let pivot = b.ld_global(Type::F32, pa_addr);
        // a[i*n+k]
        let ik = b.mad(Type::U32, i, n, k);
        let ia = b.index64(a_base, ik, 4);
        let v = b.ld_global(Type::F32, ia);
        let mult = b.div(Type::F32, v, pivot);
        let ma = b.index64(m_base, i, 4);
        b.st_global(Type::F32, ma, mult);
        b.exit();
        b.build().expect("fan1 kernel is valid")
    }

    /// `Fan2`: `a[i*n+j] -= m[i] * a[k*n+j]` for `i, j > k`.
    pub fn fan2() -> Kernel {
        let mut b = KernelBuilder::new("gaus_fan2");
        let pa = b.param("a", Type::U64);
        let pm = b.param("m", Type::U64);
        let pn = b.param("n", Type::U32);
        let pk = b.param("k", Type::U32);
        let a_base = b.ld_param(Type::U64, pa);
        let m_base = b.ld_param(Type::U64, pm);
        let n = b.ld_param(Type::U32, pn);
        let k = b.ld_param(Type::U32, pk);
        let gx = gid_x(&mut b);
        let gy = gid_y(&mut b);
        // j = k + gx (columns from the pivot column), i = k + 1 + gy
        let j = b.add(Type::U32, gx, k);
        let i0 = b.add(Type::U32, gy, k);
        let i = b.add(Type::U32, i0, 1i64);
        exit_if_ge(&mut b, j, n);
        exit_if_ge(&mut b, i, n);
        let mi = b.index64(m_base, i, 4);
        let mult = b.ld_global(Type::F32, mi);
        let kj = b.mad(Type::U32, k, n, j);
        let kja = b.index64(a_base, kj, 4);
        let top = b.ld_global(Type::F32, kja);
        let ij = b.mad(Type::U32, i, n, j);
        let ija = b.index64(a_base, ij, 4);
        let cur = b.ld_global(Type::F32, ija);
        let prod = b.mul(Type::F32, mult, top);
        let next = b.sub(Type::F32, cur, prod);
        b.st_global(Type::F32, ija, next);
        b.exit();
        b.build().expect("fan2 kernel is valid")
    }

    /// Host-side reference elimination (forward only), for verification.
    pub fn reference(a: &mut [f32], n: usize) {
        for k in 0..n - 1 {
            let pivot = a[k * n + k];
            let mults: Vec<f32> = (k + 1..n).map(|i| a[i * n + k] / pivot).collect();
            for (idx, i) in (k + 1..n).enumerate() {
                for j in k..n {
                    a[i * n + j] -= mults[idx] * a[k * n + j];
                }
            }
        }
    }
}

impl Workload for Gaus {
    fn name(&self) -> &'static str {
        "gaus"
    }

    fn category(&self) -> Category {
        Category::Linear
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Gaus::fan1(), Gaus::fan2()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let n = self.n as usize;
        let a = gen::dense_matrix(n, n, 0x6A05);
        let da = upload_f32(gpu, &a)?;
        let dm = gpu.mem().alloc_array(Type::F32, n as u64)?;
        let fan1 = Gaus::fan1();
        let fan2 = Gaus::fan2();
        let mut r = Runner::new();
        let block = 16u32;
        for k in 0..self.n - 1 {
            let remaining = self.n - k - 1;
            let grid1 = remaining.div_ceil(block);
            r.launch(
                gpu,
                &fan1,
                grid1,
                block,
                &[da, dm, u64::from(self.n), u64::from(k)],
            )?;
            let cols = self.n - k;
            let grid2 = Dim3::xy(cols.div_ceil(block), remaining.div_ceil(4));
            let block2 = Dim3::xy(block, 4);
            r.launch(
                gpu,
                &fan2,
                grid2,
                block2,
                &[da, dm, u64::from(self.n), u64::from(k)],
            )?;
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn all_loads_deterministic() {
        for k in [Gaus::fan1(), Gaus::fan2()] {
            let c = classify(&k);
            assert_eq!(c.global_load_counts().1, 0, "{}", k.name());
        }
    }

    #[test]
    fn elimination_matches_reference() {
        let w = Gaus::tiny();
        let n = w.n as usize;
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        w.run(&mut gpu).unwrap();
        let mut want = gen::dense_matrix(n, n, 0x6A05);
        Gaus::reference(&mut want, n);
        let got = gpu.mem_ref().read_f32_slice(HEAP_BASE, n * n);
        for i in 0..n {
            for j in i..n {
                let (g, w_) = (got[i * n + j], want[i * n + j]);
                assert!(
                    (g - w_).abs() <= w_.abs() * 1e-3 + 1e-2,
                    "a[{i}][{j}] = {g}, want {w_}"
                );
            }
        }
    }
}
