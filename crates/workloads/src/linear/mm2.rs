//! `2mm` — two chained dense matrix multiplications (PolyBench):
//! `D = A·B`, then `E = D·C`. Fully deterministic, fully coalesced loads.

use crate::gen;
use crate::kutil::{exit_if_ge, fma_acc, gid_x, gid_y, loop_begin, loop_end};
use crate::workload::{upload_f32, Category, RunResult, Runner, Workload};
use gcl_ptx::{Kernel, KernelBuilder, Type};
use gcl_sim::{Dim3, Gpu, SimError};

/// The `2mm` workload.
#[derive(Debug, Clone)]
pub struct Mm2 {
    /// Square matrix dimension (paper: 2048; default here is simulator
    /// scale).
    pub n: u32,
    /// Tile (CTA) edge; CTAs are `tile × tile` threads.
    pub tile: u32,
}

impl Default for Mm2 {
    fn default() -> Mm2 {
        Mm2 { n: 64, tile: 16 }
    }
}

impl Mm2 {
    /// A tiny instance for tests.
    pub fn tiny() -> Mm2 {
        Mm2 { n: 16, tile: 8 }
    }

    /// The matmul kernel `c = a·b` for `n × n` matrices.
    pub fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("mm2_matmul");
        let pa = b.param("a", Type::U64);
        let pb = b.param("b", Type::U64);
        let pc = b.param("c", Type::U64);
        let pn = b.param("n", Type::U32);
        let a_base = b.ld_param(Type::U64, pa);
        let b_base = b.ld_param(Type::U64, pb);
        let c_base = b.ld_param(Type::U64, pc);
        let n = b.ld_param(Type::U32, pn);
        let col = gid_x(&mut b);
        let row = gid_y(&mut b);
        exit_if_ge(&mut b, col, n);
        exit_if_ge(&mut b, row, n);
        let acc = b.immf32(0.0);
        let row_off = b.mul(Type::U32, row, n);
        let l = loop_begin(&mut b, 0i64, n);
        // a[row*n + k]
        let ai = b.add(Type::U32, row_off, l.counter);
        let aa = b.index64(a_base, ai, 4);
        let av = b.ld_global(Type::F32, aa);
        // b[k*n + col]
        let bi = b.mad(Type::U32, l.counter, n, col);
        let ba = b.index64(b_base, bi, 4);
        let bv = b.ld_global(Type::F32, ba);
        fma_acc(&mut b, acc, av, bv);
        loop_end(&mut b, l);
        let ci = b.add(Type::U32, row_off, col);
        let ca = b.index64(c_base, ci, 4);
        b.st_global(Type::F32, ca, acc);
        b.exit();
        b.build().expect("mm2 kernel is valid")
    }

    /// Host-side reference multiply, for verification.
    pub fn reference(a: &[f32], bm: &[f32], n: usize) -> Vec<f32> {
        let mut c = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f32;
                for k in 0..n {
                    acc += a[i * n + k] * bm[k * n + j];
                }
                c[i * n + j] = acc;
            }
        }
        c
    }
}

impl Workload for Mm2 {
    fn name(&self) -> &'static str {
        "2mm"
    }

    fn category(&self) -> Category {
        Category::Linear
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Mm2::kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let n = self.n as usize;
        let a = gen::dense_matrix(n, n, 0x2001);
        let c = gen::dense_matrix(n, n, 0x2002);
        let da = upload_f32(gpu, &a)?;
        let db = upload_f32(gpu, &gen::dense_matrix(n, n, 0x2003))?;
        let dc = upload_f32(gpu, &c)?;
        let dd = gpu.mem().alloc_array(Type::F32, (n * n) as u64)?;
        let de = gpu.mem().alloc_array(Type::F32, (n * n) as u64)?;

        let kernel = Mm2::kernel();
        let gdim = self.n.div_ceil(self.tile);
        let grid = Dim3::xy(gdim, gdim);
        let block = Dim3::xy(self.tile, self.tile);
        let mut r = Runner::new();
        r.launch(gpu, &kernel, grid, block, &[da, db, dd, u64::from(self.n)])?;
        r.launch(gpu, &kernel, grid, block, &[dd, dc, de, u64::from(self.n)])?;
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::GpuConfig;

    #[test]
    fn all_loads_are_deterministic() {
        let c = classify(&Mm2::kernel());
        let (d, n) = c.global_load_counts();
        assert!(d >= 2);
        assert_eq!(n, 0);
    }

    #[test]
    fn matches_host_reference() {
        let w = Mm2::tiny();
        let n = w.n as usize;
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = w.run(&mut gpu).unwrap();
        assert_eq!(res.stats.launches, 2);
        // Reconstruct the inputs exactly as run() does and compare E.
        let a = gen::dense_matrix(n, n, 0x2001);
        let bm = gen::dense_matrix(n, n, 0x2003);
        let c = gen::dense_matrix(n, n, 0x2002);
        let d = Mm2::reference(&a, &bm, n);
        let e = Mm2::reference(&d, &c, n);
        // E lives after A, B, C, D in the bump allocator.
        let base = gcl_sim::HEAP_BASE;
        let sz = (n * n * 4) as u64;
        let align = |x: u64| x.div_ceil(128) * 128;
        let mut addr = base;
        for _ in 0..4 {
            addr = align(addr) + sz;
        }
        let de = align(addr);
        let got = gpu.mem_ref().read_f32_slice(de, n * n);
        for (i, (g, want)) in got.iter().zip(e.iter()).enumerate() {
            assert!(
                (g - want).abs() <= want.abs() * 1e-4 + 1e-3,
                "E[{i}] = {g}, want {want}"
            );
        }
    }

    #[test]
    fn loads_coalesce_well() {
        let w = Mm2::tiny();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = w.run(&mut gpu).unwrap();
        let d = res.stats.class(gcl_core::LoadClass::Deterministic);
        // Row-major b[k*n+col] is fully coalesced; a[row*n+k] broadcasts.
        // Either way ≤ 2 requests per warp on average.
        assert!(d.requests_per_warp() <= 2.0, "{}", d.requests_per_warp());
        assert_eq!(
            res.stats
                .class(gcl_core::LoadClass::NonDeterministic)
                .warp_loads,
            0
        );
    }
}
