//! The linear-algebra workloads of Table I: `2mm`, `gaus`, `grm`, `lu`,
//! `spmv`.

mod gaus;
mod grm;
mod lu;
mod mm2;
mod spmv;

pub use gaus::Gaus;
pub use grm::Grm;
pub use lu::Lu;
pub use mm2::Mm2;
pub use spmv::Spmv;
