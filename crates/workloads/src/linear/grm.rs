//! `grm` — modified Gram–Schmidt QR decomposition (PolyBench): a host loop
//! over columns with a normalization kernel (CTA-cooperative shared-memory
//! reduction) and an orthogonalization kernel (one CTA per remaining
//! column).
//!
//! The matrix is stored column-major so column vectors are contiguous and
//! loads coalesce — the behavior the paper attributes to linear algebra.

use crate::gen;
use crate::kutil::{exit_if_ge, loop_begin, loop_end, shared_reduce_f32};
use crate::workload::{upload_f32, Category, RunResult, Runner, Workload};
use gcl_ptx::{Kernel, KernelBuilder, SfuOp, Special, Type};
use gcl_sim::{Gpu, SimError};

/// Threads per CTA for both kernels (power of two for the reduction).
const BLOCK: u32 = 64;

/// The `grm` workload.
#[derive(Debug, Clone)]
pub struct Grm {
    /// Matrix dimension (`n × n`, column-major).
    pub n: u32,
}

impl Default for Grm {
    fn default() -> Grm {
        Grm { n: 40 }
    }
}

impl Grm {
    /// A tiny instance for tests.
    pub fn tiny() -> Grm {
        Grm { n: 10 }
    }

    /// Normalize column `k`: `q[:,k] = a[:,k] / ||a[:,k]||`, computed by one
    /// CTA with a strided-partials shared reduction.
    pub fn norm_kernel() -> Kernel {
        let mut b = KernelBuilder::new("grm_norm");
        b.shared(4 * BLOCK);
        let pa = b.param("a", Type::U64);
        let pq = b.param("q", Type::U64);
        let pn = b.param("n", Type::U32);
        let pk = b.param("k", Type::U32);
        let a_base = b.ld_param(Type::U64, pa);
        let q_base = b.ld_param(Type::U64, pq);
        let n = b.ld_param(Type::U32, pn);
        let k = b.ld_param(Type::U32, pk);
        let tid = b.sreg(Special::TidX);
        // Column base index = k * n.
        let col0 = b.mul(Type::U32, k, n);
        // Strided partial sum of squares.
        let acc = b.immf32(0.0);
        let l = loop_begin(&mut b, tid, n);
        let idx = b.add(Type::U32, col0, l.counter);
        let aa = b.index64(a_base, idx, 4);
        let v = b.ld_global(Type::F32, aa);
        crate::kutil::fma_acc(&mut b, acc, v, v);
        crate::kutil::add_assign(&mut b, l.counter, i64::from(BLOCK) - 1);
        loop_end(&mut b, l);
        let soff = b.mul(Type::U32, tid, 4i64);
        b.st_shared(Type::F32, soff, acc);
        shared_reduce_f32(&mut b, tid, BLOCK);
        let zero = b.imm32(0);
        let total = b.ld_shared(Type::F32, zero);
        let inv_norm = b.sfu(SfuOp::Rsqrt, Type::F32, total);
        // q[:,k] = a[:,k] * inv_norm (strided over rows).
        let l2 = loop_begin(&mut b, tid, n);
        let idx = b.add(Type::U32, col0, l2.counter);
        let aa = b.index64(a_base, idx, 4);
        let v = b.ld_global(Type::F32, aa);
        let qv = b.mul(Type::F32, v, inv_norm);
        let qa = b.index64(q_base, idx, 4);
        b.st_global(Type::F32, qa, qv);
        crate::kutil::add_assign(&mut b, l2.counter, i64::from(BLOCK) - 1);
        loop_end(&mut b, l2);
        b.exit();
        b.build().expect("grm norm kernel is valid")
    }

    /// Orthogonalize the trailing columns against `q[:,k]`: CTA `c` handles
    /// column `j = k + 1 + ctaid.x`, computing `r = q_k · a_j` by shared
    /// reduction and then `a_j -= r * q_k`.
    pub fn ortho_kernel() -> Kernel {
        let mut b = KernelBuilder::new("grm_ortho");
        b.shared(4 * BLOCK);
        let pa = b.param("a", Type::U64);
        let pq = b.param("q", Type::U64);
        let pn = b.param("n", Type::U32);
        let pk = b.param("k", Type::U32);
        let a_base = b.ld_param(Type::U64, pa);
        let q_base = b.ld_param(Type::U64, pq);
        let n = b.ld_param(Type::U32, pn);
        let k = b.ld_param(Type::U32, pk);
        let tid = b.sreg(Special::TidX);
        let cta = b.sreg(Special::CtaIdX);
        let j0 = b.add(Type::U32, cta, k);
        let j = b.add(Type::U32, j0, 1i64);
        exit_if_ge(&mut b, j, n);
        let qcol0 = b.mul(Type::U32, k, n);
        let acol0 = b.mul(Type::U32, j, n);
        // Partial dot product.
        let acc = b.immf32(0.0);
        let l = loop_begin(&mut b, tid, n);
        let qi = b.add(Type::U32, qcol0, l.counter);
        let qa = b.index64(q_base, qi, 4);
        let qv = b.ld_global(Type::F32, qa);
        let ai = b.add(Type::U32, acol0, l.counter);
        let aa = b.index64(a_base, ai, 4);
        let av = b.ld_global(Type::F32, aa);
        crate::kutil::fma_acc(&mut b, acc, qv, av);
        crate::kutil::add_assign(&mut b, l.counter, i64::from(BLOCK) - 1);
        loop_end(&mut b, l);
        let soff = b.mul(Type::U32, tid, 4i64);
        b.st_shared(Type::F32, soff, acc);
        shared_reduce_f32(&mut b, tid, BLOCK);
        let zero = b.imm32(0);
        let r = b.ld_shared(Type::F32, zero);
        // a_j -= r * q_k
        let neg_r = b.sub(Type::F32, gcl_ptx::Operand::f32(0.0), r);
        let l2 = loop_begin(&mut b, tid, n);
        let qi = b.add(Type::U32, qcol0, l2.counter);
        let qa = b.index64(q_base, qi, 4);
        let qv = b.ld_global(Type::F32, qa);
        let ai = b.add(Type::U32, acol0, l2.counter);
        let aa = b.index64(a_base, ai, 4);
        let av = b.ld_global(Type::F32, aa);
        let delta = b.mul(Type::F32, neg_r, qv);
        let next = b.add(Type::F32, av, delta);
        b.st_global(Type::F32, aa, next);
        crate::kutil::add_assign(&mut b, l2.counter, i64::from(BLOCK) - 1);
        loop_end(&mut b, l2);
        b.exit();
        b.build().expect("grm ortho kernel is valid")
    }

    /// Host-side check: columns of Q are orthonormal.
    pub fn q_is_orthonormal(q: &[f32], n: usize, tol: f32) -> bool {
        for i in 0..n {
            for j in i..n {
                let dot: f32 = (0..n).map(|r| q[i * n + r] * q[j * n + r]).sum();
                let want = if i == j { 1.0 } else { 0.0 };
                if (dot - want).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Workload for Grm {
    fn name(&self) -> &'static str {
        "grm"
    }

    fn category(&self) -> Category {
        Category::Linear
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Grm::norm_kernel(), Grm::ortho_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let n = self.n as usize;
        // Column-major matrix.
        let a = gen::dense_matrix(n, n, 0x9233);
        let da = upload_f32(gpu, &a)?;
        let dq = gpu.mem().alloc_array(Type::F32, (n * n) as u64)?;
        let norm = Grm::norm_kernel();
        let ortho = Grm::ortho_kernel();
        let mut r = Runner::new();
        for k in 0..self.n {
            r.launch(
                gpu,
                &norm,
                1u32,
                BLOCK,
                &[da, dq, u64::from(self.n), u64::from(k)],
            )?;
            if k + 1 < self.n {
                let cols = self.n - k - 1;
                r.launch(
                    gpu,
                    &ortho,
                    cols,
                    BLOCK,
                    &[da, dq, u64::from(self.n), u64::from(k)],
                )?;
            }
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn loads_are_deterministic() {
        for k in [Grm::norm_kernel(), Grm::ortho_kernel()] {
            let c = classify(&k);
            assert_eq!(c.global_load_counts().1, 0, "{}", k.name());
        }
    }

    #[test]
    fn produces_orthonormal_q() {
        let w = Grm::tiny();
        let n = w.n as usize;
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        w.run(&mut gpu).unwrap();
        // Q is the second allocation: A occupies n*n f32 rounded to 128.
        let a_bytes = ((n * n * 4) as u64).div_ceil(128) * 128;
        let dq = HEAP_BASE + a_bytes;
        let q = gpu.mem_ref().read_f32_slice(dq, n * n);
        assert!(
            Grm::q_is_orthonormal(&q, n, 2e-2),
            "Q not orthonormal: {q:?}"
        );
    }

    #[test]
    fn uses_shared_memory_heavily() {
        let w = Grm::tiny();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = w.run(&mut gpu).unwrap();
        assert!(res.stats.sm.shared_load_warps > 0);
    }
}
