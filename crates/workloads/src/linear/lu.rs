//! `lu` — in-place LU decomposition (PolyBench, Doolittle form): a host
//! loop over pivots with a column-scaling kernel and a trailing-submatrix
//! update kernel. Deterministic, coalesced loads.

use crate::gen;
use crate::kutil::{exit_if_ge, gid_x, gid_y};
use crate::workload::{upload_f32, Category, RunResult, Runner, Workload};
use gcl_ptx::{Kernel, KernelBuilder, Type};
use gcl_sim::{Dim3, Gpu, SimError};

/// The `lu` workload.
#[derive(Debug, Clone)]
pub struct Lu {
    /// Matrix dimension.
    pub n: u32,
}

impl Default for Lu {
    fn default() -> Lu {
        Lu { n: 48 }
    }
}

impl Lu {
    /// A tiny instance for tests.
    pub fn tiny() -> Lu {
        Lu { n: 12 }
    }

    /// Scale the pivot column: `a[i*n+k] /= a[k*n+k]` for `i > k`.
    pub fn scale_kernel() -> Kernel {
        let mut b = KernelBuilder::new("lu_scale");
        let pa = b.param("a", Type::U64);
        let pn = b.param("n", Type::U32);
        let pk = b.param("k", Type::U32);
        let a_base = b.ld_param(Type::U64, pa);
        let n = b.ld_param(Type::U32, pn);
        let k = b.ld_param(Type::U32, pk);
        let g = gid_x(&mut b);
        let i0 = b.add(Type::U32, g, k);
        let i = b.add(Type::U32, i0, 1i64);
        exit_if_ge(&mut b, i, n);
        let kk = b.mad(Type::U32, k, n, k);
        let kka = b.index64(a_base, kk, 4);
        let pivot = b.ld_global(Type::F32, kka);
        let ik = b.mad(Type::U32, i, n, k);
        let ika = b.index64(a_base, ik, 4);
        let v = b.ld_global(Type::F32, ika);
        let scaled = b.div(Type::F32, v, pivot);
        b.st_global(Type::F32, ika, scaled);
        b.exit();
        b.build().expect("lu scale kernel is valid")
    }

    /// Update the trailing submatrix: `a[i*n+j] -= a[i*n+k] * a[k*n+j]` for
    /// `i, j > k`.
    pub fn update_kernel() -> Kernel {
        let mut b = KernelBuilder::new("lu_update");
        let pa = b.param("a", Type::U64);
        let pn = b.param("n", Type::U32);
        let pk = b.param("k", Type::U32);
        let a_base = b.ld_param(Type::U64, pa);
        let n = b.ld_param(Type::U32, pn);
        let k = b.ld_param(Type::U32, pk);
        let gx = gid_x(&mut b);
        let gy = gid_y(&mut b);
        let j0 = b.add(Type::U32, gx, k);
        let j = b.add(Type::U32, j0, 1i64);
        let i0 = b.add(Type::U32, gy, k);
        let i = b.add(Type::U32, i0, 1i64);
        exit_if_ge(&mut b, j, n);
        exit_if_ge(&mut b, i, n);
        let ik = b.mad(Type::U32, i, n, k);
        let ika = b.index64(a_base, ik, 4);
        let lik = b.ld_global(Type::F32, ika);
        let kj = b.mad(Type::U32, k, n, j);
        let kja = b.index64(a_base, kj, 4);
        let ukj = b.ld_global(Type::F32, kja);
        let ij = b.mad(Type::U32, i, n, j);
        let ija = b.index64(a_base, ij, 4);
        let cur = b.ld_global(Type::F32, ija);
        let prod = b.mul(Type::F32, lik, ukj);
        let next = b.sub(Type::F32, cur, prod);
        b.st_global(Type::F32, ija, next);
        b.exit();
        b.build().expect("lu update kernel is valid")
    }

    /// Host-side in-place LU reference.
    pub fn reference(a: &mut [f32], n: usize) {
        for k in 0..n - 1 {
            let pivot = a[k * n + k];
            for i in k + 1..n {
                a[i * n + k] /= pivot;
            }
            for i in k + 1..n {
                let lik = a[i * n + k];
                for j in k + 1..n {
                    a[i * n + j] -= lik * a[k * n + j];
                }
            }
        }
    }
}

impl Workload for Lu {
    fn name(&self) -> &'static str {
        "lu"
    }

    fn category(&self) -> Category {
        Category::Linear
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Lu::scale_kernel(), Lu::update_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let n = self.n as usize;
        let a = gen::dense_matrix(n, n, 0x1001);
        let da = upload_f32(gpu, &a)?;
        let scale = Lu::scale_kernel();
        let update = Lu::update_kernel();
        let mut r = Runner::new();
        let block = 32u32;
        for k in 0..self.n - 1 {
            let rem = self.n - k - 1;
            r.launch(
                gpu,
                &scale,
                rem.div_ceil(block),
                block,
                &[da, u64::from(self.n), u64::from(k)],
            )?;
            let grid = Dim3::xy(rem.div_ceil(block), rem.div_ceil(8));
            let blk = Dim3::xy(block, 8);
            r.launch(
                gpu,
                &update,
                grid,
                blk,
                &[da, u64::from(self.n), u64::from(k)],
            )?;
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn loads_are_deterministic() {
        for k in [Lu::scale_kernel(), Lu::update_kernel()] {
            assert_eq!(classify(&k).global_load_counts().1, 0, "{}", k.name());
        }
    }

    #[test]
    fn decomposition_matches_reference() {
        let w = Lu::tiny();
        let n = w.n as usize;
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        w.run(&mut gpu).unwrap();
        let mut want = gen::dense_matrix(n, n, 0x1001);
        Lu::reference(&mut want, n);
        let got = gpu.mem_ref().read_f32_slice(HEAP_BASE, n * n);
        for (i, (g, w_)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w_).abs() <= w_.abs() * 1e-3 + 1e-2,
                "lu[{i}] = {g}, want {w_}"
            );
        }
    }
}
