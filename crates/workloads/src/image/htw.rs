//! `htw` — Heartwall-style template tracking (Rodinia `heartwall` proxy):
//! one CTA per tracked sample point. The CTA stages a search region and the
//! template into shared memory, then every thread computes the SSD of the
//! template at its candidate offset. Shared-memory loads dominate — the
//! signature behavior of the paper's image category (Figure 9).

use crate::gen;
use crate::kutil::{loop_begin, loop_end};
use crate::workload::{upload_f32, upload_u32, Category, RunResult, Runner, Workload};
use gcl_ptx::{CmpOp, Kernel, KernelBuilder, Special, Type};
use gcl_sim::{Dim3, Gpu, SimError};

/// Template edge (pixels).
const TMPL: u32 = 8;
/// Search-window edge (candidate offsets per axis; also the CTA edge).
const WIN: u32 = 16;
/// Staged region edge.
const REGION: u32 = WIN + TMPL;

/// The `htw` workload.
#[derive(Debug, Clone)]
pub struct Htw {
    /// Image width.
    pub w: u32,
    /// Image height.
    pub h: u32,
    /// Number of tracked points (CTAs; paper: 51).
    pub n_points: u32,
}

impl Default for Htw {
    fn default() -> Htw {
        Htw {
            w: 128,
            h: 96,
            n_points: 24,
        }
    }
}

impl Htw {
    /// A tiny instance for tests.
    pub fn tiny() -> Htw {
        Htw {
            w: 48,
            h: 40,
            n_points: 2,
        }
    }

    /// The tracking kernel: CTA `p` stages `REGION×REGION` pixels at point
    /// `p`'s corner plus the template, and writes a `WIN×WIN` SSD map.
    pub fn kernel() -> Kernel {
        let region_px = REGION * REGION;
        let tmpl_px = TMPL * TMPL;
        let mut b = KernelBuilder::new("htw_track");
        b.shared(4 * (region_px + tmpl_px));
        let pimg = b.param("img", Type::U64);
        let ptm = b.param("tmpl", Type::U64);
        let ppx = b.param("px", Type::U64);
        let ppy = b.param("py", Type::U64);
        let pout = b.param("out", Type::U64);
        let pw = b.param("w", Type::U32);
        let img = b.ld_param(Type::U64, pimg);
        let tmpl = b.ld_param(Type::U64, ptm);
        let px = b.ld_param(Type::U64, ppx);
        let py = b.ld_param(Type::U64, ppy);
        let out = b.ld_param(Type::U64, pout);
        let w = b.ld_param(Type::U32, pw);
        let cta = b.sreg(Special::CtaIdX);
        let tx = b.sreg(Special::TidX);
        let ty = b.sreg(Special::TidY);
        let lin = b.mad(Type::U32, ty, i64::from(WIN), tx);
        // Point corner (deterministic loads of the point arrays).
        let pxa = b.index64(px, cta, 4);
        let corner_x = b.ld_global(Type::U32, pxa);
        let pya = b.index64(py, cta, 4);
        let corner_y = b.ld_global(Type::U32, pya);
        // Cooperative staging of the region: threads stride over pixels.
        let l = loop_begin(&mut b, lin, i64::from(region_px));
        let ry = b.div(Type::U32, l.counter, i64::from(REGION));
        let rx = b.rem(Type::U32, l.counter, i64::from(REGION));
        // NOTE: corner_x/corner_y come from a prior load, so this image
        // gather is a *non-deterministic* load — heartwall really does index
        // frames by tracked point coordinates.
        let gy = b.add(Type::U32, corner_y, ry);
        let gx = b.add(Type::U32, corner_x, rx);
        let gi = b.mad(Type::U32, gy, w, gx);
        let ga = b.index64(img, gi, 4);
        let pixel = b.ld_global(Type::F32, ga);
        let soff = b.mul(Type::U32, l.counter, 4i64);
        b.st_shared(Type::F32, soff, pixel);
        crate::kutil::add_assign(&mut b, l.counter, i64::from(WIN * WIN) - 1);
        loop_end(&mut b, l);
        // Stage the template after the region.
        let pt = b.setp(CmpOp::Lt, Type::U32, lin, i64::from(tmpl_px));
        let skip_t = b.new_label();
        b.bra_unless(pt, skip_t);
        let ta = b.index64(tmpl, lin, 4);
        let tv = b.ld_global(Type::F32, ta);
        let toff0 = b.add(Type::U32, lin, i64::from(region_px));
        let toff = b.mul(Type::U32, toff0, 4i64);
        b.st_shared(Type::F32, toff, tv);
        b.place(skip_t);
        b.bar();
        // SSD of the template at offset (tx, ty), all from shared memory.
        let acc = b.immf32(0.0);
        let lj = loop_begin(&mut b, 0i64, i64::from(TMPL));
        let li = loop_begin(&mut b, 0i64, i64::from(TMPL));
        let ry = b.add(Type::U32, ty, lj.counter);
        let rx = b.add(Type::U32, tx, li.counter);
        let ri = b.mad(Type::U32, ry, i64::from(REGION), rx);
        let roff = b.mul(Type::U32, ri, 4i64);
        let rv = b.ld_shared(Type::F32, roff);
        let ti = b.mad(Type::U32, lj.counter, i64::from(TMPL), li.counter);
        let ti2 = b.add(Type::U32, ti, i64::from(region_px));
        let toff = b.mul(Type::U32, ti2, 4i64);
        let tv = b.ld_shared(Type::F32, toff);
        let diff = b.sub(Type::F32, rv, tv);
        crate::kutil::fma_acc(&mut b, acc, diff, diff);
        loop_end(&mut b, li);
        loop_end(&mut b, lj);
        // out[cta * WIN*WIN + lin] = acc
        let oi = b.mad(Type::U32, cta, i64::from(WIN * WIN), lin);
        let oa = b.index64(out, oi, 4);
        b.st_global(Type::F32, oa, acc);
        b.exit();
        b.build().expect("htw kernel is valid")
    }

    /// Host reference SSD map for one point.
    pub fn reference_point(img: &[f32], w: usize, tmpl: &[f32], cx: usize, cy: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; (WIN * WIN) as usize];
        for oy in 0..WIN as usize {
            for ox in 0..WIN as usize {
                let mut acc = 0.0f32;
                for j in 0..TMPL as usize {
                    for i in 0..TMPL as usize {
                        let r = img[(cy + oy + j) * w + cx + ox + i];
                        let t = tmpl[j * TMPL as usize + i];
                        let d = r - t;
                        acc += d * d;
                    }
                }
                out[oy * WIN as usize + ox] = acc;
            }
        }
        out
    }

    fn points(&self) -> (Vec<u32>, Vec<u32>) {
        let max_x = self.w - REGION;
        let max_y = self.h - REGION;
        let xs = gen::random_u32(self.n_points as usize, max_x.max(1), 0x4711);
        let ys = gen::random_u32(self.n_points as usize, max_y.max(1), 0x4712);
        (xs, ys)
    }
}

impl Workload for Htw {
    fn name(&self) -> &'static str {
        "htw"
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Htw::kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let (w, h) = (self.w as usize, self.h as usize);
        let img = gen::image(w, h, 0x4713);
        let tmpl = gen::image(TMPL as usize, TMPL as usize, 0x4714);
        let (xs, ys) = self.points();
        let dimg = upload_f32(gpu, &img)?;
        let dtm = upload_f32(gpu, &tmpl)?;
        let dx = upload_u32(gpu, &xs)?;
        let dy = upload_u32(gpu, &ys)?;
        let dout = gpu
            .mem()
            .alloc_array(Type::F32, u64::from(self.n_points) * u64::from(WIN * WIN))?;
        let k = Htw::kernel();
        let mut r = Runner::new();
        r.launch(
            gpu,
            &k,
            self.n_points,
            Dim3::xy(WIN, WIN),
            &[dimg, dtm, dx, dy, dout, u64::from(self.w)],
        )?;
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::{classify, LoadClass};
    use gcl_sim::GpuConfig;

    #[test]
    fn image_gather_is_non_deterministic() {
        let c = classify(&Htw::kernel());
        let (d, n) = c.global_load_counts();
        // px/py/template are deterministic; the point-indexed image gather
        // is not.
        assert!(d >= 3, "{c:?}");
        assert_eq!(n, 1, "{c:?}");
    }

    #[test]
    fn ssd_matches_reference_and_is_shared_heavy() {
        let wl = Htw::tiny();
        let (w, h) = (wl.w as usize, wl.h as usize);
        let img = gen::image(w, h, 0x4713);
        let tmpl = gen::image(TMPL as usize, TMPL as usize, 0x4714);
        let (xs, ys) = wl.points();
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = wl.run(&mut gpu).unwrap();
        // out is the 5th allocation.
        let align = |v: u64| v.div_ceil(128) * 128;
        let mut addr = gcl_sim::HEAP_BASE;
        for bytes in [
            w * h * 4,
            (TMPL * TMPL) as usize * 4,
            xs.len() * 4,
            ys.len() * 4,
        ] {
            addr = align(addr) + bytes as u64;
        }
        let dout = align(addr);
        for p in 0..wl.n_points as usize {
            let want = Htw::reference_point(&img, w, &tmpl, xs[p] as usize, ys[p] as usize);
            let got = gpu
                .mem_ref()
                .read_f32_slice(dout + (p as u64) * u64::from(WIN * WIN) * 4, want.len());
            for (i, (g, w_)) in got.iter().zip(want.iter()).enumerate() {
                assert!(
                    (g - w_).abs() <= w_.abs() * 1e-4 + 1e-2,
                    "point {p} ssd[{i}] = {g}, want {w_}"
                );
            }
        }
        // Image category: shared loads outnumber global loads (Figure 9).
        let gld = res.stats.profiler().gld_request;
        assert!(
            res.stats.sm.shared_load_warps > 2 * gld,
            "shared {} vs global {gld}",
            res.stats.sm.shared_load_warps
        );
        let _ = LoadClass::Deterministic;
    }
}
