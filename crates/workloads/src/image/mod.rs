//! The image-processing workloads of Table I: `htw`, `mriq`, `dwt`, `bpr`,
//! `srad`.

mod bpr;
mod dwt;
mod htw;
mod mriq;
mod srad;

pub use bpr::Bpr;
pub use dwt::Dwt;
pub use htw::Htw;
pub use mriq::Mriq;
pub use srad::Srad;
