//! `mriq` — MRI reconstruction Q-matrix computation (Parboil): the
//! compute-bound, SFU-heavy workload. Each thread sweeps the k-space
//! samples, paying a `sin`+`cos` per iteration; global loads are a tiny
//! fraction of the instruction mix (0.03% in the paper's Table I).

use crate::gen;
use crate::kutil::{exit_if_ge, fma_acc, gid_x, loop_begin, loop_end};
use crate::workload::{upload_f32, Category, RunResult, Runner, Workload};
use gcl_ptx::{Kernel, KernelBuilder, SfuOp, Type};
use gcl_sim::{Gpu, SimError};

/// The `mriq` workload.
#[derive(Debug, Clone)]
pub struct Mriq {
    /// Number of voxels (threads).
    pub n_voxels: u32,
    /// Number of k-space samples (inner-loop trip count).
    pub n_samples: u32,
    /// Threads per CTA (paper: 256).
    pub block: u32,
}

impl Default for Mriq {
    fn default() -> Mriq {
        Mriq {
            n_voxels: 2048,
            n_samples: 96,
            block: 256,
        }
    }
}

impl Mriq {
    /// A tiny instance for tests.
    pub fn tiny() -> Mriq {
        Mriq {
            n_voxels: 64,
            n_samples: 8,
            block: 32,
        }
    }

    /// The Q-computation kernel.
    pub fn kernel() -> Kernel {
        let mut b = KernelBuilder::new("mriq_computeq");
        let pkx = b.param("kx", Type::U64);
        let pky = b.param("ky", Type::U64);
        let pkz = b.param("kz", Type::U64);
        let px = b.param("x", Type::U64);
        let pqr = b.param("qr", Type::U64);
        let pqi = b.param("qi", Type::U64);
        let pn = b.param("n", Type::U32);
        let pm = b.param("m", Type::U32);
        let kx = b.ld_param(Type::U64, pkx);
        let ky = b.ld_param(Type::U64, pky);
        let kz = b.ld_param(Type::U64, pkz);
        let x = b.ld_param(Type::U64, px);
        let qr = b.ld_param(Type::U64, pqr);
        let qi = b.ld_param(Type::U64, pqi);
        let n = b.ld_param(Type::U32, pn);
        let m = b.ld_param(Type::U32, pm);
        let tid = gid_x(&mut b);
        exit_if_ge(&mut b, tid, n);
        let xa = b.index64(x, tid, 4);
        let xv = b.ld_global(Type::F32, xa);
        let accr = b.immf32(0.0);
        let acci = b.immf32(0.0);
        let l = loop_begin(&mut b, 0i64, m);
        // The k-space trajectory lives in constant memory (as Parboil's
        // mri-q stages it), so these are not global loads — which is why
        // the paper's Table I reports a 0.03% global-load fraction.
        let kxa = b.index64(kx, l.counter, 4);
        let kxv = b.ld(gcl_ptx::Space::Const, Type::F32, gcl_ptx::Address::reg(kxa));
        let kya = b.index64(ky, l.counter, 4);
        let kyv = b.ld(gcl_ptx::Space::Const, Type::F32, gcl_ptx::Address::reg(kya));
        let kza = b.index64(kz, l.counter, 4);
        let kzv = b.ld(gcl_ptx::Space::Const, Type::F32, gcl_ptx::Address::reg(kza));
        // phase = (kx + ky*0.5 + kz*0.25) * x
        let kyh = b.mul(Type::F32, kyv, gcl_ptx::Operand::f32(0.5));
        let kzq = b.mul(Type::F32, kzv, gcl_ptx::Operand::f32(0.25));
        let s1 = b.add(Type::F32, kxv, kyh);
        let s2 = b.add(Type::F32, s1, kzq);
        let phase = b.mul(Type::F32, s2, xv);
        let c = b.sfu(SfuOp::Cos, Type::F32, phase);
        let s = b.sfu(SfuOp::Sin, Type::F32, phase);
        fma_acc(&mut b, accr, c, gcl_ptx::Operand::f32(1.0));
        fma_acc(&mut b, acci, s, gcl_ptx::Operand::f32(1.0));
        loop_end(&mut b, l);
        let qra = b.index64(qr, tid, 4);
        b.st_global(Type::F32, qra, accr);
        let qia = b.index64(qi, tid, 4);
        b.st_global(Type::F32, qia, acci);
        b.exit();
        b.build().expect("mriq kernel is valid")
    }

    /// Host reference.
    pub fn reference(kx: &[f32], ky: &[f32], kz: &[f32], x: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let mut qr = vec![0.0f32; x.len()];
        let mut qi = vec![0.0f32; x.len()];
        for (i, &xv) in x.iter().enumerate() {
            for j in 0..kx.len() {
                let phase = (kx[j] + ky[j] * 0.5 + kz[j] * 0.25) * xv;
                qr[i] += phase.cos();
                qi[i] += phase.sin();
            }
        }
        (qr, qi)
    }
}

impl Workload for Mriq {
    fn name(&self) -> &'static str {
        "mriq"
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Mriq::kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let m = self.n_samples as usize;
        let n = self.n_voxels as usize;
        let kx = gen::dense_vector(m, -1.0, 1.0, 0x3101);
        let ky = gen::dense_vector(m, -1.0, 1.0, 0x3102);
        let kz = gen::dense_vector(m, -1.0, 1.0, 0x3103);
        let x = gen::dense_vector(n, 0.0, 4.0, 0x3104);
        let dkx = upload_f32(gpu, &kx)?;
        let dky = upload_f32(gpu, &ky)?;
        let dkz = upload_f32(gpu, &kz)?;
        let dx = upload_f32(gpu, &x)?;
        let dqr = gpu.mem().alloc_array(Type::F32, n as u64)?;
        let dqi = gpu.mem().alloc_array(Type::F32, n as u64)?;
        let k = Mriq::kernel();
        let mut r = Runner::new();
        r.launch(
            gpu,
            &k,
            self.n_voxels.div_ceil(self.block),
            self.block,
            &[
                dkx,
                dky,
                dkz,
                dx,
                dqr,
                dqi,
                u64::from(self.n_voxels),
                u64::from(self.n_samples),
            ],
        )?;
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::GpuConfig;

    #[test]
    fn all_loads_deterministic_and_sfu_heavy() {
        let k = Mriq::kernel();
        let c = classify(&k);
        assert_eq!(c.global_load_counts().1, 0);
        // Only the voxel-coordinate load hits global memory; the k-space
        // sweep reads constant memory.
        assert_eq!(c.global_load_counts().0, 1);
        let sfu_count = k
            .insts()
            .iter()
            .filter(|i| matches!(i.op, gcl_ptx::Op::Sfu { .. }))
            .count();
        assert!(sfu_count >= 2);
    }

    #[test]
    fn matches_host_reference() {
        let w = Mriq::tiny();
        let m = w.n_samples as usize;
        let n = w.n_voxels as usize;
        let kx = gen::dense_vector(m, -1.0, 1.0, 0x3101);
        let ky = gen::dense_vector(m, -1.0, 1.0, 0x3102);
        let kz = gen::dense_vector(m, -1.0, 1.0, 0x3103);
        let x = gen::dense_vector(n, 0.0, 4.0, 0x3104);
        let (want_qr, _) = Mriq::reference(&kx, &ky, &kz, &x);
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let res = w.run(&mut gpu).unwrap();
        let align = |v: u64| v.div_ceil(128) * 128;
        let mut addr = gcl_sim::HEAP_BASE;
        for bytes in [m * 4, m * 4, m * 4, n * 4] {
            addr = align(addr) + bytes as u64;
        }
        let dqr = align(addr);
        let got = gpu.mem_ref().read_f32_slice(dqr, n);
        for (i, (g, w_)) in got.iter().zip(want_qr.iter()).enumerate() {
            assert!(
                (g - w_).abs() < 1e-2 + w_.abs() * 1e-3,
                "qr[{i}] = {g}, want {w_}"
            );
        }
        // SFU unit saw real work.
        assert!(res.stats.sm.unit_busy[1] > 0);
    }
}
