//! `bpr` — back-propagation layer forward pass + weight adjustment
//! (Rodinia `backprop`): CTA-cooperative input staging into shared memory
//! with a tree reduction per hidden unit, then an embarrassingly parallel
//! weight update. Deterministic loads throughout.

use crate::gen;
use crate::kutil::{exit_if_ge, gid_x, gid_y, loop_begin, loop_end};
use crate::workload::{upload_f32, Category, RunResult, Runner, Workload};
use gcl_ptx::{CmpOp, Kernel, KernelBuilder, SfuOp, Special, Type};
use gcl_sim::{Dim3, Gpu, SimError};

/// CTA edge: 16×16 threads, 16 hidden units per CTA.
const TILE: u32 = 16;

/// The `bpr` workload.
#[derive(Debug, Clone)]
pub struct Bpr {
    /// Input-layer width (multiple of 16).
    pub in_n: u32,
    /// Hidden-layer width (multiple of 16).
    pub hid_n: u32,
}

impl Default for Bpr {
    fn default() -> Bpr {
        Bpr {
            in_n: 256,
            hid_n: 128,
        }
    }
}

impl Bpr {
    /// A tiny instance for tests.
    pub fn tiny() -> Bpr {
        Bpr {
            in_n: 32,
            hid_n: 16,
        }
    }

    /// Forward kernel: `hidden[j] = sigmoid(Σ_i w[i][j]·in[i])`.
    /// CTA `c` computes hidden units `c*16 .. c*16+16`; thread `(tx, ty)`
    /// accumulates input rows `ty, ty+16, ...` for unit `tx`.
    pub fn forward_kernel() -> Kernel {
        let mut b = KernelBuilder::new("bpr_forward");
        // Shared: staged input chunk (16 f32) + partial sums (16×16 f32).
        b.shared(4 * (TILE + TILE * TILE));
        let pin = b.param("input", Type::U64);
        let pw = b.param("weights", Type::U64);
        let ph = b.param("hidden", Type::U64);
        let pinn = b.param("in_n", Type::U32);
        let phidn = b.param("hid_n", Type::U32);
        let input = b.ld_param(Type::U64, pin);
        let weights = b.ld_param(Type::U64, pw);
        let hidden = b.ld_param(Type::U64, ph);
        let in_n = b.ld_param(Type::U32, pinn);
        let hid_n = b.ld_param(Type::U32, phidn);
        let tx = b.sreg(Special::TidX);
        let ty = b.sreg(Special::TidY);
        let cta = b.sreg(Special::CtaIdX);
        let j = b.mad(Type::U32, cta, i64::from(TILE), tx);
        let acc = b.immf32(0.0);
        let n_chunks = b.div(Type::U32, in_n, i64::from(TILE));
        let l = loop_begin(&mut b, 0i64, n_chunks);
        // Stage in[chunk*16 + ty] into shared (one row of threads loads).
        let row = b.mad(Type::U32, l.counter, i64::from(TILE), ty);
        let is_loader = b.setp(CmpOp::Eq, Type::U32, tx, 0i64);
        let skip = b.new_label();
        b.bra_unless(is_loader, skip);
        let ia = b.index64(input, row, 4);
        let iv = b.ld_global(Type::F32, ia);
        let soff = b.mul(Type::U32, ty, 4i64);
        b.st_shared(Type::F32, soff, iv);
        b.place(skip);
        b.bar();
        // acc += w[row*hid_n + j] * s_in[ty]
        let wi = b.mad(Type::U32, row, hid_n, j);
        let wa = b.index64(weights, wi, 4);
        let wv = b.ld_global(Type::F32, wa);
        let soff = b.mul(Type::U32, ty, 4i64);
        let sv = b.ld_shared(Type::F32, soff);
        let prod = b.mul(Type::F32, wv, sv);
        b.push(gcl_ptx::Op::Alu {
            op: gcl_ptx::AluOp::Add,
            ty: Type::F32,
            dst: acc,
            a: acc.into(),
            b: prod.into(),
        });
        b.bar();
        loop_end(&mut b, l);
        // partial[ty][tx] = acc, then tree-reduce over ty.
        let pidx = b.mad(Type::U32, ty, i64::from(TILE), tx);
        let pidx4 = b.mad(Type::U32, pidx, 4i64, i64::from(4 * TILE));
        b.st_shared(Type::F32, pidx4, acc);
        let mut stride = TILE / 2;
        while stride > 0 {
            b.bar();
            let p = b.setp(CmpOp::Lt, Type::U32, ty, i64::from(stride));
            let skip = b.new_label();
            b.bra_unless(p, skip);
            let other_row = b.add(Type::U32, ty, i64::from(stride));
            let oidx = b.mad(Type::U32, other_row, i64::from(TILE), tx);
            let oidx4 = b.mad(Type::U32, oidx, 4i64, i64::from(4 * TILE));
            let theirs = b.ld_shared(Type::F32, oidx4);
            let mine = b.ld_shared(Type::F32, pidx4);
            let sum = b.add(Type::F32, mine, theirs);
            b.st_shared(Type::F32, pidx4, sum);
            b.place(skip);
            stride /= 2;
        }
        b.bar();
        // ty == 0 threads write the sigmoid output.
        let is_top = b.setp(CmpOp::Eq, Type::U32, ty, 0i64);
        let done = b.new_label();
        b.bra_unless(is_top, done);
        let tidx4 = b.mad(Type::U32, tx, 4i64, i64::from(4 * TILE));
        let total = b.ld_shared(Type::F32, tidx4);
        // sigmoid(x) = 1 / (1 + 2^(-x·log2 e))
        let scaled = b.mul(
            Type::F32,
            total,
            gcl_ptx::Operand::f32(-std::f32::consts::LOG2_E),
        );
        let e = b.sfu(SfuOp::Ex2, Type::F32, scaled);
        let denom = b.add(Type::F32, e, gcl_ptx::Operand::f32(1.0));
        let sig = b.sfu(SfuOp::Rcp, Type::F32, denom);
        let ha = b.index64(hidden, j, 4);
        b.st_global(Type::F32, ha, sig);
        b.place(done);
        b.exit();
        b.build().expect("bpr forward kernel is valid")
    }

    /// Weight-adjust kernel: `w[i][j] += eta · hidden[j] · in[i]`.
    pub fn adjust_kernel() -> Kernel {
        let mut b = KernelBuilder::new("bpr_adjust");
        let pin = b.param("input", Type::U64);
        let pw = b.param("weights", Type::U64);
        let ph = b.param("hidden", Type::U64);
        let pinn = b.param("in_n", Type::U32);
        let phidn = b.param("hid_n", Type::U32);
        let input = b.ld_param(Type::U64, pin);
        let weights = b.ld_param(Type::U64, pw);
        let hidden = b.ld_param(Type::U64, ph);
        let in_n = b.ld_param(Type::U32, pinn);
        let hid_n = b.ld_param(Type::U32, phidn);
        let j = gid_x(&mut b);
        let i = gid_y(&mut b);
        exit_if_ge(&mut b, j, hid_n);
        exit_if_ge(&mut b, i, in_n);
        let ha = b.index64(hidden, j, 4);
        let hv = b.ld_global(Type::F32, ha);
        let ia = b.index64(input, i, 4);
        let iv = b.ld_global(Type::F32, ia);
        let wi = b.mad(Type::U32, i, hid_n, j);
        let wa = b.index64(weights, wi, 4);
        let wv = b.ld_global(Type::F32, wa);
        let eta = b.mul(Type::F32, hv, gcl_ptx::Operand::f32(0.3));
        let delta = b.mul(Type::F32, eta, iv);
        let next = b.add(Type::F32, wv, delta);
        b.st_global(Type::F32, wa, next);
        b.exit();
        b.build().expect("bpr adjust kernel is valid")
    }

    /// Host reference forward pass.
    pub fn reference_forward(input: &[f32], w: &[f32], in_n: usize, hid_n: usize) -> Vec<f32> {
        (0..hid_n)
            .map(|j| {
                let mut acc = 0.0f32;
                for i in 0..in_n {
                    acc += w[i * hid_n + j] * input[i];
                }
                1.0 / (1.0 + (-acc).exp())
            })
            .collect()
    }
}

impl Workload for Bpr {
    fn name(&self) -> &'static str {
        "bpr"
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Bpr::forward_kernel(), Bpr::adjust_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let (in_n, hid_n) = (self.in_n as usize, self.hid_n as usize);
        let input = gen::dense_vector(in_n, -0.5, 0.5, 0xB201);
        let w = gen::dense_vector(in_n * hid_n, -0.1, 0.1, 0xB202);
        let din = upload_f32(gpu, &input)?;
        let dw = upload_f32(gpu, &w)?;
        let dh = gpu.mem().alloc_array(Type::F32, hid_n as u64)?;
        let fwd = Bpr::forward_kernel();
        let adj = Bpr::adjust_kernel();
        let mut r = Runner::new();
        let args = [din, dw, dh, u64::from(self.in_n), u64::from(self.hid_n)];
        r.launch(gpu, &fwd, self.hid_n / TILE, Dim3::xy(TILE, TILE), &args)?;
        let grid = Dim3::xy(self.hid_n.div_ceil(TILE), self.in_n.div_ceil(TILE));
        r.launch(gpu, &adj, grid, Dim3::xy(TILE, TILE), &args)?;
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::GpuConfig;

    #[test]
    fn loads_are_deterministic() {
        for k in [Bpr::forward_kernel(), Bpr::adjust_kernel()] {
            assert_eq!(classify(&k).global_load_counts().1, 0, "{}", k.name());
        }
    }

    #[test]
    fn forward_matches_reference() {
        let wl = Bpr::tiny();
        let (in_n, hid_n) = (wl.in_n as usize, wl.hid_n as usize);
        let input = gen::dense_vector(in_n, -0.5, 0.5, 0xB201);
        let w = gen::dense_vector(in_n * hid_n, -0.1, 0.1, 0xB202);
        let want = Bpr::reference_forward(&input, &w, in_n, hid_n);
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        wl.run(&mut gpu).unwrap();
        let align = |v: u64| v.div_ceil(128) * 128;
        let mut addr = gcl_sim::HEAP_BASE;
        for bytes in [in_n * 4, in_n * hid_n * 4] {
            addr = align(addr) + bytes as u64;
        }
        let dh = align(addr);
        let got = gpu.mem_ref().read_f32_slice(dh, hid_n);
        for (i, (g, w_)) in got.iter().zip(want.iter()).enumerate() {
            // The SFU sigmoid is an approximation path; allow slack.
            assert!((g - w_).abs() < 5e-3, "hidden[{i}] = {g}, want {w_}");
        }
    }
}
