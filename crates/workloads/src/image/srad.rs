//! `srad` — speckle-reducing anisotropic diffusion (Rodinia): a stencil
//! whose neighbor rows/columns come from host-precomputed index arrays
//! (`iN`, `iS`, `jW`, `jE`), exactly as Rodinia writes it. The index arrays
//! themselves load deterministically, but the neighbor *pixel* gathers use
//! those loaded indices — so srad carries a real non-deterministic load
//! component despite being a regular stencil.

use crate::gen;
use crate::kutil::{exit_if_ge, gid_x};
use crate::workload::{upload_f32, upload_u32, Category, RunResult, Runner, Workload};
use gcl_ptx::{Kernel, KernelBuilder, Reg, Type};
use gcl_sim::{Gpu, SimError};

/// The `srad` workload.
#[derive(Debug, Clone)]
pub struct Srad {
    /// Image rows.
    pub rows: u32,
    /// Image cols.
    pub cols: u32,
    /// Diffusion iterations.
    pub iters: u32,
    /// Threads per CTA (paper: 256).
    pub block: u32,
}

impl Default for Srad {
    fn default() -> Srad {
        Srad {
            rows: 64,
            cols: 64,
            iters: 2,
            block: 256,
        }
    }
}

/// Emit the common prologue: compute `(row, col, k)` and load the four
/// neighbor indices. Returns `(k, j_regs)` where `j_regs` are
/// `[jc, jn, js, jw, je]` pixel values loaded from `img`.
#[allow(clippy::too_many_arguments)]
fn load_neighborhood(
    b: &mut KernelBuilder,
    img: Reg,
    in_idx: Reg,
    is_idx: Reg,
    jw_idx: Reg,
    je_idx: Reg,
    rows: Reg,
    cols: Reg,
) -> (Reg, [Reg; 5]) {
    let g = gid_x(b);
    let total = b.mul(Type::U32, rows, cols);
    exit_if_ge(b, g, total);
    let row = b.div(Type::U32, g, cols);
    let col = b.rem(Type::U32, g, cols);
    let k = b.mad(Type::U32, row, cols, col);
    // Deterministic loads of the index arrays.
    let ina = b.index64(in_idx, row, 4);
    let rn = b.ld_global(Type::U32, ina);
    let isa = b.index64(is_idx, row, 4);
    let rs = b.ld_global(Type::U32, isa);
    let jwa = b.index64(jw_idx, col, 4);
    let cw = b.ld_global(Type::U32, jwa);
    let jea = b.index64(je_idx, col, 4);
    let ce = b.ld_global(Type::U32, jea);
    // Center pixel: deterministic.
    let ka = b.index64(img, k, 4);
    let jc = b.ld_global(Type::F32, ka);
    // Neighbor pixels: indices are loaded values → non-deterministic.
    let ni = b.mad(Type::U32, rn, cols, col);
    let na = b.index64(img, ni, 4);
    let jn = b.ld_global(Type::F32, na);
    let si = b.mad(Type::U32, rs, cols, col);
    let sa = b.index64(img, si, 4);
    let js = b.ld_global(Type::F32, sa);
    let wi = b.mad(Type::U32, row, cols, cw);
    let wa = b.index64(img, wi, 4);
    let jw = b.ld_global(Type::F32, wa);
    let ei = b.mad(Type::U32, row, cols, ce);
    let ea = b.index64(img, ei, 4);
    let je = b.ld_global(Type::F32, ea);
    (k, [jc, jn, js, jw, je])
}

impl Srad {
    /// A tiny instance for tests.
    pub fn tiny() -> Srad {
        Srad {
            rows: 16,
            cols: 16,
            iters: 1,
            block: 64,
        }
    }

    /// `srad1`: compute the diffusion coefficient
    /// `c[k] = 1 / (1 + G2)` with `G2 = Σ dX² / Jc²`.
    pub fn coeff_kernel() -> Kernel {
        let mut b = KernelBuilder::new("srad_coeff");
        let pj = b.param("img", Type::U64);
        let pc = b.param("c", Type::U64);
        let pin = b.param("iN", Type::U64);
        let pis = b.param("iS", Type::U64);
        let pjw = b.param("jW", Type::U64);
        let pje = b.param("jE", Type::U64);
        let pr = b.param("rows", Type::U32);
        let pcl = b.param("cols", Type::U32);
        let img = b.ld_param(Type::U64, pj);
        let c = b.ld_param(Type::U64, pc);
        let in_idx = b.ld_param(Type::U64, pin);
        let is_idx = b.ld_param(Type::U64, pis);
        let jw_idx = b.ld_param(Type::U64, pjw);
        let je_idx = b.ld_param(Type::U64, pje);
        let rows = b.ld_param(Type::U32, pr);
        let cols = b.ld_param(Type::U32, pcl);
        let (k, [jc, jn, js, jw, je]) =
            load_neighborhood(&mut b, img, in_idx, is_idx, jw_idx, je_idx, rows, cols);
        let dn = b.sub(Type::F32, jn, jc);
        let ds = b.sub(Type::F32, js, jc);
        let dw = b.sub(Type::F32, jw, jc);
        let de = b.sub(Type::F32, je, jc);
        let acc = b.immf32(0.0);
        for d in [dn, ds, dw, de] {
            crate::kutil::fma_acc(&mut b, acc, d, d);
        }
        let jc2 = b.mul(Type::F32, jc, jc);
        let g2 = b.div(Type::F32, acc, jc2);
        let denom = b.add(Type::F32, g2, gcl_ptx::Operand::f32(1.0));
        let coeff = b.div(Type::F32, gcl_ptx::Operand::f32(1.0), denom);
        let ca = b.index64(c, k, 4);
        b.st_global(Type::F32, ca, coeff);
        b.exit();
        b.build().expect("srad coeff kernel is valid")
    }

    /// `srad2`: diffuse — `img[k] += λ/4 · Σ c_neighbor·(J_neighbor − Jc)`
    /// with the same indexed-gather pattern on `c`.
    pub fn update_kernel() -> Kernel {
        let mut b = KernelBuilder::new("srad_update");
        let pj = b.param("img", Type::U64);
        let pc = b.param("c", Type::U64);
        let pin = b.param("iN", Type::U64);
        let pis = b.param("iS", Type::U64);
        let pjw = b.param("jW", Type::U64);
        let pje = b.param("jE", Type::U64);
        let pr = b.param("rows", Type::U32);
        let pcl = b.param("cols", Type::U32);
        let pout = b.param("out", Type::U64);
        let img = b.ld_param(Type::U64, pj);
        let c = b.ld_param(Type::U64, pc);
        let in_idx = b.ld_param(Type::U64, pin);
        let is_idx = b.ld_param(Type::U64, pis);
        let jw_idx = b.ld_param(Type::U64, pjw);
        let je_idx = b.ld_param(Type::U64, pje);
        let rows = b.ld_param(Type::U32, pr);
        let cols = b.ld_param(Type::U32, pcl);
        let out = b.ld_param(Type::U64, pout);
        let (k, [jc, jn, js, jw, je]) =
            load_neighborhood(&mut b, img, in_idx, is_idx, jw_idx, je_idx, rows, cols);
        // Diffusion coefficients at center and at S/E neighbors (Rodinia's
        // discretization), gathered non-deterministically.
        let row = b.div(Type::U32, k, cols);
        let col = b.rem(Type::U32, k, cols);
        let isa = b.index64(is_idx, row, 4);
        let rs = b.ld_global(Type::U32, isa);
        let jea = b.index64(je_idx, col, 4);
        let ce = b.ld_global(Type::U32, jea);
        let ca0 = b.index64(c, k, 4);
        let cc = b.ld_global(Type::F32, ca0);
        let si = b.mad(Type::U32, rs, cols, col);
        let csa = b.index64(c, si, 4);
        let cs = b.ld_global(Type::F32, csa);
        let ei = b.mad(Type::U32, row, cols, ce);
        let cea = b.index64(c, ei, 4);
        let cef = b.ld_global(Type::F32, cea);
        // div = cc·(dN + dW) + cS·dS + cE·dE
        let dn = b.sub(Type::F32, jn, jc);
        let ds = b.sub(Type::F32, js, jc);
        let dw = b.sub(Type::F32, jw, jc);
        let de = b.sub(Type::F32, je, jc);
        let nw = b.add(Type::F32, dn, dw);
        let t1 = b.mul(Type::F32, cc, nw);
        let t2 = b.mul(Type::F32, cs, ds);
        let t3 = b.mul(Type::F32, cef, de);
        let s12 = b.add(Type::F32, t1, t2);
        let div = b.add(Type::F32, s12, t3);
        let scaled = b.mul(Type::F32, div, gcl_ptx::Operand::f32(0.25 * 0.5));
        let next = b.add(Type::F32, jc, scaled);
        let oa = b.index64(out, k, 4);
        b.st_global(Type::F32, oa, next);
        b.exit();
        b.build().expect("srad update kernel is valid")
    }

    /// Host-side index arrays with clamped boundaries (as Rodinia builds
    /// them).
    pub fn index_arrays(rows: usize, cols: usize) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
        let i_n: Vec<u32> = (0..rows).map(|r| r.saturating_sub(1) as u32).collect();
        let i_s: Vec<u32> = (0..rows).map(|r| ((r + 1).min(rows - 1)) as u32).collect();
        let j_w: Vec<u32> = (0..cols).map(|c| c.saturating_sub(1) as u32).collect();
        let j_e: Vec<u32> = (0..cols).map(|c| ((c + 1).min(cols - 1)) as u32).collect();
        (i_n, i_s, j_w, j_e)
    }

    /// Host reference for one iteration; returns the updated image.
    pub fn reference_iter(img: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let (i_n, i_s, j_w, j_e) = Srad::index_arrays(rows, cols);
        let mut c = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for cl in 0..cols {
                let k = r * cols + cl;
                let jc = img[k];
                let jn = img[i_n[r] as usize * cols + cl];
                let js = img[i_s[r] as usize * cols + cl];
                let jw = img[r * cols + j_w[cl] as usize];
                let je = img[r * cols + j_e[cl] as usize];
                let mut acc = 0.0f32;
                for d in [jn - jc, js - jc, jw - jc, je - jc] {
                    acc += d * d;
                }
                let g2 = acc / (jc * jc);
                c[k] = 1.0 / (1.0 + g2);
            }
        }
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for cl in 0..cols {
                let k = r * cols + cl;
                let jc = img[k];
                let jn = img[i_n[r] as usize * cols + cl];
                let js = img[i_s[r] as usize * cols + cl];
                let jw = img[r * cols + j_w[cl] as usize];
                let je = img[r * cols + j_e[cl] as usize];
                let cs = c[i_s[r] as usize * cols + cl];
                let cef = c[r * cols + j_e[cl] as usize];
                let div = c[k] * ((jn - jc) + (jw - jc)) + cs * (js - jc) + cef * (je - jc);
                out[k] = jc + 0.125 * div;
            }
        }
        out
    }
}

impl Workload for Srad {
    fn name(&self) -> &'static str {
        "srad"
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Srad::coeff_kernel(), Srad::update_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let (rows, cols) = (self.rows as usize, self.cols as usize);
        let img = gen::image(cols, rows, 0x5EAD);
        let (i_n, i_s, j_w, j_e) = Srad::index_arrays(rows, cols);
        let dimg = upload_f32(gpu, &img)?;
        let dout = gpu.mem().alloc_array(Type::F32, (rows * cols) as u64)?;
        let dc = gpu.mem().alloc_array(Type::F32, (rows * cols) as u64)?;
        let din = upload_u32(gpu, &i_n)?;
        let dis = upload_u32(gpu, &i_s)?;
        let djw = upload_u32(gpu, &j_w)?;
        let dje = upload_u32(gpu, &j_e)?;
        let coeff = Srad::coeff_kernel();
        let update = Srad::update_kernel();
        let mut r = Runner::new();
        let total = self.rows * self.cols;
        let grid = total.div_ceil(self.block);
        let (mut src, mut dst) = (dimg, dout);
        for _ in 0..self.iters {
            r.launch(
                gpu,
                &coeff,
                grid,
                self.block,
                &[
                    src,
                    dc,
                    din,
                    dis,
                    djw,
                    dje,
                    u64::from(self.rows),
                    u64::from(self.cols),
                ],
            )?;
            r.launch(
                gpu,
                &update,
                grid,
                self.block,
                &[
                    src,
                    dc,
                    din,
                    dis,
                    djw,
                    dje,
                    u64::from(self.rows),
                    u64::from(self.cols),
                    dst,
                ],
            )?;
            std::mem::swap(&mut src, &mut dst);
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn srad_mixes_load_classes() {
        let c = classify(&Srad::coeff_kernel());
        let (d, n) = c.global_load_counts();
        // 4 index loads + center pixel are deterministic; 4 neighbor pixel
        // gathers are not.
        assert_eq!(d, 5, "{c:?}");
        assert_eq!(n, 4, "{c:?}");
    }

    #[test]
    fn one_iteration_matches_reference() {
        let w = Srad::tiny();
        let (rows, cols) = (w.rows as usize, w.cols as usize);
        let img = gen::image(cols, rows, 0x5EAD);
        let want = Srad::reference_iter(&img, rows, cols);
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        w.run(&mut gpu).unwrap();
        // One iteration writes into `out`, the second allocation.
        let a_bytes = ((rows * cols * 4) as u64).div_ceil(128) * 128;
        let dout = HEAP_BASE + a_bytes;
        let got = gpu.mem_ref().read_f32_slice(dout, rows * cols);
        for (i, (g, w_)) in got.iter().zip(want.iter()).enumerate() {
            assert!(
                (g - w_).abs() <= w_.abs() * 1e-4 + 1e-2,
                "out[{i}] = {g}, want {w_}"
            );
        }
    }
}
