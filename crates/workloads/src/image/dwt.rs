//! `dwt` — 2-D discrete (Haar) wavelet transform (Rodinia `dwt2d`): one
//! row-pass and one column-pass kernel per level, applied to a shrinking
//! sub-image. Deterministic loads with stride-2 gather patterns and
//! boundary predication.

use crate::gen;
use crate::kutil::{exit_if_ge, gid_x};
use crate::workload::{upload_f32, Category, RunResult, Runner, Workload};
use gcl_ptx::{Kernel, KernelBuilder, Type};
use gcl_sim::{Gpu, SimError};

/// The `dwt` workload.
#[derive(Debug, Clone)]
pub struct Dwt {
    /// Image width (power of two).
    pub w: u32,
    /// Image height (power of two).
    pub h: u32,
    /// Wavelet levels.
    pub levels: u32,
    /// Threads per CTA (paper: 64).
    pub block: u32,
}

impl Default for Dwt {
    fn default() -> Dwt {
        Dwt {
            w: 64,
            h: 64,
            levels: 2,
            block: 64,
        }
    }
}

impl Dwt {
    /// A tiny instance for tests.
    pub fn tiny() -> Dwt {
        Dwt {
            w: 16,
            h: 16,
            levels: 1,
            block: 32,
        }
    }

    /// Row pass: for each output pair position `(y, x)` with `x < half`,
    /// write average to `out[y][x]` and difference to `out[y][half + x]`.
    /// `src` is read at full-image stride `w`; only the `cur_w × cur_h`
    /// region participates.
    pub fn row_kernel() -> Kernel {
        let mut b = KernelBuilder::new("dwt_rows");
        let psrc = b.param("src", Type::U64);
        let pdst = b.param("dst", Type::U64);
        let pw = b.param("w", Type::U32);
        let pcw = b.param("cur_w", Type::U32);
        let pch = b.param("cur_h", Type::U32);
        let src = b.ld_param(Type::U64, psrc);
        let dst = b.ld_param(Type::U64, pdst);
        let w = b.ld_param(Type::U32, pw);
        let cw = b.ld_param(Type::U32, pcw);
        let ch = b.ld_param(Type::U32, pch);
        let g = gid_x(&mut b);
        let half = b.shr(Type::U32, cw, 1i64);
        let total = b.mul(Type::U32, half, ch);
        exit_if_ge(&mut b, g, total);
        let y = b.div(Type::U32, g, half);
        let x = b.rem(Type::U32, g, half);
        let row0 = b.mul(Type::U32, y, w);
        // a = src[y][2x], bb = src[y][2x+1]
        let x2 = b.shl(Type::U32, x, 1i64);
        let i0 = b.add(Type::U32, row0, x2);
        let a0 = b.index64(src, i0, 4);
        let a = b.ld_global(Type::F32, a0);
        let i1 = b.add(Type::U32, i0, 1i64);
        let a1 = b.index64(src, i1, 4);
        let bb = b.ld_global(Type::F32, a1);
        let sum = b.add(Type::F32, a, bb);
        let avg = b.mul(Type::F32, sum, gcl_ptx::Operand::f32(0.5));
        let dif = b.sub(Type::F32, a, bb);
        let difh = b.mul(Type::F32, dif, gcl_ptx::Operand::f32(0.5));
        let lo_i = b.add(Type::U32, row0, x);
        let lo_a = b.index64(dst, lo_i, 4);
        b.st_global(Type::F32, lo_a, avg);
        let hi_x = b.add(Type::U32, x, half);
        let hi_i = b.add(Type::U32, row0, hi_x);
        let hi_a = b.index64(dst, hi_i, 4);
        b.st_global(Type::F32, hi_a, difh);
        b.exit();
        b.build().expect("dwt row kernel is valid")
    }

    /// Column pass: same transform along y.
    pub fn col_kernel() -> Kernel {
        let mut b = KernelBuilder::new("dwt_cols");
        let psrc = b.param("src", Type::U64);
        let pdst = b.param("dst", Type::U64);
        let pw = b.param("w", Type::U32);
        let pcw = b.param("cur_w", Type::U32);
        let pch = b.param("cur_h", Type::U32);
        let src = b.ld_param(Type::U64, psrc);
        let dst = b.ld_param(Type::U64, pdst);
        let w = b.ld_param(Type::U32, pw);
        let cw = b.ld_param(Type::U32, pcw);
        let ch = b.ld_param(Type::U32, pch);
        let g = gid_x(&mut b);
        let half = b.shr(Type::U32, ch, 1i64);
        let total = b.mul(Type::U32, half, cw);
        exit_if_ge(&mut b, g, total);
        let y = b.div(Type::U32, g, cw);
        let x = b.rem(Type::U32, g, cw);
        let y2 = b.shl(Type::U32, y, 1i64);
        let i0 = b.mad(Type::U32, y2, w, x);
        let a0 = b.index64(src, i0, 4);
        let a = b.ld_global(Type::F32, a0);
        let y2p = b.add(Type::U32, y2, 1i64);
        let i1 = b.mad(Type::U32, y2p, w, x);
        let a1 = b.index64(src, i1, 4);
        let bb = b.ld_global(Type::F32, a1);
        let sum = b.add(Type::F32, a, bb);
        let avg = b.mul(Type::F32, sum, gcl_ptx::Operand::f32(0.5));
        let dif = b.sub(Type::F32, a, bb);
        let difh = b.mul(Type::F32, dif, gcl_ptx::Operand::f32(0.5));
        let lo_i = b.mad(Type::U32, y, w, x);
        let lo_a = b.index64(dst, lo_i, 4);
        b.st_global(Type::F32, lo_a, avg);
        let hi_y = b.add(Type::U32, y, half);
        let hi_i = b.mad(Type::U32, hi_y, w, x);
        let hi_a = b.index64(dst, hi_i, 4);
        b.st_global(Type::F32, hi_a, difh);
        b.exit();
        b.build().expect("dwt col kernel is valid")
    }

    /// Host reference: one level of the same separable Haar transform on the
    /// `cur_w × cur_h` corner of a `w`-stride image.
    pub fn reference_level(img: &mut [f32], w: usize, cur_w: usize, cur_h: usize) {
        let mut tmp = img.to_vec();
        // rows
        for y in 0..cur_h {
            for x in 0..cur_w / 2 {
                let a = img[y * w + 2 * x];
                let b = img[y * w + 2 * x + 1];
                tmp[y * w + x] = (a + b) * 0.5;
                tmp[y * w + cur_w / 2 + x] = (a - b) * 0.5;
            }
        }
        // cols
        let mut out = tmp.clone();
        for y in 0..cur_h / 2 {
            for x in 0..cur_w {
                let a = tmp[2 * y * w + x];
                let b = tmp[(2 * y + 1) * w + x];
                out[y * w + x] = (a + b) * 0.5;
                out[(cur_h / 2 + y) * w + x] = (a - b) * 0.5;
            }
        }
        img.copy_from_slice(&out);
    }
}

impl Workload for Dwt {
    fn name(&self) -> &'static str {
        "dwt"
    }

    fn category(&self) -> Category {
        Category::Image
    }

    fn kernels(&self) -> Vec<Kernel> {
        vec![Dwt::row_kernel(), Dwt::col_kernel()]
    }

    fn run(&self, gpu: &mut Gpu) -> Result<RunResult, SimError> {
        let (w, h) = (self.w as usize, self.h as usize);
        let img = gen::image(w, h, 0xD317);
        let dsrc = upload_f32(gpu, &img)?;
        let dtmp = gpu.mem().alloc_array(Type::F32, (w * h) as u64)?;
        let rows = Dwt::row_kernel();
        let cols = Dwt::col_kernel();
        let mut r = Runner::new();
        let mut cw = self.w;
        let mut ch = self.h;
        for _ in 0..self.levels {
            if cw < 2 || ch < 2 {
                break;
            }
            let total_r = (cw / 2) * ch;
            r.launch(
                gpu,
                &rows,
                total_r.div_ceil(self.block),
                self.block,
                &[dsrc, dtmp, u64::from(self.w), u64::from(cw), u64::from(ch)],
            )?;
            let total_c = (ch / 2) * cw;
            r.launch(
                gpu,
                &cols,
                total_c.div_ceil(self.block),
                self.block,
                &[dtmp, dsrc, u64::from(self.w), u64::from(cw), u64::from(ch)],
            )?;
            cw /= 2;
            ch /= 2;
        }
        Ok(r.finish(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_core::classify;
    use gcl_sim::{GpuConfig, HEAP_BASE};

    #[test]
    fn loads_are_deterministic() {
        for k in [Dwt::row_kernel(), Dwt::col_kernel()] {
            assert_eq!(classify(&k).global_load_counts().1, 0, "{}", k.name());
        }
    }

    #[test]
    fn one_level_matches_reference() {
        let w = Dwt::tiny();
        let (iw, ih) = (w.w as usize, w.h as usize);
        let mut want = gen::image(iw, ih, 0xD317);
        Dwt::reference_level(&mut want, iw, iw, ih);
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        w.run(&mut gpu).unwrap();
        let got = gpu.mem_ref().read_f32_slice(HEAP_BASE, iw * ih);
        for (i, (g, w_)) in got.iter().zip(want.iter()).enumerate() {
            assert!((g - w_).abs() < 1e-3, "px[{i}] = {g}, want {w_}");
        }
    }
}
