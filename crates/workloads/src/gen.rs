//! Synthetic input generators: dense matrices and images.
//!
//! Deterministic (seeded) so that every figure regeneration sees identical
//! inputs.

use gcl_rng::Rng;

/// A seeded RNG for workload inputs.
pub fn rng(seed: u64) -> Rng {
    Rng::new(seed)
}

/// A dense `rows × cols` matrix of small positive floats (diagonally
/// dominant enough for elimination-style kernels to stay finite).
pub fn dense_matrix(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    let mut m: Vec<f32> = (0..rows * cols).map(|_| r.f32_range(0.1, 1.0)).collect();
    // Boost the diagonal so Gaussian elimination / LU pivots never vanish.
    let n = rows.min(cols);
    for i in 0..n {
        m[i * cols + i] += cols as f32;
    }
    m
}

/// A vector of `n` floats in `[lo, hi)`.
pub fn dense_vector(n: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.f32_range(lo, hi)).collect()
}

/// A `w × h` grayscale image with smooth gradients plus noise, as `f32`
/// pixels in `[0, 256)`.
pub fn image(w: usize, h: usize, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    let mut img = Vec::with_capacity(w * h);
    for y in 0..h {
        for x in 0..w {
            let base = 64.0
                + 64.0 * ((x as f32 / w as f32) * std::f32::consts::PI).sin()
                + 64.0 * ((y as f32 / h as f32) * std::f32::consts::PI).cos();
            img.push((base + r.f32_range(-8.0, 8.0)).clamp(0.0, 255.9));
        }
    }
    img
}

/// `n` random `u32` values below `bound`.
pub fn random_u32(n: usize, bound: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.u32_below(bound)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(dense_matrix(8, 8, 7), dense_matrix(8, 8, 7));
        assert_eq!(image(16, 16, 3), image(16, 16, 3));
        assert_eq!(random_u32(10, 100, 1), random_u32(10, 100, 1));
        assert_ne!(dense_matrix(8, 8, 7), dense_matrix(8, 8, 8));
    }

    #[test]
    fn matrix_diagonal_dominates() {
        let n = 16;
        let m = dense_matrix(n, n, 42);
        for i in 0..n {
            let diag = m[i * n + i];
            let row_sum: f32 = (0..n).filter(|&j| j != i).map(|j| m[i * n + j]).sum();
            assert!(
                diag > row_sum / 2.0,
                "row {i}: diag {diag} vs sum {row_sum}"
            );
        }
    }

    #[test]
    fn image_pixels_in_range() {
        let img = image(32, 16, 9);
        assert_eq!(img.len(), 512);
        assert!(img.iter().all(|&p| (0.0..256.0).contains(&p)));
    }

    #[test]
    fn random_u32_respects_bound() {
        assert!(random_u32(1000, 50, 2).iter().all(|&v| v < 50));
    }
}
