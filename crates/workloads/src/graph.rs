//! Graph inputs in CSR form: uniform-random and R-MAT (power-law)
//! generators, mirroring the paper's graph datasets (`rmat.gr`,
//! `rmat12.syn.gr`, ...).

use gcl_rng::Rng;

/// A directed graph in compressed-sparse-row form with `u32` edge weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `n + 1` row offsets into `col_idx`.
    pub row_ptr: Vec<u32>,
    /// Destination vertex of each edge.
    pub col_idx: Vec<u32>,
    /// Weight of each edge (1..=64).
    pub weight: Vec<u32>,
}

impl Csr {
    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of edges.
    pub fn m(&self) -> usize {
        self.col_idx.len()
    }

    /// Neighbors of vertex `v`.
    pub fn neighbors(&self, v: usize) -> &[u32] {
        let lo = self.row_ptr[v] as usize;
        let hi = self.row_ptr[v + 1] as usize;
        &self.col_idx[lo..hi]
    }

    /// Edge weights of vertex `v`, aligned with [`neighbors`](Self::neighbors).
    pub fn weights(&self, v: usize) -> &[u32] {
        let lo = self.row_ptr[v] as usize;
        let hi = self.row_ptr[v + 1] as usize;
        &self.weight[lo..hi]
    }

    /// Build a CSR from an edge list, deduplicating and dropping self-loops.
    pub fn from_edges(n: usize, edges: &[(u32, u32)], seed: u64) -> Csr {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(s, d) in edges {
            if s != d && (s as usize) < n && (d as usize) < n {
                adj[s as usize].push(d);
            }
        }
        let mut rng = Rng::new(seed ^ 0x5EED);
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::new();
        let mut weight = Vec::new();
        row_ptr.push(0);
        for list in &mut adj {
            list.sort_unstable();
            list.dedup();
            for &d in list.iter() {
                col_idx.push(d);
                weight.push(rng.u32_range_inclusive(1, 64));
            }
            row_ptr.push(col_idx.len() as u32);
        }
        Csr {
            row_ptr,
            col_idx,
            weight,
        }
    }

    /// Uniform-random directed graph: `n` vertices, ~`deg` out-edges each.
    pub fn uniform(n: usize, deg: usize, seed: u64) -> Csr {
        let mut rng = Rng::new(seed);
        let mut edges = Vec::with_capacity(n * deg);
        for s in 0..n as u32 {
            for _ in 0..deg {
                edges.push((s, rng.u32_below(n as u32)));
            }
        }
        Csr::from_edges(n, &edges, seed)
    }

    /// R-MAT power-law graph: `2^scale` vertices, `edge_factor` edges per
    /// vertex, with the standard (0.57, 0.19, 0.19, 0.05) quadrant
    /// probabilities. Produces the skewed degree distribution that drives
    /// the uncoalesced access patterns of the paper's graph workloads.
    pub fn rmat(scale: u32, edge_factor: usize, seed: u64) -> Csr {
        let n = 1usize << scale;
        let m = n * edge_factor;
        let mut rng = Rng::new(seed);
        let (a, b, c) = (0.57f64, 0.19f64, 0.19f64);
        let mut edges = Vec::with_capacity(m);
        for _ in 0..m {
            let (mut s, mut d) = (0u32, 0u32);
            for bit in (0..scale).rev() {
                let r: f64 = rng.f64();
                let (sb, db) = if r < a {
                    (0, 0)
                } else if r < a + b {
                    (0, 1)
                } else if r < a + b + c {
                    (1, 0)
                } else {
                    (1, 1)
                };
                s |= sb << bit;
                d |= db << bit;
            }
            edges.push((s, d));
        }
        Csr::from_edges(n, &edges, seed)
    }

    /// Maximum out-degree (a power-law skew check).
    pub fn max_degree(&self) -> usize {
        (0..self.n())
            .map(|v| self.neighbors(v).len())
            .max()
            .unwrap_or(0)
    }

    /// Mean out-degree.
    pub fn mean_degree(&self) -> f64 {
        if self.n() == 0 {
            0.0
        } else {
            self.m() as f64 / self.n() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_invariants_hold() {
        for csr in [Csr::uniform(64, 4, 1), Csr::rmat(6, 4, 2)] {
            assert_eq!(csr.row_ptr.len(), csr.n() + 1);
            assert_eq!(csr.row_ptr[0], 0);
            assert_eq!(*csr.row_ptr.last().unwrap() as usize, csr.m());
            assert!(csr.row_ptr.windows(2).all(|w| w[0] <= w[1]));
            assert!(csr.col_idx.iter().all(|&d| (d as usize) < csr.n()));
            assert_eq!(csr.weight.len(), csr.m());
            assert!(csr.weight.iter().all(|&w| (1..=64).contains(&w)));
            // No self loops, sorted + deduped rows.
            for v in 0..csr.n() {
                let nb = csr.neighbors(v);
                assert!(nb.iter().all(|&d| d as usize != v));
                assert!(nb.windows(2).all(|w| w[0] < w[1]));
            }
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(Csr::rmat(6, 4, 7), Csr::rmat(6, 4, 7));
        assert_eq!(Csr::uniform(50, 3, 7), Csr::uniform(50, 3, 7));
    }

    #[test]
    fn rmat_is_skewed_relative_to_uniform() {
        let r = Csr::rmat(9, 8, 3);
        let u = Csr::uniform(512, 8, 3);
        assert!(
            r.max_degree() > 2 * u.max_degree(),
            "rmat max degree {} not ≫ uniform {}",
            r.max_degree(),
            u.max_degree()
        );
    }

    #[test]
    fn from_edges_dedupes_and_drops_self_loops() {
        let csr = Csr::from_edges(3, &[(0, 1), (0, 1), (1, 1), (2, 0), (9, 1)], 0);
        assert_eq!(csr.neighbors(0), &[1]);
        assert!(csr.neighbors(1).is_empty());
        assert_eq!(csr.neighbors(2), &[0]);
        assert_eq!(csr.m(), 2);
    }
}
