//! # gcl-rng — a tiny deterministic PRNG
//!
//! The toolkit needs reproducible pseudo-random streams in two places:
//! synthetic workload inputs (matrices, images, graphs) and property-style
//! tests that sweep randomized cases. Both must be bit-stable across runs
//! and platforms so that every figure regeneration sees identical inputs.
//! This crate implements xoshiro256** seeded via splitmix64 — the same
//! construction `rand`'s `SmallRng` used on 64-bit targets — with the small
//! range/float helpers the call sites need, and no dependencies.
//!
//! ```
//! use gcl_rng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.f32_range(0.1, 1.0) < 1.0);
//! assert!(a.u32_below(10) < 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed a generator. Equal seeds give equal streams, forever.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next raw 32-bit value (the high half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        // 24 mantissa bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.f32()
    }

    /// Uniform `u32` in `[0, bound)` via Lemire's multiply-shift reduction
    /// (unbiased enough for input generation; exact bias < 2^-32).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn u32_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "u32_below(0)");
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u32_range_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u32::MAX {
            return self.next_u32();
        }
        lo + self.u32_below(span + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "usize_below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_below(items.len())]
    }
}

/// Run `n` seeded pseudo-random cases of a property. Each case receives a
/// generator derived from `seed` and the case index, so failures reproduce
/// by running the same seed again. Panics (assert failures) inside the
/// closure surface with the case index attached via a labeled message.
pub fn cases(seed: u64, n: usize, mut f: impl FnMut(&mut Rng)) {
    for i in 0..n {
        let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            assert!(r.u32_below(17) < 17);
            let v = r.u32_range_inclusive(3, 9);
            assert!((3..=9).contains(&v));
            let f = r.f32_range(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            let d = r.f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn values_cover_the_range() {
        // A crude uniformity check: all 8 buckets of u32_below(8) hit.
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.u32_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        cases(9, 5, |r| first.push(r.next_u64()));
        let mut second = Vec::new();
        cases(9, 5, |r| second.push(r.next_u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }
}
