//! # gcl-rng — a tiny deterministic PRNG
//!
//! The toolkit needs reproducible pseudo-random streams in two places:
//! synthetic workload inputs (matrices, images, graphs) and property-style
//! tests that sweep randomized cases. Both must be bit-stable across runs
//! and platforms so that every figure regeneration sees identical inputs.
//! This crate implements xoshiro256** seeded via splitmix64 — the same
//! construction `rand`'s `SmallRng` used on 64-bit targets — with the small
//! range/float helpers the call sites need, and no dependencies.
//!
//! It also hosts [`backoff`], the toolkit's single implementation of
//! capped-exponential-backoff-with-seeded-jitter, shared by the job pool's
//! retry path, `gcl suite --retries`, the serve/fleet clients, and the
//! fleet worker's reconnect loop.
//!
//! ```
//! use gcl_rng::Rng;
//!
//! let mut a = Rng::new(42);
//! let mut b = Rng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! assert!(a.f32_range(0.1, 1.0) < 1.0);
//! assert!(a.u32_below(10) < 10);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Seed a generator. Equal seeds give equal streams, forever.
    pub fn new(seed: u64) -> Rng {
        let mut sm = seed;
        Rng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Next raw 32-bit value (the high half of [`Rng::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        // 53 mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn f32(&mut self) -> f32 {
        // 24 mantissa bits.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn f32_range(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.f32()
    }

    /// Uniform `u32` in `[0, bound)` via Lemire's multiply-shift reduction
    /// (unbiased enough for input generation; exact bias < 2^-32).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn u32_below(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "u32_below(0)");
        ((u64::from(self.next_u32()) * u64::from(bound)) >> 32) as u32
    }

    /// Uniform `u32` in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn u32_range_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "empty range [{lo}, {hi}]");
        let span = hi - lo;
        if span == u32::MAX {
            return self.next_u32();
        }
        lo + self.u32_below(span + 1)
    }

    /// Uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "usize_below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// `true` with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Pick one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.usize_below(items.len())]
    }
}

pub mod backoff {
    //! Capped exponential backoff with seeded jitter.
    //!
    //! Every retry loop in the toolkit — pool job retries, `gcl suite
    //! --retries`, serve/fleet client reconnects and queue-full submits,
    //! fleet worker joins — draws its delays from one [`Backoff`] policy so
    //! the schedule is defined (and unit-tested) exactly once. The delay
    //! for attempt `n` (1-based) doubles a base window up to a cap, then
    //! draws uniformly from the *upper half* of that window: the jitter
    //! keeps N peers that failed together from waking in lockstep, while
    //! the seeded [`Rng`] keeps any single run's schedule reproducible.

    use crate::Rng;

    /// A backoff policy: base delay window and its cap, in milliseconds.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Backoff {
        /// Window for the first attempt, in milliseconds.
        pub base_ms: u64,
        /// Largest window any attempt can reach, in milliseconds.
        pub cap_ms: u64,
    }

    /// The house default: 50 ms doubling, capped at 2 s — the schedule the
    /// job pool has always used.
    pub const DEFAULT: Backoff = Backoff {
        base_ms: 50,
        cap_ms: 2_000,
    };

    impl Default for Backoff {
        fn default() -> Backoff {
            DEFAULT
        }
    }

    impl Backoff {
        /// A policy with the given base and cap.
        pub const fn new(base_ms: u64, cap_ms: u64) -> Backoff {
            Backoff { base_ms, cap_ms }
        }

        /// The jittered delay before retry `attempt` (1-based): the window
        /// is `base · 2^(attempt-1)` capped at `cap_ms`, and the delay is
        /// drawn uniformly from `[window/2, window]`.
        ///
        /// Safe for unbounded attempt counts: a long-lived reconnect loop
        /// can pass any `attempt` (including `u64::MAX`) and the doubling
        /// saturates instead of overflowing the shift.
        pub fn delay_ms(&self, attempt: u64, rng: &mut Rng) -> u64 {
            let shift = attempt.saturating_sub(1);
            // `1u64 << shift` is undefined for shift >= 64, and a plain
            // doubling would debug-overflow long before the cap bites on a
            // small base. Saturate the factor explicitly; the cap and the
            // u32 jitter clamp bound the window from there.
            let doubling = if shift >= 64 { u64::MAX } else { 1u64 << shift };
            let window = self
                .base_ms
                .saturating_mul(doubling)
                .min(self.cap_ms)
                // Keep the jitter draw inside u32 range whatever the cap.
                .min(u64::from(u32::MAX) - 1);
            let half = window / 2;
            half + u64::from(rng.u32_below((window - half + 1) as u32))
        }
    }

    /// The default schedule's delay before retry `attempt` (1-based).
    pub fn backoff_ms(attempt: u64, rng: &mut Rng) -> u64 {
        DEFAULT.delay_ms(attempt, rng)
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn default_doubles_and_caps_with_upper_half_jitter() {
            let mut rng = Rng::new(1);
            for attempt in 1..=12u64 {
                let cap = 50u64
                    .saturating_mul(1 << (attempt - 1).min(6))
                    .min(2_000u64);
                for _ in 0..100 {
                    let b = backoff_ms(attempt, &mut rng);
                    assert!(b >= cap / 2, "attempt {attempt}: {b} below {}", cap / 2);
                    assert!(b <= cap, "attempt {attempt}: {b} above cap {cap}");
                }
            }
            // The cap holds forever, even for absurd attempt numbers.
            assert!(backoff_ms(u64::MAX, &mut Rng::new(2)) <= 2_000);
        }

        #[test]
        fn schedules_are_seeded_and_jittered() {
            // Same seed: same schedule. Different seeds: schedules diverge
            // somewhere (peers that failed together don't wake in lockstep).
            let schedule = |seed: u64| -> Vec<u64> {
                let mut rng = Rng::new(seed);
                (1..=8).map(|a| backoff_ms(a, &mut rng)).collect()
            };
            assert_eq!(schedule(7), schedule(7));
            assert_ne!(schedule(7), schedule(8));
            // And the jitter is real: one attempt number draws distinct
            // values across calls.
            let mut r1 = Rng::new(1);
            let distinct: std::collections::HashSet<u64> =
                (0..50).map(|_| backoff_ms(6, &mut r1)).collect();
            assert!(distinct.len() > 1, "no jitter in backoff");
        }

        #[test]
        fn shift_saturates_at_overflow_boundary_attempts() {
            // The doubling shift must not wrap or debug-overflow at the
            // attempt counts where `1u64 << (attempt-1)` leaves u64 range.
            // Pin the cap across every boundary: 32/33 (u32 shift width),
            // 63/64/65 (u64 shift width), and u64::MAX.
            let boundaries = [1u64, 31, 32, 33, 63, 64, 65, u64::MAX];
            let policies = [
                DEFAULT,
                Backoff::new(1, u64::MAX),
                Backoff::new(u64::MAX, u64::MAX),
                Backoff::new(3, 1_000),
            ];
            for policy in policies {
                for &attempt in &boundaries {
                    let mut rng = Rng::new(attempt ^ policy.base_ms);
                    let d = policy.delay_ms(attempt, &mut rng);
                    let ceiling = policy.cap_ms.min(u64::from(u32::MAX) - 1);
                    assert!(
                        d <= ceiling,
                        "base {} cap {} attempt {attempt}: delay {d} above {ceiling}",
                        policy.base_ms,
                        policy.cap_ms
                    );
                }
            }
            // Once the window saturates, deeper attempts draw from the same
            // capped window: the lower bound (window/2) is still honored.
            let mut rng = Rng::new(11);
            for &attempt in &[33u64, 64, 65, u64::MAX] {
                let d = DEFAULT.delay_ms(attempt, &mut rng);
                assert!(
                    (1_000..=2_000).contains(&d),
                    "attempt {attempt}: saturated delay {d} outside [1000, 2000]"
                );
            }
        }

        #[test]
        fn custom_policies_respect_base_and_cap() {
            let fast = Backoff::new(5, 40);
            let mut rng = Rng::new(3);
            for attempt in 1..=10 {
                let d = fast.delay_ms(attempt, &mut rng);
                assert!(d <= 40, "attempt {attempt}: {d} above cap");
            }
            // First attempt stays inside the base window.
            let first = fast.delay_ms(1, &mut Rng::new(4));
            assert!(first <= 5, "first delay {first} above base");
            // Degenerate zero policy never panics and never sleeps.
            assert_eq!(Backoff::new(0, 0).delay_ms(9, &mut rng), 0);
        }
    }
}

pub use backoff::Backoff;

/// Run `n` seeded pseudo-random cases of a property. Each case receives a
/// generator derived from `seed` and the case index, so failures reproduce
/// by running the same seed again. Panics (assert failures) inside the
/// closure surface with the case index attached via a labeled message.
pub fn cases(seed: u64, n: usize, mut f: impl FnMut(&mut Rng)) {
    for i in 0..n {
        let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        f(&mut rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            assert!(r.u32_below(17) < 17);
            let v = r.u32_range_inclusive(3, 9);
            assert!((3..=9).contains(&v));
            let f = r.f32_range(-2.0, 2.0);
            assert!((-2.0..2.0).contains(&f));
            let d = r.f64();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn values_cover_the_range() {
        // A crude uniformity check: all 8 buckets of u32_below(8) hit.
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.u32_below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cases_are_reproducible() {
        let mut first = Vec::new();
        cases(9, 5, |r| first.push(r.next_u64()));
        let mut second = Vec::new();
        cases(9, 5, |r| second.push(r.next_u64()));
        assert_eq!(first, second);
        assert_eq!(first.len(), 5);
    }
}
