//! The kernel verifier: structural lints over one kernel.
//!
//! Checks, in pc order of their anchors:
//!
//! * **use-before-def** — a register read with no reaching definition;
//! * **type-mismatch** — an operand whose reaching definitions produce a
//!   different width class (predicate / 32-bit / 64-bit) than the consuming
//!   instruction expects;
//! * **unreachable** — basic blocks no path from the entry reaches;
//! * **dead-store** / **dead-load** — a register definition whose value no
//!   path ever reads again;
//! * **no-exit** — no `exit` instruction is reachable (the kernel loops
//!   forever by construction; [`gcl_ptx::Kernel`] validation already rules
//!   out falling off the end).

use crate::dataflow::{solve, Analysis, Direction, RegSet};
use crate::diag::{Diagnostic, Severity};
use gcl_core::ReachingDefs;
use gcl_ptx::{AluOp, Cfg, Instruction, Kernel, Op, Reg, Type, UnaryOp};
use std::collections::BTreeSet;
use std::fmt;

/// Width class of a register value, as far as the lints care: predicates
/// never mix with data, and 32-bit values never mix with 64-bit ones.
/// Signedness and float-vs-integer are deliberately not distinguished —
/// `mov.b32`/`mov.b64` legitimately blur them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Pred,
    W32,
    W64,
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Kind::Pred => write!(f, "pred"),
            Kind::W32 => write!(f, "32-bit"),
            Kind::W64 => write!(f, "64-bit"),
        }
    }
}

fn kind(ty: Type) -> Kind {
    if ty == Type::Pred {
        Kind::Pred
    } else if ty.size_bytes() == 8 {
        Kind::W64
    } else {
        Kind::W32
    }
}

/// The width class an instruction's destination register holds.
fn def_kind(inst: &Instruction) -> Option<Kind> {
    Some(match &inst.op {
        Op::Ld { ty, .. } | Op::Mov { ty, .. } | Op::Sfu { ty, .. } => kind(*ty),
        Op::Cvt { dst_ty, .. } => kind(*dst_ty),
        Op::Unary { op, ty, .. } => match op {
            UnaryOp::Popc | UnaryOp::Clz => Kind::W32,
            _ => kind(*ty),
        },
        Op::Alu { op, ty, .. } => match op {
            AluOp::MulWide => Kind::W64,
            _ => kind(*ty),
        },
        Op::Mad { ty, wide, .. } => {
            if *wide {
                Kind::W64
            } else {
                kind(*ty)
            }
        }
        Op::Setp { .. } => Kind::Pred,
        Op::Selp { ty, .. } => kind(*ty),
        Op::Atom { ty, .. } => kind(*ty),
        Op::St { .. } | Op::Bra { .. } | Op::Bar { .. } | Op::Exit => return None,
    })
}

/// What a use site requires of a register operand.
#[derive(Debug, Clone, Copy)]
enum Expect {
    Exact(Kind),
    /// Address bases may be 32- or 64-bit, but never predicates.
    NotPred,
}

/// Register uses of one instruction with their expected width class.
fn use_expectations(inst: &Instruction) -> Vec<(Reg, Expect)> {
    let mut out = Vec::new();
    if let Some(g) = inst.guard {
        out.push((g.pred, Expect::Exact(Kind::Pred)));
    }
    match &inst.op {
        Op::Ld { addr, .. } => {
            if let Some(b) = addr.base {
                out.push((b, Expect::NotPred));
            }
        }
        Op::St { ty, addr, src, .. } => {
            if let Some(b) = addr.base {
                out.push((b, Expect::NotPred));
            }
            if let Some(r) = src.reg() {
                out.push((r, Expect::Exact(kind(*ty))));
            }
        }
        Op::Mov { ty, src, .. } => {
            if let Some(r) = src.reg() {
                out.push((r, Expect::Exact(kind(*ty))));
            }
        }
        Op::Cvt { src_ty, src, .. } => {
            if let Some(r) = src.reg() {
                out.push((r, Expect::Exact(kind(*src_ty))));
            }
        }
        Op::Unary { ty, a, .. } | Op::Sfu { ty, a, .. } => {
            if let Some(r) = a.reg() {
                out.push((r, Expect::Exact(kind(*ty))));
            }
        }
        Op::Alu { op, ty, a, b, .. } => {
            if let Some(r) = a.reg() {
                out.push((r, Expect::Exact(kind(*ty))));
            }
            if let Some(r) = b.reg() {
                // Shift amounts may be any integer width in PTX.
                let e = match op {
                    AluOp::Shl | AluOp::Shr => Expect::NotPred,
                    _ => Expect::Exact(kind(*ty)),
                };
                out.push((r, e));
            }
        }
        Op::Mad {
            ty, a, b, c, wide, ..
        } => {
            for o in [a, b] {
                if let Some(r) = o.reg() {
                    out.push((r, Expect::Exact(kind(*ty))));
                }
            }
            if let Some(r) = c.reg() {
                // mad.wide accumulates into the widened type.
                let k = if *wide { Kind::W64 } else { kind(*ty) };
                out.push((r, Expect::Exact(k)));
            }
        }
        Op::Setp { ty, a, b, .. } => {
            for o in [a, b] {
                if let Some(r) = o.reg() {
                    out.push((r, Expect::Exact(kind(*ty))));
                }
            }
        }
        Op::Selp { ty, a, b, pred, .. } => {
            for o in [a, b] {
                if let Some(r) = o.reg() {
                    out.push((r, Expect::Exact(kind(*ty))));
                }
            }
            out.push((*pred, Expect::Exact(Kind::Pred)));
        }
        Op::Atom { ty, addr, src, .. } => {
            if let Some(b) = addr.base {
                out.push((b, Expect::NotPred));
            }
            if let Some(r) = src.reg() {
                out.push((r, Expect::Exact(kind(*ty))));
            }
        }
        Op::Bra { .. } | Op::Bar { .. } | Op::Exit => {}
    }
    out
}

/// Backward liveness of registers: a register is live where some later path
/// still reads it.
struct Liveness {
    num_regs: u32,
}

impl Analysis for Liveness {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> RegSet {
        RegSet::empty(self.num_regs)
    }

    fn init(&self) -> RegSet {
        RegSet::empty(self.num_regs)
    }

    fn transfer(&self, _pc: usize, inst: &Instruction, fact: &mut RegSet) {
        if let Some(d) = inst.dst_reg() {
            // A guarded definition may not execute; it cannot kill liveness.
            if inst.guard.is_none() {
                fact.remove(d);
            }
        }
        for r in inst.src_regs() {
            fact.insert(r);
        }
    }
}

fn diag(
    kernel: &Kernel,
    pc: usize,
    severity: Severity,
    code: &'static str,
    message: String,
) -> Diagnostic {
    Diagnostic {
        pc,
        severity,
        code,
        message,
        inst: kernel.insts()[pc].to_string(),
    }
}

/// Run every verifier lint over `kernel` and return the findings in pc
/// order.
pub fn verify(kernel: &Kernel, cfg: &Cfg) -> Vec<Diagnostic> {
    let insts = kernel.insts();
    let mut out = Vec::new();

    // Reachability.
    let reachable_blocks: BTreeSet<usize> = cfg.reverse_post_order().into_iter().collect();
    let mut reachable = vec![false; insts.len()];
    for &b in &reachable_blocks {
        for pc in cfg.blocks()[b].pcs() {
            reachable[pc] = true;
        }
    }
    for (b, block) in cfg.blocks().iter().enumerate() {
        if !reachable_blocks.contains(&b) {
            out.push(diag(
                kernel,
                block.start,
                Severity::Warning,
                "unreachable",
                format!(
                    "block at pc {}..{} is unreachable from the entry",
                    block.start,
                    block.end - 1
                ),
            ));
        }
    }

    // A kernel with no reachable `exit` cannot terminate. (Falling off the
    // end is already rejected by `Kernel` validation.)
    let has_exit = insts
        .iter()
        .enumerate()
        .any(|(pc, i)| reachable[pc] && matches!(i.op, Op::Exit));
    if !has_exit {
        out.push(diag(
            kernel,
            0,
            Severity::Error,
            "no-exit",
            "no exit instruction is reachable from the entry (the kernel cannot terminate)"
                .to_string(),
        ));
    }

    // Use-before-def and type/width checks over reaching definitions.
    let reaching = ReachingDefs::compute(kernel);
    for (pc, inst) in insts.iter().enumerate() {
        if !reachable[pc] {
            continue;
        }
        let mut seen: BTreeSet<Reg> = BTreeSet::new();
        for (reg, expect) in use_expectations(inst) {
            if !seen.insert(reg) {
                continue;
            }
            let defs = reaching.defs_reaching_use(kernel, pc, reg);
            if defs.is_empty() {
                out.push(diag(
                    kernel,
                    pc,
                    Severity::Error,
                    "use-before-def",
                    format!("{reg} is read but no definition reaches this use"),
                ));
                continue;
            }
            for def in defs {
                let Some(dk) = def_kind(&insts[def.pc]) else {
                    continue;
                };
                let bad = match expect {
                    Expect::Exact(k) => dk != k,
                    Expect::NotPred => dk == Kind::Pred,
                };
                if bad {
                    let want = match expect {
                        Expect::Exact(k) => k.to_string(),
                        Expect::NotPred => "an address".to_string(),
                    };
                    out.push(diag(
                        kernel,
                        pc,
                        Severity::Error,
                        "type-mismatch",
                        format!(
                            "{reg} is defined as {dk} at pc {} but used as {want}",
                            def.pc
                        ),
                    ));
                    break;
                }
            }
        }
    }

    // Dead definitions: the value written is never read on any later path.
    let liveness = Liveness {
        num_regs: kernel.num_regs(),
    };
    let live_out = solve(&liveness, kernel, cfg).per_pc(&liveness, kernel, cfg);
    for (pc, inst) in insts.iter().enumerate() {
        if !reachable[pc] {
            continue;
        }
        // Atomics mutate memory; an ignored result is idiomatic.
        if matches!(inst.op, Op::Atom { .. }) {
            continue;
        }
        let Some(d) = inst.dst_reg() else { continue };
        if !live_out[pc].contains(d) {
            let (code, what) = if inst.op.is_load() {
                ("dead-load", "loaded value")
            } else {
                ("dead-store", "value")
            };
            out.push(diag(
                kernel,
                pc,
                Severity::Warning,
                code,
                format!("the {what} written to {d} is never read"),
            ));
        }
    }

    out.sort_by(|a, b| (a.pc, a.code).cmp(&(b.pc, b.code)));
    out
}
