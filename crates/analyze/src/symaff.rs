//! Symbolic affine address forms and strided-range arithmetic.
//!
//! The coalescing predictor ([`crate::affine`]) abstracts an address as
//! `base + cx·tid.x + cy·tid.y + cz·tid.z + k` — enough for per-warp
//! requests, blind to everything beyond one warp. The footprint analysis
//! ([`crate::footprint`]) needs the *whole* index expression: which CTA the
//! thread is in, and how far a loop walks the pointer. This module supplies
//! its two value domains:
//!
//! * [`SymAffine`] — a linear form `Σ cᵢ·termᵢ + k` over the terms
//!   `{tid.*, ctaid.*, %laneid, loop induction variables}` plus a set of
//!   base-pointer parameters and an "unknown uniform addend" flag. Launch
//!   geometry (`%ntid.*`, `%nctaid.*`) is substituted concretely from a
//!   [`LaunchCtx`], so `ctaid.x * ntid.x + tid.x` stays linear.
//!   Multiplication by a *runtime-unknown* uniform (a scalar kernel
//!   parameter like a matrix dimension) keeps the term support but marks
//!   every coefficient [`Coeff::Unknown`] — the analysis then still knows
//!   *which* ids the address depends on, which is exactly what broadcast
//!   detection needs.
//! * [`ARange`] — a finite arithmetic progression `{lo, lo+step, ..., hi}`
//!   with an exactness bit. Addition (Minkowski sum), scaling, hull and
//!   intersection are closed on the domain; inexact results are always
//!   *supersets* of the true set, and the `exact` flag certifies equality.
//!   Footprints are sums of per-term ranges; inter-CTA sharing is range
//!   intersection.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A symbolic term of a [`SymAffine`] form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// `%tid.x` — thread index within the CTA.
    TidX,
    /// `%tid.y`
    TidY,
    /// `%tid.z`
    TidZ,
    /// `%ctaid.x` — CTA index within the grid.
    CtaIdX,
    /// `%ctaid.y`
    CtaIdY,
    /// `%ctaid.z`
    CtaIdZ,
    /// `%laneid` — lane within the warp (domain `0..32`).
    Lane,
    /// The induction variable of loop `id` (a [`gcl_ptx::LoopForest`]
    /// index), counting iterations from 0.
    Iv(usize),
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::TidX => write!(f, "tid.x"),
            Term::TidY => write!(f, "tid.y"),
            Term::TidZ => write!(f, "tid.z"),
            Term::CtaIdX => write!(f, "ctaid.x"),
            Term::CtaIdY => write!(f, "ctaid.y"),
            Term::CtaIdZ => write!(f, "ctaid.z"),
            Term::Lane => write!(f, "laneid"),
            Term::Iv(l) => write!(f, "iv{l}"),
        }
    }
}

/// A term coefficient: a known integer, or unknown (but grid-uniform).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coeff {
    /// Exactly this many bytes per unit of the term.
    Known(i64),
    /// Nonconstant scale (e.g. multiplied by a runtime parameter value);
    /// the dependence exists but its magnitude is unknown.
    Unknown,
}

impl Coeff {
    fn add(self, other: Coeff) -> Coeff {
        match (self, other) {
            (Coeff::Known(a), Coeff::Known(b)) => Coeff::Known(a.wrapping_add(b)),
            _ => Coeff::Unknown,
        }
    }

    fn scale(self, c: i64) -> Coeff {
        match self {
            Coeff::Known(a) => Coeff::Known(a.wrapping_mul(c)),
            Coeff::Unknown => Coeff::Unknown,
        }
    }

    fn is_zero(self) -> bool {
        matches!(self, Coeff::Known(0))
    }
}

/// Concrete launch geometry the evaluation substitutes for `%ntid.*` /
/// `%nctaid.*`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchCtx {
    /// CTA shape (threads per CTA in x, y, z).
    pub ntid: [u32; 3],
    /// Grid shape (CTAs in x, y, z).
    pub nctaid: [u32; 3],
}

impl LaunchCtx {
    /// A launch context from CTA and grid shapes.
    pub fn new(ntid: [u32; 3], nctaid: [u32; 3]) -> LaunchCtx {
        LaunchCtx { ntid, nctaid }
    }

    /// Total CTAs in the grid.
    pub fn n_ctas(&self) -> u64 {
        self.nctaid.iter().map(|&d| u64::from(d.max(1))).product()
    }

    /// Linearize a CTA coordinate x-major (the simulator's CTA id order).
    pub fn linear_cta(&self, c: [u32; 3]) -> u64 {
        u64::from(c[0])
            + u64::from(self.nctaid[0].max(1))
                * (u64::from(c[1]) + u64::from(self.nctaid[1].max(1)) * u64::from(c[2]))
    }

    /// The value domain size of a term under this geometry, if bounded by
    /// the geometry alone (`Iv` domains come from trip counts instead).
    pub fn term_domain(&self, t: Term) -> Option<u64> {
        Some(match t {
            Term::TidX => u64::from(self.ntid[0].max(1)),
            Term::TidY => u64::from(self.ntid[1].max(1)),
            Term::TidZ => u64::from(self.ntid[2].max(1)),
            Term::CtaIdX => u64::from(self.nctaid[0].max(1)),
            Term::CtaIdY => u64::from(self.nctaid[1].max(1)),
            Term::CtaIdZ => u64::from(self.nctaid[2].max(1)),
            Term::Lane => 32,
            Term::Iv(_) => return None,
        })
    }
}

/// A symbolic affine form: `Σ coeff·term + k`, plus the base-pointer
/// parameters that enter additively and an unknown-uniform-addend flag.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymAffine {
    terms: BTreeMap<Term, Coeff>,
    /// Known constant addend, in bytes.
    pub k: i64,
    /// Byte offsets (within the param block) of `ld.param` values that
    /// enter the form additively with coefficient 1 — in practice, the
    /// base pointers of the arrays the address walks.
    pub bases: BTreeSet<u32>,
    /// Whether an unknown grid-uniform addend is present (scalar parameter
    /// values, merged control paths). Uniform addends shift every thread of
    /// every CTA identically, so they never affect sharing.
    pub ubase: bool,
}

impl SymAffine {
    /// The constant `k`.
    pub fn constant(k: i64) -> SymAffine {
        SymAffine {
            k,
            ..SymAffine::default()
        }
    }

    /// An unknown-but-uniform value.
    pub fn unknown_uniform() -> SymAffine {
        SymAffine {
            ubase: true,
            ..SymAffine::default()
        }
    }

    /// The form `1·t`.
    pub fn term(t: Term) -> SymAffine {
        let mut s = SymAffine::default();
        s.terms.insert(t, Coeff::Known(1));
        s
    }

    /// The value of parameter-block offset `off` (a `ld.param` result).
    pub fn param(off: u32) -> SymAffine {
        let mut s = SymAffine::default();
        s.bases.insert(off);
        s
    }

    /// The coefficient of `t` (`Known(0)` when absent).
    pub fn coeff(&self, t: Term) -> Coeff {
        self.terms.get(&t).copied().unwrap_or(Coeff::Known(0))
    }

    /// The terms with nonzero coefficient, in `Term` order.
    pub fn terms(&self) -> impl Iterator<Item = (Term, Coeff)> + '_ {
        self.terms.iter().map(|(&t, &c)| (t, c))
    }

    /// Whether the form is the pure constant `k` (no terms, no bases, no
    /// unknown addend).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty() && self.bases.is_empty() && !self.ubase
    }

    /// Whether the value is grid-uniform: the same for every thread of
    /// every CTA (only constants, parameters, and unknown uniform parts).
    pub fn is_uniform(&self) -> bool {
        self.terms.is_empty()
    }

    fn insert_coeff(&mut self, t: Term, c: Coeff) {
        if c.is_zero() {
            self.terms.remove(&t);
        } else {
            self.terms.insert(t, c);
        }
    }

    /// Sum of two forms.
    pub fn add(&self, other: &SymAffine) -> SymAffine {
        let mut out = self.clone();
        for (&t, &c) in &other.terms {
            let merged = out.coeff(t).add(c);
            out.insert_coeff(t, merged);
        }
        out.k = out.k.wrapping_add(other.k);
        // A parameter added twice stops being "the base pointer, once";
        // degrade the duplicate to an unknown uniform addend.
        for &b in &other.bases {
            if !out.bases.insert(b) {
                out.ubase = true;
            }
        }
        out.ubase |= other.ubase;
        out
    }

    /// Negation. Base pointers cannot be negated meaningfully; they
    /// degrade to an unknown uniform addend.
    pub fn neg(&self) -> SymAffine {
        let mut out = SymAffine::default();
        for (&t, &c) in &self.terms {
            out.insert_coeff(t, c.scale(-1));
        }
        out.k = self.k.wrapping_neg();
        out.ubase = self.ubase || !self.bases.is_empty();
        out
    }

    /// Scale by a known constant.
    pub fn scale(&self, c: i64) -> SymAffine {
        if c == 0 {
            return SymAffine::constant(0);
        }
        let mut out = SymAffine::default();
        for (&t, &co) in &self.terms {
            out.insert_coeff(t, co.scale(c));
        }
        out.k = self.k.wrapping_mul(c);
        out.ubase = self.ubase || !self.bases.is_empty();
        if c == 1 {
            out.bases = self.bases.clone();
            out.ubase = self.ubase;
        }
        out
    }

    /// Multiply by an unknown grid-uniform scalar: term support survives
    /// with [`Coeff::Unknown`] coefficients; constants become unknown
    /// uniform. Returns `None` (not representable) when `self` carries a
    /// base pointer — scaled pointers are not addresses we can reason
    /// about.
    pub fn scale_unknown(&self) -> Option<SymAffine> {
        if !self.bases.is_empty() {
            return None;
        }
        let mut out = SymAffine::default();
        for (&t, &c) in &self.terms {
            if !c.is_zero() {
                out.terms.insert(t, Coeff::Unknown);
            }
        }
        out.ubase = self.ubase || self.k != 0 || out.terms.is_empty();
        Some(out)
    }

    /// Least upper bound over merging control paths: agreeing coefficients
    /// survive, disagreeing ones widen to [`Coeff::Unknown`]; differing
    /// constants fold into the unknown uniform addend; base sets union.
    pub fn join(&self, other: &SymAffine) -> SymAffine {
        let mut out = SymAffine::default();
        let keys: BTreeSet<Term> = self
            .terms
            .keys()
            .chain(other.terms.keys())
            .copied()
            .collect();
        for t in keys {
            let c = match (self.coeff(t), other.coeff(t)) {
                (Coeff::Known(a), Coeff::Known(b)) if a == b => Coeff::Known(a),
                _ => Coeff::Unknown,
            };
            out.insert_coeff(t, c);
        }
        if self.k == other.k {
            out.k = self.k;
        } else {
            out.ubase = true;
        }
        out.bases = self.bases.union(&other.bases).copied().collect();
        out.ubase |= self.ubase || other.ubase || self.bases != other.bases;
        out
    }
}

impl fmt::Display for SymAffine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for &b in &self.bases {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "param@{b}")?;
            first = false;
        }
        if self.ubase {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "u")?;
            first = false;
        }
        for (&t, &c) in &self.terms {
            if !first {
                write!(f, " + ")?;
            }
            match c {
                Coeff::Known(v) => write!(f, "{v}*{t}")?,
                Coeff::Unknown => write!(f, "?*{t}")?,
            }
            first = false;
        }
        if self.k != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.k)?;
        }
        Ok(())
    }
}

/// Abstract value in the symbolic affine domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymVal {
    /// No value yet (unreached path / cut cycle); identity of
    /// [`SymVal::join`].
    Bottom,
    /// An affine form.
    Val(SymAffine),
    /// Not affine (load-derived, non-linear, or unrecognized recurrence).
    Top,
}

impl SymVal {
    /// Least upper bound.
    pub fn join(&self, other: &SymVal) -> SymVal {
        match (self, other) {
            (SymVal::Bottom, x) | (x, SymVal::Bottom) => x.clone(),
            (SymVal::Top, _) | (_, SymVal::Top) => SymVal::Top,
            (SymVal::Val(a), SymVal::Val(b)) => SymVal::Val(a.join(b)),
        }
    }

    /// The affine form, if this is [`SymVal::Val`].
    pub fn val(&self) -> Option<&SymAffine> {
        match self {
            SymVal::Val(v) => Some(v),
            _ => None,
        }
    }
}

/// A finite arithmetic progression `{lo, lo+step, ..., hi}` of byte or
/// block offsets, with an exactness certificate.
///
/// Invariants: `step >= 1`, `lo <= hi`, `(hi - lo) % step == 0`. When
/// `exact` is false the range is a *superset* of the abstracted set (same
/// bounds, possibly finer step than reality warrants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ARange {
    /// Smallest element.
    pub lo: i64,
    /// Largest element.
    pub hi: i64,
    /// Distance between consecutive elements (`>= 1`).
    pub step: i64,
    /// Whether the progression equals the abstracted set, rather than
    /// over-approximating it.
    pub exact: bool,
}

impl ARange {
    /// The one-element range `{v}`.
    pub fn singleton(v: i64) -> ARange {
        ARange {
            lo: v,
            hi: v,
            step: 1,
            exact: true,
        }
    }

    /// A range from bounds and step; `hi` is clipped down onto the
    /// progression.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `step < 1`.
    pub fn new(lo: i64, hi: i64, step: i64, exact: bool) -> ARange {
        assert!(step >= 1, "ARange step must be >= 1");
        assert!(lo <= hi, "ARange lo must be <= hi");
        let hi = lo + ((hi - lo) / step) * step;
        let step = if lo == hi { 1 } else { step };
        ARange {
            lo,
            hi,
            step,
            exact,
        }
    }

    /// `{0, c, 2c, ..., (n-1)·c}` — the contribution of a term with
    /// coefficient `c` over a domain of `n` values (exact). Negative `c`
    /// walks downward; the result is normalized to `lo <= hi`.
    pub fn strided(c: i64, n: u64) -> ARange {
        let n = n.max(1) as i64;
        if c == 0 || n == 1 {
            return ARange::singleton(0);
        }
        let end = c * (n - 1);
        ARange::new(end.min(0), end.max(0), c.abs(), true)
    }

    /// Number of elements.
    pub fn count(&self) -> u64 {
        ((self.hi - self.lo) / self.step + 1) as u64
    }

    /// The extent `hi - lo` in the range's unit.
    pub fn extent(&self) -> i64 {
        self.hi - self.lo
    }

    /// Whether `v` is an element (of the progression; for inexact ranges
    /// this is membership in the superset).
    pub fn contains(&self, v: i64) -> bool {
        v >= self.lo && v <= self.hi && (v - self.lo) % self.step == 0
    }

    /// Shift every element by `d`.
    pub fn shift(&self, d: i64) -> ARange {
        ARange {
            lo: self.lo + d,
            hi: self.hi + d,
            ..*self
        }
    }

    /// Minkowski sum `{a + b}`. Exact when one side is a singleton, or
    /// when the finer progression tiles the coarser step completely
    /// (`span(fine) + step(fine) >= step(coarse)` with divisible steps);
    /// otherwise a gcd-step superset.
    pub fn add(&self, other: &ARange) -> ARange {
        let lo = self.lo + other.lo;
        let hi = self.hi + other.hi;
        if self.count() == 1 {
            return ARange::new(lo, hi, other.step, other.exact && self.exact);
        }
        if other.count() == 1 {
            return ARange::new(lo, hi, self.step, self.exact && other.exact);
        }
        let g = gcd(self.step, other.step);
        let (fine, coarse) = if self.step <= other.step {
            (self, other)
        } else {
            (other, self)
        };
        let tiles = coarse.step % fine.step == 0 && fine.extent() + fine.step >= coarse.step;
        ARange::new(lo, hi, g, self.exact && other.exact && tiles)
    }

    /// Scale every element by `c != 0`.
    pub fn scale(&self, c: i64) -> ARange {
        assert!(c != 0, "scale by zero collapses the range; handle earlier");
        let (a, b) = (self.lo * c, self.hi * c);
        ARange::new(a.min(b), a.max(b), (self.step * c).abs(), self.exact)
    }

    /// Convex-ish hull of two ranges: bounds union, gcd step (including
    /// the offset between the progressions). Exact only when the result
    /// provably enumerates exactly the union.
    pub fn merge(&self, other: &ARange) -> ARange {
        let lo = self.lo.min(other.lo);
        let hi = self.hi.max(other.hi);
        let mut g = gcd(self.step, other.step);
        g = gcd(g, (self.lo - other.lo).abs());
        let g = g.max(1);
        // Exact iff same effective step, aligned, and no gap between them.
        let exact = self.exact
            && other.exact
            && self.step == other.step
            && g == self.step
            && self.lo.max(other.lo) <= self.hi.min(other.hi) + self.step;
        ARange::new(lo, hi, g, exact)
    }

    /// Intersection of the two progressions, `None` when empty. Solves the
    /// congruence pair exactly (CRT); on exact inputs the result is the
    /// exact set intersection, on inexact inputs it is a superset of the
    /// true intersection.
    pub fn intersect(&self, other: &ARange) -> Option<ARange> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo > hi {
            return None;
        }
        // x ≡ self.lo (mod self.step), x ≡ other.lo (mod other.step)
        let (g, _, _) = egcd(self.step, other.step);
        if (other.lo - self.lo).rem_euclid(g) != 0 {
            return None;
        }
        let l = self.step / g * other.step; // lcm
                                            // One solution via CRT, in i128 to dodge overflow.
        let (_, p, _) = egcd(self.step, other.step);
        let diff = i128::from(other.lo) - i128::from(self.lo);
        let x0 = i128::from(self.lo)
            + diff / i128::from(g) * i128::from(p) % (i128::from(l) / i128::from(g))
                * i128::from(self.step);
        // Smallest solution >= lo.
        let li = i128::from(l);
        let mut first = x0 + (i128::from(lo) - x0).div_euclid(li) * li;
        if first < i128::from(lo) {
            first += li;
        }
        if first > i128::from(hi) {
            return None;
        }
        Some(ARange::new(first as i64, hi, l, self.exact && other.exact))
    }
}

impl fmt::Display for ARange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.lo == self.hi {
            write!(f, "{{{}}}", self.lo)
        } else {
            write!(f, "{}..={}/{}", self.lo, self.hi, self.step)?;
            if !self.exact {
                write!(f, "~")?;
            }
            Ok(())
        }
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a.max(1)
}

/// Extended gcd: returns `(g, x, y)` with `a·x + b·y = g`.
fn egcd(a: i64, b: i64) -> (i64, i64, i64) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enumerate(r: &ARange) -> Vec<i64> {
        (0..r.count() as i64).map(|i| r.lo + i * r.step).collect()
    }

    #[test]
    fn strided_term_ranges() {
        let r = ARange::strided(4, 8);
        assert_eq!((r.lo, r.hi, r.step), (0, 28, 4));
        assert!(r.exact);
        let d = ARange::strided(-4, 8);
        assert_eq!((d.lo, d.hi, d.step), (-28, 0, 4));
        assert_eq!(ARange::strided(0, 5), ARange::singleton(0));
    }

    #[test]
    fn add_exactness() {
        // Fine range tiles the coarse step: exact.
        let a = ARange::strided(4, 32); // 0..124/4
        let b = ARange::strided(128, 4); // 0..384/128
        let s = a.add(&b);
        assert_eq!((s.lo, s.hi, s.step), (0, 508, 4));
        assert!(s.exact);
        // Gap between copies: inexact superset.
        let c = ARange::strided(4, 8); // 0..28/4
        let s2 = c.add(&b);
        assert!(!s2.exact);
        // Still a superset of the true sum.
        for x in enumerate(&c) {
            for y in enumerate(&b) {
                assert!(s2.contains(x + y));
            }
        }
    }

    #[test]
    fn intersect_congruences() {
        let a = ARange::new(0, 100, 4, true);
        let b = ARange::new(2, 100, 6, true);
        // 4x ≡ 2 mod 6 → x ≡ 2 mod 12 over the clipped window.
        let i = a.intersect(&b).expect("nonempty");
        assert_eq!(i.step, 12);
        for v in enumerate(&i) {
            assert!(a.contains(v) && b.contains(v));
        }
        assert!(i.exact);
        // Disjoint residues: empty.
        let c = ARange::new(1, 101, 4, true);
        assert_eq!(a.intersect(&c), None);
        // Disjoint windows: empty.
        let d = ARange::new(200, 300, 4, true);
        assert_eq!(a.intersect(&d), None);
    }

    #[test]
    fn merge_hull() {
        let a = ARange::new(0, 12, 4, true);
        let b = ARange::new(16, 28, 4, true);
        let m = a.merge(&b);
        assert_eq!((m.lo, m.hi, m.step), (0, 28, 4));
        assert!(m.exact); // adjacent, same step, aligned
        let c = ARange::new(100, 112, 4, true);
        let m2 = a.merge(&c);
        assert!(!m2.exact); // gap
    }

    #[test]
    fn sym_affine_algebra() {
        let tid = SymAffine::term(Term::TidX);
        let cta = SymAffine::term(Term::CtaIdX);
        let gid = cta.scale(64).add(&tid); // ctaid.x*64 + tid.x
        assert_eq!(gid.coeff(Term::CtaIdX), Coeff::Known(64));
        assert_eq!(gid.coeff(Term::TidX), Coeff::Known(1));
        let addr = SymAffine::param(0).add(&gid.scale(4));
        assert_eq!(addr.coeff(Term::CtaIdX), Coeff::Known(256));
        assert!(addr.bases.contains(&0));
        assert!(!addr.ubase);
        // Times an unknown scalar: support survives, magnitude does not.
        let scaled = gid.scale_unknown().expect("no bases");
        assert_eq!(scaled.coeff(Term::CtaIdX), Coeff::Unknown);
        assert_eq!(scaled.coeff(Term::TidY), Coeff::Known(0));
        // A scaled pointer is unrepresentable.
        assert!(addr.scale_unknown().is_none());
    }

    #[test]
    fn sym_affine_join() {
        let a = SymAffine::term(Term::TidX).scale(4);
        let b = SymAffine::term(Term::TidX).scale(4);
        assert_eq!(a.join(&b), a);
        let c = SymAffine::term(Term::TidX).scale(8);
        let j = a.join(&c);
        assert_eq!(j.coeff(Term::TidX), Coeff::Unknown);
        let d = SymAffine::constant(4);
        let e = SymAffine::constant(8);
        assert!(d.join(&e).ubase);
    }

    #[test]
    fn launch_ctx_domains() {
        let ctx = LaunchCtx::new([64, 2, 1], [8, 4, 1]);
        assert_eq!(ctx.term_domain(Term::TidX), Some(64));
        assert_eq!(ctx.term_domain(Term::CtaIdY), Some(4));
        assert_eq!(ctx.term_domain(Term::Iv(0)), None);
        assert_eq!(ctx.n_ctas(), 32);
        assert_eq!(ctx.linear_cta([3, 2, 0]), 19);
    }
}
