//! Tid-affine address analysis: static coalescing and bank-conflict
//! prediction for loads.
//!
//! Each address is abstracted as `base + cx·tid.x + cy·tid.y + cz·tid.z + k`
//! where `base` stands for any warp-uniform but statically unknown component
//! (kernel parameters, `%ctaid` products, loop-carried uniform values). When
//! the coefficients are known, the per-lane addresses of one warp are known
//! up to a uniform offset, which is enough to predict how many memory
//! requests the coalescer emits (global loads, [`gcl_sim`]'s 128 B-line
//! rule) or the bank-conflict degree (shared loads, 32 four-byte banks).
//!
//! Soundness caveats (also in DESIGN.md §11):
//!
//! * lanes are assumed to map to consecutive `tid.x` (x-major warps, true in
//!   the simulator); predictions with `cy`/`cz` components are reported
//!   [`Prediction::Unknown`] rather than guessed;
//! * the uniform base is assumed 128-byte aligned — a misaligned base can
//!   double the real request count, so the cross-validation margin is 2;
//! * `%laneid` is treated like `tid.x` (exact for x-major warps);
//! * loop-carried registers widen to "uniform, unknown" when the join of
//!   all reaching definitions agrees on coefficients, and to [`Affine::Top`]
//!   otherwise — per-iteration constants are therefore approximate, but
//!   coefficients (all the prediction uses) stay exact for the
//!   same-register `i += step` idiom the workloads use.

use gcl_core::{address_sources, DefSite, ReachingDefs};
use gcl_ptx::{AluOp, Kernel, Op, Operand, Space, Special, UnaryOp};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// An affine address expression `base? + cx·tid.x + cy·tid.y + cz·tid.z + k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AffineVal {
    /// Coefficient of `tid.x` (and `%laneid`).
    pub cx: i64,
    /// Coefficient of `tid.y`.
    pub cy: i64,
    /// Coefficient of `tid.z`.
    pub cz: i64,
    /// Known constant term, in bytes.
    pub k: i64,
    /// Whether an unknown warp-uniform component is present.
    pub base: bool,
}

impl AffineVal {
    fn constant(k: i64) -> AffineVal {
        AffineVal {
            cx: 0,
            cy: 0,
            cz: 0,
            k,
            base: false,
        }
    }

    fn uniform() -> AffineVal {
        AffineVal {
            cx: 0,
            cy: 0,
            cz: 0,
            k: 0,
            base: true,
        }
    }

    /// Whether all threads of a warp see the same value.
    pub fn is_uniform(&self) -> bool {
        self.cx == 0 && self.cy == 0 && self.cz == 0
    }

    fn is_constant(&self) -> bool {
        self.is_uniform() && !self.base
    }
}

impl fmt::Display for AffineVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        if self.base {
            write!(f, "base")?;
            first = false;
        }
        for (c, name) in [(self.cx, "tid.x"), (self.cy, "tid.y"), (self.cz, "tid.z")] {
            if c != 0 {
                if !first {
                    write!(f, " + ")?;
                }
                write!(f, "{c}*{name}")?;
                first = false;
            }
        }
        if self.k != 0 || first {
            if !first {
                write!(f, " + ")?;
            }
            write!(f, "{}", self.k)?;
        }
        Ok(())
    }
}

/// Abstract value of a register in the affine domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Affine {
    /// No information yet (cycle cut); identity for [`Affine::join`].
    Bottom,
    /// An affine expression.
    Val(AffineVal),
    /// Not affine in the tids (e.g. load-derived).
    Top,
}

impl Affine {
    /// Least upper bound of two abstract values.
    pub fn join(self, other: Affine) -> Affine {
        match (self, other) {
            (Affine::Bottom, x) | (x, Affine::Bottom) => x,
            (Affine::Top, _) | (_, Affine::Top) => Affine::Top,
            (Affine::Val(a), Affine::Val(b)) => {
                if a == b {
                    Affine::Val(a)
                } else if (a.cx, a.cy, a.cz) == (b.cx, b.cy, b.cz) {
                    // Same per-thread shape, different uniform part.
                    Affine::Val(AffineVal {
                        cx: a.cx,
                        cy: a.cy,
                        cz: a.cz,
                        k: 0,
                        base: true,
                    })
                } else {
                    Affine::Top
                }
            }
        }
    }
}

fn add(a: Affine, b: Affine) -> Affine {
    match (a, b) {
        (Affine::Bottom, _) | (_, Affine::Bottom) => Affine::Bottom,
        (Affine::Top, _) | (_, Affine::Top) => Affine::Top,
        (Affine::Val(a), Affine::Val(b)) => Affine::Val(AffineVal {
            cx: a.cx.wrapping_add(b.cx),
            cy: a.cy.wrapping_add(b.cy),
            cz: a.cz.wrapping_add(b.cz),
            k: a.k.wrapping_add(b.k),
            base: a.base || b.base,
        }),
    }
}

fn neg(a: Affine) -> Affine {
    match a {
        Affine::Val(v) => Affine::Val(AffineVal {
            cx: v.cx.wrapping_neg(),
            cy: v.cy.wrapping_neg(),
            cz: v.cz.wrapping_neg(),
            k: v.k.wrapping_neg(),
            base: v.base,
        }),
        other => other,
    }
}

fn scale(a: Affine, c: i64) -> Affine {
    match a {
        Affine::Val(v) => {
            if c == 0 {
                Affine::Val(AffineVal::constant(0))
            } else {
                Affine::Val(AffineVal {
                    cx: v.cx.wrapping_mul(c),
                    cy: v.cy.wrapping_mul(c),
                    cz: v.cz.wrapping_mul(c),
                    k: v.k.wrapping_mul(c),
                    base: v.base,
                })
            }
        }
        other => other,
    }
}

fn mul(a: Affine, b: Affine) -> Affine {
    match (a, b) {
        (Affine::Bottom, _) | (_, Affine::Bottom) => Affine::Bottom,
        (Affine::Val(x), _) if x.is_constant() => scale(b, x.k),
        (_, Affine::Val(y)) if y.is_constant() => scale(a, y.k),
        (Affine::Val(x), Affine::Val(y)) if x.is_uniform() && y.is_uniform() => {
            Affine::Val(AffineVal::uniform())
        }
        _ => Affine::Top,
    }
}

/// Fallback for operations the domain does not track linearly: uniform in,
/// uniform out; anything per-thread collapses to [`Affine::Top`].
fn uniform_rule(ops: &[Affine]) -> Affine {
    if ops.iter().any(|o| matches!(o, Affine::Bottom)) {
        return Affine::Bottom;
    }
    if ops
        .iter()
        .all(|o| matches!(o, Affine::Val(v) if v.is_uniform()))
    {
        Affine::Val(AffineVal::uniform())
    } else {
        Affine::Top
    }
}

/// Memoized affine evaluator over the reaching-definition chains, the same
/// traversal shape as `gcl_core`'s D/N classifier.
struct AffineEval<'k> {
    kernel: &'k Kernel,
    reaching: ReachingDefs,
    memo: HashMap<DefSite, Affine>,
    in_progress: HashSet<DefSite>,
}

impl<'k> AffineEval<'k> {
    fn new(kernel: &'k Kernel) -> AffineEval<'k> {
        AffineEval {
            kernel,
            reaching: ReachingDefs::compute(kernel),
            memo: HashMap::new(),
            in_progress: HashSet::new(),
        }
    }

    fn value_of_use(&mut self, use_pc: usize, reg: gcl_ptx::Reg) -> Affine {
        let defs = self.reaching.defs_reaching_use(self.kernel, use_pc, reg);
        if defs.is_empty() {
            // Uninitialized read: the verifier flags it; predict nothing.
            return Affine::Top;
        }
        let mut v = Affine::Bottom;
        for def in defs {
            v = v.join(self.value_of_def(def));
        }
        v
    }

    fn value_of_operand(&mut self, pc: usize, o: Operand) -> Affine {
        match o {
            Operand::Reg(r) => self.value_of_use(pc, r),
            Operand::Imm(v) => Affine::Val(AffineVal::constant(v)),
            // Float immediates never feed integer addresses usefully.
            Operand::FImm(_) => Affine::Val(AffineVal::uniform()),
            Operand::Special(s) => Affine::Val(match s {
                Special::TidX | Special::LaneId => AffineVal {
                    cx: 1,
                    cy: 0,
                    cz: 0,
                    k: 0,
                    base: false,
                },
                Special::TidY => AffineVal {
                    cx: 0,
                    cy: 1,
                    cz: 0,
                    k: 0,
                    base: false,
                },
                Special::TidZ => AffineVal {
                    cx: 0,
                    cy: 0,
                    cz: 1,
                    k: 0,
                    base: false,
                },
                // CTA ids and geometry are warp-uniform.
                _ => AffineVal::uniform(),
            }),
        }
    }

    fn value_of_def(&mut self, def: DefSite) -> Affine {
        if let Some(v) = self.memo.get(&def) {
            return *v;
        }
        if !self.in_progress.insert(def) {
            // Cycle: cut this edge; the join at the use site still sees the
            // acyclic definitions.
            return Affine::Bottom;
        }
        let pc = def.pc;
        let v = match &self.kernel.insts()[pc].op {
            Op::Ld { space, .. } => match space {
                Space::Param | Space::Const => Affine::Val(AffineVal::uniform()),
                _ => Affine::Top,
            },
            Op::Atom { .. } => Affine::Top,
            Op::Mov { src, .. } => self.value_of_operand(pc, *src),
            Op::Cvt { src, .. } => self.value_of_operand(pc, *src),
            Op::Unary { op, a, .. } => {
                let va = self.value_of_operand(pc, *a);
                match op {
                    UnaryOp::Neg => neg(va),
                    _ => uniform_rule(&[va]),
                }
            }
            Op::Alu { op, a, b, .. } => {
                let va = self.value_of_operand(pc, *a);
                let vb = self.value_of_operand(pc, *b);
                match op {
                    AluOp::Add => add(va, vb),
                    AluOp::Sub => add(va, neg(vb)),
                    AluOp::Mul | AluOp::MulWide => mul(va, vb),
                    AluOp::Shl => match vb {
                        Affine::Val(s) if s.is_constant() && (0..=32).contains(&s.k) => {
                            scale(va, 1i64 << s.k)
                        }
                        _ => uniform_rule(&[va, vb]),
                    },
                    _ => uniform_rule(&[va, vb]),
                }
            }
            Op::Mad { a, b, c, .. } => {
                let va = self.value_of_operand(pc, *a);
                let vb = self.value_of_operand(pc, *b);
                let vc = self.value_of_operand(pc, *c);
                add(mul(va, vb), vc)
            }
            Op::Sfu { a, .. } => {
                let va = self.value_of_operand(pc, *a);
                uniform_rule(&[va])
            }
            Op::Setp { a, b, .. } => {
                let va = self.value_of_operand(pc, *a);
                let vb = self.value_of_operand(pc, *b);
                uniform_rule(&[va, vb])
            }
            Op::Selp { a, b, pred, .. } => {
                let va = self.value_of_operand(pc, *a);
                let vb = self.value_of_operand(pc, *b);
                let vp = self.value_of_use(pc, *pred);
                if va == vb {
                    va
                } else if matches!(vp, Affine::Val(p) if p.is_uniform()) {
                    va.join(vb)
                } else {
                    Affine::Top
                }
            }
            Op::St { .. } | Op::Bra { .. } | Op::Bar { .. } | Op::Exit => Affine::Top,
        };
        self.in_progress.remove(&def);
        self.memo.insert(def, v);
        v
    }
}

/// Static memory-behaviour prediction for one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prediction {
    /// Global-backed load: requests one warp's access generates in the
    /// coalescer (1 = fully coalesced, 32 = fully serialized).
    Requests(u32),
    /// Shared load: bank-conflict degree (1 = conflict-free).
    BankDegree(u32),
    /// The address is not tid-affine (or not x-affine); no prediction.
    Unknown,
}

impl Prediction {
    /// Short human label (`coalesced`, `strided(4)`, `serialized(32)`, ...).
    pub fn label(&self) -> String {
        match self {
            Prediction::Requests(1) => "coalesced".to_string(),
            Prediction::Requests(n) if *n >= 16 => format!("serialized({n})"),
            Prediction::Requests(n) => format!("strided({n})"),
            Prediction::BankDegree(1) => "conflict-free".to_string(),
            Prediction::BankDegree(n) => format!("bank-conflict({n})"),
            Prediction::Unknown => "unknown".to_string(),
        }
    }
}

impl fmt::Display for Prediction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Warp width the predictions assume.
pub const WARP_LANES: i64 = 32;
/// Coalescer line size the predictions assume (the simulator's L1 line).
pub const LINE_BYTES: i64 = 128;
/// Shared-memory bank count.
pub const BANKS: i64 = 32;

/// Per-lane byte addresses of a full warp for an affine address, taking the
/// unknown uniform base as 0 (assumed [`LINE_BYTES`]-aligned).
fn lane_addrs(v: &AffineVal) -> Vec<i64> {
    let start = if v.base { 0 } else { v.k };
    (0..WARP_LANES).map(|l| start + l * v.cx).collect()
}

/// Predict the request count / bank degree for an affine address of an
/// access of `bytes` bytes in `space`.
pub fn predict(space: Space, bytes: u32, v: &AffineVal) -> Prediction {
    if v.cy != 0 || v.cz != 0 {
        // Lanes map to tid.x; y/z strides need the (unknown) CTA x-extent.
        return Prediction::Unknown;
    }
    match space {
        Space::Shared => {
            // Mirror of gcl_sim::bank_conflict_degree: 4-byte interleaved
            // banks, broadcasts of one word are free.
            let mut per_bank: HashMap<i64, BTreeSet<i64>> = HashMap::new();
            for a in lane_addrs(v) {
                let word = a.div_euclid(4);
                per_bank
                    .entry(word.rem_euclid(BANKS))
                    .or_default()
                    .insert(word);
            }
            let deg = per_bank.values().map(|w| w.len()).max().unwrap_or(1).max(1);
            Prediction::BankDegree(deg as u32)
        }
        Space::Global | Space::Local | Space::Tex => {
            // Mirror of gcl_sim::coalesce with 128 B lines.
            let mut lines: BTreeSet<i64> = BTreeSet::new();
            for a in lane_addrs(v) {
                lines.insert(a.div_euclid(LINE_BYTES));
                lines.insert((a + i64::from(bytes) - 1).div_euclid(LINE_BYTES));
            }
            Prediction::Requests(lines.len() as u32)
        }
        Space::Param | Space::Const => Prediction::Requests(1),
    }
}

/// One static load with its affine address and prediction.
#[derive(Debug, Clone)]
pub struct LoadPrediction {
    /// Instruction index of the load.
    pub pc: usize,
    /// State space accessed.
    pub space: Space,
    /// Access size in bytes.
    pub bytes: u32,
    /// Affine form of the address, when the analysis found one.
    pub affine: Option<AffineVal>,
    /// Predicted memory behaviour.
    pub prediction: Prediction,
}

/// Analyze every data load (global-backed and shared) of `kernel`.
pub fn affine_loads(kernel: &Kernel) -> Vec<LoadPrediction> {
    let mut eval = AffineEval::new(kernel);
    let mut out = Vec::new();
    for (pc, inst) in kernel.insts().iter().enumerate() {
        let Op::Ld {
            space, ty, addr, ..
        } = &inst.op
        else {
            continue;
        };
        if matches!(space, Space::Param | Space::Const) {
            continue;
        }
        let bytes = ty.size_bytes();
        let v = match addr.base {
            // Fast path: if the D/N classifier already found a
            // non-parameterized terminal, the address cannot be affine.
            Some(base)
                if address_sources(kernel, pc, base)
                    .iter()
                    .all(|s| s.is_parameterized()) =>
            {
                add(
                    eval.value_of_use(pc, base),
                    Affine::Val(AffineVal::constant(addr.offset)),
                )
            }
            Some(_) => Affine::Top,
            None => Affine::Val(AffineVal::constant(addr.offset)),
        };
        let (affine, prediction) = match v {
            Affine::Val(av) => (Some(av), predict(*space, bytes, &av)),
            _ => (None, Prediction::Unknown),
        };
        out.push(LoadPrediction {
            pc,
            space: *space,
            bytes,
            affine,
            prediction,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::{KernelBuilder, Type};

    fn tid_scaled_kernel(elem: u32) -> Kernel {
        // addr = param + tid.x * elem; ld.global.u32
        let mut b = KernelBuilder::new("k");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let a = b.index64(base, tid, elem);
        let _ = b.ld_global(Type::U32, a);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn unit_stride_is_coalesced() {
        let k = tid_scaled_kernel(4);
        let loads = affine_loads(&k);
        assert_eq!(loads.len(), 1);
        let av = loads[0].affine.expect("affine");
        assert_eq!(av.cx, 4);
        assert!(av.base);
        assert_eq!(loads[0].prediction, Prediction::Requests(1));
    }

    #[test]
    fn line_stride_is_serialized() {
        let k = tid_scaled_kernel(128);
        let loads = affine_loads(&k);
        assert_eq!(loads[0].prediction, Prediction::Requests(32));
    }

    #[test]
    fn uniform_address_is_one_request() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let _ = b.ld_global(Type::U32, base);
        b.exit();
        let k = b.build().unwrap();
        let loads = affine_loads(&k);
        assert_eq!(loads[0].prediction, Prediction::Requests(1));
    }

    #[test]
    fn load_derived_address_is_unknown() {
        // addr = param + x[tid]*4 — classic gather.
        let mut b = KernelBuilder::new("k");
        let pi = b.param("idx", Type::U64);
        let pd = b.param("data", Type::U64);
        let idx = b.ld_param(Type::U64, pi);
        let data = b.ld_param(Type::U64, pd);
        let tid = b.sreg(Special::TidX);
        let ia = b.index64(idx, tid, 4);
        let iv = b.ld_global(Type::U32, ia);
        let da = b.index64(data, iv, 4);
        let _ = b.ld_global(Type::U32, da);
        b.exit();
        let k = b.build().unwrap();
        let loads = affine_loads(&k);
        assert_eq!(loads.len(), 2);
        assert_eq!(loads[0].prediction, Prediction::Requests(1));
        assert_eq!(loads[1].prediction, Prediction::Unknown);
        assert!(loads[1].affine.is_none());
    }

    #[test]
    fn shared_stride_banks() {
        // smem[tid*4] conflict-free; smem[tid*8] 2-way (u32 accesses).
        for (elem, deg) in [(4u32, 1u32), (8, 2), (128, 32)] {
            let mut b = KernelBuilder::new("k");
            b.shared(4096);
            let tid = b.sreg(Special::TidX);
            let off = b.mul(Type::U32, tid, i64::from(elem));
            let a = b.cvt(Type::U64, Type::U32, off);
            let _ = b.ld_shared(Type::U32, a);
            b.exit();
            let k = b.build().unwrap();
            let loads = affine_loads(&k);
            assert_eq!(
                loads[0].prediction,
                Prediction::BankDegree(deg),
                "elem {elem}"
            );
        }
    }

    #[test]
    fn loop_counter_stays_uniform() {
        // for (i = 0; i < n; i++) load buf[i]  — uniform every iteration.
        let mut b = KernelBuilder::new("k");
        let p = b.param("buf", Type::U64);
        let pn = b.param("n", Type::U32);
        let base = b.ld_param(Type::U64, p);
        let n = b.ld_param(Type::U32, pn);
        let i = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let head = b.new_label();
        let done = b.new_label();
        b.place(head);
        let pr = b.setp(gcl_ptx::CmpOp::Ge, Type::U32, i, n);
        b.bra_if(pr, done);
        let a = b.index64(base, i, 4);
        let _ = b.ld_global(Type::U32, a);
        b.push(Op::Alu {
            op: AluOp::Add,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        b.bra(head);
        b.place(done);
        b.exit();
        let k = b.build().unwrap();
        let loads = affine_loads(&k);
        assert_eq!(loads.len(), 1);
        let av = loads[0].affine.expect("loop counter is affine-uniform");
        assert!(av.is_uniform());
        assert_eq!(loads[0].prediction, Prediction::Requests(1));
    }

    #[test]
    fn tid_accumulating_loop_is_top() {
        // i += tid each iteration: coefficient grows, must refuse to guess.
        let mut b = KernelBuilder::new("k");
        let p = b.param("buf", Type::U64);
        let pn = b.param("n", Type::U32);
        let base = b.ld_param(Type::U64, p);
        let n = b.ld_param(Type::U32, pn);
        let tid = b.sreg(Special::TidX);
        let i = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let head = b.new_label();
        let done = b.new_label();
        b.place(head);
        let pr = b.setp(gcl_ptx::CmpOp::Ge, Type::U32, i, n);
        b.bra_if(pr, done);
        let a = b.index64(base, i, 4);
        let _ = b.ld_global(Type::U32, a);
        b.push(Op::Alu {
            op: AluOp::Add,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: tid.into(),
        });
        b.bra(head);
        b.place(done);
        b.exit();
        let k = b.build().unwrap();
        let loads = affine_loads(&k);
        assert_eq!(loads[0].prediction, Prediction::Unknown);
    }
}
