//! A small reusable forward/backward dataflow framework over the PTX CFG.
//!
//! [`gcl_core`]'s reaching-definitions pass hard-codes its own bitset
//! fixpoint; this module factors the shape out so the verifier's liveness
//! pass and the divergence analysis share one engine: a [`Lattice`] of
//! facts, an [`Analysis`] providing boundary facts and a per-instruction
//! transfer function, and a worklist [`solve`] that iterates blocks in
//! (reverse) post-order until the facts stop changing.

use gcl_ptx::{BlockId, Cfg, Instruction, Kernel, Reg};
use std::collections::VecDeque;

/// A join-semilattice of dataflow facts.
pub trait Lattice: Clone {
    /// Join `other` into `self`, returning whether `self` changed.
    fn join_from(&mut self, other: &Self) -> bool;
}

/// Propagation direction of an [`Analysis`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from the entry along control-flow edges.
    Forward,
    /// Facts flow from the exits against control-flow edges.
    Backward,
}

/// One dataflow analysis: a fact lattice plus its transfer function.
pub trait Analysis {
    /// The fact propagated through the CFG.
    type Fact: Lattice;

    /// Propagation direction.
    fn direction(&self) -> Direction;

    /// Fact at the boundary: the entry block (forward) or every
    /// exit-terminated block (backward).
    fn boundary(&self) -> Self::Fact;

    /// Initial fact everywhere else (the lattice bottom).
    fn init(&self) -> Self::Fact;

    /// Apply instruction `pc` to `fact`, in the analysis direction (backward
    /// analyses see instructions last-to-first).
    fn transfer(&self, pc: usize, inst: &Instruction, fact: &mut Self::Fact);
}

/// Fixpoint solution: one fact per block edge in the analysis direction.
#[derive(Debug, Clone)]
pub struct Solution<F> {
    /// Fact entering each block in the analysis direction (at the block
    /// start for forward analyses, at the block end for backward ones).
    pub entry: Vec<F>,
    /// Fact after transferring the whole block.
    pub exit: Vec<F>,
}

impl<F: Lattice> Solution<F> {
    /// The fact *incoming* to every instruction in the analysis direction:
    /// for a forward analysis the fact just before the instruction executes,
    /// for a backward analysis the fact just after it (e.g. liveness:
    /// live-out). Indexed by pc.
    pub fn per_pc<A: Analysis<Fact = F>>(&self, a: &A, kernel: &Kernel, cfg: &Cfg) -> Vec<F> {
        let insts = kernel.insts();
        let mut out: Vec<F> = vec![a.init(); insts.len()];
        for (b, block) in cfg.blocks().iter().enumerate() {
            let mut fact = self.entry[b].clone();
            match a.direction() {
                Direction::Forward => {
                    for pc in block.pcs() {
                        out[pc] = fact.clone();
                        a.transfer(pc, &insts[pc], &mut fact);
                    }
                }
                Direction::Backward => {
                    for pc in block.pcs().rev() {
                        out[pc] = fact.clone();
                        a.transfer(pc, &insts[pc], &mut fact);
                    }
                }
            }
        }
        out
    }
}

/// Run `a` to fixpoint over `cfg` with a block worklist.
pub fn solve<A: Analysis>(a: &A, kernel: &Kernel, cfg: &Cfg) -> Solution<A::Fact> {
    let insts = kernel.insts();
    let nb = cfg.blocks().len();
    let dir = a.direction();

    let mut entry: Vec<A::Fact> = vec![a.init(); nb];
    let mut exit: Vec<A::Fact> = vec![a.init(); nb];
    match dir {
        Direction::Forward => {
            entry[0] = a.boundary();
        }
        Direction::Backward => {
            for (b, block) in cfg.blocks().iter().enumerate() {
                if block.succs.is_empty() {
                    entry[b] = a.boundary();
                }
            }
        }
    }

    // Seed the worklist in an order that minimizes iterations: reverse
    // post-order for forward analyses, its reverse for backward ones.
    let mut order = cfg.reverse_post_order();
    if dir == Direction::Backward {
        order.reverse();
    }
    // Unreachable blocks still get processed once so their facts exist.
    for b in 0..nb {
        if !order.contains(&b) {
            order.push(b);
        }
    }

    let mut queue: VecDeque<BlockId> = order.iter().copied().collect();
    let mut queued = vec![true; nb];
    while let Some(b) = queue.pop_front() {
        queued[b] = false;
        let block = &cfg.blocks()[b];
        let mut fact = entry[b].clone();
        match dir {
            Direction::Forward => {
                for pc in block.pcs() {
                    a.transfer(pc, &insts[pc], &mut fact);
                }
            }
            Direction::Backward => {
                for pc in block.pcs().rev() {
                    a.transfer(pc, &insts[pc], &mut fact);
                }
            }
        }
        exit[b] = fact;
        let targets: &[BlockId] = match dir {
            Direction::Forward => &block.succs,
            Direction::Backward => &block.preds,
        };
        for &t in targets {
            if entry[t].join_from(&exit[b]) && !queued[t] {
                queued[t] = true;
                queue.push_back(t);
            }
        }
    }

    Solution { entry, exit }
}

/// A set of registers as a bit vector — the fact used by liveness and
/// divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegSet {
    bits: Vec<u64>,
}

impl RegSet {
    /// The empty set sized for `num_regs` registers.
    pub fn empty(num_regs: u32) -> RegSet {
        RegSet {
            bits: vec![0; (num_regs as usize).div_ceil(64)],
        }
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        let i = r.index();
        self.bits
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Insert `r`, growing if needed.
    pub fn insert(&mut self, r: Reg) {
        let i = r.index();
        if i / 64 >= self.bits.len() {
            self.bits.resize(i / 64 + 1, 0);
        }
        self.bits[i / 64] |= 1 << (i % 64);
    }

    /// Remove `r`.
    pub fn remove(&mut self, r: Reg) {
        let i = r.index();
        if let Some(w) = self.bits.get_mut(i / 64) {
            *w &= !(1 << (i % 64));
        }
    }
}

impl Lattice for RegSet {
    fn join_from(&mut self, other: &Self) -> bool {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        let mut changed = false;
        for (s, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            let joined = *s | *o;
            if joined != *s {
                *s = joined;
                changed = true;
            }
        }
        changed
    }
}
