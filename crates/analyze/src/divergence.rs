//! Divergence (uniformity) analysis.
//!
//! Propagates *tid-dependence* forward through registers and predicates:
//! a register is **divergent** when threads of the same warp may hold
//! different values in it. Sources of divergence are the per-thread special
//! registers (`%tid.*`, `%laneid`), atomic return values, and — via control
//! dependence — any definition executed under a divergent branch.
//!
//! The hazard this exists to catch is the divergent barrier: a `bar.sync`
//! reachable only by some threads of a warp. In the simulator that
//! manifests dynamically as a watchdog hang; here it is flagged statically
//! as a `divergent-barrier` error. Each branch is also annotated
//! uniform/divergent, which feeds the affine coalescing predictor and the
//! report.
//!
//! The control-dependence region of a branch is everything between it and
//! its reconvergence point ([`Cfg::reconvergence_pcs`], the immediate
//! post-dominator). Divergent-branch discovery and region tainting feed
//! each other, so the analysis runs an outer fixpoint: solve uniformity,
//! taint regions of divergent branches, re-solve until stable. Both sets
//! grow monotonically, so this terminates.

use crate::dataflow::{solve, Analysis, Direction, RegSet};
use crate::diag::{Diagnostic, Severity};
use gcl_ptx::{Cfg, Instruction, Kernel, Op, Operand, Special, RECONV_EXIT};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Whether one branch is warp-uniform or may split the warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchDivergence {
    /// Instruction index of the guarded branch.
    pub pc: usize,
    /// True when threads of one warp may disagree on the branch condition.
    pub divergent: bool,
}

/// Result of the divergence analysis over one kernel.
#[derive(Debug, Clone)]
pub struct DivergenceInfo {
    /// Every conditional branch, annotated uniform/divergent, in pc order.
    pub branches: Vec<BranchDivergence>,
    /// Instruction indices control-dependent on some divergent branch.
    pub divergent_pcs: BTreeSet<usize>,
    /// Divergent-barrier findings.
    pub diagnostics: Vec<Diagnostic>,
}

/// Whether reading `s` can differ between threads of one warp.
fn special_divergent(s: Special) -> bool {
    matches!(
        s,
        // tid.y/tid.z differ within a warp whenever the CTA x-extent is not
        // a multiple of the warp width, so they are conservatively divergent.
        Special::TidX | Special::TidY | Special::TidZ | Special::LaneId
    )
}

/// The non-address operands an instruction reads (registers are already
/// handled through `src_regs`; this exists to see `Special` sources).
fn operands(op: &Op) -> Vec<Operand> {
    match op {
        Op::St { src, .. } => vec![*src],
        Op::Mov { src, .. } | Op::Cvt { src, .. } => vec![*src],
        Op::Unary { a, .. } | Op::Sfu { a, .. } => vec![*a],
        Op::Alu { a, b, .. } | Op::Setp { a, b, .. } => vec![*a, *b],
        Op::Mad { a, b, c, .. } => vec![*a, *b, *c],
        Op::Selp { a, b, .. } => vec![*a, *b],
        Op::Atom { src, .. } => vec![*src],
        Op::Ld { .. } | Op::Bra { .. } | Op::Bar { .. } | Op::Exit => vec![],
    }
}

/// Forward taint analysis: the fact is the set of divergent registers.
struct Uniformity<'a> {
    num_regs: u32,
    /// Pcs control-dependent on a divergent branch (this round).
    tainted: &'a BTreeSet<usize>,
}

impl Analysis for Uniformity<'_> {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> RegSet {
        // Kernel parameters and launch geometry are warp-uniform; every
        // register starts out uniform until proven otherwise.
        RegSet::empty(self.num_regs)
    }

    fn init(&self) -> RegSet {
        RegSet::empty(self.num_regs)
    }

    fn transfer(&self, pc: usize, inst: &Instruction, fact: &mut RegSet) {
        let Some(dst) = inst.dst_reg() else { return };
        let data_div = inst.src_regs().iter().any(|r| fact.contains(*r))
            || operands(&inst.op).iter().any(|o| match o {
                Operand::Special(s) => special_divergent(*s),
                _ => false,
            })
            // Atomics return the pre-op memory value, which differs per lane.
            || matches!(inst.op, Op::Atom { .. });
        if data_div || self.tainted.contains(&pc) {
            fact.insert(dst);
        } else if inst.guard.is_none() {
            fact.remove(dst);
        }
        // A guarded uniform def may not execute: the old value survives, so
        // the register stays in whatever state it was.
    }
}

/// All pcs strictly between `branch_pc` and its reconvergence point,
/// walking forward over blocks.
fn region_pcs(cfg: &Cfg, branch_pc: usize, reconv_pc: usize) -> Vec<usize> {
    let start = cfg.block_of(branch_pc);
    let stop = if reconv_pc == RECONV_EXIT {
        None
    } else {
        Some(cfg.block_of(reconv_pc))
    };
    let mut seen = vec![false; cfg.blocks().len()];
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &s in &cfg.blocks()[start].succs {
        if Some(s) != stop && !seen[s] {
            seen[s] = true;
            queue.push_back(s);
        }
    }
    let mut out = Vec::new();
    while let Some(b) = queue.pop_front() {
        out.extend(cfg.blocks()[b].pcs());
        for &s in &cfg.blocks()[b].succs {
            if Some(s) != stop && !seen[s] {
                seen[s] = true;
                queue.push_back(s);
            }
        }
    }
    out
}

/// Run the divergence analysis over `kernel`.
pub fn divergence(kernel: &Kernel, cfg: &Cfg) -> DivergenceInfo {
    let insts = kernel.insts();
    let reconv = cfg.reconvergence_pcs(kernel);

    let mut tainted: BTreeSet<usize> = BTreeSet::new();
    // Region pc -> the divergent branch that tainted it (for messages).
    let mut witness: BTreeMap<usize, usize> = BTreeMap::new();
    let mut facts;
    loop {
        let analysis = Uniformity {
            num_regs: kernel.num_regs(),
            tainted: &tainted,
        };
        let sol = solve(&analysis, kernel, cfg);
        facts = sol.per_pc(&analysis, kernel, cfg);

        let mut grew = false;
        for (pc, inst) in insts.iter().enumerate() {
            if !matches!(inst.op, Op::Bra { .. }) {
                continue;
            }
            let Some(g) = inst.guard else { continue };
            let div = facts[pc].contains(g.pred) || tainted.contains(&pc);
            if !div {
                continue;
            }
            let reconv_pc = reconv.get(&pc).copied().unwrap_or(RECONV_EXIT);
            for p in region_pcs(cfg, pc, reconv_pc) {
                if tainted.insert(p) {
                    witness.insert(p, pc);
                    grew = true;
                }
            }
        }
        if !grew {
            break;
        }
    }

    let mut branches = Vec::new();
    let mut diagnostics = Vec::new();
    for (pc, inst) in insts.iter().enumerate() {
        if let Op::Bra { .. } = inst.op {
            if let Some(g) = inst.guard {
                branches.push(BranchDivergence {
                    pc,
                    divergent: facts[pc].contains(g.pred) || tainted.contains(&pc),
                });
            }
        }
        if let Op::Bar { id } = inst.op {
            let guard_div = inst.guard.is_some_and(|g| facts[pc].contains(g.pred));
            if tainted.contains(&pc) || guard_div {
                let why = match witness.get(&pc) {
                    Some(b) => format!("divergent branch at pc {b}"),
                    None => "divergent guard predicate".to_string(),
                };
                diagnostics.push(Diagnostic {
                    pc,
                    severity: Severity::Error,
                    code: "divergent-barrier",
                    message: format!(
                        "bar.sync {id} may execute under divergent control flow ({why}); \
                         warps that split here deadlock"
                    ),
                    inst: insts[pc].to_string(),
                });
            }
        }
    }

    DivergenceInfo {
        branches,
        divergent_pcs: tainted,
        diagnostics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::{CmpOp, KernelBuilder, Type};

    #[test]
    fn uniform_branch_stays_uniform() {
        // if (param > 0) { ... }  — condition depends only on a parameter.
        let mut b = KernelBuilder::new("k");
        let p = b.param("n", Type::U32);
        let n = b.ld_param(Type::U32, p);
        let pr = b.setp(CmpOp::Gt, Type::U32, n, 0i64);
        let l = b.new_label();
        b.bra_if(pr, l);
        b.bar();
        b.place(l);
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let info = divergence(&k, &cfg);
        assert_eq!(info.branches.len(), 1);
        assert!(!info.branches[0].divergent);
        assert!(info.diagnostics.is_empty());
    }

    #[test]
    fn tid_branch_is_divergent_and_bar_flagged() {
        // if (tid.x > 0) { bar.sync 0; }
        let mut b = KernelBuilder::new("k");
        let t = b.sreg(Special::TidX);
        let pr = b.setp(CmpOp::Gt, Type::U32, t, 0i64);
        let l = b.new_label();
        b.bra_unless(pr, l);
        b.bar();
        b.place(l);
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let info = divergence(&k, &cfg);
        assert_eq!(info.branches.len(), 1);
        assert!(info.branches[0].divergent);
        assert_eq!(info.diagnostics.len(), 1);
        assert_eq!(info.diagnostics[0].code, "divergent-barrier");
    }

    #[test]
    fn bar_after_reconvergence_is_clean() {
        // if (tid.x > 0) { nop-ish } bar.sync 0;  — barrier after reconv.
        let mut b = KernelBuilder::new("k");
        let t = b.sreg(Special::TidX);
        let pr = b.setp(CmpOp::Gt, Type::U32, t, 0i64);
        let l = b.new_label();
        b.bra_unless(pr, l);
        let one = b.mov(Type::U32, 1i64);
        let _ = b.add(Type::U32, one, one);
        b.place(l);
        b.bar();
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let info = divergence(&k, &cfg);
        assert!(info.diagnostics.is_empty(), "{:?}", info.diagnostics);
        // The defs inside the divergent region are still tainted.
        assert!(info.divergent_pcs.contains(&3));
    }
}
