//! `gcl-analyze` — static analysis suite over the PTX subset.
//!
//! Three analyses run over [`gcl_ptx`]'s CFG on a shared dataflow framework
//! ([`dataflow`]):
//!
//! * a **verifier** ([`verify`]) with structural lints — use-before-def,
//!   type/width mismatches, unreachable blocks, dead stores/loads, missing
//!   `exit`;
//! * a **divergence analysis** ([`divergence`]) that annotates each branch
//!   uniform/divergent and statically flags barriers reachable under
//!   divergent control flow (which hang the simulator's watchdog at
//!   runtime);
//! * a **tid-affine address analysis** ([`affine`]) that predicts, per
//!   static load, the coalescer request count (global) or bank-conflict
//!   degree (shared), cross-validated against dynamic measurement in the
//!   test suite.
//!
//! [`analyze`] runs all three and bundles the result in a [`Report`] with
//! human-readable ([`std::fmt::Display`]) and CSV output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod critical;
pub mod dataflow;
pub mod diag;
pub mod divergence;
pub mod footprint;
pub mod symaff;
pub mod verify;

pub use affine::{affine_loads, Affine, AffineVal, LoadPrediction, Prediction};
pub use critical::{critical_loads, CriticalLoad};
pub use diag::{Diagnostic, Severity};
pub use divergence::{divergence, BranchDivergence, DivergenceInfo};
pub use footprint::{
    footprints, ClusterMap, KernelLocality, LoadFootprint, Sharing, SharingMatrix,
};
pub use symaff::{ARange, Coeff, LaunchCtx, SymAffine, SymVal, Term};
pub use verify::verify;

use gcl_core::{address_sources, classify, LoadClass};
use gcl_ptx::{Cfg, Kernel};
use std::fmt;

/// Schema/version line emitted ahead of the CSV header so downstream
/// consumers can detect column drift. Bump the version whenever
/// [`Report::csv_header`] changes.
pub const CSV_SCHEMA: &str = "#schema gcl-analyze csv v2";

/// Optional analyses layered on top of [`analyze`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeOptions {
    /// Compute per-load footprints and inter-CTA sharing under this launch
    /// geometry ([`footprint::footprints`]).
    pub locality: Option<LaunchCtx>,
    /// Rank loads by static criticality ([`critical::critical_loads`]).
    pub critical: bool,
}

/// One load in a [`Report`]: static prediction joined with the paper's
/// D/N classification.
#[derive(Debug, Clone)]
pub struct ReportLoad {
    /// The static prediction (pc, space, affine form, requests/banks).
    pub prediction: LoadPrediction,
    /// The D/N class of the load (deterministic addresses tend to coalesce).
    pub class: LoadClass,
    /// The load instruction, rendered.
    pub inst: String,
}

/// Combined result of all three analyses over one kernel.
#[derive(Debug, Clone)]
pub struct Report {
    /// Kernel name.
    pub kernel: String,
    /// Verifier and divergence findings, sorted by (pc, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Conditional branches annotated uniform/divergent.
    pub branches: Vec<BranchDivergence>,
    /// Data loads with class and prediction.
    pub loads: Vec<ReportLoad>,
    /// Footprint / inter-CTA sharing analysis, when requested via
    /// [`AnalyzeOptions::locality`].
    pub locality: Option<KernelLocality>,
    /// Critical-load ranking, when requested via
    /// [`AnalyzeOptions::critical`] (empty otherwise).
    pub critical: Vec<CriticalLoad>,
}

impl Report {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether the kernel passed every lint.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Header row for [`Report::csv_rows`]. The column order is part of
    /// the [`CSV_SCHEMA`] contract and pinned by a golden-file test.
    pub fn csv_header() -> &'static str {
        "kernel,pc,space,class,affine,prediction,sharing,blocks,cta_stride_x,crit_rank,crit_score"
    }

    /// One CSV row per analyzed load, `-` for columns whose analysis was
    /// not requested or produced no value.
    pub fn csv_rows(&self) -> Vec<String> {
        let dash = || "-".to_string();
        self.loads
            .iter()
            .map(|l| {
                let pc = l.prediction.pc;
                let affine = match &l.prediction.affine {
                    Some(v) => v.to_string(),
                    None => dash(),
                };
                let fp = self
                    .locality
                    .as_ref()
                    .and_then(|loc| loc.loads.iter().find(|f| f.pc == pc));
                let sharing = fp
                    .map(|f| f.sharing.label().to_string())
                    .unwrap_or_else(dash);
                let blocks = fp
                    .and_then(|f| f.block_count)
                    .map(|n| n.to_string())
                    .unwrap_or_else(dash);
                let stride = fp
                    .and_then(|f| f.cta_stride_x)
                    .map(|s| s.to_string())
                    .unwrap_or_else(dash);
                let crit = self.critical.iter().find(|c| c.pc == pc);
                let rank = crit.map(|c| c.rank.to_string()).unwrap_or_else(dash);
                let score = crit.map(|c| c.score.to_string()).unwrap_or_else(dash);
                format!(
                    "{},{},{},{},{},{},{},{},{},{},{}",
                    self.kernel,
                    pc,
                    l.prediction.space,
                    l.class.letter(),
                    affine,
                    l.prediction.prediction.label(),
                    sharing,
                    blocks,
                    stride,
                    rank,
                    score,
                )
            })
            .collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let divergent = self.branches.iter().filter(|b| b.divergent).count();
        writeln!(
            f,
            "kernel `{}`: {} error(s), {} warning(s), {} branch(es) ({} divergent), {} load(s)",
            self.kernel,
            self.error_count(),
            self.warning_count(),
            self.branches.len(),
            divergent,
            self.loads.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        for b in &self.branches {
            writeln!(
                f,
                "  branch pc {}: {}",
                b.pc,
                if b.divergent { "divergent" } else { "uniform" }
            )?;
        }
        for l in &self.loads {
            let affine = match &l.prediction.affine {
                Some(v) => format!("addr = {v}"),
                None => "addr not affine".to_string(),
            };
            writeln!(
                f,
                "  load pc {} ({}, {}): {} -> {}",
                l.prediction.pc,
                l.prediction.space,
                l.class.letter(),
                affine,
                l.prediction.prediction.label()
            )?;
        }
        if let Some(loc) = &self.locality {
            write!(f, "{loc}")?;
        }
        for c in &self.critical {
            writeln!(
                f,
                "  critical #{}: pc {} ({}, {}) score {} — chain {}, slice {}, {} consumer(s), {} request(s){}",
                c.rank,
                c.pc,
                c.space,
                c.class.letter(),
                c.score,
                c.chain_depth,
                c.slice_height,
                c.consumers,
                c.requests,
                if c.divergent { ", divergent" } else { "" },
            )?;
        }
        Ok(())
    }
}

/// Run the verifier, the divergence analysis and the affine address
/// analysis over one kernel.
pub fn analyze(kernel: &Kernel) -> Report {
    analyze_with(kernel, &AnalyzeOptions::default())
}

/// [`analyze`], plus the optional locality and criticality layers.
pub fn analyze_with(kernel: &Kernel, opts: &AnalyzeOptions) -> Report {
    let cfg = Cfg::build(kernel);
    let mut diagnostics = verify::verify(kernel, &cfg);
    let div = divergence::divergence(kernel, &cfg);
    diagnostics.extend(div.diagnostics.iter().cloned());
    diagnostics.sort_by(|a, b| (a.pc, a.code).cmp(&(b.pc, b.code)));
    // Passes can anchor several findings of one kind to the same
    // instruction (e.g. use-before-def once per undefined register);
    // rendering each would double-report. Keep the first per (pc, code).
    diagnostics.dedup_by(|a, b| (a.pc, a.code) == (b.pc, b.code));

    let classification = classify(kernel);
    let insts = kernel.insts();
    let loads = affine_loads(kernel)
        .into_iter()
        .map(|p| {
            // Shared loads are not classification subjects in gcl-core;
            // derive their class from the same provenance terminals.
            let class = classification
                .loads()
                .find(|l| l.pc == p.pc)
                .map(|l| l.class)
                .unwrap_or_else(|| {
                    let deterministic = match insts[p.pc].op.addr().and_then(|a| a.base) {
                        Some(base) => address_sources(kernel, p.pc, base)
                            .iter()
                            .all(|s| s.is_parameterized()),
                        None => true,
                    };
                    if deterministic {
                        LoadClass::Deterministic
                    } else {
                        LoadClass::NonDeterministic
                    }
                });
            ReportLoad {
                inst: insts[p.pc].to_string(),
                class,
                prediction: p,
            }
        })
        .collect();

    Report {
        kernel: kernel.name().to_string(),
        diagnostics,
        branches: div.branches,
        loads,
        locality: opts.locality.map(|ctx| footprint::footprints(kernel, &ctx)),
        critical: if opts.critical {
            critical::critical_loads(kernel)
        } else {
            Vec::new()
        },
    }
}
