//! `gcl-analyze` — static analysis suite over the PTX subset.
//!
//! Three analyses run over [`gcl_ptx`]'s CFG on a shared dataflow framework
//! ([`dataflow`]):
//!
//! * a **verifier** ([`verify`]) with structural lints — use-before-def,
//!   type/width mismatches, unreachable blocks, dead stores/loads, missing
//!   `exit`;
//! * a **divergence analysis** ([`divergence`]) that annotates each branch
//!   uniform/divergent and statically flags barriers reachable under
//!   divergent control flow (which hang the simulator's watchdog at
//!   runtime);
//! * a **tid-affine address analysis** ([`affine`]) that predicts, per
//!   static load, the coalescer request count (global) or bank-conflict
//!   degree (shared), cross-validated against dynamic measurement in the
//!   test suite.
//!
//! [`analyze`] runs all three and bundles the result in a [`Report`] with
//! human-readable ([`std::fmt::Display`]) and CSV output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
pub mod dataflow;
pub mod diag;
pub mod divergence;
pub mod verify;

pub use affine::{affine_loads, Affine, AffineVal, LoadPrediction, Prediction};
pub use diag::{Diagnostic, Severity};
pub use divergence::{divergence, BranchDivergence, DivergenceInfo};
pub use verify::verify;

use gcl_core::{address_sources, classify, LoadClass};
use gcl_ptx::{Cfg, Kernel};
use std::fmt;

/// One load in a [`Report`]: static prediction joined with the paper's
/// D/N classification.
#[derive(Debug, Clone)]
pub struct ReportLoad {
    /// The static prediction (pc, space, affine form, requests/banks).
    pub prediction: LoadPrediction,
    /// The D/N class of the load (deterministic addresses tend to coalesce).
    pub class: LoadClass,
    /// The load instruction, rendered.
    pub inst: String,
}

/// Combined result of all three analyses over one kernel.
#[derive(Debug, Clone)]
pub struct Report {
    /// Kernel name.
    pub kernel: String,
    /// Verifier and divergence findings, sorted by (pc, code).
    pub diagnostics: Vec<Diagnostic>,
    /// Conditional branches annotated uniform/divergent.
    pub branches: Vec<BranchDivergence>,
    /// Data loads with class and prediction.
    pub loads: Vec<ReportLoad>,
}

impl Report {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// Whether the kernel passed every lint.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Header row for [`Report::csv_rows`].
    pub fn csv_header() -> &'static str {
        "kernel,pc,space,class,affine,prediction"
    }

    /// One CSV row per analyzed load.
    pub fn csv_rows(&self) -> Vec<String> {
        self.loads
            .iter()
            .map(|l| {
                let affine = match &l.prediction.affine {
                    Some(v) => v.to_string(),
                    None => "-".to_string(),
                };
                format!(
                    "{},{},{},{},{},{}",
                    self.kernel,
                    l.prediction.pc,
                    l.prediction.space,
                    l.class.letter(),
                    affine,
                    l.prediction.prediction.label()
                )
            })
            .collect()
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let divergent = self.branches.iter().filter(|b| b.divergent).count();
        writeln!(
            f,
            "kernel `{}`: {} error(s), {} warning(s), {} branch(es) ({} divergent), {} load(s)",
            self.kernel,
            self.error_count(),
            self.warning_count(),
            self.branches.len(),
            divergent,
            self.loads.len()
        )?;
        for d in &self.diagnostics {
            writeln!(f, "  {d}")?;
        }
        for b in &self.branches {
            writeln!(
                f,
                "  branch pc {}: {}",
                b.pc,
                if b.divergent { "divergent" } else { "uniform" }
            )?;
        }
        for l in &self.loads {
            let affine = match &l.prediction.affine {
                Some(v) => format!("addr = {v}"),
                None => "addr not affine".to_string(),
            };
            writeln!(
                f,
                "  load pc {} ({}, {}): {} -> {}",
                l.prediction.pc,
                l.prediction.space,
                l.class.letter(),
                affine,
                l.prediction.prediction.label()
            )?;
        }
        Ok(())
    }
}

/// Run the verifier, the divergence analysis and the affine address
/// analysis over one kernel.
pub fn analyze(kernel: &Kernel) -> Report {
    let cfg = Cfg::build(kernel);
    let mut diagnostics = verify::verify(kernel, &cfg);
    let div = divergence::divergence(kernel, &cfg);
    diagnostics.extend(div.diagnostics.iter().cloned());
    diagnostics.sort_by(|a, b| (a.pc, a.code).cmp(&(b.pc, b.code)));

    let classification = classify(kernel);
    let insts = kernel.insts();
    let loads = affine_loads(kernel)
        .into_iter()
        .map(|p| {
            // Shared loads are not classification subjects in gcl-core;
            // derive their class from the same provenance terminals.
            let class = classification
                .loads()
                .find(|l| l.pc == p.pc)
                .map(|l| l.class)
                .unwrap_or_else(|| {
                    let deterministic = match insts[p.pc].op.addr().and_then(|a| a.base) {
                        Some(base) => address_sources(kernel, p.pc, base)
                            .iter()
                            .all(|s| s.is_parameterized()),
                        None => true,
                    };
                    if deterministic {
                        LoadClass::Deterministic
                    } else {
                        LoadClass::NonDeterministic
                    }
                });
            ReportLoad {
                inst: insts[p.pc].to_string(),
                class,
                prediction: p,
            }
        })
        .collect();

    Report {
        kernel: kernel.name().to_string(),
        diagnostics,
        branches: div.branches,
        loads,
    }
}
