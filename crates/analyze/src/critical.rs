//! Static critical-load ranking.
//!
//! The paper's headline observation is that a small set of loads — above
//! all the N-loads at the head of dependent-load chains — account for most
//! of the memory stall time. This module ranks every global-backed load of
//! a kernel by a *static* criticality score built from the kernel DDG, so
//! optimization effort (and the simulator's cross-validation) can focus on
//! the top of the list:
//!
//! * **chain depth** — length of the dependent-load chain feeding this
//!   load's address (1 = deterministic address, 2+ = N-load fed by other
//!   loads; the `A[B[C[i]]]` pattern). Dominant term: a miss at depth `d`
//!   serializes `d` memory round-trips.
//! * **slice height** — longest def-use chain from any DDG root to the
//!   load: deep slices sit late in the iteration and gate more completed
//!   work.
//! * **consumer count** — instructions transitively data-dependent on the
//!   loaded value: how much of the kernel stalls while this load is in
//!   flight (cf. the warp-criticality heuristics of Ausavarungnirun et
//!   al.).
//! * **divergence context** — loads under divergent control flow execute
//!   with partial warps, lowering MLP and raising per-lane cost.
//! * **predicted requests** — the [`crate::affine`] coalescing prediction;
//!   serialized loads occupy the LSU proportionally longer. Unpredictable
//!   addresses count as fully serialized, which matches how N-loads behave
//!   in the measured distributions.
//!
//! The score is a fixed integer combination (documented at
//! [`CriticalLoad::score`]) so rankings are stable across runs and
//! platforms; ties break toward the lower pc.

use crate::affine::{affine_loads, Prediction};
use crate::divergence;
use gcl_core::{classify, AddressSource, LoadClass, ReachingDefs};
use gcl_ptx::{Cfg, Kernel, Op, Space};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Criticality facts and score for one global-backed load.
#[derive(Debug, Clone)]
pub struct CriticalLoad {
    /// Instruction index of the load.
    pub pc: usize,
    /// State space accessed.
    pub space: Space,
    /// Deterministic / non-deterministic address verdict.
    pub class: LoadClass,
    /// Dependent-load chain depth feeding the address (1 = no load feeds
    /// it).
    pub chain_depth: u32,
    /// Longest def-use path from a DDG root to this load.
    pub slice_height: u32,
    /// Instructions transitively dependent on the loaded value.
    pub consumers: u32,
    /// Whether the load sits under divergent control flow.
    pub divergent: bool,
    /// Predicted coalescer requests (32 when unpredictable).
    pub requests: u32,
    /// `16·chain_depth + 2·slice_height + min(consumers, 8) +
    /// 4·divergent + min(requests, 32)`.
    pub score: u64,
    /// 1-based rank within the kernel (1 = most critical).
    pub rank: u32,
}

/// Dependent-load chain depth per load pc, from the terminal address
/// sources: `depth(l) = 1 + max(depth of loads feeding l's address)`.
fn chain_depths(kernel: &Kernel) -> BTreeMap<usize, u32> {
    let cls = classify(kernel);
    let feeders: BTreeMap<usize, Vec<usize>> = cls
        .loads()
        .map(|l| {
            let f = l
                .sources
                .iter()
                .filter_map(|s| match s {
                    AddressSource::MemoryLoad { pc, .. } => Some(*pc),
                    _ => None,
                })
                .collect();
            (l.pc, f)
        })
        .collect();
    fn depth(
        pc: usize,
        feeders: &BTreeMap<usize, Vec<usize>>,
        memo: &mut BTreeMap<usize, u32>,
        visiting: &mut BTreeSet<usize>,
    ) -> u32 {
        if let Some(&d) = memo.get(&pc) {
            return d;
        }
        if !visiting.insert(pc) {
            return 1; // cyclic chase: cut, the depth is unbounded anyway
        }
        let d = 1 + feeders
            .get(&pc)
            .map(|fs| {
                fs.iter()
                    .map(|&f| depth(f, feeders, memo, visiting))
                    .max()
                    .unwrap_or(0)
            })
            .unwrap_or(0);
        visiting.remove(&pc);
        memo.insert(pc, d);
        d
    }
    let mut memo = BTreeMap::new();
    let mut visiting = BTreeSet::new();
    let pcs: Vec<usize> = feeders.keys().copied().collect();
    for pc in pcs {
        depth(pc, &feeders, &mut memo, &mut visiting);
    }
    memo
}

/// Longest def-use path from any root to each instruction, cycles cut.
fn slice_heights(kernel: &Kernel, reaching: &ReachingDefs) -> Vec<u32> {
    let n = kernel.insts().len();
    let mut memo: Vec<Option<u32>> = vec![None; n];
    let mut visiting: HashSet<usize> = HashSet::new();
    fn height(
        pc: usize,
        kernel: &Kernel,
        reaching: &ReachingDefs,
        memo: &mut Vec<Option<u32>>,
        visiting: &mut HashSet<usize>,
    ) -> u32 {
        if let Some(h) = memo[pc] {
            return h;
        }
        if !visiting.insert(pc) {
            return 0; // loop-carried edge: the acyclic slice is what counts
        }
        let inst = &kernel.insts()[pc];
        let mut regs = inst.op.src_regs();
        if let Some(g) = &inst.guard {
            regs.push(g.pred);
        }
        let mut h = 0;
        for r in regs {
            for d in reaching.defs_reaching_use(kernel, pc, r) {
                h = h.max(1 + height(d.pc, kernel, reaching, memo, visiting));
            }
        }
        visiting.remove(&pc);
        memo[pc] = Some(h);
        h
    }
    (0..n)
        .map(|pc| height(pc, kernel, reaching, &mut memo, &mut visiting))
        .collect()
}

/// Transitive consumer count per definition pc.
fn consumer_counts(kernel: &Kernel, reaching: &ReachingDefs) -> HashMap<usize, u32> {
    let n = kernel.insts().len();
    // Forward edges def_pc -> user_pc.
    let mut users: HashMap<usize, BTreeSet<usize>> = HashMap::new();
    for (pc, inst) in kernel.insts().iter().enumerate() {
        let mut regs = inst.op.src_regs();
        if let Some(g) = &inst.guard {
            regs.push(g.pred);
        }
        for r in regs {
            for d in reaching.defs_reaching_use(kernel, pc, r) {
                users.entry(d.pc).or_default().insert(pc);
            }
        }
    }
    let mut out = HashMap::new();
    for def_pc in 0..n {
        if kernel.insts()[def_pc].dst_reg().is_none() {
            continue;
        }
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut queue: Vec<usize> = users
            .get(&def_pc)
            .map(|u| u.iter().copied().collect())
            .unwrap_or_default();
        while let Some(u) = queue.pop() {
            if u == def_pc || !seen.insert(u) {
                continue;
            }
            if let Some(next) = users.get(&u) {
                queue.extend(next.iter().copied());
            }
        }
        out.insert(def_pc, seen.len() as u32);
    }
    out
}

/// Rank every global-backed load of `kernel` by static criticality,
/// most critical first.
pub fn critical_loads(kernel: &Kernel) -> Vec<CriticalLoad> {
    let cfg = Cfg::build(kernel);
    let reaching = ReachingDefs::compute(kernel);
    let depths = chain_depths(kernel);
    let heights = slice_heights(kernel, &reaching);
    let consumers = consumer_counts(kernel, &reaching);
    let div = divergence(kernel, &cfg);
    let cls = classify(kernel);
    let class_of: BTreeMap<usize, LoadClass> = cls.loads().map(|l| (l.pc, l.class)).collect();
    let predictions: HashMap<usize, Prediction> = affine_loads(kernel)
        .into_iter()
        .map(|l| (l.pc, l.prediction))
        .collect();

    let mut out = Vec::new();
    for (pc, inst) in kernel.insts().iter().enumerate() {
        let Op::Ld { space, .. } = &inst.op else {
            continue;
        };
        if !matches!(space, Space::Global | Space::Local | Space::Tex) {
            continue;
        }
        let chain_depth = depths.get(&pc).copied().unwrap_or(1);
        let slice_height = heights[pc];
        let cons = consumers.get(&pc).copied().unwrap_or(0);
        let divergent = div.divergent_pcs.contains(&pc);
        let requests = match predictions.get(&pc) {
            Some(Prediction::Requests(n)) => *n,
            Some(Prediction::BankDegree(n)) => *n,
            _ => 32,
        };
        let score = 16 * u64::from(chain_depth)
            + 2 * u64::from(slice_height)
            + u64::from(cons.min(8))
            + if divergent { 4 } else { 0 }
            + u64::from(requests.min(32));
        out.push(CriticalLoad {
            pc,
            space: *space,
            class: class_of
                .get(&pc)
                .copied()
                .unwrap_or(LoadClass::Deterministic),
            chain_depth,
            slice_height,
            consumers: cons,
            divergent,
            requests,
            score,
            rank: 0,
        });
    }
    out.sort_by(|a, b| b.score.cmp(&a.score).then(a.pc.cmp(&b.pc)));
    for (i, l) in out.iter_mut().enumerate() {
        l.rank = (i + 1) as u32;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::{KernelBuilder, Type};

    /// The paper's Code 1 shape: a D-load feeding an N-load. The N-load
    /// must outrank the D-load.
    #[test]
    fn n_load_outranks_its_feeder() {
        let mut b = KernelBuilder::new("bfs_ish");
        let pi = b.param("edges", Type::U64);
        let pd = b.param("visited", Type::U64);
        let edges = b.ld_param(Type::U64, pi);
        let visited = b.ld_param(Type::U64, pd);
        let tid = b.thread_linear_id();
        let ea = b.index64(edges, tid, 4);
        let id = b.ld_global(Type::U32, ea);
        let va = b.index64(visited, id, 4);
        let v = b.ld_global(Type::U32, va);
        b.st_global(Type::U32, va, v);
        b.exit();
        let k = b.build().unwrap();
        let ranked = critical_loads(&k);
        assert_eq!(ranked.len(), 2);
        assert_eq!(ranked[0].chain_depth, 2);
        assert_eq!(ranked[0].class, LoadClass::NonDeterministic);
        assert_eq!(ranked[0].rank, 1);
        assert!(ranked[0].score > ranked[1].score);
        // The feeder itself is depth 1.
        assert_eq!(ranked[1].chain_depth, 1);
    }

    #[test]
    fn slice_and_consumers_are_counted() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.thread_linear_id();
        let a = b.index64(base, tid, 4);
        let v = b.ld_global(Type::U32, a);
        let w = b.add(Type::U32, v, 1i64);
        let x = b.add(Type::U32, w, 2i64);
        b.st_global(Type::U32, a, x);
        b.exit();
        let k = b.build().unwrap();
        let ranked = critical_loads(&k);
        assert_eq!(ranked.len(), 1);
        // ld <- addr <- mad(tid) <- cvt/mov chain: height at least 3.
        assert!(ranked[0].slice_height >= 3);
        // add, add, st depend on the value.
        assert_eq!(ranked[0].consumers, 3);
        assert_eq!(ranked[0].chain_depth, 1);
    }
}
