//! Structured diagnostics emitted by the verifier and the divergence
//! analysis.

use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but executable (dead code, unreachable blocks).
    Warning,
    /// The kernel is wrong or hazardous (use-before-def, type mismatch,
    /// divergent barrier, missing exit).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding, anchored to an instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Instruction index the finding is anchored to.
    pub pc: usize,
    /// Severity class.
    pub severity: Severity,
    /// Stable machine-readable code (`use-before-def`, `dead-store`, ...).
    pub code: &'static str,
    /// Human-readable description.
    pub message: String,
    /// The offending instruction, rendered via `gcl_ptx`'s display format.
    pub inst: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] pc {}: {}\n    {}",
            self.severity, self.code, self.pc, self.message, self.inst
        )
    }
}
