//! Loop-aware footprint analysis: per-load per-CTA 128 B-block footprints
//! and the static inter-CTA sharing they imply.
//!
//! This is the static side of the paper's "hidden data locality" result:
//! CTAs of real kernels touch overlapping 128 B block sets, which clustered
//! CTA scheduling and a semi-global L2 can exploit. The dynamic side
//! (`gcl_sim`'s block tracker) *measures* that overlap; this module
//! *predicts* it from the PTX alone, given only the launch geometry:
//!
//! 1. Every load address is evaluated to a [`SymAffine`] form over
//!    `{tid.*, ctaid.*, %laneid, loop induction variables}` — the
//!    [`crate::affine`] evaluator widened with CTA terms and natural-loop
//!    induction-variable recognition over [`gcl_ptx::LoopForest`]. Loop trip
//!    counts are recovered from the exit guard when the bound is a static
//!    constant.
//! 2. The per-CTA byte footprint is the Minkowski sum of one strided
//!    [`ARange`] per non-CTA term; quantizing by 128 B gives the block
//!    footprint. The CTA terms only *shift* that range, so inter-CTA overlap
//!    reduces to intersecting one range with a shifted copy of itself —
//!    one CRT intersection per distinct CTA-coordinate delta.
//! 3. Per load, the deltas classify into a [`Sharing`] verdict; per kernel
//!    they aggregate into a [`SharingMatrix`] and a suggested [`ClusterMap`]
//!    (the smallest run of consecutive linear CTA ids that captures the
//!    majority of predicted sharing — directly consumable by the
//!    simulator's clustered CTA scheduler).
//!
//! Soundness: `Private` is only claimed from *over-approximate* disjointness
//! and `Shared` only from *exact* nonempty intersections, so both verdicts
//! survive the range arithmetic's approximations. Addresses that depend on
//! loaded values (pointer chasing) report [`Sharing::Unbounded`] rather
//! than a wrong range. Base pointers are assumed 128 B-aligned (the
//! simulator's allocator guarantees it); when an address carries an unknown
//! uniform addend the analysis falls back to byte-level reasoning with a
//! full block of slack.

use crate::symaff::{ARange, Coeff, LaunchCtx, SymAffine, SymVal, Term};
use gcl_core::{address_sources, AddressSource, DefSite, ReachingDefs};
use gcl_ptx::{
    AluOp, Cfg, CmpOp, Kernel, LoopForest, Op, Operand, Reg, Space, Special, Type, UnaryOp,
};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Block granularity of the footprint model (the simulator's L2 line).
pub const BLOCK_BYTES: i64 = 128;

/// Iteration cap when scanning a loop guard for its trip count.
const MAX_TRIP_SCAN: i64 = 1 << 16;

/// Per-dimension cap on the CTA-delta scan for very large grids.
const MAX_DELTA: i64 = 32;

/// Largest grid for which the full [`SharingMatrix`] is materialized.
const MAX_MATRIX_CTAS: u64 = 256;

/// Static inter-CTA sharing verdict for one load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sharing {
    /// Some grid dimension with more than one CTA has coefficient zero:
    /// CTAs differing only along it read *identical* footprints.
    Broadcast,
    /// Some CTA pair provably shares at least one 128 B block.
    Shared,
    /// Every CTA pair provably touches disjoint blocks.
    Private,
    /// The address depends on loaded data (pointer chase); the footprint
    /// is statically unbounded.
    Unbounded,
    /// The analysis could not decide (unknown coefficients, unknown trip
    /// counts, or inexact ranges in the way).
    Unknown,
}

impl Sharing {
    /// Short lowercase label, stable for CSV output.
    pub fn label(&self) -> &'static str {
        match self {
            Sharing::Broadcast => "broadcast",
            Sharing::Shared => "shared",
            Sharing::Private => "private",
            Sharing::Unbounded => "unbounded",
            Sharing::Unknown => "unknown",
        }
    }
}

impl fmt::Display for Sharing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Footprint and sharing prediction for one global-backed load.
#[derive(Debug, Clone)]
pub struct LoadFootprint {
    /// Instruction index of the load.
    pub pc: usize,
    /// State space accessed.
    pub space: Space,
    /// Access size in bytes.
    pub bytes: u32,
    /// Symbolic affine form of the address, when one was found.
    pub sym: Option<SymAffine>,
    /// Inter-CTA sharing verdict.
    pub sharing: Sharing,
    /// Per-CTA 128 B-block footprint (CTA 0, base taken as 0), when the
    /// range is computable.
    pub blocks: Option<ARange>,
    /// Number of blocks in [`LoadFootprint::blocks`] (an upper bound when
    /// the range is inexact).
    pub block_count: Option<u64>,
    /// Bytes between the footprints of x-adjacent CTAs, when known.
    pub cta_stride_x: Option<i64>,
    /// Whether the footprint claims are exact (unguarded load, exact
    /// ranges, no unknown uniform addend).
    pub exact: bool,
}

/// Symmetric CTA-pair sharing counts: entry `(i, j)` is the number of
/// static loads predicted to share at least one block between linear CTAs
/// `i` and `j`.
#[derive(Debug, Clone)]
pub struct SharingMatrix {
    n: usize,
    counts: Vec<u32>,
}

impl SharingMatrix {
    fn new(n: usize) -> SharingMatrix {
        SharingMatrix {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Number of CTAs covered (0 when the grid was too large to
    /// materialize the matrix).
    pub fn n_ctas(&self) -> usize {
        self.n
    }

    /// Sharing count for the unordered pair `(i, j)`.
    pub fn at(&self, i: usize, j: usize) -> u32 {
        self.counts[i * self.n + j]
    }

    fn bump(&mut self, i: usize, j: usize) {
        self.counts[i * self.n + j] += 1;
        if i != j {
            self.counts[j * self.n + i] += 1;
        }
    }

    /// Total sharing units over unordered pairs `i < j`.
    pub fn total(&self) -> u64 {
        let mut t = 0u64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                t += u64::from(self.at(i, j));
            }
        }
        t
    }

    /// Sharing units falling within clusters of `g` consecutive linear ids.
    pub fn within(&self, g: usize) -> u64 {
        let g = g.max(1);
        let mut t = 0u64;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if i / g == j / g {
                    t += u64::from(self.at(i, j));
                }
            }
        }
        t
    }
}

/// Suggested clustered-CTA-scheduler group size derived from the
/// [`SharingMatrix`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterMap {
    /// Smallest group of consecutive linear CTA ids capturing at least
    /// half of the predicted sharing (1 when there is no sharing to
    /// capture).
    pub group: u64,
    /// Fraction of predicted sharing falling within those groups.
    pub within_fraction: f64,
}

/// Locality analysis of one kernel under one launch geometry.
#[derive(Debug, Clone)]
pub struct KernelLocality {
    /// Kernel name.
    pub kernel: String,
    /// The launch geometry analyzed.
    pub launch: LaunchCtx,
    /// Per-load footprints, in pc order.
    pub loads: Vec<LoadFootprint>,
    /// CTA-pair sharing counts (empty when the grid exceeds the matrix
    /// cap).
    pub matrix: SharingMatrix,
    /// Suggested scheduler cluster size.
    pub cluster: ClusterMap,
}

impl fmt::Display for KernelLocality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel `{}` locality over {}x{}x{} CTAs of {}x{}x{} threads:",
            self.kernel,
            self.launch.nctaid[0],
            self.launch.nctaid[1],
            self.launch.nctaid[2],
            self.launch.ntid[0],
            self.launch.ntid[1],
            self.launch.ntid[2],
        )?;
        for l in &self.loads {
            let sym = l
                .sym
                .as_ref()
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".to_string());
            let blocks = match (l.block_count, &l.blocks) {
                (Some(n), Some(r)) => format!("{n} block(s) {r}"),
                _ => "unbounded".to_string(),
            };
            writeln!(
                f,
                "  pc {:>3} {:<9} [{}] {} — {}{}",
                l.pc,
                l.sharing.label(),
                sym,
                blocks,
                if l.exact { "exact" } else { "approx" },
                match l.cta_stride_x {
                    Some(s) => format!(", cta-stride-x {s} B"),
                    None => String::new(),
                },
            )?;
        }
        let total = self.matrix.total();
        writeln!(
            f,
            "  sharing pairs: {total} unit(s); suggested cluster group {} ({:.0}% within)",
            self.cluster.group,
            self.cluster.within_fraction * 100.0,
        )
    }
}

/// Per-CTA-pair sharing verdict, before aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairShare {
    /// The two footprints are identical (all differing dims have zero
    /// coefficient).
    All,
    /// Exactly intersecting block ranges: provably shares blocks.
    Blocks,
    /// Provably disjoint.
    Disjoint,
    /// Cannot tell.
    Unknown,
}

/// Symbolic evaluator over reaching definitions, with natural-loop
/// induction-variable recognition. Same traversal shape as
/// [`crate::affine`]'s evaluator, but cycles that are not recognized
/// induction variables go to [`SymVal::Top`] — footprints need the
/// constants, not just the coefficients, so the affine evaluator's
/// "init value wins" shortcut would be unsound here.
struct SymEval<'k> {
    kernel: &'k Kernel,
    cfg: Cfg,
    forest: LoopForest,
    reaching: ReachingDefs,
    ctx: LaunchCtx,
    memo: HashMap<DefSite, SymVal>,
    in_progress: HashSet<DefSite>,
    trips: HashMap<usize, Option<u64>>,
}

impl<'k> SymEval<'k> {
    fn new(kernel: &'k Kernel, ctx: LaunchCtx) -> SymEval<'k> {
        let cfg = Cfg::build(kernel);
        let forest = cfg.loop_forest();
        SymEval {
            kernel,
            cfg,
            forest,
            reaching: ReachingDefs::compute(kernel),
            ctx,
            memo: HashMap::new(),
            in_progress: HashSet::new(),
            trips: HashMap::new(),
        }
    }

    /// `i = i ± const` with `dst == reg`, unguarded: the step, if so.
    fn iv_step(&self, pc: usize, reg: Reg) -> Option<i64> {
        let inst = &self.kernel.insts()[pc];
        if inst.guard.is_some() {
            return None;
        }
        let Op::Alu { op, dst, a, b, .. } = &inst.op else {
            return None;
        };
        if *dst != reg {
            return None;
        }
        match (op, a, b) {
            (AluOp::Add, Operand::Reg(r), Operand::Imm(c)) if *r == reg => Some(*c),
            (AluOp::Add, Operand::Imm(c), Operand::Reg(r)) if *r == reg => Some(*c),
            (AluOp::Sub, Operand::Reg(r), Operand::Imm(c)) if *r == reg => Some(-*c),
            _ => None,
        }
    }

    fn value_of_use(&mut self, use_pc: usize, reg: Reg) -> SymVal {
        let defs = self.reaching.defs_reaching_use(self.kernel, use_pc, reg);
        if defs.is_empty() {
            return SymVal::Top;
        }
        // Induction-variable recognition: exactly one in-loop self-increment
        // plus initializations from outside that loop, with the use inside
        // it, evaluates to `init + step·iv` instead of chasing the cycle.
        let use_block = self.cfg.block_of(use_pc);
        let ivs: Vec<(DefSite, usize, i64)> = defs
            .iter()
            .filter_map(|d| {
                let step = self.iv_step(d.pc, reg)?;
                let l = self.forest.innermost_of(self.cfg.block_of(d.pc))?;
                Some((*d, l, step))
            })
            .collect();
        if let [(inc, l, step)] = ivs[..] {
            let lp = &self.forest.loops()[l];
            // Needs the init defs in the reaching set: a use that sees only
            // the increment resolves through `value_of_def(inc)` instead,
            // whose own operand use does see the {init, increment} pair.
            if defs.len() > 1
                && lp.contains(use_block)
                && defs
                    .iter()
                    .all(|d| d.pc == inc.pc || !lp.contains(self.cfg.block_of(d.pc)))
            {
                let mut init = SymVal::Bottom;
                for d in defs.iter().filter(|d| d.pc != inc.pc) {
                    init = init.join(&self.value_of_def(*d));
                }
                return match init {
                    SymVal::Val(v) => SymVal::Val(v.add(&SymAffine::term(Term::Iv(l)).scale(step))),
                    _ => SymVal::Top,
                };
            }
        }
        let mut v = SymVal::Bottom;
        for d in defs {
            v = v.join(&self.value_of_def(d));
        }
        v
    }

    fn value_of_operand(&mut self, pc: usize, o: &Operand) -> SymVal {
        match o {
            Operand::Reg(r) => self.value_of_use(pc, *r),
            Operand::Imm(v) => SymVal::Val(SymAffine::constant(*v)),
            Operand::FImm(_) => SymVal::Val(SymAffine::unknown_uniform()),
            Operand::Special(s) => match s {
                Special::TidX => SymVal::Val(SymAffine::term(Term::TidX)),
                Special::TidY => SymVal::Val(SymAffine::term(Term::TidY)),
                Special::TidZ => SymVal::Val(SymAffine::term(Term::TidZ)),
                Special::CtaIdX => SymVal::Val(SymAffine::term(Term::CtaIdX)),
                Special::CtaIdY => SymVal::Val(SymAffine::term(Term::CtaIdY)),
                Special::CtaIdZ => SymVal::Val(SymAffine::term(Term::CtaIdZ)),
                Special::LaneId => SymVal::Val(SymAffine::term(Term::Lane)),
                Special::NTidX => SymVal::Val(SymAffine::constant(i64::from(self.ctx.ntid[0]))),
                Special::NTidY => SymVal::Val(SymAffine::constant(i64::from(self.ctx.ntid[1]))),
                Special::NTidZ => SymVal::Val(SymAffine::constant(i64::from(self.ctx.ntid[2]))),
                Special::NCtaIdX => SymVal::Val(SymAffine::constant(i64::from(self.ctx.nctaid[0]))),
                Special::NCtaIdY => SymVal::Val(SymAffine::constant(i64::from(self.ctx.nctaid[1]))),
                Special::NCtaIdZ => SymVal::Val(SymAffine::constant(i64::from(self.ctx.nctaid[2]))),
                // Per-warp, not per-thread-affine in our terms.
                Special::WarpId => SymVal::Top,
            },
        }
    }

    fn uniform_rule(&self, ops: &[SymVal]) -> SymVal {
        if ops.iter().any(|o| matches!(o, SymVal::Bottom)) {
            return SymVal::Bottom;
        }
        if ops
            .iter()
            .all(|o| matches!(o, SymVal::Val(v) if v.is_uniform()))
        {
            SymVal::Val(SymAffine::unknown_uniform())
        } else {
            SymVal::Top
        }
    }

    fn mul(&self, a: &SymVal, b: &SymVal) -> SymVal {
        match (a, b) {
            (SymVal::Bottom, _) | (_, SymVal::Bottom) => SymVal::Bottom,
            (SymVal::Val(x), SymVal::Val(y)) => {
                if x.is_constant() {
                    return SymVal::Val(y.scale(x.k));
                }
                if y.is_constant() {
                    return SymVal::Val(x.scale(y.k));
                }
                // One side grid-uniform but unknown: the term support of the
                // other side survives with unknown magnitudes.
                if x.is_uniform() {
                    return match y.scale_unknown() {
                        Some(v) => SymVal::Val(v),
                        None => SymVal::Top,
                    };
                }
                if y.is_uniform() {
                    return match x.scale_unknown() {
                        Some(v) => SymVal::Val(v),
                        None => SymVal::Top,
                    };
                }
                SymVal::Top
            }
            _ => SymVal::Top,
        }
    }

    fn add(&self, a: &SymVal, b: &SymVal) -> SymVal {
        match (a, b) {
            (SymVal::Bottom, _) | (_, SymVal::Bottom) => SymVal::Bottom,
            (SymVal::Top, _) | (_, SymVal::Top) => SymVal::Top,
            (SymVal::Val(x), SymVal::Val(y)) => SymVal::Val(x.add(y)),
        }
    }

    fn value_of_def(&mut self, def: DefSite) -> SymVal {
        if let Some(v) = self.memo.get(&def) {
            return v.clone();
        }
        if !self.in_progress.insert(def) {
            // Unrecognized recurrence: refuse, do not pretend.
            return SymVal::Top;
        }
        let pc = def.pc;
        let v = match &self.kernel.insts()[pc].op {
            Op::Ld { space, addr, .. } => match space {
                Space::Param => match addr.base {
                    // A pointer-typed parameter at a declared offset is a
                    // base; any other param read is an unknown uniform.
                    None => self.param_value(addr.offset),
                    Some(_) => SymVal::Val(SymAffine::unknown_uniform()),
                },
                Space::Const => SymVal::Val(SymAffine::unknown_uniform()),
                _ => SymVal::Top,
            },
            Op::Atom { .. } => SymVal::Top,
            Op::Mov { src, .. } | Op::Cvt { src, .. } => {
                let s = *src;
                self.value_of_operand(pc, &s)
            }
            Op::Unary { op, a, .. } => {
                let a = *a;
                let va = self.value_of_operand(pc, &a);
                match (op, &va) {
                    (UnaryOp::Neg, SymVal::Val(v)) => SymVal::Val(v.neg()),
                    (UnaryOp::Neg, other) => other.clone(),
                    _ => self.uniform_rule(&[va]),
                }
            }
            Op::Alu { op, a, b, .. } => {
                let (op, a, b) = (*op, *a, *b);
                let va = self.value_of_operand(pc, &a);
                let vb = self.value_of_operand(pc, &b);
                match op {
                    AluOp::Add => self.add(&va, &vb),
                    AluOp::Sub => {
                        let nb = match &vb {
                            SymVal::Val(v) => SymVal::Val(v.neg()),
                            other => other.clone(),
                        };
                        self.add(&va, &nb)
                    }
                    AluOp::Mul | AluOp::MulWide => self.mul(&va, &vb),
                    AluOp::Shl => match &vb {
                        SymVal::Val(s) if s.is_constant() && (0..=32).contains(&s.k) => match &va {
                            SymVal::Val(v) => SymVal::Val(v.scale(1i64 << s.k)),
                            other => other.clone(),
                        },
                        _ => self.uniform_rule(&[va, vb]),
                    },
                    _ => self.uniform_rule(&[va, vb]),
                }
            }
            Op::Mad { a, b, c, .. } => {
                let (a, b, c) = (*a, *b, *c);
                let va = self.value_of_operand(pc, &a);
                let vb = self.value_of_operand(pc, &b);
                let vc = self.value_of_operand(pc, &c);
                let prod = self.mul(&va, &vb);
                self.add(&prod, &vc)
            }
            Op::Sfu { a, .. } => {
                let a = *a;
                let va = self.value_of_operand(pc, &a);
                self.uniform_rule(&[va])
            }
            Op::Setp { a, b, .. } => {
                let (a, b) = (*a, *b);
                let va = self.value_of_operand(pc, &a);
                let vb = self.value_of_operand(pc, &b);
                self.uniform_rule(&[va, vb])
            }
            Op::Selp { a, b, pred, .. } => {
                let (a, b, pred) = (*a, *b, *pred);
                let va = self.value_of_operand(pc, &a);
                let vb = self.value_of_operand(pc, &b);
                let vp = self.value_of_use(pc, pred);
                if va == vb {
                    va
                } else if matches!(&vp, SymVal::Val(p) if p.is_uniform()) {
                    va.join(&vb)
                } else {
                    SymVal::Top
                }
            }
            Op::St { .. } | Op::Bra { .. } | Op::Bar { .. } | Op::Exit => SymVal::Top,
        };
        self.in_progress.remove(&def);
        self.memo.insert(def, v.clone());
        v
    }

    fn param_value(&self, offset: i64) -> SymVal {
        let Ok(off) = u32::try_from(offset) else {
            return SymVal::Val(SymAffine::unknown_uniform());
        };
        for i in 0..self.kernel.params().len() {
            if self.kernel.param_offset(i) == off {
                if self.kernel.params()[i].ty == Type::U64 {
                    return SymVal::Val(SymAffine::param(off));
                }
                break;
            }
        }
        SymVal::Val(SymAffine::unknown_uniform())
    }

    /// Trip count of loop `l`, when the exit guard compares a recognized
    /// induction variable against a static constant.
    fn loop_trips(&mut self, l: usize) -> Option<u64> {
        if let Some(t) = self.trips.get(&l) {
            return *t;
        }
        self.trips.insert(l, None); // cut re-entrancy
        let t = self.compute_trips(l);
        self.trips.insert(l, t);
        t
    }

    fn compute_trips(&mut self, l: usize) -> Option<u64> {
        let (latches, exits) = {
            let lp = &self.forest.loops()[l];
            (lp.latches.clone(), lp.exit_edges.clone())
        };
        let (gb, exit_target) = *exits.first()?;
        if !exits.iter().all(|e| e.0 == gb) {
            return None;
        }
        let term_pc = self.cfg.blocks()[gb].terminator_pc();
        let (target, guard) = match &self.kernel.insts()[term_pc] {
            gcl_ptx::Instruction {
                op: Op::Bra { target },
                guard: Some(g),
            } => (*target, *g),
            _ => return None,
        };
        let branch_block = self.cfg.block_of(target);
        if term_pc + 1 >= self.kernel.insts().len() {
            return None;
        }
        let fall_block = self.cfg.block_of(term_pc + 1);
        if branch_block == fall_block {
            return None;
        }
        let exit_on_taken = exit_target == branch_block;
        let defs = self
            .reaching
            .defs_reaching_use(self.kernel, term_pc, guard.pred);
        let [pdef] = defs[..] else { return None };
        let sp = pdef.pc;
        let (cmp, a, b) = match &self.kernel.insts()[sp] {
            gcl_ptx::Instruction {
                op: Op::Setp { cmp, a, b, .. },
                guard: None,
            } => (*cmp, *a, *b),
            _ => return None,
        };
        let va = self.value_of_operand(sp, &a);
        let vb = self.value_of_operand(sp, &b);
        let (ka, sa) = as_iv_line(&va, l)?;
        let (kb, sb) = as_iv_line(&vb, l)?;
        for j in 0..=MAX_TRIP_SCAN {
            let taken = eval_cmp(cmp, ka + sa * j, kb + sb * j) != guard.negate;
            let exits_now = if exit_on_taken { taken } else { !taken };
            if exits_now {
                // A latch guard (incl. a single-block do-while, where the
                // header is its own latch) tests after the body ran, so
                // iteration j executed; a pure header guard tests first.
                let t = if latches.contains(&gb) { j + 1 } else { j };
                return u64::try_from(t).ok();
            }
        }
        None
    }

    /// The value domain of a non-CTA term: geometry for tids/lane, trip
    /// count for induction variables.
    fn term_domain(&mut self, t: Term) -> Option<u64> {
        match t {
            Term::Iv(l) => self.loop_trips(l),
            other => self.ctx.term_domain(other),
        }
    }
}

/// `v` as `k + s·iv(l)` with everything else absent: `(k, s)`.
fn as_iv_line(v: &SymVal, l: usize) -> Option<(i64, i64)> {
    let f = v.val()?;
    if !f.bases.is_empty() || f.ubase {
        return None;
    }
    let mut s = 0i64;
    for (t, c) in f.terms() {
        match (t, c) {
            (Term::Iv(tl), Coeff::Known(cs)) if tl == l => s = cs,
            _ => return None,
        }
    }
    Some((f.k, s))
}

fn eval_cmp(cmp: CmpOp, a: i64, b: i64) -> bool {
    match cmp {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

/// Quantize a byte-offset range of `bytes`-wide accesses to 128 B block
/// indices. Inexact results are supersets.
fn blockify(r: &ARange, bytes: u32) -> ARange {
    let s = i64::from(bytes.max(1));
    let lo_b = r.lo.div_euclid(BLOCK_BYTES);
    let hi_b = (r.hi + s - 1).div_euclid(BLOCK_BYTES);
    if r.step <= BLOCK_BYTES {
        // Consecutive accesses land at most one block apart: contiguous.
        return ARange::new(lo_b, hi_b, 1, r.exact);
    }
    if r.step % BLOCK_BYTES == 0 {
        let first = ARange::new(
            lo_b,
            r.hi.div_euclid(BLOCK_BYTES),
            r.step / BLOCK_BYTES,
            r.exact,
        );
        // Accesses straddling a block boundary touch the next block too.
        if r.lo.rem_euclid(BLOCK_BYTES) + s > BLOCK_BYTES {
            return first.merge(&first.shift(1));
        }
        return first;
    }
    ARange::new(lo_b, hi_b, 1, false)
}

/// Blocks that execute on every path from entry to an exit: a block
/// dominating every exit-carrying block runs in every thread, so a load
/// there carries *exact* footprint claims (no guard, predicate or branch
/// can mask part of its index space off).
fn always_executed(cfg: &Cfg) -> Vec<bool> {
    let idom = cfg.immediate_dominators();
    let dominates = |a: usize, b: usize| -> bool {
        let mut cur = Some(b);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            // The entry block is its own immediate dominator; stop there.
            cur = idom[c].filter(|&d| d != c);
        }
        false
    };
    let exits: Vec<usize> = cfg
        .blocks()
        .iter()
        .enumerate()
        .filter(|(_, b)| b.succs.is_empty())
        .map(|(i, _)| i)
        .collect();
    (0..cfg.blocks().len())
        .map(|b| !exits.is_empty() && exits.iter().all(|&e| dominates(b, e)))
        .collect()
}

/// Whether the instruction at `pc` executes in every thread that enters
/// the kernel: its block dominates every exit, or it sits in a counted
/// loop (trip count recovered, >= 1) whose header does. In the latter case
/// the block must dominate all the loop's latches, so it runs on every
/// iteration rather than under a conditional inside the body.
fn runs_unconditionally(eval: &mut SymEval<'_>, unconditional: &[bool], pc: usize) -> bool {
    let idom = eval.cfg.immediate_dominators();
    let dominates = |a: usize, t: usize| -> bool {
        let mut cur = Some(t);
        while let Some(c) = cur {
            if c == a {
                return true;
            }
            cur = idom[c].filter(|&d| d != c);
        }
        false
    };
    let mut b = eval.cfg.block_of(pc);
    loop {
        if unconditional[b] {
            return true;
        }
        let Some(l) = eval.forest.innermost_of(b) else {
            return false;
        };
        let (header, latches) = {
            let lp = &eval.forest.loops()[l];
            (lp.header, lp.latches.clone())
        };
        // Must run on every iteration, not under a conditional in the body
        // (the header trivially dominates its latches).
        if !latches.iter().all(|&lt| dominates(b, lt)) {
            return false;
        }
        if !matches!(eval.loop_trips(l), Some(t) if t >= 1) {
            return false;
        }
        // The loop body runs iff the loop is entered: continue from the
        // header's immediate dominator, which sits outside the loop (the
        // entry block is its own idom — stop if the header is the entry).
        let Some(pre) = idom[header].filter(|&d| d != header) else {
            return false;
        };
        b = pre;
    }
}

/// Compute per-load footprints, the sharing matrix and the cluster map for
/// `kernel` under launch geometry `ctx`.
pub fn footprints(kernel: &Kernel, ctx: &LaunchCtx) -> KernelLocality {
    let mut eval = SymEval::new(kernel, *ctx);
    let unconditional = always_executed(&eval.cfg);
    let mut loads = Vec::new();
    let mut per_load_val: Vec<Option<SymAffine>> = Vec::new();
    for (pc, inst) in kernel.insts().iter().enumerate() {
        let Op::Ld {
            space, ty, addr, ..
        } = &inst.op
        else {
            continue;
        };
        if !matches!(space, Space::Global | Space::Local | Space::Tex) {
            continue;
        }
        let bytes = ty.size_bytes();
        let v = match addr.base {
            Some(base) => match eval.value_of_use(pc, base) {
                SymVal::Val(f) => SymVal::Val(f.add(&SymAffine::constant(addr.offset))),
                other => other,
            },
            None => SymVal::Val(SymAffine::constant(addr.offset)),
        };
        // A load is guarded if predicated directly, or if its block is
        // reachable only through a branch (some threads/CTAs may skip it).
        // Loop bodies are an exception: with a recovered trip count >= 1
        // the body runs whenever its header does, so the loop's own exit
        // branch does not make the load conditional.
        let guarded = inst.guard.is_some() || !runs_unconditionally(&mut eval, &unconditional, pc);
        let (fp, form) = build_footprint(&mut eval, kernel, pc, *space, bytes, &v, guarded);
        loads.push(fp);
        per_load_val.push(form);
    }

    let n = ctx.n_ctas();
    let matrix_n = if n <= MAX_MATRIX_CTAS { n as usize } else { 0 };
    let mut matrix = SharingMatrix::new(matrix_n);
    if matrix_n > 1 {
        let coords = cta_coords(ctx);
        for (li, form) in per_load_val.iter().enumerate() {
            let Some(f) = form else { continue };
            let f0 = footprint_bytes(&mut eval, f);
            for i in 0..matrix_n {
                for j in (i + 1)..matrix_n {
                    let delta = [
                        i64::from(coords[j][0]) - i64::from(coords[i][0]),
                        i64::from(coords[j][1]) - i64::from(coords[i][1]),
                        i64::from(coords[j][2]) - i64::from(coords[i][2]),
                    ];
                    if matches!(
                        pair_share(f, &f0, delta, loads[li].bytes),
                        PairShare::All | PairShare::Blocks
                    ) {
                        matrix.bump(i, j);
                    }
                }
            }
        }
    }
    let cluster = cluster_map(&matrix);

    KernelLocality {
        kernel: kernel.name().to_string(),
        launch: *ctx,
        loads,
        matrix,
        cluster,
    }
}

/// Grid coordinates of every linear CTA id, x-major like the simulator.
fn cta_coords(ctx: &LaunchCtx) -> Vec<[u32; 3]> {
    let mut out = Vec::new();
    for z in 0..ctx.nctaid[2].max(1) {
        for y in 0..ctx.nctaid[1].max(1) {
            for x in 0..ctx.nctaid[0].max(1) {
                out.push([x, y, z]);
            }
        }
    }
    out
}

/// Per-CTA byte footprint (CTA terms excluded): the Minkowski sum of one
/// strided range per non-CTA term, plus the constant. `None` when a
/// coefficient or domain is unknown. The bool is the unknown-uniform flag.
fn footprint_bytes(eval: &mut SymEval<'_>, f: &SymAffine) -> Option<(ARange, bool)> {
    let mut r = ARange::singleton(f.k);
    for (t, c) in f.terms() {
        if matches!(t, Term::CtaIdX | Term::CtaIdY | Term::CtaIdZ) {
            continue;
        }
        let Coeff::Known(c) = c else { return None };
        if c == 0 {
            continue;
        }
        let dom = eval.term_domain(t)?;
        r = r.add(&ARange::strided(c, dom.max(1)));
    }
    Some((r, f.ubase))
}

/// Sharing verdict for one CTA-coordinate delta.
fn pair_share(
    f: &SymAffine,
    f0: &Option<(ARange, bool)>,
    delta: [i64; 3],
    bytes: u32,
) -> PairShare {
    let dims = [Term::CtaIdX, Term::CtaIdY, Term::CtaIdZ];
    let mut shift = 0i64;
    let mut all_zero = true;
    for (d, &dv) in dims.iter().zip(&delta) {
        if dv == 0 {
            continue;
        }
        match f.coeff(*d) {
            Coeff::Known(0) => {}
            Coeff::Known(c) => {
                all_zero = false;
                shift += c * dv;
            }
            Coeff::Unknown => return PairShare::Unknown,
        }
    }
    if all_zero {
        return PairShare::All;
    }
    let Some((r0, ubase)) = f0 else {
        return PairShare::Unknown;
    };
    if shift == 0 {
        // Distinct CTAs, same footprint start: identical ranges.
        return PairShare::All;
    }
    let shifted = r0.shift(shift);
    if *ubase {
        // Unknown uniform addend: block alignment is unknowable, but byte
        // identity survives (the addend shifts both CTAs equally).
        if let Some(i) = r0.intersect(&shifted) {
            if i.exact {
                return PairShare::Blocks;
            }
            return PairShare::Unknown;
        }
        // Disjoint byte progressions may still share a block; only a full
        // block of clearance rules it out.
        let gap_clear = shifted.lo - r0.hi > i64::from(bytes) + BLOCK_BYTES
            || r0.lo - shifted.hi > i64::from(bytes) + BLOCK_BYTES;
        let dense = r0.step == 1 || r0.count() == 1;
        if gap_clear && dense {
            return PairShare::Disjoint;
        }
        return PairShare::Unknown;
    }
    let b0 = blockify(r0, bytes);
    let bd = blockify(&shifted, bytes);
    match b0.intersect(&bd) {
        Some(i) if i.exact => PairShare::Blocks,
        Some(_) => PairShare::Unknown,
        // Supersets disjoint ⇒ the true block sets are disjoint.
        None => PairShare::Disjoint,
    }
}

fn build_footprint(
    eval: &mut SymEval<'_>,
    kernel: &Kernel,
    pc: usize,
    space: Space,
    bytes: u32,
    v: &SymVal,
    guarded: bool,
) -> (LoadFootprint, Option<SymAffine>) {
    let ctx = eval.ctx;
    let Some(f) = v.val() else {
        // Not affine at all. Loaded-value addresses are the paper's
        // pointer-chase pattern: statically unbounded footprint.
        let chased = match &kernel.insts()[pc].op {
            Op::Ld { addr, .. } => addr.base.is_some_and(|b| {
                address_sources(kernel, pc, b)
                    .iter()
                    .any(|s| matches!(s, AddressSource::MemoryLoad { .. }))
            }),
            _ => false,
        };
        return (
            LoadFootprint {
                pc,
                space,
                bytes,
                sym: None,
                sharing: if chased {
                    Sharing::Unbounded
                } else {
                    Sharing::Unknown
                },
                blocks: None,
                block_count: None,
                cta_stride_x: None,
                exact: false,
            },
            None,
        );
    };
    let f = f.clone();
    let f0 = footprint_bytes(eval, &f);
    let (blocks, block_count) = match &f0 {
        Some((r, false)) => {
            let b = blockify(r, bytes);
            let c = b.count();
            (Some(b), Some(c))
        }
        _ => (None, None),
    };
    let cta_stride_x = match f.coeff(Term::CtaIdX) {
        Coeff::Known(c) => Some(c),
        Coeff::Unknown => None,
    };

    let n = ctx.n_ctas();
    let sharing = if n <= 1 {
        Sharing::Private
    } else {
        classify_sharing(&f, &f0, &ctx, bytes)
    };
    let exact = !guarded
        && !f.ubase
        && match &f0 {
            Some((r, _)) => r.exact,
            None => false,
        };
    (
        LoadFootprint {
            pc,
            space,
            bytes,
            sym: Some(f.clone()),
            sharing,
            blocks,
            block_count,
            cta_stride_x,
            exact,
        },
        Some(f),
    )
}

/// Aggregate per-delta verdicts into the load's [`Sharing`] label.
fn classify_sharing(
    f: &SymAffine,
    f0: &Option<(ARange, bool)>,
    ctx: &LaunchCtx,
    bytes: u32,
) -> Sharing {
    // Broadcast: some dimension with >1 CTA has a zero coefficient — CTAs
    // differing only along it read identical footprints. This survives
    // unknown coefficients elsewhere (the mmXn `row*n` pattern).
    let dims = [
        (Term::CtaIdX, ctx.nctaid[0]),
        (Term::CtaIdY, ctx.nctaid[1]),
        (Term::CtaIdZ, ctx.nctaid[2]),
    ];
    if dims
        .iter()
        .any(|&(t, n)| n > 1 && f.coeff(t) == Coeff::Known(0))
    {
        return Sharing::Broadcast;
    }

    let mut any_shared = false;
    let mut any_unknown = false;
    let mut capped = false;
    let lim = |n: u32| -> i64 {
        let d = i64::from(n.max(1)) - 1;
        if d > MAX_DELTA {
            d.min(MAX_DELTA)
        } else {
            d
        }
    };
    let (dx, dy, dz) = (lim(ctx.nctaid[0]), lim(ctx.nctaid[1]), lim(ctx.nctaid[2]));
    capped |= i64::from(ctx.nctaid[0].max(1)) - 1 > dx
        || i64::from(ctx.nctaid[1].max(1)) - 1 > dy
        || i64::from(ctx.nctaid[2].max(1)) - 1 > dz;
    for ddz in 0..=dz {
        for ddy in -dy..=dy {
            for ddx in -dx..=dx {
                // Unordered pairs: skip the identity and mirrored deltas.
                if ddz == 0 && (ddy < 0 || (ddy == 0 && ddx <= 0)) {
                    continue;
                }
                match pair_share(f, f0, [ddx, ddy, ddz], bytes) {
                    PairShare::All | PairShare::Blocks => any_shared = true,
                    PairShare::Unknown => any_unknown = true,
                    PairShare::Disjoint => {}
                }
            }
        }
    }
    if any_shared {
        Sharing::Shared
    } else if any_unknown || capped {
        Sharing::Unknown
    } else {
        Sharing::Private
    }
}

/// Smallest consecutive-linear-id group capturing at least half of the
/// predicted sharing.
fn cluster_map(m: &SharingMatrix) -> ClusterMap {
    let total = m.total();
    if total == 0 || m.n_ctas() <= 1 {
        return ClusterMap {
            group: 1,
            within_fraction: 1.0,
        };
    }
    for g in 1..=m.n_ctas() {
        let w = m.within(g);
        if 2 * w >= total {
            return ClusterMap {
                group: g as u64,
                within_fraction: w as f64 / total as f64,
            };
        }
    }
    ClusterMap {
        group: m.n_ctas() as u64,
        within_fraction: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::KernelBuilder;

    fn ctx_1d(ntid: u32, nctaid: u32) -> LaunchCtx {
        LaunchCtx::new([ntid, 1, 1], [nctaid, 1, 1])
    }

    /// addr = buf + gid.x * 4 — classic streaming kernel.
    fn streaming_kernel() -> Kernel {
        let mut b = KernelBuilder::new("stream");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let gid = b.thread_linear_id();
        let a = b.index64(base, gid, 4);
        let _ = b.ld_global(Type::U32, a);
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn streaming_load_is_private() {
        let k = streaming_kernel();
        let ctx = ctx_1d(64, 4);
        let loc = footprints(&k, &ctx);
        assert_eq!(loc.loads.len(), 1);
        let l = &loc.loads[0];
        assert_eq!(l.sharing, Sharing::Private, "form {:?}", l.sym);
        // 64 threads * 4 B = 256 B = 2 blocks per CTA.
        assert_eq!(l.block_count, Some(2));
        assert_eq!(l.cta_stride_x, Some(256));
        assert!(l.exact);
        assert_eq!(loc.matrix.total(), 0);
        assert_eq!(loc.cluster.group, 1);
    }

    /// addr = buf + tid.x * 4 — every CTA reads the same 256 B.
    #[test]
    fn tid_only_load_is_broadcast() {
        let mut b = KernelBuilder::new("bcast");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let a = b.index64(base, tid, 4);
        let _ = b.ld_global(Type::U32, a);
        b.exit();
        let k = b.build().unwrap();
        let loc = footprints(&k, &ctx_1d(64, 4));
        assert_eq!(loc.loads[0].sharing, Sharing::Broadcast);
        // All 6 CTA pairs share, for the single load.
        assert_eq!(loc.matrix.total(), 6);
    }

    /// Halo pattern: addr = buf + (gid.x + tid.x_extent) — CTA footprints
    /// offset by half a CTA overlap with their neighbor.
    #[test]
    fn overlapping_windows_are_shared() {
        // addr = buf + 4*(ctaid.x*32 + tid.x), 64 threads: each CTA reads
        // 256 B starting at ctaid.x*128 — adjacent CTAs overlap one block.
        let mut b = KernelBuilder::new("halo");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let cta = b.sreg(Special::CtaIdX);
        let tid = b.sreg(Special::TidX);
        let half = b.mul(Type::U32, cta, 32i64);
        let idx = b.add(Type::U32, half, tid);
        let a = b.index64(base, idx, 4);
        let _ = b.ld_global(Type::U32, a);
        b.exit();
        let k = b.build().unwrap();
        let loc = footprints(&k, &ctx_1d(64, 4));
        let l = &loc.loads[0];
        assert_eq!(l.sharing, Sharing::Shared, "form {:?}", l.sym);
        assert_eq!(l.cta_stride_x, Some(128));
        // Adjacent pairs share; the matrix should prefer small clusters.
        assert!(loc.matrix.at(0, 1) > 0);
        assert_eq!(loc.matrix.at(0, 3), 0);
    }

    /// Pointer chase: addr = *p — unbounded.
    #[test]
    fn pointer_chase_is_unbounded() {
        let mut b = KernelBuilder::new("chase");
        let p = b.param("head", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let next = b.ld_global(Type::U64, base);
        let _ = b.ld_global(Type::U32, next);
        b.exit();
        let k = b.build().unwrap();
        let loc = footprints(&k, &ctx_1d(32, 2));
        assert_eq!(loc.loads[1].sharing, Sharing::Unbounded);
        assert!(loc.loads[1].blocks.is_none());
    }

    /// Counted loop: for (i = 0; i < 8; i++) load buf[gid*8 + i].
    #[test]
    fn counted_loop_footprint_uses_trip_count() {
        let mut b = KernelBuilder::new("looped");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let gid = b.thread_linear_id();
        let row = b.mul(Type::U32, gid, 8i64);
        let i = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let head = b.new_label();
        let done = b.new_label();
        b.place(head);
        let pr = b.setp(CmpOp::Ge, Type::U32, i, 8i64);
        b.bra_if(pr, done);
        let idx = b.add(Type::U32, row, i);
        let a = b.index64(base, idx, 4);
        let _ = b.ld_global(Type::U32, a);
        b.push(Op::Alu {
            op: AluOp::Add,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        b.bra(head);
        b.place(done);
        b.exit();
        let k = b.build().unwrap();
        let ctx = ctx_1d(32, 2);
        let loc = footprints(&k, &ctx);
        let l = &loc.loads[0];
        let f = l.sym.as_ref().expect("affine form");
        // 8 iterations * 4 B contiguous per thread, 32 threads per CTA:
        // 32*8*4 = 1024 B = 8 blocks, private per CTA.
        assert_eq!(l.block_count, Some(8), "form {f}");
        assert_eq!(l.sharing, Sharing::Private);
        assert!(l.exact);
    }

    /// Unknown trip count (bound from a scalar param) keeps broadcast
    /// detection alive but blocks the footprint.
    #[test]
    fn unknown_trip_still_detects_broadcast() {
        let mut b = KernelBuilder::new("mmrow");
        let p = b.param("buf", Type::U64);
        let pn = b.param("n", Type::U32);
        let base = b.ld_param(Type::U64, p);
        let n = b.ld_param(Type::U32, pn);
        let i = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let head = b.new_label();
        let done = b.new_label();
        b.place(head);
        let pr = b.setp(CmpOp::Ge, Type::U32, i, n);
        b.bra_if(pr, done);
        let a = b.index64(base, i, 4);
        let _ = b.ld_global(Type::U32, a);
        b.push(Op::Alu {
            op: AluOp::Add,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        b.bra(head);
        b.place(done);
        b.exit();
        let k = b.build().unwrap();
        let loc = footprints(&k, &ctx_1d(32, 4));
        let l = &loc.loads[0];
        assert_eq!(l.sharing, Sharing::Broadcast, "form {:?}", l.sym);
        assert_eq!(l.block_count, None);
    }

    /// Down-counting do-while loop: i = 8; do { ... i -= 1 } while (i > 0).
    #[test]
    fn down_counting_latch_loop_trip() {
        let mut b = KernelBuilder::new("down");
        let p = b.param("buf", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let i = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 8i64.into(),
        });
        let head = b.new_label();
        b.place(head);
        let a = b.index64(base, i, 4);
        let _ = b.ld_global(Type::U32, a);
        b.push(Op::Alu {
            op: AluOp::Sub,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        let pr = b.setp(CmpOp::Gt, Type::U32, i, 0i64);
        b.bra_if(pr, head);
        b.exit();
        let k = b.build().unwrap();
        let loc = footprints(&k, &ctx_1d(1, 2));
        let l = &loc.loads[0];
        // i takes 8, 7, ..., 1 at the load: 8 words = 32 B, 1 block.
        assert_eq!(l.block_count, Some(1), "form {:?}", l.sym);
        assert_eq!(l.sharing, Sharing::Broadcast);
    }
}
