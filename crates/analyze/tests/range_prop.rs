//! Property tests for the strided-range arithmetic underneath the
//! footprint analysis, against a concrete-enumeration oracle.
//!
//! The soundness contract of [`ARange`] is directional:
//!
//! * every operation's result must be a **superset** of the operation
//!   applied pointwise to the concrete sets (the analysis may only ever
//!   over-approximate — an under-approximation would let the footprint
//!   analysis claim `private` for loads that actually share blocks);
//! * whenever the result carries `exact = true` it must equal the
//!   concrete set **exactly** (the `shared`/`exact`-footprint claims lean
//!   on it);
//! * `exact` must never survive an inexact input.
//!
//! Cases are generated from the repo's own deterministic generator
//! ([`gcl_rng`]), so failures reproduce from the printed seed.

use gcl_analyze::ARange;
use gcl_rng::{cases, Rng};
use std::collections::BTreeSet;

/// Concrete elements of the progression (the oracle's ground truth).
fn elems(r: &ARange) -> BTreeSet<i64> {
    (0..r.count() as i64).map(|i| r.lo + i * r.step).collect()
}

/// A small random exact range: |lo| <= 64, up to 16 elements, step <= 12.
fn arb_range(rng: &mut Rng) -> ARange {
    let lo = i64::from(rng.u32_below(129)) - 64;
    let n = i64::from(rng.u32_below(16)) + 1;
    let step = i64::from(rng.u32_below(12)) + 1;
    ARange::new(lo, lo + (n - 1) * step, step, true)
}

/// `sup` contains every element of `set` (set-level superset, using the
/// progression's own membership test).
fn assert_superset(sup: &ARange, set: &BTreeSet<i64>, what: &str) {
    for &v in set {
        assert!(sup.contains(v), "{what}: {sup} is missing element {v}");
    }
}

#[test]
fn construction_matches_enumeration() {
    cases(0xA11CE, 500, |rng| {
        let r = arb_range(rng);
        let e = elems(&r);
        assert_eq!(e.len() as u64, r.count(), "{r}");
        assert_eq!(e.first().copied(), Some(r.lo), "{r}");
        assert_eq!(e.last().copied(), Some(r.hi), "{r}");
        // `contains` agrees with enumeration over a window past both ends.
        for v in (r.lo - 3)..=(r.hi + 3) {
            assert_eq!(r.contains(v), e.contains(&v), "{r} at {v}");
        }
    });
}

#[test]
fn strided_matches_term_contribution() {
    cases(0x57F1DE, 500, |rng| {
        let c = i64::from(rng.u32_below(41)) - 20;
        let n = u64::from(rng.u32_below(16)) + 1;
        let r = ARange::strided(c, n);
        let want: BTreeSet<i64> = (0..n as i64).map(|i| c * i).collect();
        assert_eq!(elems(&r), want, "strided({c}, {n}) = {r}");
        assert!(r.exact);
    });
}

#[test]
fn add_is_sound_and_exact_when_claimed() {
    cases(0xADD, 1000, |rng| {
        let a = arb_range(rng);
        let b = arb_range(rng);
        let r = a.add(&b);
        let want: BTreeSet<i64> = elems(&a)
            .iter()
            .flat_map(|&x| elems(&b).iter().map(move |&y| x + y).collect::<Vec<_>>())
            .collect();
        assert_superset(&r, &want, "add");
        if r.exact {
            assert_eq!(elems(&r), want, "{a} + {b} = {r} claimed exact");
        }
    });
}

#[test]
fn scale_and_shift_are_exact_bijections() {
    cases(0x5CA1E, 500, |rng| {
        let a = arb_range(rng);
        let c = loop {
            let c = i64::from(rng.u32_below(17)) - 8;
            if c != 0 {
                break c;
            }
        };
        let scaled = a.scale(c);
        let want: BTreeSet<i64> = elems(&a).iter().map(|&x| x * c).collect();
        assert_eq!(elems(&scaled), want, "{a} * {c} = {scaled}");
        assert!(scaled.exact);

        let d = i64::from(rng.u32_below(201)) - 100;
        let shifted = a.shift(d);
        let want: BTreeSet<i64> = elems(&a).iter().map(|&x| x + d).collect();
        assert_eq!(elems(&shifted), want, "{a} shifted {d} = {shifted}");
    });
}

#[test]
fn merge_is_sound_and_exact_when_claimed() {
    cases(0x4E46E, 1000, |rng| {
        let a = arb_range(rng);
        let b = arb_range(rng);
        let r = a.merge(&b);
        let want: BTreeSet<i64> = elems(&a).union(&elems(&b)).copied().collect();
        assert_superset(&r, &want, "merge");
        if r.exact {
            assert_eq!(elems(&r), want, "{a} merge {b} = {r} claimed exact");
        }
    });
}

#[test]
fn intersect_is_sound_and_exact_on_exact_inputs() {
    cases(0x1A7E45EC7, 1000, |rng| {
        let a = arb_range(rng);
        let b = arb_range(rng);
        let want: BTreeSet<i64> = elems(&a).intersection(&elems(&b)).copied().collect();
        match a.intersect(&b) {
            None => assert!(
                want.is_empty(),
                "{a} ∩ {b} reported empty but contains {want:?}"
            ),
            Some(r) => {
                assert_superset(&r, &want, "intersect");
                // Exact inputs: the CRT solution is the exact intersection.
                assert!(r.exact, "{a} ∩ {b} = {r} lost exactness");
                assert_eq!(elems(&r), want, "{a} ∩ {b} = {r}");
            }
        }
    });
}

#[test]
fn inexactness_is_contagious() {
    cases(0x10EBAC7, 500, |rng| {
        let a = arb_range(rng);
        let b = arb_range(rng);
        // Poison one side; no operation may launder it back to exact.
        let pa = ARange::new(a.lo, a.hi, a.step, false);
        assert!(!pa.add(&b).exact, "{pa} + {b}");
        assert!(!b.add(&pa).exact, "{b} + {pa}");
        assert!(!pa.merge(&b).exact, "{pa} merge {b}");
        assert!(!pa.scale(3).exact, "{pa} * 3");
        if let Some(i) = pa.intersect(&b) {
            assert!(!i.exact, "{pa} ∩ {b} = {i}");
        }
    });
}
