//! Golden-file pin of the CSV contract: the schema line, the column
//! order, and the exact rows emitted for a fixed kernel. Downstream
//! consumers key on these columns — any change must bump the version in
//! [`gcl_analyze::CSV_SCHEMA`] and update this test deliberately.

use gcl_analyze::{analyze, analyze_with, AnalyzeOptions, LaunchCtx, Report, CSV_SCHEMA};
use gcl_ptx::parse_kernel;
use std::fs;
use std::path::Path;

fn gather_kernel() -> gcl_ptx::Kernel {
    let src =
        fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/gather.ptx"))
            .unwrap();
    parse_kernel(&src).unwrap()
}

#[test]
fn csv_schema_and_header_are_pinned() {
    assert_eq!(CSV_SCHEMA, "#schema gcl-analyze csv v2");
    assert_eq!(
        Report::csv_header(),
        "kernel,pc,space,class,affine,prediction,sharing,blocks,cta_stride_x,crit_rank,crit_score"
    );
    // The schema line must stay a comment to CSV readers.
    assert!(CSV_SCHEMA.starts_with('#'));
    // Header arity is the contract the rows must match.
    assert_eq!(Report::csv_header().split(',').count(), 11);
}

#[test]
fn gather_rows_with_locality_and_critical_are_golden() {
    let k = gather_kernel();
    let opts = AnalyzeOptions {
        locality: Some(LaunchCtx::new([32, 1, 1], [4, 1, 1])),
        critical: true,
    };
    let r = analyze_with(&k, &opts);
    assert_eq!(
        r.csv_rows(),
        vec![
            // idx[tid]: coalesced D-load, one block broadcast to all CTAs.
            "gather,8,global,D,base + 4*tid.x,coalesced,broadcast,1,0,2,31".to_string(),
            // data[idx[tid]]: chased N-load, unbounded, ranked most critical.
            "gather,11,global,N,-,unknown,unbounded,-,-,1,81".to_string(),
        ]
    );
}

#[test]
fn gather_rows_without_options_use_dashes() {
    let r = analyze(&gather_kernel());
    let rows = r.csv_rows();
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert_eq!(row.split(',').count(), 11, "{row}");
        // The locality and criticality columns are all absent.
        let cols: Vec<&str> = row.split(',').collect();
        for c in &cols[6..] {
            assert_eq!(*c, "-", "{row}");
        }
    }
}
