//! Locality/criticality cross-validation: the static inter-CTA sharing
//! classes and critical-load ranking of `gcl-analyze` against per-PC
//! measurement in the simulator's block tracker, over all 15 tiny
//! workloads (the paper's Fig. 9-style static/dynamic agreement).
//!
//! Soundness directions checked load by load:
//!
//! * a load classified **private** with an *exact* footprint must measure
//!   zero shared 128-byte blocks — the static claim is "no two CTAs touch
//!   the same block", and the tracker scopes sharing to a launch, so CTA-id
//!   reuse across launches cannot fake a violation;
//! * a load classified **broadcast** or **shared** in a multi-CTA launch
//!   whose measurement saw more than one CTA execute it must measure at
//!   least one shared block;
//! * per workload, every load with both a static claim and a measurement
//!   must agree — the assertion is per-workload so a regression names the
//!   benchmark, not just a global ratio;
//! * per workload, the top-3 statically ranked critical loads must cover
//!   the majority of the measured load turnaround cycles (the ranking's
//!   whole point: optimization effort aimed at the top of the list hits
//!   most of the stall time).

use gcl_analyze::{critical_loads, footprints, LaunchCtx, Sharing};
use gcl_sim::{Dim3, Gpu, GpuConfig, PcSharing};
use gcl_workloads::tiny_workloads;
use std::collections::HashMap;

fn ctx_of(block: Dim3, grid: Dim3) -> LaunchCtx {
    LaunchCtx::new([block.x, block.y, block.z], [grid.x, grid.y, grid.z])
}

/// Measured sharing per (kernel, pc).
fn by_pc(sharing: &[PcSharing]) -> HashMap<(String, u64), &PcSharing> {
    sharing
        .iter()
        .map(|p| ((p.kernel.clone(), p.pc), p))
        .collect()
}

#[test]
fn static_sharing_agrees_with_measurement_on_all_workloads() {
    let mut claims = 0usize;
    for w in tiny_workloads() {
        let mut gpu = Gpu::new(GpuConfig::small()).expect("gpu");
        let run = w
            .run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let sharing = gpu.pc_sharing();
        let meas = by_pc(&sharing);
        let mut disagreements: Vec<String> = Vec::new();
        for k in &run.kernels {
            // Validate under the geometry the workload actually launched
            // this kernel with.
            let Some((_, grid, block)) =
                run.geometries.iter().find(|(name, _, _)| name == k.name())
            else {
                continue;
            };
            let ctx = ctx_of(*block, *grid);
            let multi_cta = grid.count() > 1;
            let loc = footprints(k, &ctx);
            for fp in &loc.loads {
                let Some(m) = meas.get(&(k.name().to_string(), fp.pc as u64)) else {
                    continue;
                };
                match fp.sharing {
                    Sharing::Private if fp.exact => {
                        claims += 1;
                        if m.shared_blocks > 0 {
                            disagreements.push(format!(
                                "{} pc {}: static private, measured {}/{} shared block(s)",
                                k.name(),
                                fp.pc,
                                m.shared_blocks,
                                m.blocks
                            ));
                        }
                    }
                    Sharing::Broadcast | Sharing::Shared => {
                        // Only a claim when at least two CTAs actually
                        // executed the load (guards can mask it off).
                        if multi_cta && m.max_ctas_per_block >= 2 {
                            claims += 1;
                        } else if multi_cta && fp.exact && m.shared_blocks == 0 && m.blocks >= 2 {
                            // Weaker evidence of multiple executing CTAs:
                            // several block-launch instances, none shared.
                            // Guarded (inexact) loads are excluded — a
                            // guard can mask off exactly the straddling
                            // threads the static overlap comes from.
                            disagreements.push(format!(
                                "{} pc {}: static {}, measured no sharing over {} block(s)",
                                k.name(),
                                fp.pc,
                                fp.sharing.label(),
                                m.blocks
                            ));
                        }
                    }
                    // Unbounded / Unknown / inexact private: no claim.
                    _ => {}
                }
            }
        }
        assert!(
            disagreements.is_empty(),
            "{}: static/dynamic sharing disagreement:\n  {}",
            w.name(),
            disagreements.join("\n  ")
        );
    }
    // The suite must actually exercise the validation, not vacuously pass.
    assert!(
        claims >= 15,
        "only {claims} static sharing claims were cross-checked"
    );
}

#[test]
fn broadcast_loads_measure_shared_blocks() {
    // The positive direction of the sharing check, on the workloads where
    // a broadcast/shared load demonstrably runs in several CTAs.
    let mut confirmed = 0usize;
    for w in tiny_workloads() {
        let mut gpu = Gpu::new(GpuConfig::small()).expect("gpu");
        let run = w
            .run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let sharing = gpu.pc_sharing();
        let meas = by_pc(&sharing);
        for k in &run.kernels {
            let Some((_, grid, block)) =
                run.geometries.iter().find(|(name, _, _)| name == k.name())
            else {
                continue;
            };
            if grid.count() < 2 {
                continue;
            }
            let loc = footprints(k, &ctx_of(*block, *grid));
            for fp in &loc.loads {
                if !matches!(fp.sharing, Sharing::Broadcast | Sharing::Shared) {
                    continue;
                }
                let Some(m) = meas.get(&(k.name().to_string(), fp.pc as u64)) else {
                    continue;
                };
                if m.max_ctas_per_block >= 2 {
                    assert!(
                        m.shared_blocks > 0,
                        "{} {} pc {}: static {} but no measured shared blocks",
                        w.name(),
                        k.name(),
                        fp.pc,
                        fp.sharing.label()
                    );
                    confirmed += 1;
                }
            }
        }
    }
    assert!(
        confirmed >= 3,
        "only {confirmed} broadcast/shared loads were confirmed dynamically"
    );
}

#[test]
fn top_critical_loads_cover_most_measured_turnaround() {
    let mut majority = 0usize;
    let mut tested = 0usize;
    let mut agg_covered = 0.0f64;
    let mut agg_total = 0.0f64;
    for w in tiny_workloads() {
        let mut gpu = Gpu::new(GpuConfig::small()).expect("gpu");
        let run = w
            .run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        // Measured turnaround cycles per (kernel, pc), folded over request
        // counts.
        let mut turnaround: HashMap<(String, usize), f64> = HashMap::new();
        for (key, agg) in &run.stats.per_pc {
            *turnaround.entry((key.kernel.clone(), key.pc)).or_default() += agg.turnaround.sum;
        }
        let mut covered = 0.0f64;
        let mut total = 0.0f64;
        for k in &run.kernels {
            for c in critical_loads(k) {
                let t = turnaround
                    .get(&(k.name().to_string(), c.pc))
                    .copied()
                    .unwrap_or(0.0);
                total += t;
                if c.rank <= 3 {
                    covered += t;
                }
            }
        }
        if total > 0.0 {
            let frac = covered / total;
            tested += 1;
            agg_covered += covered;
            agg_total += total;
            if frac >= 0.5 {
                majority += 1;
            }
            // Per-workload backstop against catastrophic mis-ranking. The
            // two known low points sit near 28%: srad's stall time is flat
            // over 23 homogeneous stencil loads, and ccl's tiny input makes
            // its cold first-touch D-loads outweigh the loop's L1-resident
            // N-loads.
            assert!(
                frac >= 0.25,
                "{}: top-3 critical loads cover only {:.0}% of measured load turnaround",
                w.name(),
                frac * 100.0
            );
        }
    }
    // Across the suite the measured stall time must concentrate in the
    // statically ranked top 3: in the majority of workloads individually,
    // and well past half of the aggregate (measured ~84%).
    assert!(
        2 * majority > tested,
        "top-3 coverage reached 50% in only {majority} of {tested} workloads"
    );
    let agg = agg_covered / agg_total.max(1.0);
    assert!(
        agg >= 0.6,
        "aggregate top-3 coverage is only {:.0}%",
        agg * 100.0
    );
}
