//! Golden-diagnostic corpus: intentionally-broken PTX files must produce
//! exactly the expected structured diagnostics, and every shipped kernel
//! (the 15 workloads plus the example PTX) must be verifier-clean.

use gcl_analyze::{analyze, footprints, LaunchCtx, Severity, Sharing};
use gcl_ptx::parse_kernel;
use gcl_workloads::all_workloads;
use std::fs;
use std::path::Path;

fn corpus(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_corpus")
        .join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

#[test]
fn use_before_def_corpus() {
    let k = parse_kernel(&corpus("use_before_def.ptx")).unwrap();
    let r = analyze(&k);
    assert_eq!(r.diagnostics.len(), 1, "{r}");
    let d = &r.diagnostics[0];
    assert_eq!(d.code, "use-before-def");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, 1);
    assert_eq!(d.message, "%r7 is read but no definition reaches this use");
    assert_eq!(d.inst, "st.global.u32 [%r8], %r7;");
}

#[test]
fn divergent_bar_corpus() {
    let k = parse_kernel(&corpus("divergent_bar.ptx")).unwrap();
    let r = analyze(&k);
    let bars: Vec<_> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == "divergent-barrier")
        .collect();
    assert_eq!(bars.len(), 1, "{r}");
    let d = bars[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, 3);
    assert_eq!(d.inst, "bar.sync 0;");
    assert!(
        d.message.contains("divergent branch at pc 2"),
        "{}",
        d.message
    );
    // The barrier after reconvergence is NOT flagged.
    assert!(!r.diagnostics.iter().any(|d| d.pc == 5), "{r}");
    // And the branch itself is annotated divergent.
    assert_eq!(r.branches.len(), 1);
    assert!(r.branches[0].divergent);
}

#[test]
fn dead_store_corpus() {
    let k = parse_kernel(&corpus("dead_store.ptx")).unwrap();
    let r = analyze(&k);
    assert_eq!(r.diagnostics.len(), 1, "{r}");
    let d = &r.diagnostics[0];
    assert_eq!(d.code, "dead-store");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.pc, 1);
    assert_eq!(d.message, "the value written to %r1 is never read");
    assert_eq!(d.inst, "mov.u32 %r1, 5;");
}

#[test]
fn type_mismatch_corpus() {
    let k = parse_kernel(&corpus("type_mismatch.ptx")).unwrap();
    let r = analyze(&k);
    assert_eq!(r.diagnostics.len(), 1, "{r}");
    let d = &r.diagnostics[0];
    assert_eq!(d.code, "type-mismatch");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, 2);
    assert_eq!(
        d.message,
        "%r1 is defined as 32-bit at pc 1 but used as 64-bit"
    );
}

#[test]
fn use_before_def_dual_corpus_deduplicates() {
    // Two undefined registers on one instruction: the verifier proves both
    // violations but reports one diagnostic per (pc, code).
    let k = parse_kernel(&corpus("use_before_def_dual.ptx")).unwrap();
    let r = analyze(&k);
    assert_eq!(r.diagnostics.len(), 1, "{r}");
    let d = &r.diagnostics[0];
    assert_eq!(d.code, "use-before-def");
    assert_eq!(d.pc, 0);
}

#[test]
fn loop_down_corpus_recovers_trip_count() {
    let k = parse_kernel(&corpus("loop_down.ptx")).unwrap();
    let r = analyze(&k);
    assert!(r.is_clean(), "{r}");
    let loc = footprints(&k, &LaunchCtx::new([1, 1, 1], [2, 1, 1]));
    assert_eq!(loc.loads.len(), 1);
    let l = &loc.loads[0];
    // i runs 8, 7, ..., 1 at the load: buf[1..=8], 32 B, one block — the
    // down-counting latch guard must yield exactly 8 trips.
    assert_eq!(l.block_count, Some(1), "form {:?}", l.sym);
    // The CTA id never enters the address: identical across the grid.
    assert_eq!(l.sharing, Sharing::Broadcast);
    // A do-while body runs whenever the loop is entered: exact claims.
    assert!(l.exact);
}

#[test]
fn loop_tiled2d_corpus_is_private_and_exact() {
    let k = parse_kernel(&corpus("loop_tiled2d.ptx")).unwrap();
    let r = analyze(&k);
    assert!(r.is_clean(), "{r}");
    let loc = footprints(&k, &LaunchCtx::new([1, 1, 1], [4, 1, 1]));
    assert_eq!(loc.loads.len(), 1);
    let l = &loc.loads[0];
    // 4 rows of 64 B tiled by 16 4-B columns: the inner range tiles the
    // outer stride exactly, so the 256 B per-CTA window is exact — two
    // 128 B blocks, disjoint across CTAs.
    assert_eq!(l.block_count, Some(2), "form {:?}", l.sym);
    assert_eq!(l.cta_stride_x, Some(256));
    assert_eq!(l.sharing, Sharing::Private);
    assert!(l.exact, "nested counted-loop body must stay unconditional");
    assert_eq!(loc.matrix.total(), 0);
}

#[test]
fn loop_chase_corpus_reports_unbounded() {
    let k = parse_kernel(&corpus("loop_chase.ptx")).unwrap();
    let r = analyze(&k);
    assert!(r.is_clean(), "{r}");
    let loc = footprints(&k, &LaunchCtx::new([1, 1, 1], [2, 1, 1]));
    // The chased load's address comes from loaded data: even with the trip
    // count known, no static bound exists.
    let chase = loc
        .loads
        .iter()
        .find(|l| l.sharing == Sharing::Unbounded)
        .expect("pointer-chase load reported unbounded");
    assert!(chase.blocks.is_none());
    assert!(!chase.exact);
}

#[test]
fn workload_corpus_is_verifier_clean() {
    for w in all_workloads() {
        for k in w.kernels() {
            let r = analyze(&k);
            assert!(
                r.is_clean(),
                "workload {} kernel {} has diagnostics:\n{r}",
                w.name(),
                k.name()
            );
        }
    }
}

#[test]
fn example_ptx_is_verifier_clean() {
    let src =
        fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/gather.ptx"))
            .unwrap();
    let k = parse_kernel(&src).unwrap();
    let r = analyze(&k);
    assert!(r.is_clean(), "{r}");
    // The gather load is correctly predicted: idx[tid] coalesced, data[i]
    // unknown (load-derived address).
    assert_eq!(r.loads.len(), 2);
    assert_eq!(r.loads[0].prediction.prediction.label(), "coalesced");
    assert_eq!(r.loads[1].prediction.prediction.label(), "unknown");
}
