//! Golden-diagnostic corpus: intentionally-broken PTX files must produce
//! exactly the expected structured diagnostics, and every shipped kernel
//! (the 15 workloads plus the example PTX) must be verifier-clean.

use gcl_analyze::{analyze, Severity};
use gcl_ptx::parse_kernel;
use gcl_workloads::all_workloads;
use std::fs;
use std::path::Path;

fn corpus(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/lint_corpus")
        .join(name);
    fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

#[test]
fn use_before_def_corpus() {
    let k = parse_kernel(&corpus("use_before_def.ptx")).unwrap();
    let r = analyze(&k);
    assert_eq!(r.diagnostics.len(), 1, "{r}");
    let d = &r.diagnostics[0];
    assert_eq!(d.code, "use-before-def");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, 1);
    assert_eq!(d.message, "%r7 is read but no definition reaches this use");
    assert_eq!(d.inst, "st.global.u32 [%r8], %r7;");
}

#[test]
fn divergent_bar_corpus() {
    let k = parse_kernel(&corpus("divergent_bar.ptx")).unwrap();
    let r = analyze(&k);
    let bars: Vec<_> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == "divergent-barrier")
        .collect();
    assert_eq!(bars.len(), 1, "{r}");
    let d = bars[0];
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, 3);
    assert_eq!(d.inst, "bar.sync 0;");
    assert!(
        d.message.contains("divergent branch at pc 2"),
        "{}",
        d.message
    );
    // The barrier after reconvergence is NOT flagged.
    assert!(!r.diagnostics.iter().any(|d| d.pc == 5), "{r}");
    // And the branch itself is annotated divergent.
    assert_eq!(r.branches.len(), 1);
    assert!(r.branches[0].divergent);
}

#[test]
fn dead_store_corpus() {
    let k = parse_kernel(&corpus("dead_store.ptx")).unwrap();
    let r = analyze(&k);
    assert_eq!(r.diagnostics.len(), 1, "{r}");
    let d = &r.diagnostics[0];
    assert_eq!(d.code, "dead-store");
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.pc, 1);
    assert_eq!(d.message, "the value written to %r1 is never read");
    assert_eq!(d.inst, "mov.u32 %r1, 5;");
}

#[test]
fn type_mismatch_corpus() {
    let k = parse_kernel(&corpus("type_mismatch.ptx")).unwrap();
    let r = analyze(&k);
    assert_eq!(r.diagnostics.len(), 1, "{r}");
    let d = &r.diagnostics[0];
    assert_eq!(d.code, "type-mismatch");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.pc, 2);
    assert_eq!(
        d.message,
        "%r1 is defined as 32-bit at pc 1 but used as 64-bit"
    );
}

#[test]
fn workload_corpus_is_verifier_clean() {
    for w in all_workloads() {
        for k in w.kernels() {
            let r = analyze(&k);
            assert!(
                r.is_clean(),
                "workload {} kernel {} has diagnostics:\n{r}",
                w.name(),
                k.name()
            );
        }
    }
}

#[test]
fn example_ptx_is_verifier_clean() {
    let src =
        fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("../../examples/gather.ptx"))
            .unwrap();
    let k = parse_kernel(&src).unwrap();
    let r = analyze(&k);
    assert!(r.is_clean(), "{r}");
    // The gather load is correctly predicted: idx[tid] coalesced, data[i]
    // unknown (load-derived address).
    assert_eq!(r.loads.len(), 2);
    assert_eq!(r.loads[0].prediction.prediction.label(), "coalesced");
    assert_eq!(r.loads[1].prediction.prediction.label(), "unknown");
}
