//! Headline cross-validation: the static coalescing predictions of
//! `gcl-analyze` against dynamic measurement in the simulator's load
//! tracker, over all 15 workloads (Fig. 2-style static/dynamic agreement).
//!
//! * every load predicted **coalesced** (1 request/warp) must measure at
//!   most ~2 requests/warp (the slack covers warps at the tail of the index
//!   space whose base is not 128-byte aligned);
//! * a load predicted **serialized** must measure well above 1 — the corpus
//!   has none by construction (the workloads index by `4·tid`), so a
//!   synthetic `tid·128`-stride kernel keeps that direction non-vacuous.

use gcl_analyze::{affine_loads, analyze, Prediction};
use gcl_ptx::{parse_kernel, KernelBuilder, Space, Special, Type};
use gcl_sim::{pack_params, Gpu, GpuConfig, LaunchStats, SimError};
use gcl_workloads::tiny_workloads;
use std::collections::HashMap;

/// Measured mean requests/warp per (kernel, pc) from the load tracker.
fn measured(stats: &LaunchStats) -> HashMap<(String, usize), f64> {
    let mut acc: HashMap<(String, usize), (f64, f64)> = HashMap::new();
    for (key, agg) in &stats.per_pc {
        let e = acc
            .entry((key.kernel.clone(), key.pc))
            .or_insert((0.0, 0.0));
        let n = agg.turnaround.count as f64;
        e.0 += f64::from(key.n_requests) * n;
        e.1 += n;
    }
    acc.into_iter()
        .filter(|(_, (_, n))| *n > 0.0)
        .map(|(k, (w, n))| (k, w / n))
        .collect()
}

#[test]
fn coalesced_predictions_hold_across_all_workloads() {
    let mut checked = 0usize;
    for w in tiny_workloads() {
        let mut gpu = Gpu::new(GpuConfig::small()).expect("gpu");
        let run = w
            .run(&mut gpu)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name()));
        let meas = measured(&run.stats);
        for k in &run.kernels {
            for p in affine_loads(k) {
                // The load tracker only follows global-backed loads.
                if matches!(p.space, Space::Shared) {
                    continue;
                }
                let Some(&m) = meas.get(&(k.name().to_string(), p.pc)) else {
                    continue;
                };
                match p.prediction {
                    Prediction::Requests(1) => {
                        assert!(
                            m <= 2.0,
                            "{} {} pc {}: predicted coalesced, measured {m:.2} req/warp",
                            w.name(),
                            k.name(),
                            p.pc
                        );
                        checked += 1;
                    }
                    Prediction::Requests(n) if n >= 16 => {
                        assert!(
                            m >= 4.0,
                            "{} {} pc {}: predicted serialized({n}), measured {m:.2}",
                            w.name(),
                            k.name(),
                            p.pc
                        );
                        checked += 1;
                    }
                    _ => {}
                }
            }
        }
    }
    assert!(
        checked >= 10,
        "cross-validation is vacuous: only {checked} loads checked"
    );
}

#[test]
fn serialized_prediction_measures_serialized() {
    // addr = buf + tid.x * 128: every lane its own 128 B line.
    let mut b = KernelBuilder::new("stride128");
    let pb = b.param("buf", Type::U64);
    let base = b.ld_param(Type::U64, pb);
    let tid = b.sreg(Special::TidX);
    let a = b.index64(base, tid, 128);
    let v = b.ld_global(Type::U32, a);
    b.st_global(Type::U32, a, v);
    b.exit();
    let k = b.build().expect("valid");

    let loads = affine_loads(&k);
    assert_eq!(loads.len(), 1);
    assert_eq!(loads[0].prediction, Prediction::Requests(32));

    let mut gpu = Gpu::new(GpuConfig::small()).expect("gpu");
    let buf = gpu.mem().alloc_array(Type::U32, 32 * 32).expect("alloc");
    let packed = pack_params(&k, &[buf]);
    let stats = gpu
        .launch(&k, 1u32.into(), 32u32.into(), &packed)
        .expect("launch");
    let meas = measured(&stats);
    let m = meas[&("stride128".to_string(), loads[0].pc)];
    assert!(
        m >= 16.0,
        "predicted serialized(32), measured {m:.2} req/warp"
    );
}

#[test]
fn unit_stride_prediction_measures_coalesced() {
    // The mirror-image control: addr = buf + tid.x * 4 must measure ~1.
    let mut b = KernelBuilder::new("stride4");
    let pb = b.param("buf", Type::U64);
    let base = b.ld_param(Type::U64, pb);
    let tid = b.sreg(Special::TidX);
    let a = b.index64(base, tid, 4);
    let v = b.ld_global(Type::U32, a);
    b.st_global(Type::U32, a, v);
    b.exit();
    let k = b.build().expect("valid");

    let loads = affine_loads(&k);
    assert_eq!(loads[0].prediction, Prediction::Requests(1));

    let mut gpu = Gpu::new(GpuConfig::small()).expect("gpu");
    let buf = gpu.mem().alloc_array(Type::U32, 32).expect("alloc");
    let packed = pack_params(&k, &[buf]);
    let stats = gpu
        .launch(&k, 1u32.into(), 32u32.into(), &packed)
        .expect("launch");
    let meas = measured(&stats);
    let m = meas[&("stride4".to_string(), loads[0].pc)];
    assert!(m <= 1.5, "predicted coalesced, measured {m:.2} req/warp");
}

#[test]
fn static_analysis_flags_what_the_watchdog_only_hangs_on() {
    // Acceptance criterion: a divergent `bar.sync` that previously only
    // manifested as a forward-progress watchdog hang is now flagged
    // statically, before any launch.
    let src = std::fs::read_to_string(
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests/lint_corpus/divergent_bar.ptx"),
    )
    .unwrap();
    let k = parse_kernel(&src).unwrap();

    // Static: the analyzer names the barrier and the branch that splits it.
    let report = analyze(&k);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == "divergent-barrier"));

    // Dynamic: with two warps the taken path parks at bar 0 and the
    // fall-through at bar 1 — the simulator can only report a hang.
    let mut gpu = Gpu::new(GpuConfig::small()).expect("gpu");
    let packed = pack_params(&k, &[64]);
    let res = gpu.launch(&k, 1u32.into(), 64u32.into(), &packed);
    assert!(
        matches!(res, Err(SimError::Hang(_))),
        "expected a watchdog hang, got {res:?}"
    );
}
