//! Criterion micro-benchmarks of the toolkit's components: the classifier,
//! the PTX parser and CFG analyses, the coalescer, the cache, and a whole
//! small kernel launch.

use criterion::{criterion_group, criterion_main, Criterion};
use gcl_core::classify;
use gcl_mem::{AccessOutcome, Cache, CacheConfig, ClassTag, MemRequest};
use gcl_ptx::{parse_kernel, Cfg};
use gcl_sim::{coalesce, pack_params, Dim3, Gpu, GpuConfig};
use gcl_workloads::graph_apps::Bfs;
use std::hint::black_box;

fn bench_classifier(c: &mut Criterion) {
    let kernel = Bfs::expand_kernel();
    c.bench_function("classify_bfs_expand", |b| b.iter(|| black_box(classify(&kernel))));
}

fn bench_ptx(c: &mut Criterion) {
    let kernel = Bfs::expand_kernel();
    let text = kernel.to_string();
    c.bench_function("parse_bfs_expand", |b| {
        b.iter(|| black_box(parse_kernel(&text).unwrap()))
    });
    c.bench_function("cfg_build_bfs_expand", |b| b.iter(|| black_box(Cfg::build(&kernel))));
    let cfg = Cfg::build(&kernel);
    c.bench_function("ipdom_bfs_expand", |b| {
        b.iter(|| black_box(cfg.immediate_post_dominators()))
    });
}

fn bench_coalescer(c: &mut Criterion) {
    let coalesced: Vec<(u32, u64)> = (0..32).map(|l| (l, 0x1000 + 4 * u64::from(l))).collect();
    let scattered: Vec<(u32, u64)> =
        (0..32).map(|l| (l, 4096 * u64::from(l * 2_654_435_761 % 977))).collect();
    c.bench_function("coalesce_sequential", |b| {
        b.iter(|| black_box(coalesce(&coalesced, 4, 128)))
    });
    c.bench_function("coalesce_scattered", |b| {
        b.iter(|| black_box(coalesce(&scattered, 4, 128)))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1_access_storm", |b| {
        b.iter(|| {
            let mut l1 = Cache::new(CacheConfig::fermi_l1());
            let mut completed = 0u64;
            for i in 0..512u64 {
                let req =
                    MemRequest::read(i, (i % 96) * 128, 0, ClassTag::NonDeterministic, 0, i);
                match l1.access(req, i) {
                    AccessOutcome::MissIssued => {
                        // Service misses immediately to keep the storm going.
                        let m = l1.pop_miss().unwrap();
                        completed += l1.fill(m.block_addr, i).len() as u64;
                    }
                    _ => {}
                }
            }
            black_box(completed)
        })
    });
}

fn bench_launch(c: &mut Criterion) {
    // A whole small launch through the full simulator stack.
    let mut b = gcl_ptx::KernelBuilder::new("axpy");
    let px = b.param("x", gcl_ptx::Type::U64);
    let py = b.param("y", gcl_ptx::Type::U64);
    let x = b.ld_param(gcl_ptx::Type::U64, px);
    let y = b.ld_param(gcl_ptx::Type::U64, py);
    let tid = b.thread_linear_id();
    let xa = b.index64(x, tid, 4);
    let xv = b.ld_global(gcl_ptx::Type::F32, xa);
    let ya = b.index64(y, tid, 4);
    let yv = b.ld_global(gcl_ptx::Type::F32, ya);
    let r = b.mad(gcl_ptx::Type::F32, xv, gcl_ptx::Operand::f32(2.0), yv);
    b.st_global(gcl_ptx::Type::F32, ya, r);
    b.exit();
    let kernel = b.build().unwrap();

    let mut g = c.benchmark_group("launch");
    g.sample_size(20);
    g.bench_function("axpy_8_ctas", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::small());
            let xb = gpu.mem().alloc_array(gcl_ptx::Type::F32, 1024);
            let yb = gpu.mem().alloc_array(gcl_ptx::Type::F32, 1024);
            let params = pack_params(&kernel, &[xb, yb]);
            black_box(gpu.launch(&kernel, Dim3::x(8), Dim3::x(128), &params).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_classifier,
    bench_ptx,
    bench_coalescer,
    bench_cache,
    bench_launch
);
criterion_main!(benches);
