//! Micro-benchmarks of the toolkit's components: the classifier, the PTX
//! parser and CFG analyses, the coalescer, the cache, and a whole small
//! kernel launch. Plain timing loops over `std::time::Instant` — run with
//! `cargo bench --bench components`.

use gcl_core::classify;
use gcl_mem::{AccessOutcome, Cache, CacheConfig, ClassTag, MemRequest};
use gcl_ptx::{parse_kernel, Cfg};
use gcl_sim::{coalesce, pack_params, Dim3, Gpu, GpuConfig};
use gcl_workloads::graph_apps::Bfs;
use std::hint::black_box;
use std::time::Instant;

/// Time `f` over enough iterations to fill ~0.2s, after a warmup pass, and
/// print mean time per iteration.
fn bench(name: &str, mut f: impl FnMut()) {
    // Warmup + calibration: figure out how many iterations fill the budget.
    let start = Instant::now();
    let mut calib_iters = 0u64;
    while start.elapsed().as_millis() < 50 {
        f();
        calib_iters += 1;
    }
    let per_iter = start.elapsed().as_nanos() / u128::from(calib_iters.max(1));
    let iters = (200_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() / u128::from(iters);
    println!("{name:<28} {ns:>12} ns/iter  ({iters} iters)");
}

fn bench_classifier() {
    let kernel = Bfs::expand_kernel();
    bench("classify_bfs_expand", || {
        black_box(classify(&kernel));
    });
}

fn bench_ptx() {
    let kernel = Bfs::expand_kernel();
    let text = kernel.to_string();
    bench("parse_bfs_expand", || {
        black_box(parse_kernel(&text).unwrap());
    });
    bench("cfg_build_bfs_expand", || {
        black_box(Cfg::build(&kernel));
    });
    let cfg = Cfg::build(&kernel);
    bench("ipdom_bfs_expand", || {
        black_box(cfg.immediate_post_dominators());
    });
}

fn bench_coalescer() {
    let coalesced: Vec<(u32, u64)> = (0..32).map(|l| (l, 0x1000 + 4 * u64::from(l))).collect();
    let scattered: Vec<(u32, u64)> = (0..32)
        .map(|l| (l, 4096 * u64::from(l * 2_654_435_761 % 977)))
        .collect();
    bench("coalesce_sequential", || {
        black_box(coalesce(&coalesced, 4, 128));
    });
    bench("coalesce_scattered", || {
        black_box(coalesce(&scattered, 4, 128));
    });
}

fn bench_cache() {
    bench("l1_access_storm", || {
        let mut l1 = Cache::new(CacheConfig::fermi_l1());
        let mut completed = 0u64;
        for i in 0..512u64 {
            let req = MemRequest::read(i, (i % 96) * 128, 0, ClassTag::NonDeterministic, 0, i);
            if let AccessOutcome::MissIssued = l1.access(req, i) {
                // Service misses immediately to keep the storm going.
                let m = l1.pop_miss().unwrap();
                completed += l1.fill(m.block_addr, i).len() as u64;
            }
        }
        black_box(completed);
    });
}

fn bench_launch() {
    // A whole small launch through the full simulator stack.
    let mut b = gcl_ptx::KernelBuilder::new("axpy");
    let px = b.param("x", gcl_ptx::Type::U64);
    let py = b.param("y", gcl_ptx::Type::U64);
    let x = b.ld_param(gcl_ptx::Type::U64, px);
    let y = b.ld_param(gcl_ptx::Type::U64, py);
    let tid = b.thread_linear_id();
    let xa = b.index64(x, tid, 4);
    let xv = b.ld_global(gcl_ptx::Type::F32, xa);
    let ya = b.index64(y, tid, 4);
    let yv = b.ld_global(gcl_ptx::Type::F32, ya);
    let r = b.mad(gcl_ptx::Type::F32, xv, gcl_ptx::Operand::f32(2.0), yv);
    b.st_global(gcl_ptx::Type::F32, ya, r);
    b.exit();
    let kernel = b.build().unwrap();

    bench("launch_axpy_8_ctas", || {
        let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
        let xb = gpu.mem().alloc_array(gcl_ptx::Type::F32, 1024).unwrap();
        let yb = gpu.mem().alloc_array(gcl_ptx::Type::F32, 1024).unwrap();
        let params = pack_params(&kernel, &[xb, yb]);
        black_box(
            gpu.launch(&kernel, Dim3::x(8), Dim3::x(128), &params)
                .unwrap(),
        );
    });
}

fn main() {
    bench_classifier();
    bench_ptx();
    bench_coalescer();
    bench_cache();
    bench_launch();
}
