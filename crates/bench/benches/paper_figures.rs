//! Benchmarks over the paper-figure pipeline: how long each table/figure
//! takes to regenerate at tiny scale, and how long individual workloads
//! take to simulate. Plain timing loops over `std::time::Instant` — run
//! with `cargo bench --bench paper_figures`.
//!
//! The authoritative figure data comes from the `fig1..fig12` binaries at
//! full scale; these benches exist to track the harness's own performance.

use gcl_bench::figures;
use gcl_bench::harness::{completed, run_all, run_one, Scale};
use gcl_sim::GpuConfig;
use gcl_workloads::{graph_apps, linear};
use std::hint::black_box;
use std::time::Instant;

/// Time `f` over `iters` iterations (after one warmup call) and print the
/// mean time per iteration.
fn bench(name: &str, iters: u64, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let ns = start.elapsed().as_nanos() / u128::from(iters.max(1));
    println!("{name:<24} {ns:>12} ns/iter  ({iters} iters)");
}

fn bench_workloads() {
    let cfg = GpuConfig::small();
    bench("simulate/bfs_tiny", 5, || {
        black_box(run_one(&graph_apps::Bfs::tiny(), &cfg)).expect("bfs tiny completes");
    });
    bench("simulate/spmv_tiny", 5, || {
        black_box(run_one(&linear::Spmv::tiny(), &cfg)).expect("spmv tiny completes");
    });
    bench("simulate/mm2_tiny", 5, || {
        black_box(run_one(&linear::Mm2::tiny(), &cfg)).expect("2mm tiny completes");
    });
}

fn bench_figures() {
    // One shared tiny-scale harness run; the builders are then benchmarked
    // on its results.
    let cfg = GpuConfig::small();
    let results = completed(&run_all(&cfg, Scale::Tiny, 1));
    let unloaded = cfg.unloaded_miss_latency();
    bench("figures/table1", 200, || {
        black_box(figures::table1(&results));
    });
    bench("figures/fig1", 200, || {
        black_box(figures::fig1(&results));
    });
    bench("figures/fig2", 200, || {
        black_box(figures::fig2(&results));
    });
    bench("figures/fig3", 200, || {
        black_box(figures::fig3(&results));
    });
    bench("figures/fig4", 200, || {
        black_box(figures::fig4(&results));
    });
    bench("figures/fig5", 200, || {
        black_box(figures::fig5(&results, unloaded));
    });
    bench("figures/fig6", 200, || {
        black_box(figures::fig6(&results, &["bfs", "sssp", "spmv"]));
    });
    bench("figures/fig7", 200, || {
        black_box(figures::fig7(&results, "bfs", unloaded));
    });
    bench("figures/fig8", 200, || {
        black_box(figures::fig8(&results));
    });
    bench("figures/fig9", 200, || {
        black_box(figures::fig9(&results));
    });
    bench("figures/fig10", 200, || {
        black_box(figures::fig10(&results));
    });
    bench("figures/fig11", 200, || {
        black_box(figures::fig11(&results));
    });
    bench("figures/fig12", 200, || {
        black_box(figures::fig12(&results, gcl_workloads::Category::Graph));
    });
}

fn main() {
    bench_workloads();
    bench_figures();
}
