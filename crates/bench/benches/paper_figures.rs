//! Criterion benchmarks over the paper-figure pipeline: how long each
//! table/figure takes to regenerate at tiny scale, and how long individual
//! workloads take to simulate.
//!
//! The authoritative figure data comes from the `fig1..fig12` binaries at
//! full scale; these benches exist to track the harness's own performance.

use criterion::{criterion_group, criterion_main, Criterion};
use gcl_bench::figures;
use gcl_bench::harness::{run_all, run_one, Scale};
use gcl_sim::GpuConfig;
use gcl_workloads::{graph_apps, linear};
use std::hint::black_box;

fn bench_workloads(c: &mut Criterion) {
    let cfg = GpuConfig::small();
    let mut g = c.benchmark_group("simulate");
    g.sample_size(10);
    g.bench_function("bfs_tiny", |b| {
        b.iter(|| black_box(run_one(&graph_apps::Bfs::tiny(), &cfg)))
    });
    g.bench_function("spmv_tiny", |b| {
        b.iter(|| black_box(run_one(&linear::Spmv::tiny(), &cfg)))
    });
    g.bench_function("mm2_tiny", |b| {
        b.iter(|| black_box(run_one(&linear::Mm2::tiny(), &cfg)))
    });
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    // One shared tiny-scale harness run; the builders are then benchmarked
    // on its results.
    let cfg = GpuConfig::small();
    let results = run_all(&cfg, Scale::Tiny);
    let unloaded = cfg.unloaded_miss_latency();
    let mut g = c.benchmark_group("figures");
    g.bench_function("table1", |b| b.iter(|| black_box(figures::table1(&results))));
    g.bench_function("fig1", |b| b.iter(|| black_box(figures::fig1(&results))));
    g.bench_function("fig2", |b| b.iter(|| black_box(figures::fig2(&results))));
    g.bench_function("fig3", |b| b.iter(|| black_box(figures::fig3(&results))));
    g.bench_function("fig4", |b| b.iter(|| black_box(figures::fig4(&results))));
    g.bench_function("fig5", |b| b.iter(|| black_box(figures::fig5(&results, unloaded))));
    g.bench_function("fig6", |b| {
        b.iter(|| black_box(figures::fig6(&results, &["bfs", "sssp", "spmv"])))
    });
    g.bench_function("fig7", |b| b.iter(|| black_box(figures::fig7(&results, "bfs", unloaded))));
    g.bench_function("fig8", |b| b.iter(|| black_box(figures::fig8(&results))));
    g.bench_function("fig9", |b| b.iter(|| black_box(figures::fig9(&results))));
    g.bench_function("fig10", |b| b.iter(|| black_box(figures::fig10(&results))));
    g.bench_function("fig11", |b| b.iter(|| black_box(figures::fig11(&results))));
    g.bench_function("fig12", |b| {
        b.iter(|| black_box(figures::fig12(&results, gcl_workloads::Category::Graph)))
    });
    g.finish();
}

criterion_group!(benches, bench_workloads, bench_figures);
criterion_main!(benches);
