//! Regenerates Figure 12: CTA-distance distribution of shared-block
//! accesses, one panel per category.

use gcl_bench::figures::fig12;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;
use gcl_workloads::Category;

fn main() {
    let results = completed(&run_all(&GpuConfig::fermi(), Scale::from_args()));
    for (panel, cat) in [
        ("a", Category::Linear),
        ("b", Category::Image),
        ("c", Category::Graph),
    ] {
        let fig = fig12(&results, cat);
        println!("{fig}");
        save_json(&format!("fig12{panel}"), &fig.to_json());
    }
}
