//! Regenerates Figure 12: CTA-distance distribution of shared-block
//! accesses, one panel per category.

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("fig12")
}
