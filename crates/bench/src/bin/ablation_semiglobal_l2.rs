//! Ablation A2: semi-global L2 topology (paper Section X-C).

use gcl_bench::ablation::semiglobal_l2;
use gcl_bench::harness::{save_json, BenchArgs};

fn main() -> std::process::ExitCode {
    let args = match BenchArgs::from_env(false) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let t = semiglobal_l2(args.scale, args.jobs);
    println!("{t}");
    save_json("ablation_semiglobal_l2", &t.to_json());
    std::process::ExitCode::SUCCESS
}
