//! Ablation A2: semi-global L2 topology (paper Section X-C).

use gcl_bench::ablation::semiglobal_l2;
use gcl_bench::harness::{save_json, Scale};

fn main() {
    let t = semiglobal_l2(Scale::from_args());
    println!("{t}");
    save_json("ablation_semiglobal_l2", &t.to_json());
}
