//! Regenerates Figure 8 of the paper.

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("fig8")
}
