//! Regenerates Figure 8 of the paper.

fn main() {
    gcl_bench::driver::figure_main("fig8");
}
