//! Regenerates Figure 7: per-request-count turnaround breakdown for the
//! busiest non-deterministic load of bfs.

use gcl_bench::figures::fig7;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::fermi();
    let results = completed(&run_all(&cfg, Scale::from_args()));
    let fig = fig7(&results, "bfs", cfg.unloaded_miss_latency());
    println!("{fig}");
    save_json("fig7", &fig.to_json());
}
