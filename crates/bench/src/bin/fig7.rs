//! Regenerates Figure 7: per-request-count turnaround breakdown for the
//! busiest non-deterministic load of bfs.

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("fig7")
}
