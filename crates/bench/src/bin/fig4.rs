//! Regenerates Figure 4 of the paper.

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("fig4")
}
