//! Regenerates Figure 4 of the paper.

fn main() {
    gcl_bench::driver::figure_main("fig4");
}
