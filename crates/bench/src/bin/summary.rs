//! One-line-per-workload summary of a full harness run.

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("summary")
}
