//! One-line-per-workload summary of a full harness run.

use gcl_bench::harness::{completed, run_all, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let results = completed(&run_all(&GpuConfig::fermi(), Scale::from_args()));
    println!(
        "{:6} {:7} {:>9} {:>10} {:>9} {:>6} {:>8} {:>6} {:>6} {:>6}",
        "name", "cat", "cycles", "warp insts", "gld", "N%", "L1miss%", "ipc", "simd%", "bdiv%"
    );
    for r in &results {
        let p = r.stats.profiler();
        println!(
            "{:6} {:7} {:>9} {:>10} {:>9} {:>5.1} {:>8.1} {:>6.2} {:>6.1} {:>6.1}",
            r.name,
            r.category.to_string(),
            r.stats.cycles,
            r.stats.sm.warp_insts,
            p.gld_request,
            r.stats.nondet_load_fraction() * 100.0,
            p.l1_miss_ratio() * 100.0,
            r.stats.sm.warp_insts as f64 / r.stats.cycles as f64,
            r.stats.simd_utilization(32) * 100.0,
            r.stats.branch_divergence() * 100.0,
        );
    }
}
