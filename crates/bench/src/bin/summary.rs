//! One-line-per-workload summary of a full harness run.

fn main() {
    gcl_bench::driver::figure_main("summary");
}
