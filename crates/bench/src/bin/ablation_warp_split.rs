//! Ablation A3: warp splitting of non-deterministic loads (paper
//! Section X-A).

use gcl_bench::ablation::warp_split;
use gcl_bench::harness::{save_json, Scale};

fn main() -> std::process::ExitCode {
    let scale = match Scale::from_args() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let t = warp_split(scale, 4);
    println!("{t}");
    save_json("ablation_warp_split", &t.to_json());
    std::process::ExitCode::SUCCESS
}
