//! Ablation A3: warp splitting of non-deterministic loads (paper
//! Section X-A).

use gcl_bench::ablation::warp_split;
use gcl_bench::harness::{save_json, BenchArgs};

fn main() -> std::process::ExitCode {
    let args = match BenchArgs::from_env(false) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let t = warp_split(args.scale, 4, args.jobs);
    println!("{t}");
    save_json("ablation_warp_split", &t.to_json());
    std::process::ExitCode::SUCCESS
}
