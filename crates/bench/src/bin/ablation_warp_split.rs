//! Ablation A3: warp splitting of non-deterministic loads (paper
//! Section X-A).

use gcl_bench::ablation::warp_split;
use gcl_bench::harness::{save_json, Scale};

fn main() {
    let t = warp_split(Scale::from_args(), 4);
    println!("{t}");
    save_json("ablation_warp_split", &t.to_json());
}
