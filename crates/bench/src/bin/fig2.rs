//! Regenerates Figure 2 of the paper.

fn main() {
    gcl_bench::driver::figure_main("fig2");
}
