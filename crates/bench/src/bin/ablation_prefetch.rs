//! Ablation A4: class-selective next-line prefetching (paper Section X-A).

use gcl_bench::ablation::prefetch;
use gcl_bench::harness::{save_json, BenchArgs};

fn main() -> std::process::ExitCode {
    let args = match BenchArgs::from_env(false) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let t = prefetch(args.scale, args.jobs);
    println!("{t}");
    save_json("ablation_prefetch", &t.to_json());
    std::process::ExitCode::SUCCESS
}
