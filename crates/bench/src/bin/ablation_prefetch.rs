//! Ablation A4: class-selective next-line prefetching (paper Section X-A).

use gcl_bench::ablation::prefetch;
use gcl_bench::harness::{save_json, Scale};

fn main() -> std::process::ExitCode {
    let scale = match Scale::from_args() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let t = prefetch(scale);
    println!("{t}");
    save_json("ablation_prefetch", &t.to_json());
    std::process::ExitCode::SUCCESS
}
