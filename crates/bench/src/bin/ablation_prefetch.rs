//! Ablation A4: class-selective next-line prefetching (paper Section X-A).

use gcl_bench::ablation::prefetch;
use gcl_bench::harness::{save_json, Scale};

fn main() {
    let t = prefetch(Scale::from_args());
    println!("{t}");
    save_json("ablation_prefetch", &t.to_json());
}
