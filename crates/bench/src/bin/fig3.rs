//! Regenerates Figure 3 of the paper.

use gcl_bench::figures::fig3;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let results = completed(&run_all(&GpuConfig::fermi(), Scale::from_args()));
    let fig = fig3(&results);
    println!("{fig}");
    save_json("fig3", &fig.to_json());
}
