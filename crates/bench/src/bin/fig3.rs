//! Regenerates Figure 3 of the paper.

fn main() {
    gcl_bench::driver::figure_main("fig3");
}
