//! Regenerates Figure 10 of the paper.

fn main() {
    gcl_bench::driver::figure_main("fig10");
}
