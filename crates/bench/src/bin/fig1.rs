//! Regenerates Figure 1 of the paper.

fn main() {
    gcl_bench::driver::figure_main("fig1");
}
