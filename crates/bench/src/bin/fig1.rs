//! Regenerates Figure 1 of the paper.

use gcl_bench::figures::fig1;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let results = completed(&run_all(&GpuConfig::fermi(), Scale::from_args()));
    let fig = fig1(&results);
    println!("{fig}");
    save_json("fig1", &fig.to_json());
}
