//! Regenerates Figure 9 of the paper.

fn main() {
    gcl_bench::driver::figure_main("fig9");
}
