//! The paper's title, as a report: rank every static load of a workload by
//! its share of total load latency. Usage:
//!
//! ```text
//! cargo run --release -p gcl-bench --bin critical_loads [workload] [--tiny]
//! ```

use gcl_bench::figures::critical_loads;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let workload = std::env::args()
        .nth(1)
        .filter(|a| !a.starts_with("--"))
        .unwrap_or_else(|| "bfs".to_string());
    let results = completed(&run_all(&GpuConfig::fermi(), Scale::from_args()));
    let t = critical_loads(&results, &workload);
    println!("{t}");
    save_json(&format!("critical_loads_{workload}"), &t.to_json());
}
