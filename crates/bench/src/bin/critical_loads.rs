//! The paper's title, as a report: rank every static load of a workload by
//! its share of total load latency. Usage:
//!
//! ```text
//! cargo run --release -p gcl-bench --bin critical_loads [workload] [--tiny]
//! ```

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("critical_loads")
}
