//! Regenerates Figure 11 of the paper.

fn main() {
    gcl_bench::driver::figure_main("fig11");
}
