//! Regenerates Figure 11 of the paper.

use gcl_bench::figures::fig11;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let results = completed(&run_all(&GpuConfig::fermi(), Scale::from_args()));
    let fig = fig11(&results);
    println!("{fig}");
    save_json("fig11", &fig.to_json());
}
