//! Regenerates Figure 6: turnaround vs generated requests for selected
//! loads of bfs, sssp and spmv.

use gcl_bench::figures::fig6;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let results = completed(&run_all(&GpuConfig::fermi(), Scale::from_args()));
    let fig = fig6(&results, &["bfs", "sssp", "spmv"]);
    println!("{fig}");
    save_json("fig6", &fig.to_json());
}
