//! Regenerates Figure 6: turnaround vs generated requests for selected
//! loads of bfs, sssp and spmv.

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("fig6")
}
