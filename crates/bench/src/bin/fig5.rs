//! Regenerates Figure 5: average turnaround-time breakdown per load class.

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("fig5")
}
