//! Regenerates Figure 5: average turnaround-time breakdown per load class.

use gcl_bench::figures::fig5;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let cfg = GpuConfig::fermi();
    let results = completed(&run_all(&cfg, Scale::from_args()));
    let fig = fig5(&results, cfg.unloaded_miss_latency());
    println!("{fig}");
    save_json("fig5", &fig.to_json());
}
