//! Ablation A1: clustered CTA scheduling (paper Section X-B).

use gcl_bench::ablation::cta_sched;
use gcl_bench::harness::{save_json, Scale};

fn main() {
    let t = cta_sched(Scale::from_args());
    println!("{t}");
    save_json("ablation_cta_sched", &t.to_json());
}
