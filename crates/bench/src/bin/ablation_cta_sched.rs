//! Ablation A1: clustered CTA scheduling (paper Section X-B).

use gcl_bench::ablation::cta_sched;
use gcl_bench::harness::{save_json, BenchArgs};

fn main() -> std::process::ExitCode {
    let args = match BenchArgs::from_env(false) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let t = cta_sched(args.scale, args.jobs);
    println!("{t}");
    save_json("ablation_cta_sched", &t.to_json());
    std::process::ExitCode::SUCCESS
}
