//! Ablation A1: clustered CTA scheduling (paper Section X-B).

use gcl_bench::ablation::cta_sched;
use gcl_bench::harness::{save_json, Scale};

fn main() -> std::process::ExitCode {
    let scale = match Scale::from_args() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let t = cta_sched(scale);
    println!("{t}");
    save_json("ablation_cta_sched", &t.to_json());
    std::process::ExitCode::SUCCESS
}
