//! Regenerates Table I of the paper (at our simulator input scales).

use gcl_bench::figures::table1;
use gcl_bench::harness::{completed, run_all, save_json, Scale};
use gcl_sim::GpuConfig;

fn main() {
    let results = completed(&run_all(&GpuConfig::fermi(), Scale::from_args()));
    let t = table1(&results);
    println!("{t}");
    save_json("table1", &t.to_json());
}
