//! Regenerates Table I of the paper (at our simulator input scales).

fn main() {
    gcl_bench::driver::figure_main("table1");
}
