//! Regenerates Table I of the paper (at our simulator input scales).

fn main() -> std::process::ExitCode {
    gcl_bench::driver::figure_main("table1")
}
