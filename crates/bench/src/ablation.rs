//! Section X ablations: the paper *suggests* three microarchitectural
//! responses to the deterministic/non-deterministic split but does not
//! evaluate them. We implement and measure all three.

use crate::harness::{run_one, BenchResult, Scale};
use gcl_mem::{AccessOutcome, ClassTag, L2Topology};
use gcl_sim::{CtaSchedPolicy, GpuConfig, PrefetchFilter};
use gcl_stats::{Cell, Table};
use gcl_workloads::{all_workloads, tiny_workloads, Workload};

fn workloads(scale: Scale) -> Vec<Box<dyn Workload>> {
    match scale {
        Scale::Full => all_workloads(),
        Scale::Tiny => tiny_workloads(),
    }
}

/// Evaluate `per_workload` for every benchmark on `jobs` worker threads and
/// append the produced rows to `t` in Table I order (identical for any
/// `jobs`). A workload whose closure returns `None` (a failed attempt,
/// already warned about) is omitted; a panicking closure is isolated to its
/// workload and reported as a warning.
fn sweep_rows(
    scale: Scale,
    jobs: usize,
    t: &mut Table,
    per_workload: impl Fn(&dyn Workload) -> Option<Vec<Cell>> + Sync,
) {
    let names: Vec<&'static str> = workloads(scale).iter().map(|w| w.name()).collect();
    let rows = gcl_exec::parallel_map(jobs, workloads(scale), |w| per_workload(w.as_ref()));
    for (name, row) in names.into_iter().zip(rows) {
        match row {
            Ok(Some(cells)) => {
                t.row(cells);
            }
            Ok(None) => {}
            Err(panic) => eprintln!("warning: ablation row for {name} panicked: {panic}"),
        }
    }
}

/// Run one configuration of one workload; on failure, warn and return
/// `None` so the ablation table simply omits that row.
fn attempt(w: &dyn Workload, cfg: &GpuConfig) -> Option<BenchResult> {
    match run_one(w, cfg) {
        Ok(r) => Some(r),
        Err(e) => {
            eprintln!("warning: ablation skipped {}: {e}", w.name());
            None
        }
    }
}

fn total_reservation_fails(r: &BenchResult) -> u64 {
    [
        AccessOutcome::ReservationFailTags,
        AccessOutcome::ReservationFailMshr,
        AccessOutcome::ReservationFailIcnt,
    ]
    .iter()
    .map(|o| r.stats.l1.outcome_total(*o))
    .sum()
}

fn overall_l1_miss(r: &BenchResult) -> f64 {
    let hits = r
        .stats
        .l1
        .outcome_class(AccessOutcome::Hit, ClassTag::Deterministic)
        + r.stats
            .l1
            .outcome_class(AccessOutcome::Hit, ClassTag::NonDeterministic);
    let total = r.stats.l1.accepted(ClassTag::Deterministic)
        + r.stats.l1.accepted(ClassTag::NonDeterministic);
    if total == 0 {
        f64::NAN
    } else {
        1.0 - hits as f64 / total as f64
    }
}

/// A1 (Section X-B): round-robin vs. clustered CTA scheduling. Neighboring
/// CTAs share data (Figure 12); co-locating them on an SM should improve L1
/// locality.
pub fn cta_sched(scale: Scale, jobs: usize) -> Table {
    let mut t = Table::new(
        "Ablation A1 — CTA scheduling: round-robin vs clustered (group=2)",
        vec![
            "workload",
            "L1 miss (RR)",
            "L1 miss (clustered)",
            "cycles (RR)",
            "cycles (clustered)",
            "speedup",
        ],
    );
    sweep_rows(scale, jobs, &mut t, |w| {
        let base_cfg = GpuConfig::fermi();
        let mut clustered_cfg = GpuConfig::fermi();
        clustered_cfg.cta_sched = CtaSchedPolicy::Clustered { group: 2 };
        let base = attempt(w, &base_cfg)?;
        let clus = attempt(w, &clustered_cfg)?;
        Some(vec![
            w.name().into(),
            Cell::Percent(overall_l1_miss(&base)),
            Cell::Percent(overall_l1_miss(&clus)),
            base.stats.cycles.into(),
            clus.stats.cycles.into(),
            (base.stats.cycles as f64 / clus.stats.cycles as f64).into(),
        ])
    });
    t
}

/// A2 (Section X-C): unified vs. semi-global (clustered) L2. Each cluster of
/// SMs gets a private slice group; locality improves, aggregate capacity
/// per SM shrinks.
pub fn semiglobal_l2(scale: Scale, jobs: usize) -> Table {
    let mut t = Table::new(
        "Ablation A2 — L2 topology: unified vs semi-global (2 clusters)",
        vec![
            "workload",
            "L2 miss (unified)",
            "L2 miss (semi-global)",
            "DRAM latency (unified)",
            "DRAM latency (semi)",
            "speedup",
        ],
    );
    sweep_rows(scale, jobs, &mut t, |w| {
        let base_cfg = GpuConfig::fermi();
        let mut semi_cfg = GpuConfig::fermi();
        semi_cfg.l2_topology = L2Topology::Clustered { clusters: 2 };
        let base = attempt(w, &base_cfg)?;
        let semi = attempt(w, &semi_cfg)?;
        let l2_miss = |r: &BenchResult| {
            let hits = r
                .stats
                .l2
                .outcome_class(AccessOutcome::Hit, ClassTag::Deterministic)
                + r.stats
                    .l2
                    .outcome_class(AccessOutcome::Hit, ClassTag::NonDeterministic);
            let total = r.stats.l2.accepted(ClassTag::Deterministic)
                + r.stats.l2.accepted(ClassTag::NonDeterministic);
            if total == 0 {
                f64::NAN
            } else {
                1.0 - hits as f64 / total as f64
            }
        };
        Some(vec![
            w.name().into(),
            Cell::Percent(l2_miss(&base)),
            Cell::Percent(l2_miss(&semi)),
            base.stats.dram_mean_latency().into(),
            semi.stats.dram_mean_latency().into(),
            (base.stats.cycles as f64 / semi.stats.cycles as f64).into(),
        ])
    });
    t
}

/// A3 (Section X-A): split non-deterministic loads into sub-warp request
/// chunks to de-burst the L1. Measures reservation failures and the mean
/// N-load turnaround.
pub fn warp_split(scale: Scale, chunk: usize, jobs: usize) -> Table {
    let mut t = Table::new(
        format!("Ablation A3 — warp splitting of N loads (chunk={chunk})"),
        vec![
            "workload",
            "rsrv fails (off)",
            "rsrv fails (split)",
            "N turnaround (off)",
            "N turnaround (split)",
            "speedup",
        ],
    );
    sweep_rows(scale, jobs, &mut t, |w| {
        let base_cfg = GpuConfig::fermi();
        let mut split_cfg = GpuConfig::fermi();
        split_cfg.warp_split_nd = Some(chunk);
        let base = attempt(w, &base_cfg)?;
        let split = attempt(w, &split_cfg)?;
        let nd = gcl_core::LoadClass::NonDeterministic;
        Some(vec![
            w.name().into(),
            total_reservation_fails(&base).into(),
            total_reservation_fails(&split).into(),
            base.stats.class(nd).turnaround.mean().into(),
            split.stats.class(nd).turnaround.mean().into(),
            (base.stats.cycles as f64 / split.stats.cycles as f64).into(),
        ])
    });
    t
}

/// A4 (Section X-A, after the paper's reference \[16\]): class-selective
/// next-line prefetching.
/// The paper argues prefetchers should be load-class aware; this compares
/// no prefetch, prefetch-on-D-miss, prefetch-on-N-miss, and class-oblivious
/// prefetch.
pub fn prefetch(scale: Scale, jobs: usize) -> Table {
    let mut t = Table::new(
        "Ablation A4 — class-selective next-line L1 prefetch",
        vec![
            "workload",
            "cycles (off)",
            "cycles (D-only)",
            "cycles (N-only)",
            "cycles (all)",
            "speedup (D-only)",
            "prefetches (D-only)",
        ],
    );
    sweep_rows(scale, jobs, &mut t, |w| {
        let mut cycles = Vec::new();
        let mut d_prefetches = 0;
        for filter in [
            PrefetchFilter::Off,
            PrefetchFilter::DeterministicOnly,
            PrefetchFilter::NonDeterministicOnly,
            PrefetchFilter::All,
        ] {
            let mut cfg = GpuConfig::fermi();
            cfg.prefetch = filter;
            let r = attempt(w, &cfg)?;
            if filter == PrefetchFilter::DeterministicOnly {
                d_prefetches = r.stats.sm.prefetches_issued;
            }
            cycles.push(r.stats.cycles);
        }
        Some(vec![
            w.name().into(),
            cycles[0].into(),
            cycles[1].into(),
            cycles[2].into(),
            cycles[3].into(),
            (cycles[0] as f64 / cycles[1] as f64).into(),
            d_prefetches.into(),
        ])
    });
    t
}
