//! # gcl-bench — harnesses regenerating the paper's evaluation
//!
//! One binary per table/figure of *"Revealing Critical Loads and Hidden
//! Data Locality in GPGPU Applications"* (IISWC 2015), plus the Section X
//! ablations:
//!
//! ```text
//! cargo run --release -p gcl-bench --bin table1
//! cargo run --release -p gcl-bench --bin fig1     # ... fig12
//! cargo run --release -p gcl-bench --bin ablation_cta_sched
//! cargo run --release -p gcl-bench --bin ablation_semiglobal_l2
//! cargo run --release -p gcl-bench --bin ablation_warp_split
//! cargo run --release -p gcl-bench --bin summary
//! ```
//!
//! Pass `--tiny` to any binary for a fast smoke run. Each binary prints its
//! table and writes a JSON artifact under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ablation;
pub mod driver;
pub mod figures;
pub mod harness;
