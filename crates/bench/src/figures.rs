//! Builders turning harness results into the paper's tables and figures.

use crate::harness::BenchResult;
use gcl_core::LoadClass;
use gcl_mem::{AccessOutcome, ClassTag};
use gcl_stats::{FigureSeries, Series, Table};

fn labels(results: &[BenchResult]) -> Vec<String> {
    results.iter().map(|r| r.name.to_string()).collect()
}

/// Table I: application characteristics.
pub fn table1(results: &[BenchResult]) -> Table {
    let mut t = Table::new(
        "Table I — application characteristics (our scales)",
        vec![
            "category",
            "name",
            "no. of CTAs",
            "threads/CTA",
            "warp insts",
            "global loads",
            "frac of global loads",
        ],
    );
    for r in results {
        t.row(vec![
            r.category.to_string().into(),
            r.name.into(),
            r.total_ctas.into(),
            u64::from(r.threads_per_cta).into(),
            r.stats.sm.warp_insts.into(),
            r.stats.profiler().gld_request.into(),
            gcl_stats::Cell::Percent(r.stats.global_load_fraction()),
        ]);
    }
    t
}

/// Figure 1: deterministic / non-deterministic distribution of global load
/// warps.
pub fn fig1(results: &[BenchResult]) -> FigureSeries {
    let mut f = FigureSeries::new(
        "fig1",
        "Deterministic and non-deterministic load distribution (fraction of global load warps)",
        labels(results),
    );
    let nd: Vec<f64> = results
        .iter()
        .map(|r| r.stats.nondet_load_fraction())
        .collect();
    f.push(Series::new("Non-deterministic", nd.clone()));
    f.push(Series::new(
        "Deterministic",
        nd.iter().map(|v| 1.0 - v).collect(),
    ));
    f
}

/// Figure 2: memory requests per warp and per active thread, by class.
pub fn fig2(results: &[BenchResult]) -> FigureSeries {
    let mut f = FigureSeries::new(
        "fig2",
        "Average memory requests per warp / per active thread (N vs D)",
        labels(results),
    );
    for (cls, tag) in [
        (LoadClass::NonDeterministic, "N"),
        (LoadClass::Deterministic, "D"),
    ] {
        f.push(Series::new(
            format!("{tag} req/warp"),
            results
                .iter()
                .map(|r| r.stats.class(cls).requests_per_warp())
                .collect(),
        ));
        f.push(Series::new(
            format!("{tag} req/active thread"),
            results
                .iter()
                .map(|r| r.stats.class(cls).requests_per_active_thread())
                .collect(),
        ));
    }
    f
}

/// Figure 3: breakdown of L1 data-cache access cycles.
pub fn fig3(results: &[BenchResult]) -> FigureSeries {
    let mut f = FigureSeries::new("fig3", "Breakdown of L1 data cache cycles", labels(results));
    let legends = [
        (AccessOutcome::Hit, "L1 hit"),
        (AccessOutcome::HitReserved, "L1 hit reserved"),
        (AccessOutcome::MissIssued, "L1 miss"),
        (AccessOutcome::ReservationFailTags, "rsrv fail by tags"),
        (AccessOutcome::ReservationFailMshr, "rsrv fail by MSHRs"),
        (AccessOutcome::ReservationFailIcnt, "rsrv fail by icnt"),
    ];
    for (outcome, name) in legends {
        let vals: Vec<f64> = results
            .iter()
            .map(|r| {
                let total: u64 = AccessOutcome::ALL
                    .iter()
                    .map(|o| r.stats.l1.outcome_total(*o))
                    .sum();
                if total == 0 {
                    f64::NAN
                } else {
                    r.stats.l1.outcome_total(outcome) as f64 / total as f64
                }
            })
            .collect();
        f.push(Series::new(name, vals));
    }
    f
}

/// Figure 4: idle fraction of SP / SFU / LD-ST first pipeline stages.
pub fn fig4(results: &[BenchResult]) -> FigureSeries {
    let mut f = FigureSeries::new("fig4", "Fraction of idle cycles per unit", labels(results));
    for (i, unit) in ["SP", "SFU", "LD/ST"].iter().enumerate() {
        f.push(Series::new(
            *unit,
            results
                .iter()
                .map(|r| r.stats.unit_idle_fractions()[i])
                .collect(),
        ));
    }
    f
}

/// Figure 5: average turnaround-time breakdown per load class. Labels are
/// `name:N` / `name:D` pairs.
pub fn fig5(results: &[BenchResult], unloaded_latency: u64) -> FigureSeries {
    let mut lbls = Vec::new();
    for r in results {
        lbls.push(format!("{}:N", r.name));
        lbls.push(format!("{}:D", r.name));
    }
    let mut f = FigureSeries::new(
        "fig5",
        "Average turnaround time of loads (cycles), stacked components",
        lbls,
    );
    let mut unloaded = Vec::new();
    let mut prev = Vec::new();
    let mut cur = Vec::new();
    let mut wasted = Vec::new();
    for r in results {
        for cls in [LoadClass::NonDeterministic, LoadClass::Deterministic] {
            let agg = r.stats.class(cls);
            let mem = agg.memory_time.mean();
            let unl = mem.min(unloaded_latency as f64);
            unloaded.push(unl);
            prev.push(agg.wait_prev_warps.mean());
            cur.push(agg.wait_current_warp.mean());
            wasted.push(if mem.is_nan() { f64::NAN } else { mem - unl });
        }
    }
    f.push(Series::new("Un-loaded memory system latency", unloaded));
    f.push(Series::new("Rsrv fails by previous warps", prev));
    f.push(Series::new("Rsrv fails by current warp", cur));
    f.push(Series::new("Wasted cycles in L2 and DRAMs", wasted));
    f
}

/// One Figure 6 line: mean turnaround by request count for the load at
/// (`kernel`, `pc`).
fn turnaround_by_requests(r: &BenchResult, kernel: &str, pc: usize, max_req: u32) -> Vec<f64> {
    (1..=max_req)
        .map(|n| {
            r.stats
                .pc_agg(kernel, pc, n)
                .map(|a| a.turnaround.mean())
                .unwrap_or(f64::NAN)
        })
        .collect()
}

/// Pick the (kernel, pc) of the busiest load of `class` in a workload (most
/// dynamic samples), if any.
pub fn busiest_pc(r: &BenchResult, class: LoadClass) -> Option<(String, usize)> {
    let mut by_pc: std::collections::HashMap<(&str, usize), u64> = std::collections::HashMap::new();
    for (key, agg) in &r.stats.per_pc {
        if key.class == class {
            *by_pc.entry((key.kernel.as_str(), key.pc)).or_default() += agg.turnaround.count;
        }
    }
    by_pc
        .into_iter()
        .max_by_key(|(_, count)| *count)
        .map(|((kernel, pc), _)| (kernel.to_string(), pc))
}

/// Figure 6: turnaround time vs. number of generated requests for selected
/// loads of the given workloads (the paper uses bfs, sssp, spmv).
pub fn fig6(results: &[BenchResult], picks: &[&str]) -> FigureSeries {
    let max_req = 32u32;
    let lbls: Vec<String> = (1..=max_req).map(|n| n.to_string()).collect();
    let mut f = FigureSeries::new(
        "fig6",
        "Load turnaround time vs number of generated memory requests",
        lbls,
    );
    for r in results.iter().filter(|r| picks.contains(&r.name)) {
        if let Some((kernel, pc)) = busiest_pc(r, LoadClass::NonDeterministic) {
            f.push(Series::new(
                format!("{} (0x{pc:x}, N)", r.name),
                turnaround_by_requests(r, &kernel, pc, max_req),
            ));
        }
        if let Some((kernel, pc)) = busiest_pc(r, LoadClass::Deterministic) {
            f.push(Series::new(
                format!("{} (0x{pc:x}, D)", r.name),
                turnaround_by_requests(r, &kernel, pc, max_req),
            ));
        }
    }
    f
}

/// Figure 7: per-request-count turnaround breakdown for the busiest
/// multi-request (non-deterministic) load of `workload`.
pub fn fig7(results: &[BenchResult], workload: &str, unloaded_latency: u64) -> FigureSeries {
    let Some(r) = results.iter().find(|r| r.name == workload) else {
        return FigureSeries::new(
            "fig7",
            format!("Turnaround breakdown unavailable: `{workload}` did not complete"),
            Vec::<String>::new(),
        );
    };
    let Some((kernel, pc)) = busiest_pc(r, LoadClass::NonDeterministic) else {
        return FigureSeries::new(
            "fig7",
            format!("Turnaround breakdown unavailable: `{workload}` has no non-deterministic load"),
            Vec::<String>::new(),
        );
    };
    let max_req = 32u32;
    let lbls: Vec<String> = (1..=max_req).map(|n| n.to_string()).collect();
    let mut f = FigureSeries::new(
        "fig7",
        format!("Turnaround breakdown for load 0x{pc:x} in {workload} by request count"),
        lbls,
    );
    let get = |n: u32| r.stats.pc_agg(&kernel, pc, n);
    f.push(Series::new(
        "Common latency",
        (1..=max_req)
            .map(|n| get(n).map(|_| unloaded_latency as f64).unwrap_or(f64::NAN))
            .collect(),
    ));
    f.push(Series::new(
        "Gap at L1D",
        (1..=max_req)
            .map(|n| get(n).map(|a| a.gap_l1d.mean()).unwrap_or(f64::NAN))
            .collect(),
    ));
    f.push(Series::new(
        "Gap at icnt-L2",
        (1..=max_req)
            .map(|n| get(n).map(|a| a.gap_icnt_l2.mean()).unwrap_or(f64::NAN))
            .collect(),
    ));
    f.push(Series::new(
        "Gap at L2-icnt",
        (1..=max_req)
            .map(|n| get(n).map(|a| a.gap_l2_icnt.mean()).unwrap_or(f64::NAN))
            .collect(),
    ));
    f
}

/// Figure 8: L1 and L2 miss ratios by load class.
pub fn fig8(results: &[BenchResult]) -> FigureSeries {
    let mut f = FigureSeries::new("fig8", "L1 / L2 miss ratio (N vs D)", labels(results));
    for (tag, cls) in [
        ("N", ClassTag::NonDeterministic),
        ("D", ClassTag::Deterministic),
    ] {
        f.push(Series::new(
            format!("L1 miss ({tag})"),
            results.iter().map(|r| r.stats.l1.miss_ratio(cls)).collect(),
        ));
        f.push(Series::new(
            format!("L2 miss ({tag})"),
            results.iter().map(|r| r.stats.l2.miss_ratio(cls)).collect(),
        ));
    }
    f
}

/// Figure 9: shared-memory loads per global load.
pub fn fig9(results: &[BenchResult]) -> FigureSeries {
    let mut f = FigureSeries::new(
        "fig9",
        "Shared memory loads per global memory load",
        labels(results),
    );
    f.push(Series::new(
        "shared/global",
        results
            .iter()
            .map(|r| r.stats.profiler().shared_per_global())
            .collect(),
    ));
    f
}

/// Figure 10: cold-miss ratio and mean accesses per 128 B block.
pub fn fig10(results: &[BenchResult]) -> FigureSeries {
    let mut f = FigureSeries::new(
        "fig10",
        "Cold miss ratio and accesses per 128B data block",
        labels(results),
    );
    f.push(Series::new(
        "Cold miss ratio",
        results.iter().map(|r| r.blocks.cold_miss_ratio).collect(),
    ));
    f.push(Series::new(
        "Mean accesses per block",
        results
            .iter()
            .map(|r| r.blocks.mean_accesses_per_block)
            .collect(),
    ));
    f
}

/// Figure 11: inter-CTA data sharing.
pub fn fig11(results: &[BenchResult]) -> FigureSeries {
    let mut f = FigureSeries::new(
        "fig11",
        "Data space accessed by multiple CTAs",
        labels(results),
    );
    f.push(Series::new(
        "Blocks shared by 2+ CTAs",
        results
            .iter()
            .map(|r| r.blocks.shared_block_ratio)
            .collect(),
    ));
    f.push(Series::new(
        "Accesses to shared blocks",
        results
            .iter()
            .map(|r| r.blocks.shared_access_ratio)
            .collect(),
    ));
    f.push(Series::new(
        "Mean CTAs per shared block",
        results
            .iter()
            .map(|r| r.blocks.mean_ctas_per_shared_block)
            .collect(),
    ));
    f
}

/// Figure 12: CTA-distance histogram, bucketed to powers of two. One
/// series per workload; call per category to reproduce the three panels.
pub fn fig12(results: &[BenchResult], category: gcl_workloads::Category) -> FigureSeries {
    let buckets: Vec<u64> = vec![1, 2, 4, 8, 16, 32, 64, 128];
    let mut lbls: Vec<String> = buckets.iter().map(|b| format!("≤{b}")).collect();
    lbls.push(">128".to_string());
    let mut f = FigureSeries::new(
        "fig12",
        format!("CTA-distance distribution of shared-block accesses ({category})"),
        lbls,
    );
    for r in results.iter().filter(|r| r.category == category) {
        let mut vals = vec![0.0f64; buckets.len() + 1];
        for &(d, frac) in &r.distance_hist {
            let slot = buckets
                .iter()
                .position(|&b| d <= b)
                .unwrap_or(buckets.len());
            vals[slot] += frac;
        }
        f.push(Series::new(r.name, vals));
    }
    f
}

/// The "critical loads" report of the paper's title: every static load of a
/// workload, joined with its dynamic impact — executions, mean requests per
/// warp, mean turnaround, and its share of the workload's total load
/// latency — plus the static side of the story: the classifier's provenance
/// trace (the terminal sources the address derives from) and `gcl-analyze`'s
/// coalescing prediction. Non-deterministic loads near the top of this table
/// are the paper's critical loads.
pub fn critical_loads(results: &[BenchResult], workload: &str) -> gcl_stats::Table {
    const COLUMNS: [&str; 9] = [
        "kernel",
        "pc",
        "class",
        "execs",
        "req/warp",
        "mean turnaround",
        "share",
        "sources",
        "static",
    ];
    let Some(r) = results.iter().find(|r| r.name == workload) else {
        return gcl_stats::Table::new(
            format!("Critical loads unavailable: `{workload}` did not complete"),
            COLUMNS.to_vec(),
        );
    };

    // Static columns, joined by (kernel, pc): the classifier's terminal
    // sources and the affine analysis's request-count prediction.
    let mut sources: std::collections::BTreeMap<(String, usize), String> =
        std::collections::BTreeMap::new();
    let mut predictions: std::collections::BTreeMap<(String, usize), String> =
        std::collections::BTreeMap::new();
    for k in &r.kernels {
        let name = k.name().to_string();
        for l in gcl_core::classify(k).loads() {
            let trace: Vec<String> = l.sources.iter().map(|s| s.to_string()).collect();
            sources.insert((name.clone(), l.pc), trace.join(" "));
        }
        for p in gcl_analyze::affine_loads(k) {
            predictions.insert((name.clone(), p.pc), p.prediction.label());
        }
    }

    // Aggregate per (kernel, pc) over request counts.
    #[derive(Default)]
    struct Row {
        class: Option<LoadClass>,
        executions: u64,
        requests: u64,
        turnaround_sum: f64,
    }
    let mut rows: std::collections::BTreeMap<(String, usize), Row> =
        std::collections::BTreeMap::new();
    for (key, agg) in &r.stats.per_pc {
        let row = rows.entry((key.kernel.clone(), key.pc)).or_default();
        row.class = Some(key.class);
        row.executions += agg.turnaround.count;
        row.requests += agg.turnaround.count * u64::from(key.n_requests);
        row.turnaround_sum += agg.turnaround.sum;
    }
    let total_turnaround: f64 = rows.values().map(|r| r.turnaround_sum).sum();

    let mut sorted: Vec<_> = rows.into_iter().collect();
    sorted.sort_by(|a, b| b.1.turnaround_sum.total_cmp(&a.1.turnaround_sum));

    let mut t = gcl_stats::Table::new(
        format!("Critical loads of `{workload}` (by total turnaround share)"),
        COLUMNS.to_vec(),
    );
    for ((kernel, pc), row) in sorted {
        let class = row.class.expect("row without class");
        let key = (kernel.clone(), pc);
        t.row(vec![
            kernel.into(),
            format!("0x{pc:x}").into(),
            class.letter().to_string().into(),
            row.executions.into(),
            (row.requests as f64 / row.executions as f64).into(),
            (row.turnaround_sum / row.executions as f64).into(),
            gcl_stats::Cell::Percent(if total_turnaround == 0.0 {
                f64::NAN
            } else {
                row.turnaround_sum / total_turnaround
            }),
            sources.get(&key).cloned().unwrap_or_default().into(),
            predictions
                .get(&key)
                .cloned()
                .unwrap_or_else(|| "-".to_string())
                .into(),
        ]);
    }
    t
}
