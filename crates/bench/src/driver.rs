//! Shared entry point for the per-figure binaries.
//!
//! Every `fig*`/`table1`/`summary`/`critical_loads` binary is a three-line
//! `main` delegating to [`figure_main`]; the workload sweep, artifact
//! printing and JSON saving live here once. The ablation binaries keep
//! their own mains — they sweep configurations, not figures.

use crate::figures;
use crate::harness::{completed, parse_scale_args, run_all, save_json, BenchResult};
use gcl_sim::GpuConfig;
use gcl_workloads::Category;
use std::process::ExitCode;

/// Every artifact id [`figure_main`] can regenerate.
pub const ARTIFACT_IDS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "table1",
    "critical_loads",
    "summary",
];

/// Run the benchmark sweep once and regenerate the named artifact
/// (see [`ARTIFACT_IDS`]).
///
/// Parses the process arguments strictly: `--tiny` selects the tiny scale,
/// `--jobs N` fans the workload sweep out over N worker threads (results
/// and artifacts are identical for any N), `critical_loads` additionally
/// takes one optional workload name (default `bfs`), and anything else —
/// including an unknown `id` — is reported to stderr with a nonzero exit
/// instead of being ignored or panicking.
pub fn figure_main(id: &str) -> ExitCode {
    match figure_main_inner(id) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn figure_main_inner(id: &str) -> Result<(), String> {
    if !ARTIFACT_IDS.contains(&id) {
        return Err(format!(
            "no figure or table named `{id}` (valid: {})",
            ARTIFACT_IDS.join(", ")
        ));
    }
    let args = parse_scale_args(std::env::args().skip(1), id == "critical_loads")?;
    let cfg = GpuConfig::fermi();
    let results = completed(&run_all(&cfg, args.scale, args.jobs));
    match id {
        "fig1" => emit(id, &figures::fig1(&results)),
        "fig2" => emit(id, &figures::fig2(&results)),
        "fig3" => emit(id, &figures::fig3(&results)),
        "fig4" => emit(id, &figures::fig4(&results)),
        "fig5" => emit(id, &figures::fig5(&results, cfg.unloaded_miss_latency())),
        "fig6" => emit(id, &figures::fig6(&results, &["bfs", "sssp", "spmv"])),
        "fig7" => emit(
            id,
            &figures::fig7(&results, "bfs", cfg.unloaded_miss_latency()),
        ),
        "fig8" => emit(id, &figures::fig8(&results)),
        "fig9" => emit(id, &figures::fig9(&results)),
        "fig10" => emit(id, &figures::fig10(&results)),
        "fig11" => emit(id, &figures::fig11(&results)),
        "fig12" => {
            for (panel, cat) in [
                ("a", Category::Linear),
                ("b", Category::Image),
                ("c", Category::Graph),
            ] {
                emit(&format!("fig12{panel}"), &figures::fig12(&results, cat));
            }
        }
        "table1" => emit(id, &figures::table1(&results)),
        "critical_loads" => {
            let workload = args.workload.unwrap_or_else(|| "bfs".to_string());
            emit(
                &format!("critical_loads_{workload}"),
                &figures::critical_loads(&results, &workload),
            );
        }
        "summary" => summary(&results),
        other => unreachable!("id `{other}` validated against ARTIFACT_IDS"),
    }
    Ok(())
}

/// Print one artifact and save its JSON form under `results/`.
fn emit<T: std::fmt::Display + Json>(id: &str, artifact: &T) {
    println!("{artifact}");
    save_json(id, &artifact.to_json());
}

/// The two artifact types both encode themselves; unify them for [`emit`].
trait Json {
    fn to_json(&self) -> String;
}

impl Json for gcl_stats::FigureSeries {
    fn to_json(&self) -> String {
        gcl_stats::FigureSeries::to_json(self)
    }
}

impl Json for gcl_stats::Table {
    fn to_json(&self) -> String {
        gcl_stats::Table::to_json(self)
    }
}

/// One-line-per-workload summary of a full harness run (no JSON artifact).
fn summary(results: &[BenchResult]) {
    println!(
        "{:6} {:7} {:>9} {:>10} {:>9} {:>6} {:>8} {:>6} {:>6} {:>6}",
        "name", "cat", "cycles", "warp insts", "gld", "N%", "L1miss%", "ipc", "simd%", "bdiv%"
    );
    for r in results {
        let p = r.stats.profiler();
        println!(
            "{:6} {:7} {:>9} {:>10} {:>9} {:>5.1} {:>8.1} {:>6.2} {:>6.1} {:>6.1}",
            r.name,
            r.category.to_string(),
            r.stats.cycles,
            r.stats.sm.warp_insts,
            p.gld_request,
            r.stats.nondet_load_fraction() * 100.0,
            p.l1_miss_ratio() * 100.0,
            r.stats.sm.warp_insts as f64 / r.stats.cycles as f64,
            r.stats.simd_utilization(32) * 100.0,
            r.stats.branch_divergence() * 100.0,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::{figure_main_inner, ARTIFACT_IDS};

    /// An unknown artifact id is a structured error naming every valid id,
    /// not a panic.
    #[test]
    fn unknown_id_lists_valid_names() {
        let err = figure_main_inner("fig99").unwrap_err();
        assert!(err.contains("no figure or table named `fig99`"), "{err}");
        for id in ARTIFACT_IDS {
            assert!(err.contains(id), "error must list `{id}`: {err}");
        }
    }
}
