//! Shared harness: run every workload on a configured GPU and collect the
//! per-workload results every figure draws from.

use gcl_ptx::Kernel;
use gcl_sim::{BlockSummary, Gpu, GpuConfig, LaunchStats, SimError};
use gcl_workloads::{all_workloads, tiny_workloads, Category, Workload};

/// Everything one workload produced in one full run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload name (Table I).
    pub name: &'static str,
    /// Application category.
    pub category: Category,
    /// Merged launch statistics.
    pub stats: LaunchStats,
    /// Total CTAs launched.
    pub total_ctas: u64,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Static classification counts over the workload's kernels (D, N).
    pub static_loads: (usize, usize),
    /// The distinct kernels the run launched — the subjects the static
    /// analyses (classification provenance, affine coalescing prediction)
    /// join against when a figure needs per-load static columns.
    pub kernels: Vec<Kernel>,
    /// Block-locality summary (Figures 10–11).
    pub blocks: BlockSummary,
    /// CTA-distance histogram (Figure 12).
    pub distance_hist: Vec<(u64, f64)>,
}

/// Input-size selection for a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Default benchmark scale (used for the reported figures).
    Full,
    /// Tiny scale for tests and smoke runs.
    Tiny,
}

/// Parsed command line of a figure/ablation binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchArgs {
    /// Input-size selection (`--tiny`).
    pub scale: Scale,
    /// Optional positional workload name (only some binaries accept one).
    pub workload: Option<String>,
    /// Worker threads for the workload sweep (`--jobs N`, default 1).
    pub jobs: usize,
}

impl BenchArgs {
    /// Strictly parse the process arguments of an ablation/figure binary.
    ///
    /// # Errors
    ///
    /// Describes the first unknown flag or stray positional argument.
    pub fn from_env(allow_workload: bool) -> Result<BenchArgs, String> {
        parse_scale_args(std::env::args().skip(1), allow_workload)
    }
}

/// Strictly parse a figure-binary command line: `--tiny`, `--jobs N`, plus
/// — only when `allow_workload` — one optional positional workload name.
/// Unknown flags and unexpected positionals are errors, never silently
/// ignored.
///
/// # Errors
///
/// Describes the offending argument and what the binary accepts.
pub fn parse_scale_args(
    args: impl Iterator<Item = String>,
    allow_workload: bool,
) -> Result<BenchArgs, String> {
    let accepts = if allow_workload {
        "--tiny, --jobs N, and one optional workload name"
    } else {
        "--tiny and --jobs N"
    };
    let mut scale = Scale::Full;
    let mut workload = None;
    let mut jobs = 1usize;
    let mut args = args;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tiny" => scale = Scale::Tiny,
            "--jobs" => {
                let v = args.next().ok_or("--jobs needs a value")?;
                jobs = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--jobs needs a positive integer, got `{v}`"))?;
            }
            flag if flag.starts_with('-') => {
                return Err(format!(
                    "unknown option `{flag}` (this binary accepts {accepts})"
                ));
            }
            name if allow_workload && workload.is_none() => workload = Some(name.to_string()),
            other => {
                return Err(format!(
                    "unexpected argument `{other}` (this binary accepts {accepts})"
                ));
            }
        }
    }
    Ok(BenchArgs {
        scale,
        workload,
        jobs,
    })
}

/// The outcome of attempting one workload end to end: either its results or
/// why it stopped (a rendered [`SimError`], or a panic message when the
/// workload crashed outright — worker panics are isolated per workload).
/// One failed benchmark never takes down a harness sweep.
#[derive(Debug)]
pub struct BenchRun {
    /// Workload name (Table I).
    pub name: &'static str,
    /// Application category.
    pub category: Category,
    /// The workload's results, or why it failed.
    pub outcome: Result<BenchResult, String>,
}

impl BenchRun {
    /// The results, if the workload completed.
    pub fn result(&self) -> Option<&BenchResult> {
        self.outcome.as_ref().ok()
    }
}

/// Run every workload of the paper on `cfg`, each on a fresh GPU, fanned
/// out over `jobs` worker threads (results stay in Table I order for any
/// `jobs`; 1 reproduces the serial sweep). Failures are captured per
/// workload — a [`SimError`] structurally, a panic as a failure message —
/// never panicked: the remaining benchmarks still run and the caller
/// decides how to report the casualties (see [`completed`]).
pub fn run_all(cfg: &GpuConfig, scale: Scale, jobs: usize) -> Vec<BenchRun> {
    let workloads = match scale {
        Scale::Full => all_workloads(),
        Scale::Tiny => tiny_workloads(),
    };
    let meta: Vec<(&'static str, Category)> =
        workloads.iter().map(|w| (w.name(), w.category())).collect();
    gcl_exec::parallel_map(jobs, workloads, |w| run_one(w.as_ref(), cfg))
        .into_iter()
        .zip(meta)
        .map(|(outcome, (name, category))| BenchRun {
            name,
            category,
            outcome: match outcome {
                Ok(r) => r.map_err(|e| e.to_string()),
                Err(panic) => Err(format!("workload panicked: {panic}")),
            },
        })
        .collect()
}

/// Keep the completed results of a sweep, warning on stderr about each
/// failed benchmark. Figures built from the survivors simply render the
/// failed workloads as absent.
pub fn completed(runs: &[BenchRun]) -> Vec<BenchResult> {
    let mut out = Vec::new();
    for run in runs {
        match &run.outcome {
            Ok(r) => out.push(r.clone()),
            Err(e) => eprintln!(
                "warning: workload {} failed, omitted from figures: {e}",
                run.name
            ),
        }
    }
    out
}

/// Run a single workload on a fresh GPU with `cfg`.
///
/// # Errors
///
/// Returns the first [`SimError`] the configuration, an allocation, or a
/// launch produced.
pub fn run_one(w: &dyn Workload, cfg: &GpuConfig) -> Result<BenchResult, SimError> {
    let mut gpu = Gpu::new(cfg.clone())?;
    let run = w.run(&mut gpu)?;
    let static_loads = run
        .kernels
        .iter()
        .map(|k| gcl_core::classify(k).global_load_counts())
        .fold((0, 0), |acc, (d, n)| (acc.0 + d, acc.1 + n));
    Ok(BenchResult {
        name: w.name(),
        category: w.category(),
        stats: run.stats,
        total_ctas: run.total_ctas,
        threads_per_cta: run.threads_per_cta,
        static_loads,
        kernels: run.kernels,
        blocks: gpu.block_summary(),
        distance_hist: gpu.distance_histogram(),
    })
}

/// The benchmark names in Table I order.
pub fn names(results: &[BenchResult]) -> Vec<&'static str> {
    results.iter().map(|r| r.name).collect()
}

/// Write a JSON artifact under `results/` (best effort; prints the path).
pub fn save_json(id: &str, json: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{id}.json"));
        if std::fs::write(&path, json).is_ok() {
            eprintln!("(wrote {})", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_scale_args, BenchArgs, Scale};

    fn args(list: &'static [&'static str]) -> impl Iterator<Item = String> {
        list.iter().map(|s| s.to_string())
    }

    #[test]
    fn tiny_flag_jobs_and_workload_parse() {
        assert_eq!(
            parse_scale_args(args(&[]), false).unwrap(),
            BenchArgs {
                scale: Scale::Full,
                workload: None,
                jobs: 1
            }
        );
        assert_eq!(
            parse_scale_args(args(&["--tiny", "--jobs", "4"]), false).unwrap(),
            BenchArgs {
                scale: Scale::Tiny,
                workload: None,
                jobs: 4
            }
        );
        assert_eq!(
            parse_scale_args(args(&["bfs", "--tiny"]), true).unwrap(),
            BenchArgs {
                scale: Scale::Tiny,
                workload: Some("bfs".to_string()),
                jobs: 1
            }
        );
    }

    /// Unknown flags, stray positionals and bad --jobs values are rejected,
    /// not ignored.
    #[test]
    fn unknown_arguments_rejected() {
        let err = parse_scale_args(args(&["--huge"]), false).unwrap_err();
        assert!(err.contains("unknown option `--huge`"), "{err}");
        let err = parse_scale_args(args(&["bfs"]), false).unwrap_err();
        assert!(err.contains("unexpected argument `bfs`"), "{err}");
        let err = parse_scale_args(args(&["bfs", "sssp"]), true).unwrap_err();
        assert!(err.contains("unexpected argument `sssp`"), "{err}");
        let err = parse_scale_args(args(&["--jobs", "0"]), false).unwrap_err();
        assert!(err.contains("--jobs"), "{err}");
        let err = parse_scale_args(args(&["--jobs"]), false).unwrap_err();
        assert!(err.contains("--jobs needs a value"), "{err}");
    }
}
