//! Shared harness: run every workload on a configured GPU and collect the
//! per-workload results every figure draws from.

use gcl_sim::{BlockSummary, Gpu, GpuConfig, LaunchStats};
use gcl_workloads::{all_workloads, tiny_workloads, Category, Workload};

/// Everything one workload produced in one full run.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Workload name (Table I).
    pub name: &'static str,
    /// Application category.
    pub category: Category,
    /// Merged launch statistics.
    pub stats: LaunchStats,
    /// Total CTAs launched.
    pub total_ctas: u64,
    /// Threads per CTA.
    pub threads_per_cta: u32,
    /// Static classification counts over the workload's kernels (D, N).
    pub static_loads: (usize, usize),
    /// Block-locality summary (Figures 10–11).
    pub blocks: BlockSummary,
    /// CTA-distance histogram (Figure 12).
    pub distance_hist: Vec<(u64, f64)>,
}

/// Input-size selection for a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Default benchmark scale (used for the reported figures).
    Full,
    /// Tiny scale for tests and smoke runs.
    Tiny,
}

impl Scale {
    /// Parse from a CLI argument (`--tiny` selects [`Scale::Tiny`]).
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--tiny") {
            Scale::Tiny
        } else {
            Scale::Full
        }
    }
}

/// Run every workload of the paper on `cfg`, each on a fresh GPU.
///
/// # Panics
///
/// Panics if any workload fails to simulate — the harness is only useful
/// when every benchmark completes.
pub fn run_all(cfg: &GpuConfig, scale: Scale) -> Vec<BenchResult> {
    let workloads = match scale {
        Scale::Full => all_workloads(),
        Scale::Tiny => tiny_workloads(),
    };
    workloads
        .iter()
        .map(|w| run_one(w.as_ref(), cfg))
        .collect()
}

/// Run a single workload on a fresh GPU with `cfg`.
///
/// # Panics
///
/// Panics if the simulation errors.
pub fn run_one(w: &dyn Workload, cfg: &GpuConfig) -> BenchResult {
    let mut gpu = Gpu::new(cfg.clone());
    let run = w
        .run(&mut gpu)
        .unwrap_or_else(|e| panic!("workload {} failed: {e}", w.name()));
    let static_loads = run
        .kernels
        .iter()
        .map(|k| gcl_core::classify(k).global_load_counts())
        .fold((0, 0), |acc, (d, n)| (acc.0 + d, acc.1 + n));
    BenchResult {
        name: w.name(),
        category: w.category(),
        stats: run.stats,
        total_ctas: run.total_ctas,
        threads_per_cta: run.threads_per_cta,
        static_loads,
        blocks: gpu.block_summary(),
        distance_hist: gpu.distance_histogram(),
    }
}

/// The benchmark names in Table I order.
pub fn names(results: &[BenchResult]) -> Vec<&'static str> {
    results.iter().map(|r| r.name).collect()
}

/// Write a JSON artifact under `results/` (best effort; prints the path).
pub fn save_json(id: &str, json: &str) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{id}.json"));
        if std::fs::write(&path, json).is_ok() {
            eprintln!("(wrote {})", path.display());
        }
    }
}
