//! Unit tests of the figure builders on synthesized harness results, plus
//! a tiny-scale end-to-end check that every builder produces well-formed
//! output from a real run.

use gcl_bench::figures;
use gcl_bench::harness::{completed, run_all, BenchResult, Scale};
use gcl_core::LoadClass;
use gcl_sim::{BlockSummary, GpuConfig, LaunchStats, PcKey};
use gcl_workloads::Category;

fn fake_result(name: &'static str, category: Category) -> BenchResult {
    let mut stats = LaunchStats {
        name: name.into(),
        launches: 1,
        cycles: 1000,
        ..Default::default()
    };
    stats.sm.cycles = 1000;
    stats.sm.warp_insts = 500;
    stats.sm.global_load_warps = [60, 40];
    stats.sm.unit_busy = [100, 0, 400];
    stats.class_agg[0].warp_loads = 60;
    stats.class_agg[0].requests = 90;
    stats.class_agg[0].active_threads = 60 * 32;
    stats.class_agg[1].warp_loads = 40;
    stats.class_agg[1].requests = 400;
    stats.class_agg[1].active_threads = 40 * 32;
    stats.class_agg[1].turnaround.add(500.0);
    stats.class_agg[0].turnaround.add(150.0);
    let key = PcKey {
        kernel: format!("{name}_kernel"),
        pc: 7,
        class: LoadClass::NonDeterministic,
        n_requests: 4,
    };
    let mut agg = gcl_sim::PcReqAgg::default();
    agg.turnaround.add(321.0);
    agg.gap_l1d.add(3.0);
    agg.gap_icnt_l2.add(1.0);
    agg.gap_l2_icnt.add(10.0);
    stats.per_pc.push((key, agg));
    BenchResult {
        name,
        category,
        stats,
        total_ctas: 16,
        threads_per_cta: 128,
        static_loads: (3, 2),
        kernels: Vec::new(),
        blocks: BlockSummary {
            blocks: 100,
            accesses: 1000,
            cold_miss_ratio: 0.1,
            mean_accesses_per_block: 10.0,
            shared_block_ratio: 0.5,
            shared_access_ratio: 0.8,
            mean_ctas_per_shared_block: 4.0,
        },
        distance_hist: vec![(1, 0.6), (2, 0.2), (40, 0.2)],
    }
}

fn fakes() -> Vec<BenchResult> {
    vec![
        fake_result("alpha", Category::Linear),
        fake_result("beta", Category::Graph),
    ]
}

#[test]
fn table1_has_one_row_per_workload() {
    let t = figures::table1(&fakes());
    assert_eq!(t.rows.len(), 2);
    assert_eq!(t.headers.len(), 7);
}

#[test]
fn fig1_fractions_sum_to_one() {
    let f = figures::fig1(&fakes());
    assert_eq!(f.series.len(), 2);
    for i in 0..2 {
        let total = f.series[0].values[i] + f.series[1].values[i];
        assert!((total - 1.0).abs() < 1e-12);
    }
    assert!((f.series[0].values[0] - 0.4).abs() < 1e-12);
}

#[test]
fn fig2_orders_n_above_d() {
    let f = figures::fig2(&fakes());
    let n_rpw = &f.series[0];
    let d_rpw = &f.series[2];
    assert!(n_rpw.name.starts_with('N'));
    assert!(d_rpw.name.starts_with('D'));
    assert!(n_rpw.values[0] > d_rpw.values[0]);
}

#[test]
fn fig4_idle_complements_busy() {
    let f = figures::fig4(&fakes());
    // unit_busy = [100, 0, 400] of 1000 cycles.
    assert!((f.series[0].values[0] - 0.9).abs() < 1e-12);
    assert!((f.series[1].values[0] - 1.0).abs() < 1e-12);
    assert!((f.series[2].values[0] - 0.6).abs() < 1e-12);
}

#[test]
fn fig5_emits_n_and_d_labels_per_workload() {
    let f = figures::fig5(&fakes(), 121);
    assert_eq!(f.labels.len(), 4);
    assert_eq!(f.labels[0], "alpha:N");
    assert_eq!(f.labels[1], "alpha:D");
    assert_eq!(f.series.len(), 4);
}

#[test]
fn fig6_and_fig7_find_the_synthetic_pc() {
    let f = figures::fig6(&fakes(), &["beta"]);
    // The synthetic N load at pc 7 with 4 requests must appear.
    let n_series = f
        .series
        .iter()
        .find(|s| s.name.contains("(0x7, N)"))
        .expect("N series missing");
    assert!((n_series.values[3] - 321.0).abs() < 1e-9);

    let f7 = figures::fig7(&fakes(), "beta", 121);
    assert_eq!(f7.series.len(), 4);
    assert!((f7.series[1].values[3] - 3.0).abs() < 1e-9); // gap at L1D
}

#[test]
fn fig10_fig11_read_block_summary() {
    let f10 = figures::fig10(&fakes());
    assert!((f10.series[0].values[0] - 0.1).abs() < 1e-12);
    assert!((f10.series[1].values[0] - 10.0).abs() < 1e-12);
    let f11 = figures::fig11(&fakes());
    assert!((f11.series[2].values[1] - 4.0).abs() < 1e-12);
}

#[test]
fn fig12_buckets_by_category() {
    let f = figures::fig12(&fakes(), Category::Graph);
    assert_eq!(f.series.len(), 1, "only beta is a graph workload");
    // Distances 1 (0.6), 2 (0.2) and 40 (0.2 → ≤64 bucket).
    assert!((f.series[0].values[0] - 0.6).abs() < 1e-12);
    assert!((f.series[0].values[1] - 0.2).abs() < 1e-12);
    assert!((f.series[0].values[6] - 0.2).abs() < 1e-12);
    // Fractions still sum to 1 after bucketing.
    let total: f64 = f.series[0].values.iter().sum();
    assert!((total - 1.0).abs() < 1e-12);
}

#[test]
fn critical_loads_ranks_by_share() {
    let t = figures::critical_loads(&fakes(), "beta");
    assert_eq!(t.headers.len(), 9);
    assert_eq!(t.rows.len(), 1);
    // Single synthetic load owns 100% of the turnaround.
    assert_eq!(t.rows[0][2], gcl_stats::Cell::Text("N".into()));
    assert_eq!(t.rows[0][6], gcl_stats::Cell::Percent(1.0));
    // The fake result carries no kernels, so the static columns are empty.
    assert_eq!(t.rows[0][7], gcl_stats::Cell::Text(String::new()));
    assert_eq!(t.rows[0][8], gcl_stats::Cell::Text("-".into()));
}

/// End-to-end smoke: the tiny harness feeds every builder without panics
/// and with one label per workload.
#[test]
fn tiny_harness_feeds_every_builder() {
    let cfg = GpuConfig::small();
    // Exercise the parallel sweep path: results must be Table I-ordered
    // and complete exactly as in a serial run.
    let runs = run_all(&cfg, Scale::Tiny, 4);
    assert_eq!(runs.len(), 15);
    let results = completed(&runs);
    assert_eq!(results.len(), 15, "every tiny workload completes");
    let t = figures::table1(&results);
    assert_eq!(t.rows.len(), 15);
    for f in [
        figures::fig1(&results),
        figures::fig2(&results),
        figures::fig3(&results),
        figures::fig4(&results),
        figures::fig8(&results),
        figures::fig9(&results),
        figures::fig10(&results),
        figures::fig11(&results),
    ] {
        assert_eq!(f.labels.len(), 15, "{}", f.id);
        assert!(!f.series.is_empty(), "{}", f.id);
    }
    let f5 = figures::fig5(&results, cfg.unloaded_miss_latency());
    assert_eq!(f5.labels.len(), 30);
    let f6 = figures::fig6(&results, &["bfs", "sssp", "spmv"]);
    assert!(f6.series.len() >= 4);
    let f7 = figures::fig7(&results, "bfs", cfg.unloaded_miss_latency());
    assert_eq!(f7.series.len(), 4);
    for cat in [Category::Linear, Category::Image, Category::Graph] {
        let f12 = figures::fig12(&results, cat);
        assert_eq!(f12.series.len(), 5);
    }
    // Real kernels flowed through: the static columns are populated.
    let cl = figures::critical_loads(&results, "spmv");
    assert!(!cl.rows.is_empty());
    assert!(
        cl.rows
            .iter()
            .any(|r| matches!(&r[7], gcl_stats::Cell::Text(t) if t.contains("param@"))),
        "no provenance trace in {cl}"
    );
    assert!(
        cl.rows
            .iter()
            .any(|r| matches!(&r[8], gcl_stats::Cell::Text(t) if t == "coalesced")),
        "no coalescing prediction in {cl}"
    );
}
