//! Checkpoint/restore integration: a launch interrupted at any cycle and
//! resumed — in the same process or in a freshly built GPU — must finish
//! with the identical event digest, cycle count, and memory image as an
//! uninterrupted run; and every rejection path (truncation, corruption,
//! version/config/kernel mismatch) must surface `SimError::Checkpoint`
//! while leaving the target GPU untouched.

use gcl_ptx::{CmpOp, Kernel, KernelBuilder, Special, Type};
use gcl_sim::{
    pack_params, CheckpointError, Dim3, Gpu, GpuConfig, MemorySink, SimError, Snapshot,
    SNAPSHOT_VERSION,
};
use std::sync::{Arc, Mutex};

const N: u32 = 256;

fn add_in_place(b: &mut KernelBuilder, dst: gcl_ptx::Reg, v: gcl_ptx::Operand) {
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U32,
        dst,
        a: dst.into(),
        b: v,
    });
}

fn san_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    cfg
}

/// A workload with enough going on to exercise every snapshotted structure:
/// a per-thread loop of strided global loads (L1/L2/DRAM traffic in flight
/// at most cycles), divergence, and a final store.
fn workload() -> Kernel {
    let mut b = KernelBuilder::new("ckpt_gather");
    let pin = b.param("in", Type::U64);
    let pout = b.param("out", Type::U64);
    let src = b.ld_param(Type::U64, pin);
    let out = b.ld_param(Type::U64, pout);
    let gid = b.thread_linear_id();
    let lane = b.sreg(Special::LaneId);
    let acc = b.imm32(0);
    let i = b.imm32(0);
    let head = b.new_label();
    let done = b.new_label();
    b.place(head);
    // Lane l iterates 4 + (l % 5) times: divergent trip counts.
    let rem = b.rem(Type::U32, lane, 5i64);
    let trips = b.add(Type::U32, rem, 4i64);
    let cond = b.setp(CmpOp::Ge, Type::U32, i, trips);
    b.bra_if(cond, done);
    // Strided gather: index = (gid * 7 + i * 13) % N.
    let a7 = b.mul(Type::U32, gid, 7i64);
    let b13 = b.mul(Type::U32, i, 13i64);
    let sum = b.add(Type::U32, a7, b13);
    let idx = b.rem(Type::U32, sum, i64::from(N));
    let addr = b.index64(src, idx, 4);
    let v = b.ld_global(Type::U32, addr);
    add_in_place(&mut b, acc, v.into());
    add_in_place(&mut b, i, 1i64.into());
    b.bra(head);
    b.place(done);
    let oaddr = b.index64(out, gid, 4);
    b.st_global(Type::U32, oaddr, acc);
    b.exit();
    b.build().unwrap()
}

/// Fresh GPU with the workload's buffers allocated and filled; allocation
/// order is deterministic, so two calls produce byte-identical setups.
fn setup(cfg: GpuConfig) -> (Gpu, Vec<u8>, u64) {
    let kernel = workload();
    let mut gpu = Gpu::new(cfg).unwrap();
    let src = gpu.mem().alloc_array(Type::U32, u64::from(N)).unwrap();
    let out = gpu.mem().alloc_array(Type::U32, u64::from(N)).unwrap();
    gpu.mem().write_u32_slice(
        src,
        &(0..N).map(|v| v.wrapping_mul(31) ^ 7).collect::<Vec<_>>(),
    );
    let params = pack_params(&kernel, &[src, out]);
    (gpu, params, out)
}

fn launch_dims() -> (Dim3, Dim3) {
    (Dim3::x(4), Dim3::x(64))
}

/// Uninterrupted reference run: (digest, cycles, final out[] image).
fn reference() -> (u64, u64, Vec<u32>) {
    let kernel = workload();
    let (mut gpu, params, out) = setup(san_cfg());
    let (grid, block) = launch_dims();
    let stats = gpu.launch(&kernel, grid, block, &params).unwrap();
    let image = gpu.mem().read_u32_slice(out, N as usize);
    (stats.digest.unwrap(), stats.cycles, image)
}

/// Interrupt at several relative cycles — including 0 (before any work) and
/// one cycle before completion — serialize, restore into a *fresh* GPU, and
/// resume. Digest, cycle count, and memory must match the reference run.
#[test]
fn resume_digest_identical_at_every_offset() {
    let (ref_digest, ref_cycles, ref_image) = reference();
    assert!(
        ref_cycles > 4,
        "workload too short to interrupt: {ref_cycles}"
    );
    let kernel = workload();
    let (grid, block) = launch_dims();
    for off in [0, 1, ref_cycles / 3, ref_cycles / 2, ref_cycles - 1] {
        let (mut gpu, params, _) = setup(san_cfg());
        gpu.launch_begin(&kernel, grid, block, &params).unwrap();
        while gpu.launch_cycle() != Some(off) {
            assert!(
                gpu.launch_step(&kernel).unwrap().is_none(),
                "completed before reaching offset {off}"
            );
        }
        let snap = Snapshot::from_bytes(&gpu.snapshot().to_bytes()).unwrap();

        let (mut fresh, _, out) = setup(san_cfg());
        fresh.restore(&snap).unwrap();
        assert!(fresh.launch_active());
        assert_eq!(fresh.launch_cycle(), Some(off));
        assert_eq!(fresh.launch_kernel_name(), Some("ckpt_gather"));
        let stats = fresh.launch_resume(&kernel).unwrap();
        assert_eq!(stats.digest.unwrap(), ref_digest, "digest at offset {off}");
        assert_eq!(stats.cycles, ref_cycles, "cycles at offset {off}");
        assert_eq!(
            fresh.mem().read_u32_slice(out, N as usize),
            ref_image,
            "memory at offset {off}"
        );
    }
}

/// The in-process resume self-test hook (serialize + restore at cycle K,
/// then continue) must be digest-invisible.
#[test]
fn resume_selftest_hook_is_digest_invisible() {
    let (ref_digest, ref_cycles, _) = reference();
    let kernel = workload();
    let (grid, block) = launch_dims();
    for off in [0, ref_cycles / 2, ref_cycles - 1] {
        let (mut gpu, params, _) = setup(san_cfg());
        gpu.set_resume_selftest(Some(off));
        let stats = gpu.launch(&kernel, grid, block, &params).unwrap();
        assert_eq!(stats.digest.unwrap(), ref_digest, "selftest at cycle {off}");
        assert_eq!(stats.cycles, ref_cycles);
    }
}

/// An idle snapshot (memory + warm caches, no launch) restores into a fresh
/// GPU that then reproduces the reference run exactly.
#[test]
fn idle_snapshot_roundtrips_into_fresh_gpu() {
    let (ref_digest, ref_cycles, ref_image) = reference();
    let kernel = workload();
    let (gpu, params, out) = setup(san_cfg());
    let snap = Snapshot::from_bytes(&gpu.snapshot().to_bytes()).unwrap();

    let mut fresh = Gpu::new(san_cfg()).unwrap();
    fresh.restore(&snap).unwrap();
    assert!(!fresh.launch_active());
    let (grid, block) = launch_dims();
    let stats = fresh.launch(&kernel, grid, block, &params).unwrap();
    assert_eq!(stats.digest.unwrap(), ref_digest);
    assert_eq!(stats.cycles, ref_cycles);
    assert_eq!(fresh.mem().read_u32_slice(out, N as usize), ref_image);
}

/// Mid-launch snapshot of a real run: every strided truncation of the byte
/// image is rejected, and every strided single-byte corruption is caught by
/// the container checksum.
#[test]
fn real_snapshot_truncation_and_corruption_rejected() {
    let kernel = workload();
    let (mut gpu, params, _) = setup(san_cfg());
    let (grid, block) = launch_dims();
    gpu.launch_begin(&kernel, grid, block, &params).unwrap();
    for _ in 0..20 {
        gpu.launch_step(&kernel).unwrap();
    }
    let bytes = gpu.snapshot().to_bytes();
    for n in (0..bytes.len()).step_by(97).chain([bytes.len() - 1]) {
        assert!(
            Snapshot::from_bytes(&bytes[..n]).is_err(),
            "truncation to {n} of {} accepted",
            bytes.len()
        );
    }
    for i in (0..bytes.len()).step_by(89).chain([8, bytes.len() - 1]) {
        let mut bad = bytes.clone();
        bad[i] ^= 0x20;
        assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "flip at byte {i} of {} accepted",
            bytes.len()
        );
    }
}

/// A truncated or trailing-garbage *payload* (container intact) is rejected
/// by restore, and the rejected GPU is left fully usable.
#[test]
fn malformed_payload_rejected_without_corrupting_gpu() {
    let kernel = workload();
    let (mut gpu, params, _) = setup(san_cfg());
    let (grid, block) = launch_dims();
    gpu.launch_begin(&kernel, grid, block, &params).unwrap();
    for _ in 0..20 {
        gpu.launch_step(&kernel).unwrap();
    }
    let snap = gpu.snapshot();

    let (ref_digest, _, _) = reference();
    let (mut victim, vparams, _) = setup(san_cfg());
    for cut in [0, 1, snap.payload.len() / 2, snap.payload.len() - 1] {
        let mut bad = snap.clone();
        bad.payload.truncate(cut);
        let err = victim
            .restore(&bad)
            .expect_err("truncated payload accepted");
        assert!(matches!(err, SimError::Checkpoint(_)), "{err}");
    }
    let mut bad = snap.clone();
    bad.payload.push(0);
    let err = victim
        .restore(&bad)
        .expect_err("trailing payload byte accepted");
    assert!(
        matches!(
            &err,
            SimError::Checkpoint(CheckpointError::Malformed(_) | CheckpointError::Truncated)
        ),
        "{err}"
    );
    // The victim never picked up any partial state: it still runs the
    // reference workload to the reference digest.
    let stats = victim.launch(&kernel, grid, block, &vparams).unwrap();
    assert_eq!(stats.digest.unwrap(), ref_digest);
}

/// Version and configuration mismatches are rejected by name.
#[test]
fn version_and_config_mismatch_rejected() {
    let (gpu, _, _) = setup(san_cfg());
    let snap = gpu.snapshot();

    let mut wrong_version = snap.clone();
    wrong_version.version = SNAPSHOT_VERSION + 1;
    let mut target = Gpu::new(san_cfg()).unwrap();
    match target.restore(&wrong_version) {
        Err(SimError::Checkpoint(CheckpointError::VersionMismatch { found, expected })) => {
            assert_eq!(found, SNAPSHOT_VERSION + 1);
            assert_eq!(expected, SNAPSHOT_VERSION);
        }
        other => panic!("expected VersionMismatch, got {other:?}"),
    }

    let mut other_cfg = san_cfg();
    other_cfg.hang_cycles += 1;
    let mut target = Gpu::new(other_cfg).unwrap();
    match target.restore(&snap) {
        Err(SimError::Checkpoint(CheckpointError::ConfigMismatch { .. })) => {}
        other => panic!("expected ConfigMismatch, got {other:?}"),
    }
}

/// Resuming a restored launch with the wrong kernel is rejected without
/// destroying the launch; the right kernel still resumes to completion.
#[test]
fn resume_with_wrong_kernel_rejected() {
    let kernel = workload();
    let (mut gpu, params, _) = setup(san_cfg());
    let (grid, block) = launch_dims();
    gpu.launch_begin(&kernel, grid, block, &params).unwrap();
    for _ in 0..10 {
        gpu.launch_step(&kernel).unwrap();
    }
    let snap = gpu.snapshot();

    let mut imposter = KernelBuilder::new("imposter");
    imposter.exit();
    let imposter = imposter.build().unwrap();

    let (mut fresh, _, _) = setup(san_cfg());
    fresh.restore(&snap).unwrap();
    match fresh.launch_resume(&imposter) {
        Err(SimError::Checkpoint(CheckpointError::KernelMismatch { .. })) => {}
        other => panic!("expected KernelMismatch, got {other:?}"),
    }
    // The rejection is non-destructive: the true kernel still finishes.
    assert!(fresh.launch_active());
    let (ref_digest, _, _) = reference();
    let stats = fresh.launch_resume(&kernel).unwrap();
    assert_eq!(stats.digest.unwrap(), ref_digest);
}

/// Stepping or resuming with no launch in flight is a structured error,
/// not a panic.
#[test]
fn step_without_launch_is_an_error() {
    let kernel = workload();
    let mut gpu = Gpu::new(san_cfg()).unwrap();
    assert!(matches!(
        gpu.launch_step(&kernel),
        Err(SimError::Checkpoint(CheckpointError::Malformed(_)))
    ));
    assert!(matches!(
        gpu.launch_resume(&kernel),
        Err(SimError::Checkpoint(CheckpointError::Malformed(_)))
    ));
}

/// Replay ∘ checkpoint composition, from the checkpoint side: a snapshot
/// taken mid-flight through a *replay-driven* launch of the divergent
/// gather workload must serialize the per-warp replay cursors through
/// `to_bytes`/`from_bytes`, restore into a fresh GPU, and resume — with
/// the original trace — to the digest and cycle count of the uninterrupted
/// run. Divergent trip counts make the cursors genuinely non-uniform, which
/// `replay.rs`'s uniform gather does not; the replay-side rejection matrix
/// (wrong trace, mode confusion) lives there.
#[test]
fn replay_launch_checkpoints_like_an_execution_launch() {
    let (ref_digest, ref_cycles, _) = reference();
    let kernel = workload();
    let (grid, block) = launch_dims();

    // Capture the reference launch through a memory sink.
    let (mut gpu, params, _) = setup(san_cfg());
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    gpu.set_trace_sink(Some(Box::new(sink.clone())));
    let stats = gpu.launch(&kernel, grid, block, &params).unwrap();
    gpu.set_trace_sink(None);
    assert_eq!(stats.digest.unwrap(), ref_digest, "capture is invisible");
    let rep = Arc::try_unwrap(sink)
        .expect("capture sink detached")
        .into_inner()
        .unwrap()
        .into_replays()
        .remove(0);

    for off in [0, ref_cycles / 2, ref_cycles - 1] {
        let (mut gpu, _, _) = setup(san_cfg());
        gpu.launch_replay_begin(&kernel, &rep).unwrap();
        while gpu.launch_cycle() != Some(off) {
            assert!(
                gpu.launch_replay_step(&kernel, &rep).unwrap().is_none(),
                "replay completed before offset {off}"
            );
        }
        let snap = Snapshot::from_bytes(&gpu.snapshot().to_bytes()).unwrap();

        let (mut fresh, _, _) = setup(san_cfg());
        fresh.restore(&snap).unwrap();
        assert!(fresh.launch_active());
        let stats = fresh.launch_replay_resume(&kernel, &rep).unwrap();
        assert_eq!(stats.digest.unwrap(), ref_digest, "digest at offset {off}");
        assert_eq!(stats.cycles, ref_cycles, "cycles at offset {off}");
    }
}

/// The hang watchdog leaves a parseable snapshot of the wedged launch
/// behind; restoring it reproduces the hang (the state really is the
/// mid-flight deadlock, not a post-teardown husk).
#[test]
fn hang_watchdog_dumps_restorable_snapshot() {
    let mut b = KernelBuilder::new("bar_mismatch");
    let tid = b.sreg(Special::TidX);
    let hi = b.setp(CmpOp::Ge, Type::U32, tid, 32i64);
    let other = b.new_label();
    let done = b.new_label();
    b.bra_if(hi, other);
    b.bar_id(0); // warp 0 waits at barrier 0 ...
    b.bra(done);
    b.place(other);
    b.bar_id(1); // ... warp 1 at barrier 1: nobody ever releases either.
    b.place(done);
    b.exit();
    let kernel = b.build().unwrap();

    let mut cfg = GpuConfig::small();
    cfg.hang_cycles = 2_000;
    cfg.max_cycles = 10_000_000;
    let mut gpu = Gpu::new(cfg.clone()).unwrap();
    let params = pack_params(&kernel, &[]);
    let err = gpu
        .launch(&kernel, Dim3::x(1), Dim3::x(64), &params)
        .expect_err("mismatched barriers must deadlock");
    assert!(matches!(err, SimError::Hang(_)), "{err}");
    let snap = gpu
        .take_hang_snapshot()
        .expect("watchdog dumped a snapshot");
    assert!(gpu.take_hang_snapshot().is_none(), "dump is taken once");

    let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
    let mut fresh = Gpu::new(cfg).unwrap();
    fresh.restore(&restored).unwrap();
    assert!(fresh.launch_active(), "hang dump is a mid-launch snapshot");
    match fresh.launch_resume(&kernel) {
        Err(SimError::Hang(report)) => {
            let stuck: Vec<_> = report
                .sms
                .iter()
                .flat_map(|sm| &sm.warps)
                .filter(|w| w.at_barrier.is_some())
                .collect();
            assert_eq!(stuck.len(), 2, "both warps still parked at barriers");
        }
        other => panic!("restored deadlock must hang again, got {other:?}"),
    }
}
