//! SM-level integration tests: barriers across warps, divergence inside
//! loops, atomics across CTAs, LD/ST backpressure, prefetching, and
//! scheduler equivalence.

use gcl_ptx::{CmpOp, KernelBuilder, Special, Type};
use gcl_sim::{pack_params, Dim3, Gpu, GpuConfig, PrefetchFilter};

fn small_gpu() -> Gpu {
    Gpu::new(GpuConfig::small()).expect("small config is valid")
}

/// Multi-warp CTA barrier: warp 0 writes shared memory, all other warps
/// read it after the barrier.
#[test]
fn barrier_orders_shared_memory_across_warps() {
    let nt = 128u32; // 4 warps
    let mut b = KernelBuilder::new("bar_test");
    b.shared(4);
    let pout = b.param("out", Type::U64);
    let out = b.ld_param(Type::U64, pout);
    let tid = b.sreg(Special::TidX);
    // Thread 0 stores 777 to shared[0].
    let is0 = b.setp(CmpOp::Eq, Type::U32, tid, 0i64);
    let skip = b.new_label();
    b.bra_unless(is0, skip);
    let zero = b.imm32(0);
    b.st_shared(Type::U32, zero, 777i64);
    b.place(skip);
    b.bar();
    let zero2 = b.imm32(0);
    let v = b.ld_shared(Type::U32, zero2);
    let a = b.index64(out, tid, 4);
    b.st_global(Type::U32, a, v);
    b.exit();
    let k = b.build().unwrap();

    let mut gpu = small_gpu();
    let out = gpu.mem().alloc_array(Type::U32, u64::from(nt)).unwrap();
    let params = pack_params(&k, &[out]);
    gpu.launch(&k, Dim3::x(1), Dim3::x(nt), &params).unwrap();
    let got = gpu.mem().read_u32_slice(out, nt as usize);
    assert!(got.iter().all(|&v| v == 777), "{got:?}");
}

/// Divergent loop trip counts inside one warp: lane `i` iterates `i` times,
/// accumulating into global memory; reconvergence must not lose lanes.
#[test]
fn divergent_loops_converge_correctly_across_ctas() {
    let mut b = KernelBuilder::new("divloop");
    let pout = b.param("out", Type::U64);
    let out = b.ld_param(Type::U64, pout);
    let gid = b.thread_linear_id();
    let lane = b.sreg(Special::LaneId);
    let acc = b.imm32(0);
    let i = b.imm32(0);
    let head = b.new_label();
    let done = b.new_label();
    b.place(head);
    let cond = b.setp(CmpOp::Ge, Type::U32, i, lane);
    b.bra_if(cond, done);
    crate_add(&mut b, acc, 2);
    crate_add(&mut b, i, 1);
    b.bra(head);
    b.place(done);
    let a = b.index64(out, gid, 4);
    b.st_global(Type::U32, a, acc);
    b.exit();
    let k = b.build().unwrap();

    let mut gpu = small_gpu();
    let n = 4 * 64u32;
    let out = gpu.mem().alloc_array(Type::U32, u64::from(n)).unwrap();
    let params = pack_params(&k, &[out]);
    gpu.launch(&k, Dim3::x(4), Dim3::x(64), &params).unwrap();
    let got = gpu.mem().read_u32_slice(out, n as usize);
    for (t, v) in got.iter().enumerate() {
        assert_eq!(*v, 2 * (t as u32 % 32), "thread {t}");
    }
}

fn crate_add(b: &mut KernelBuilder, dst: gcl_ptx::Reg, v: i64) {
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U32,
        dst,
        a: dst.into(),
        b: v.into(),
    });
}

/// Atomic increments from every thread of every CTA across both SMs land
/// exactly once each.
#[test]
fn atomics_are_exact_across_ctas_and_sms() {
    let mut b = KernelBuilder::new("count");
    let pctr = b.param("ctr", Type::U64);
    let ctr = b.ld_param(Type::U64, pctr);
    let addr = b.mov(Type::U64, ctr);
    let _ = b.atom(gcl_ptx::AtomOp::Add, Type::U32, addr, 1i64);
    b.exit();
    let k = b.build().unwrap();

    let mut gpu = small_gpu();
    let ctr = gpu.mem().alloc_array(Type::U32, 1).unwrap();
    let params = pack_params(&k, &[ctr]);
    let (grid, block) = (8u32, 96u32);
    gpu.launch(&k, Dim3::x(grid), Dim3::x(block), &params)
        .unwrap();
    assert_eq!(gpu.mem().read_u32_slice(ctr, 1)[0], grid * block);
}

/// A long dependent chain of uncoalesced loads exercises LD/ST queue
/// backpressure without deadlock, and finishes with correct data.
#[test]
fn ldst_backpressure_resolves() {
    // p[i] forms one big cycle; each thread chases `steps` hops.
    let steps = 16u32;
    let n = 256u32;
    let mut b = KernelBuilder::new("chase");
    let pp = b.param("p", Type::U64);
    let pout = b.param("out", Type::U64);
    let p = b.ld_param(Type::U64, pp);
    let out = b.ld_param(Type::U64, pout);
    let gid = b.thread_linear_id();
    let cur = b.mov(Type::U32, gid);
    let l = gcl_workless_loop(&mut b, steps);
    let a = b.index64(p, cur, 4);
    let nxt = b.ld_global(Type::U32, a);
    b.push(gcl_ptx::Op::Mov {
        ty: Type::U32,
        dst: cur,
        src: nxt.into(),
    });
    gcl_workless_loop_end(&mut b, l);
    let oa = b.index64(out, gid, 4);
    b.st_global(Type::U32, oa, cur);
    b.exit();
    let k = b.build().unwrap();

    let mut gpu = small_gpu();
    let pbuf = gpu.mem().alloc_array(Type::U32, u64::from(n)).unwrap();
    // Pointer-cycle with a large stride so loads never coalesce.
    let table: Vec<u32> = (0..n).map(|i| (i + 97) % n).collect();
    gpu.mem().write_u32_slice(pbuf, &table);
    let outb = gpu.mem().alloc_array(Type::U32, u64::from(n)).unwrap();
    let params = pack_params(&k, &[pbuf, outb]);
    gpu.launch(&k, Dim3::x(n / 64), Dim3::x(64), &params)
        .unwrap();
    let got = gpu.mem().read_u32_slice(outb, n as usize);
    for t in 0..n {
        let mut want = t;
        for _ in 0..steps {
            want = (want + 97) % n;
        }
        assert_eq!(got[t as usize], want, "thread {t}");
    }
}

fn gcl_workless_loop(b: &mut KernelBuilder, bound: u32) -> gcl_workloads_shim::LoopCtx {
    gcl_workloads_shim::loop_begin(b, 0i64, i64::from(bound))
}

fn gcl_workless_loop_end(b: &mut KernelBuilder, l: gcl_workloads_shim::LoopCtx) {
    gcl_workloads_shim::loop_end(b, l)
}

/// Minimal local copy of the workloads crate's loop helper (gcl-sim cannot
/// depend on gcl-workloads).
mod gcl_workloads_shim {
    use gcl_ptx::{CmpOp, KernelBuilder, Label, Operand, Reg, Type};

    #[derive(Clone, Copy)]
    pub struct LoopCtx {
        pub counter: Reg,
        head: Label,
        exit: Label,
    }

    pub fn loop_begin(
        b: &mut KernelBuilder,
        init: impl Into<Operand>,
        bound: impl Into<Operand>,
    ) -> LoopCtx {
        let counter = b.reg();
        b.push(gcl_ptx::Op::Mov {
            ty: Type::U32,
            dst: counter,
            src: init.into(),
        });
        let head = b.new_label();
        let exit = b.new_label();
        b.place(head);
        let done = b.setp(CmpOp::Ge, Type::U32, counter, bound);
        b.bra_if(done, exit);
        LoopCtx {
            counter,
            head,
            exit,
        }
    }

    pub fn loop_end(b: &mut KernelBuilder, l: LoopCtx) {
        b.push(gcl_ptx::Op::Alu {
            op: gcl_ptx::AluOp::Add,
            ty: Type::U32,
            dst: l.counter,
            a: l.counter.into(),
            b: 1i64.into(),
        });
        b.bra(l.head);
        b.place(l.exit);
    }
}

/// Deterministic-only prefetching speeds up a kernel whose warps walk
/// 128-byte lines sequentially over loop iterations (the pattern next-line
/// prefetch exists for); an N-only filter issues no prefetches for it, and
/// results are identical either way.
#[test]
fn prefetcher_is_class_selective() {
    // Each warp streams its own region: address = base + warp*iters*128 +
    // k*128 + lane*4, so iteration k+1 touches exactly the next line.
    let iters = 32u32;
    let mut b = KernelBuilder::new("warp_stream");
    let pin = b.param("input", Type::U64);
    let pout = b.param("out", Type::U64);
    let piters = b.param("iters", Type::U32);
    let input = b.ld_param(Type::U64, pin);
    let out = b.ld_param(Type::U64, pout);
    let itv = b.ld_param(Type::U32, piters);
    let gid = b.thread_linear_id();
    let warp = b.shr(Type::U32, gid, 5i64);
    let lane = b.and(Type::U32, gid, 31i64);
    let region = b.mul(Type::U32, itv, 128i64);
    let warp_off = b.mul(Type::U32, warp, region);
    let lane_off = b.mul(Type::U32, lane, 4i64);
    let start = b.add(Type::U32, warp_off, lane_off);
    let ptr = b.reg();
    let start64 = b.cvt(Type::U64, Type::U32, start);
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U64,
        dst: ptr,
        a: input.into(),
        b: start64.into(),
    });
    let acc = b.imm32(0);
    let l = gcl_workloads_shim::loop_begin(&mut b, 0i64, itv);
    let v = b.ld_global(Type::U32, ptr);
    crate_add_reg(&mut b, acc, v);
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U64,
        dst: ptr,
        a: ptr.into(),
        b: 128i64.into(),
    });
    gcl_workloads_shim::loop_end(&mut b, l);
    let oa = b.index64(out, gid, 4);
    b.st_global(Type::U32, oa, acc);
    b.exit();
    let k = b.build().unwrap();

    let n_threads = 256u32; // 8 warps
    let words = (n_threads / 32) * iters * 32;
    let run = |filter: PrefetchFilter| {
        let mut cfg = GpuConfig::small();
        cfg.prefetch = filter;
        let mut gpu = Gpu::new(cfg).unwrap();
        let input = gpu.mem().alloc_array(Type::U32, u64::from(words)).unwrap();
        gpu.mem()
            .write_u32_slice(input, &(0..words).map(|v| v % 7).collect::<Vec<_>>());
        let outb = gpu
            .mem()
            .alloc_array(Type::U32, u64::from(n_threads))
            .unwrap();
        let params = pack_params(&k, &[input, outb, u64::from(iters)]);
        let stats = gpu
            .launch(&k, Dim3::x(n_threads / 128), Dim3::x(128), &params)
            .unwrap();
        (stats, gpu.mem().read_u32_slice(outb, n_threads as usize))
    };
    let (off, off_result) = run(PrefetchFilter::Off);
    let (d_only, d_result) = run(PrefetchFilter::DeterministicOnly);
    let (n_only, n_result) = run(PrefetchFilter::NonDeterministicOnly);
    assert_eq!(off_result, d_result, "prefetching changed results");
    assert_eq!(off_result, n_result);
    assert_eq!(off.sm.prefetches_issued, 0);
    assert!(d_only.sm.prefetches_issued > 0);
    assert_eq!(n_only.sm.prefetches_issued, 0, "kernel has no N loads");
    assert!(
        d_only.cycles < off.cycles,
        "prefetch did not help: {} vs {}",
        d_only.cycles,
        off.cycles
    );
}

fn crate_add_reg(b: &mut KernelBuilder, dst: gcl_ptx::Reg, v: gcl_ptx::Reg) {
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U32,
        dst,
        a: dst.into(),
        b: v.into(),
    });
}

/// LRR and GTO produce identical functional results on a reduction-style
/// kernel, and both complete.
#[test]
fn schedulers_agree_functionally() {
    let mut b = KernelBuilder::new("sum_squares");
    let pout = b.param("out", Type::U64);
    let out = b.ld_param(Type::U64, pout);
    let gid = b.thread_linear_id();
    let sq = b.mul(Type::U32, gid, gid);
    let a = b.index64(out, gid, 4);
    b.st_global(Type::U32, a, sq);
    b.exit();
    let k = b.build().unwrap();

    let run = |policy| {
        let mut cfg = GpuConfig::small();
        cfg.warp_sched = policy;
        let mut gpu = Gpu::new(cfg).unwrap();
        let out = gpu.mem().alloc_array(Type::U32, 512).unwrap();
        let params = pack_params(&k, &[out]);
        gpu.launch(&k, Dim3::x(4), Dim3::x(128), &params).unwrap();
        gpu.mem().read_u32_slice(out, 512)
    };
    let lrr = run(gcl_sim::WarpSchedPolicy::Lrr);
    let gto = run(gcl_sim::WarpSchedPolicy::Gto);
    assert_eq!(lrr, gto);
    assert_eq!(lrr[3], 9);
}

/// Guarded (predicated) stores only write where the guard holds, across a
/// 2-D launch geometry.
#[test]
fn predication_masks_stores_in_2d_grids() {
    let mut b = KernelBuilder::new("checker");
    let pout = b.param("out", Type::U64);
    let pw = b.param("w", Type::U32);
    let out = b.ld_param(Type::U64, pout);
    let w = b.ld_param(Type::U32, pw);
    let ctaidy = b.sreg(Special::CtaIdY);
    let ntidy = b.sreg(Special::NTidY);
    let tidy = b.sreg(Special::TidY);
    let y = b.mad(Type::U32, ctaidy, ntidy, tidy);
    let x = b.thread_linear_id();
    let idx = b.mad(Type::U32, y, w, x);
    let sum = b.add(Type::U32, x, y);
    let parity = b.and(Type::U32, sum, 1i64);
    let is_even = b.setp(CmpOp::Eq, Type::U32, parity, 0i64);
    let a = b.index64(out, idx, 4);
    b.guard_next(is_even, false);
    b.st_global(Type::U32, a, 1i64);
    b.exit();
    let k = b.build().unwrap();

    let mut gpu = small_gpu();
    let (w, h) = (32u32, 16u32);
    let out = gpu.mem().alloc_array(Type::U32, u64::from(w * h)).unwrap();
    let params = pack_params(&k, &[out, u64::from(w)]);
    gpu.launch(&k, Dim3::xy(2, 4), Dim3::xy(16, 4), &params)
        .unwrap();
    let got = gpu.mem().read_u32_slice(out, (w * h) as usize);
    for y in 0..h {
        for x in 0..w {
            let want = u32::from((x + y) % 2 == 0);
            assert_eq!(got[(y * w + x) as usize], want, "({x},{y})");
        }
    }
}

/// Divergence statistics: a checkerboard branch splits every warp; a
/// uniform kernel splits none. SIMD utilization reflects active lanes.
#[test]
fn divergence_statistics_are_tracked() {
    // Divergent: lanes branch on parity.
    let mut b = KernelBuilder::new("diverge");
    let lane = b.sreg(Special::LaneId);
    let parity = b.and(Type::U32, lane, 1i64);
    let p = b.setp(CmpOp::Eq, Type::U32, parity, 0i64);
    let l = b.new_label();
    b.bra_if(p, l);
    b.imm32(1);
    b.place(l);
    b.exit();
    let k = b.build().unwrap();
    let mut gpu = small_gpu();
    let stats = gpu.launch(&k, Dim3::x(2), Dim3::x(64), &[]).unwrap();
    assert!(stats.sm.branches >= 4);
    assert_eq!(stats.sm.branches, stats.sm.divergent_branches);
    assert_eq!(stats.branch_divergence(), 1.0);

    // Uniform: all lanes agree.
    let mut b = KernelBuilder::new("uniform");
    let t = b.setp(CmpOp::Eq, Type::U32, 0i64, 0i64);
    let l = b.new_label();
    b.bra_if(t, l);
    b.imm32(1);
    b.place(l);
    b.exit();
    let k = b.build().unwrap();
    let mut gpu = small_gpu();
    let stats = gpu.launch(&k, Dim3::x(1), Dim3::x(64), &[]).unwrap();
    assert!(stats.sm.branches > 0);
    assert_eq!(stats.sm.divergent_branches, 0);
    assert_eq!(stats.branch_divergence(), 0.0);
    // Full warps, no predication: utilization 1.0.
    assert!((stats.simd_utilization(32) - 1.0).abs() < 1e-12);
}

/// Traced launches record every issued instruction (given capacity) in
/// nondecreasing cycle order with valid pcs, and dropped counts kick in
/// when capacity is exceeded.
#[test]
fn traced_launch_records_issues() {
    let mut b = KernelBuilder::new("tiny");
    let v = b.imm32(3);
    let _ = b.add(Type::U32, v, 4i64);
    b.exit();
    let k = b.build().unwrap();
    let mut gpu = small_gpu();
    let (stats, trace) = gpu
        .launch_traced(&k, Dim3::x(2), Dim3::x(64), &[], 10_000)
        .unwrap();
    assert_eq!(trace.dropped(), 0);
    assert_eq!(trace.events().len() as u64, stats.sm.warp_insts);
    for w in trace.events().windows(2) {
        if w[0].sm == w[1].sm {
            assert!(w[0].cycle <= w[1].cycle);
        }
    }
    assert!(trace
        .events()
        .iter()
        .all(|e| (e.pc as usize) < k.insts().len()));
    assert!(trace.events().iter().all(|e| e.active != 0));

    // Capacity 2: the rest are counted as dropped.
    let mut gpu = small_gpu();
    let (stats2, trace2) = gpu
        .launch_traced(&k, Dim3::x(2), Dim3::x(64), &[], 2)
        .unwrap();
    assert_eq!(trace2.events().len(), 2);
    assert_eq!(trace2.dropped(), stats2.sm.warp_insts - 2);
}
