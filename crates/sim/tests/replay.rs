//! Capture → replay integration at the simulator level: a launch captured
//! through a [`TraceSink`] and replayed into the timing model must
//! reproduce the execution-driven event digest, cycle count, statistics,
//! and inter-CTA locality observations exactly; and every structured
//! rejection path (wrong kernel, wrong stream count, wrong trace after
//! restore, replay/execution mode confusion) must fail with
//! `SimError::Replay`, never silently.

use std::sync::{Arc, Mutex};

use gcl_ptx::{CmpOp, Kernel, KernelBuilder, Special, Type};
use gcl_sim::{
    pack_params, Dim3, Gpu, GpuConfig, LaunchReplay, LaunchStats, MemorySink, ReplayError,
    SimError, Snapshot,
};

const N: u32 = 256;

fn san_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::small();
    cfg.sanitize = true;
    cfg
}

/// Divergent strided gather + store: exercises ALU, branches (taken and
/// divergent), global loads with varying coalescing, and exits.
fn gather_kernel() -> Kernel {
    let mut b = KernelBuilder::new("replay_gather");
    let pin = b.param("in", Type::U64);
    let pout = b.param("out", Type::U64);
    let src = b.ld_param(Type::U64, pin);
    let out = b.ld_param(Type::U64, pout);
    let gid = b.thread_linear_id();
    let lane = b.sreg(Special::LaneId);
    let acc = b.imm32(0);
    let i = b.imm32(0);
    let head = b.new_label();
    let done = b.new_label();
    b.place(head);
    let rem = b.rem(Type::U32, lane, 5i64);
    let trips = b.add(Type::U32, rem, 4i64);
    let cond = b.setp(CmpOp::Ge, Type::U32, i, trips);
    b.bra_if(cond, done);
    let a7 = b.mul(Type::U32, gid, 7i64);
    let b13 = b.mul(Type::U32, i, 13i64);
    let sum = b.add(Type::U32, a7, b13);
    let idx = b.rem(Type::U32, sum, i64::from(N));
    let addr = b.index64(src, idx, 4);
    let v = b.ld_global(Type::U32, addr);
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U32,
        dst: acc,
        a: acc.into(),
        b: v.into(),
    });
    b.push(gcl_ptx::Op::Alu {
        op: gcl_ptx::AluOp::Add,
        ty: Type::U32,
        dst: i,
        a: i.into(),
        b: 1i64.into(),
    });
    b.bra(head);
    b.place(done);
    let oaddr = b.index64(out, gid, 4);
    b.st_global(Type::U32, oaddr, acc);
    b.exit();
    b.build().unwrap()
}

/// Barrier + shared-memory kernel: exercises barrier records, shared
/// accesses, and the sanitizer's epoch tracking under replay.
fn barrier_kernel() -> Kernel {
    let mut b = KernelBuilder::new("replay_barrier");
    let pout = b.param("out", Type::U64);
    b.shared(64 * 4);
    let out = b.ld_param(Type::U64, pout);
    let tid = b.sreg(Special::TidX);
    let gid = b.thread_linear_id();
    let saddr = b.mul(Type::U32, tid, 4i64);
    b.st_shared(Type::U32, saddr, gid);
    b.bar();
    // Read a rotated neighbor's value after the barrier.
    let plus1 = b.add(Type::U32, tid, 1i64);
    let rot = b.rem(Type::U32, plus1, 64i64);
    let raddr = b.mul(Type::U32, rot, 4i64);
    let v = b.ld_shared(Type::U32, raddr);
    let oaddr = b.index64(out, gid, 4);
    b.st_global(Type::U32, oaddr, v);
    b.exit();
    b.build().unwrap()
}

fn setup_gather(gpu: &mut Gpu) -> Vec<u8> {
    let kernel = gather_kernel();
    let src = gpu.mem().alloc_array(Type::U32, u64::from(N)).unwrap();
    let out = gpu.mem().alloc_array(Type::U32, u64::from(N)).unwrap();
    gpu.mem().write_u32_slice(
        src,
        &(0..N).map(|v| v.wrapping_mul(31) ^ 7).collect::<Vec<_>>(),
    );
    pack_params(&kernel, &[src, out])
}

/// Capture `launches` launches of the gather kernel on one GPU and return
/// (per-launch stats, per-launch replays).
fn capture_gather(launches: usize) -> (Vec<LaunchStats>, Vec<LaunchReplay>) {
    let kernel = gather_kernel();
    let mut gpu = Gpu::new(san_cfg()).unwrap();
    let params = setup_gather(&mut gpu);
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    gpu.set_trace_sink(Some(Box::new(sink.clone())));
    let mut stats = Vec::new();
    for _ in 0..launches {
        stats.push(
            gpu.launch(&kernel, Dim3::x(4), Dim3::x(64), &params)
                .unwrap(),
        );
    }
    gpu.set_trace_sink(None);
    let replays = Arc::try_unwrap(sink)
        .expect("sink detached")
        .into_inner()
        .unwrap()
        .into_replays();
    (stats, replays)
}

/// The core contract: digest, cycles, and the full statistics structure of
/// every captured launch are reproduced by replay — including the warm-L1
/// second launch, which only matches if replay runs on the same GPU in the
/// same order.
#[test]
fn replay_reproduces_digest_cycles_and_stats() {
    let (exec_stats, replays) = capture_gather(2);
    assert_eq!(replays.len(), 2);
    assert!(replays[0].n_records() > 0);

    let kernel = gather_kernel();
    let mut gpu = Gpu::new(san_cfg()).unwrap();
    // Same allocation sequence so blocktrack/addr layout observations line
    // up; replay itself never reads the buffers.
    let _params = setup_gather(&mut gpu);
    for (i, rep) in replays.iter().enumerate() {
        let stats = gpu.launch_replay(&kernel, rep).unwrap();
        assert_eq!(
            stats.digest, exec_stats[i].digest,
            "digest of launch {i} (warm-cache state must carry over)"
        );
        assert_eq!(stats.cycles, exec_stats[i].cycles, "cycles of launch {i}");
        assert_eq!(stats, exec_stats[i], "full stats of launch {i}");
    }
}

/// Inter-CTA locality observation (`pc_sharing`) is driven by the same
/// dispatch path under replay and must match.
#[test]
fn replay_reproduces_pc_sharing() {
    let kernel = gather_kernel();
    let mut gpu = Gpu::new(san_cfg()).unwrap();
    let params = setup_gather(&mut gpu);
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    gpu.set_trace_sink(Some(Box::new(sink.clone())));
    gpu.launch(&kernel, Dim3::x(4), Dim3::x(64), &params)
        .unwrap();
    gpu.set_trace_sink(None);
    let exec_sharing = gpu.pc_sharing();
    let rep = Arc::try_unwrap(sink)
        .expect("sink detached")
        .into_inner()
        .unwrap()
        .into_replays()
        .remove(0);
    assert!(!exec_sharing.is_empty(), "gather must share blocks");

    let mut gpu = Gpu::new(san_cfg()).unwrap();
    let _params = setup_gather(&mut gpu);
    gpu.launch_replay(&kernel, &rep).unwrap();
    assert_eq!(gpu.pc_sharing(), exec_sharing);
}

/// Barriers and shared memory survive the round trip (same digest and
/// cycle count), with the sanitizer on throughout.
#[test]
fn replay_handles_barriers_and_shared_memory() {
    let kernel = barrier_kernel();
    let mut gpu = Gpu::new(san_cfg()).unwrap();
    let out = gpu.mem().alloc_array(Type::U32, 256).unwrap();
    let params = pack_params(&kernel, &[out]);
    let sink = Arc::new(Mutex::new(MemorySink::new()));
    gpu.set_trace_sink(Some(Box::new(sink.clone())));
    let exec = gpu
        .launch(&kernel, Dim3::x(4), Dim3::x(64), &params)
        .unwrap();
    gpu.set_trace_sink(None);
    let rep = Arc::try_unwrap(sink)
        .expect("sink detached")
        .into_inner()
        .unwrap()
        .into_replays()
        .remove(0);

    let mut gpu = Gpu::new(san_cfg()).unwrap();
    let _out = gpu.mem().alloc_array(Type::U32, 256).unwrap();
    let stats = gpu.launch_replay(&kernel, &rep).unwrap();
    assert_eq!(stats.digest, exec.digest);
    assert_eq!(stats.cycles, exec.cycles);
}

/// Replaying against the wrong kernel, or with a stream count that
/// contradicts the geometry, is rejected by name before any state changes.
#[test]
fn replay_validation_rejects_mismatches() {
    let (_, mut replays) = capture_gather(1);
    let rep = replays.remove(0);

    let mut imposter = KernelBuilder::new("imposter");
    imposter.exit();
    let imposter = imposter.build().unwrap();
    let mut gpu = Gpu::new(san_cfg()).unwrap();
    match gpu.launch_replay(&imposter, &rep) {
        Err(SimError::Replay(ReplayError::KernelMismatch { .. })) => {}
        other => panic!("expected KernelMismatch, got {other:?}"),
    }
    assert!(
        !gpu.launch_active(),
        "rejected replay left no launch behind"
    );

    let kernel = gather_kernel();
    let mut short = rep.clone();
    short.streams.pop();
    match gpu.launch_replay(&kernel, &short) {
        Err(SimError::Replay(ReplayError::StreamCount { found, expected })) => {
            assert_eq!(found + 1, expected);
        }
        other => panic!("expected StreamCount, got {other:?}"),
    }
    assert!(!gpu.launch_active());

    // The GPU is still fully usable for the real replay.
    gpu.launch_replay(&kernel, &rep).unwrap();
}

/// Driving a replay launch without its trace (or an execution launch with
/// one) is a structured error.
#[test]
fn replay_mode_confusion_rejected() {
    let (_, mut replays) = capture_gather(1);
    let rep = replays.remove(0);
    let kernel = gather_kernel();

    let mut gpu = Gpu::new(san_cfg()).unwrap();
    gpu.launch_replay_begin(&kernel, &rep).unwrap();
    match gpu.launch_step(&kernel) {
        Err(SimError::Replay(ReplayError::MissingReplay)) => {}
        other => panic!("expected MissingReplay, got {other:?}"),
    }
    // The error is non-destructive: the replay still completes.
    gpu.launch_replay_resume(&kernel, &rep).unwrap();

    let params = setup_gather(&mut gpu);
    gpu.launch_begin(&kernel, Dim3::x(4), Dim3::x(64), &params)
        .unwrap();
    match gpu.launch_replay_step(&kernel, &rep) {
        Err(SimError::Replay(ReplayError::NotReplayLaunch)) => {}
        other => panic!("expected NotReplayLaunch, got {other:?}"),
    }
    gpu.launch_resume(&kernel).unwrap();
}

/// Replay ∘ checkpoint: snapshot a replay mid-flight, restore into a fresh
/// GPU, resume with the same trace — digest and cycles match the reference;
/// resuming with a *different* trace is rejected as TraceMismatch.
#[test]
fn replay_composes_with_checkpoint() {
    let (exec_stats, mut replays) = capture_gather(1);
    let rep = replays.remove(0);
    let kernel = gather_kernel();

    let mut gpu = Gpu::new(san_cfg()).unwrap();
    let reference = gpu.launch_replay(&kernel, &rep).unwrap();
    assert_eq!(reference.digest, exec_stats[0].digest);

    for off in [0, reference.cycles / 2, reference.cycles - 1] {
        let mut gpu = Gpu::new(san_cfg()).unwrap();
        gpu.launch_replay_begin(&kernel, &rep).unwrap();
        while gpu.launch_cycle() != Some(off) {
            assert!(
                gpu.launch_replay_step(&kernel, &rep).unwrap().is_none(),
                "replay completed before offset {off}"
            );
        }
        let snap = Snapshot::from_bytes(&gpu.snapshot().to_bytes()).unwrap();

        let mut fresh = Gpu::new(san_cfg()).unwrap();
        fresh.restore(&snap).unwrap();
        assert!(fresh.launch_active());

        // Wrong trace at resume: one flipped record must be caught.
        let mut wrong = rep.clone();
        let mut s0: Vec<_> = wrong.streams[0].to_vec();
        s0[0].mask ^= 1;
        wrong.streams[0] = s0.into();
        match fresh.launch_replay_resume(&kernel, &wrong) {
            Err(SimError::Replay(ReplayError::TraceMismatch { .. })) => {}
            other => panic!("expected TraceMismatch at offset {off}, got {other:?}"),
        }

        // Right trace: cycle-exact completion.
        assert!(fresh.launch_active(), "rejection left the launch intact");
        let stats = fresh.launch_replay_resume(&kernel, &rep).unwrap();
        assert_eq!(stats.digest, reference.digest, "digest at offset {off}");
        assert_eq!(stats.cycles, reference.cycles, "cycles at offset {off}");
    }
}

/// The in-process resume self-test hook (snapshot + restore at cycle K
/// inside `step_inner`) also holds under replay.
#[test]
fn replay_survives_resume_selftest() {
    let (_, mut replays) = capture_gather(1);
    let rep = replays.remove(0);
    let kernel = gather_kernel();

    let mut gpu = Gpu::new(san_cfg()).unwrap();
    let reference = gpu.launch_replay(&kernel, &rep).unwrap();

    for off in [0, reference.cycles / 2, reference.cycles - 1] {
        let mut gpu = Gpu::new(san_cfg()).unwrap();
        gpu.set_resume_selftest(Some(off));
        let stats = gpu.launch_replay(&kernel, &rep).unwrap();
        assert_eq!(stats.digest, reference.digest, "selftest at cycle {off}");
        assert_eq!(stats.cycles, reference.cycles);
    }
}

/// An armed debug trace surfaces its drop count in the launch stats
/// (satellite of `gcl run --trace`).
#[test]
fn armed_debug_trace_reports_drops_in_stats() {
    let kernel = gather_kernel();
    let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
    let params = setup_gather(&mut gpu);
    gpu.arm_trace(8);
    let stats = gpu
        .launch(&kernel, Dim3::x(4), Dim3::x(64), &params)
        .unwrap();
    let trace = gpu.take_debug_trace().expect("armed trace preserved");
    assert!(stats.trace_dropped > 0, "8-slot trace must overflow");
    assert_eq!(stats.trace_dropped, trace.dropped());
    assert_eq!(trace.events().len(), 8);

    // Unarmed launches report zero.
    let mut gpu = Gpu::new(GpuConfig::small()).unwrap();
    let params = setup_gather(&mut gpu);
    let stats = gpu
        .launch(&kernel, Dim3::x(4), Dim3::x(64), &params)
        .unwrap();
    assert_eq!(stats.trace_dropped, 0);
}
