//! Property-style tests over the simulator's pure components: typed value
//! evaluation and the coalescer. Cases are driven by the in-tree seeded
//! generator so failures are bit-reproducible.

use gcl_ptx::{AluOp, CmpOp, Type};
use gcl_rng::{cases, Rng};
use gcl_sim::{canon, coalesce, eval_alu, eval_cmp, eval_cvt};

const INT_TYPES: [Type; 4] = [Type::U32, Type::U64, Type::S32, Type::S64];

fn int_type(r: &mut Rng) -> Type {
    *r.pick(&INT_TYPES)
}

/// `canon` is idempotent and results of integer ALU ops are canonical.
#[test]
fn alu_results_are_canonical() {
    cases(0x51A1, 512, |r| {
        let (ty, a, b) = (int_type(r), r.next_u64(), r.next_u64());
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Min,
            AluOp::Max,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Div,
            AluOp::Rem,
        ] {
            let res = eval_alu(op, ty, a, b);
            assert_eq!(
                canon(ty, res),
                res,
                "{op:?} not canonical on {ty:?}({a:#x},{b:#x})"
            );
        }
    });
}

/// Commutativity of add/mul/and/or/xor/min/max on canonical inputs.
#[test]
fn commutative_ops() {
    cases(0x51A2, 512, |r| {
        let (ty, a, b) = (int_type(r), r.next_u64(), r.next_u64());
        for op in [
            AluOp::Add,
            AluOp::Mul,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Min,
            AluOp::Max,
            AluOp::MulHi,
            AluOp::MulWide,
        ] {
            assert_eq!(
                eval_alu(op, ty, a, b),
                eval_alu(op, ty, b, a),
                "{op:?} on {ty:?}({a:#x},{b:#x})"
            );
        }
    });
}

/// `a - b + b == a` (mod 2^width).
#[test]
fn sub_add_inverse() {
    cases(0x51A3, 512, |r| {
        let (ty, a, b) = (int_type(r), r.next_u64(), r.next_u64());
        let d = eval_alu(AluOp::Sub, ty, a, b);
        assert_eq!(eval_alu(AluOp::Add, ty, d, b), canon(ty, a));
    });
}

/// Comparison trichotomy: exactly one of <, ==, > holds.
#[test]
fn cmp_trichotomy() {
    cases(0x51A4, 512, |r| {
        let (ty, a, b) = (int_type(r), r.next_u64(), r.next_u64());
        let lt = eval_cmp(CmpOp::Lt, ty, a, b);
        let eq = eval_cmp(CmpOp::Eq, ty, a, b);
        let gt = eval_cmp(CmpOp::Gt, ty, a, b);
        assert_eq!(lt + eq + gt, 1);
        assert_eq!(eval_cmp(CmpOp::Le, ty, a, b), lt | eq);
        assert_eq!(eval_cmp(CmpOp::Ge, ty, a, b), gt | eq);
        assert_eq!(eval_cmp(CmpOp::Ne, ty, a, b), 1 - eq);
    });
}

/// Widening conversions are lossless round trips.
#[test]
fn widening_cvt_round_trips() {
    cases(0x51A5, 512, |r| {
        let v = r.next_u32();
        let wide = eval_cvt(Type::U64, Type::U32, u64::from(v));
        assert_eq!(eval_cvt(Type::U32, Type::U64, wide), u64::from(v));
        let swide = eval_cvt(Type::S64, Type::S32, u64::from(v));
        assert_eq!(eval_cvt(Type::S32, Type::S64, swide), u64::from(v));
        // Small integers survive a float round trip exactly.
        let small = v % (1 << 20);
        let f = eval_cvt(Type::F64, Type::U32, u64::from(small));
        assert_eq!(eval_cvt(Type::U32, Type::F64, f), u64::from(small));
    });
}

/// Coalescer invariants: block-aligned, deduplicated, bounded, and covering
/// every lane's access.
#[test]
fn coalesce_invariants() {
    cases(0x51A6, 512, |r| {
        let nlanes = 1 + r.usize_below(31);
        let lane_addrs: Vec<(u32, u64)> = (0..nlanes)
            .map(|l| (l as u32, u64::from(r.u32_below(1_000_000))))
            .collect();
        let bytes = *r.pick(&[1u32, 2, 4, 8]);
        let blocks = coalesce(&lane_addrs, bytes, 128);
        // Aligned and unique.
        for b in &blocks {
            assert_eq!(b % 128, 0);
        }
        let mut uniq = blocks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), blocks.len());
        // Every byte of every access is covered by some block.
        for &(_, a) in &lane_addrs {
            for byte in [a, a + u64::from(bytes) - 1] {
                assert!(blocks.contains(&(byte & !127)), "byte {byte} uncovered");
            }
        }
        // At most two blocks per access.
        assert!(blocks.len() <= 2 * lane_addrs.len());
    });
}

/// The coalescer is permutation-invariant up to ordering: the set of blocks
/// does not depend on lane order.
#[test]
fn coalesce_is_order_insensitive() {
    cases(0x51A7, 512, |r| {
        let nlanes = 2 + r.usize_below(30);
        let fwd: Vec<(u32, u64)> = (0..nlanes)
            .map(|l| (l as u32, u64::from(r.u32_below(100_000))))
            .collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let mut a = coalesce(&fwd, 4, 128);
        let mut b = coalesce(&rev, 4, 128);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    });
}
