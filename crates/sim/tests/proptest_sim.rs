//! Property tests over the simulator's pure components: typed value
//! evaluation and the coalescer.

use gcl_ptx::{AluOp, CmpOp, Type};
use gcl_sim::{canon, coalesce, eval_alu, eval_cmp, eval_cvt};
use proptest::prelude::*;

fn int_type() -> impl Strategy<Value = Type> {
    prop_oneof![Just(Type::U32), Just(Type::U64), Just(Type::S32), Just(Type::S64)]
}

proptest! {
    /// `canon` is idempotent and results of integer ALU ops are canonical.
    #[test]
    fn alu_results_are_canonical(ty in int_type(), a in any::<u64>(), b in any::<u64>()) {
        for op in [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::And, AluOp::Or, AluOp::Xor,
                   AluOp::Min, AluOp::Max, AluOp::Shl, AluOp::Shr, AluOp::Div, AluOp::Rem] {
            let r = eval_alu(op, ty, a, b);
            prop_assert_eq!(canon(ty, r), r, "{:?} not canonical", op);
        }
    }

    /// Commutativity of add/mul/and/or/xor/min/max on canonical inputs.
    #[test]
    fn commutative_ops(ty in int_type(), a in any::<u64>(), b in any::<u64>()) {
        for op in [AluOp::Add, AluOp::Mul, AluOp::And, AluOp::Or, AluOp::Xor,
                   AluOp::Min, AluOp::Max, AluOp::MulHi, AluOp::MulWide] {
            prop_assert_eq!(eval_alu(op, ty, a, b), eval_alu(op, ty, b, a), "{:?}", op);
        }
    }

    /// `a - b + b == a` (mod 2^width).
    #[test]
    fn sub_add_inverse(ty in int_type(), a in any::<u64>(), b in any::<u64>()) {
        let d = eval_alu(AluOp::Sub, ty, a, b);
        prop_assert_eq!(eval_alu(AluOp::Add, ty, d, b), canon(ty, a));
    }

    /// Comparison trichotomy: exactly one of <, ==, > holds.
    #[test]
    fn cmp_trichotomy(ty in int_type(), a in any::<u64>(), b in any::<u64>()) {
        let lt = eval_cmp(CmpOp::Lt, ty, a, b);
        let eq = eval_cmp(CmpOp::Eq, ty, a, b);
        let gt = eval_cmp(CmpOp::Gt, ty, a, b);
        prop_assert_eq!(lt + eq + gt, 1);
        prop_assert_eq!(eval_cmp(CmpOp::Le, ty, a, b), lt | eq);
        prop_assert_eq!(eval_cmp(CmpOp::Ge, ty, a, b), gt | eq);
        prop_assert_eq!(eval_cmp(CmpOp::Ne, ty, a, b), 1 - eq);
    }

    /// Widening conversions are lossless round trips.
    #[test]
    fn widening_cvt_round_trips(v in any::<u32>()) {
        let wide = eval_cvt(Type::U64, Type::U32, u64::from(v));
        prop_assert_eq!(eval_cvt(Type::U32, Type::U64, wide), u64::from(v));
        let swide = eval_cvt(Type::S64, Type::S32, u64::from(v));
        prop_assert_eq!(eval_cvt(Type::S32, Type::S64, swide), u64::from(v));
        // Small integers survive a float round trip exactly.
        let small = v % (1 << 20);
        let f = eval_cvt(Type::F64, Type::U32, u64::from(small));
        prop_assert_eq!(eval_cvt(Type::U32, Type::F64, f), u64::from(small));
    }

    /// Coalescer invariants: block-aligned, deduplicated, bounded, and
    /// covering every lane's access.
    #[test]
    fn coalesce_invariants(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..32),
        bytes in prop_oneof![Just(1u32), Just(2), Just(4), Just(8)],
    ) {
        let lane_addrs: Vec<(u32, u64)> =
            addrs.iter().enumerate().map(|(l, &a)| (l as u32, a)).collect();
        let blocks = coalesce(&lane_addrs, bytes, 128);
        // Aligned and unique.
        for b in &blocks {
            prop_assert_eq!(b % 128, 0);
        }
        let mut uniq = blocks.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), blocks.len());
        // Every byte of every access is covered by some block.
        for &(_, a) in &lane_addrs {
            for byte in [a, a + u64::from(bytes) - 1] {
                prop_assert!(blocks.contains(&(byte & !127)), "byte {byte} uncovered");
            }
        }
        // At most two blocks per access.
        prop_assert!(blocks.len() <= 2 * lane_addrs.len());
    }

    /// The coalescer is permutation-invariant up to ordering: the set of
    /// blocks does not depend on lane order.
    #[test]
    fn coalesce_is_order_insensitive(
        addrs in proptest::collection::vec(0u64..100_000, 2..32),
    ) {
        let fwd: Vec<(u32, u64)> =
            addrs.iter().enumerate().map(|(l, &a)| (l as u32, a)).collect();
        let mut rev = fwd.clone();
        rev.reverse();
        let mut a = coalesce(&fwd, 4, 128);
        let mut b = coalesce(&rev, 4, 128);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}
