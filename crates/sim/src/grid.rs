//! Grid/CTA/thread geometry.

/// A 3-component dimension, as in CUDA's `dim3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Dim3 {
    /// A 1-D dimension.
    pub fn x(x: u32) -> Dim3 {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D dimension.
    pub fn xy(x: u32, y: u32) -> Dim3 {
        Dim3 { x, y, z: 1 }
    }

    /// Total element count.
    pub fn count(&self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }

    /// Decompose a linear index into (x, y, z) coordinates.
    ///
    /// # Panics
    ///
    /// Panics if `linear` is out of range.
    pub fn coords(&self, linear: u64) -> (u32, u32, u32) {
        assert!(linear < self.count(), "linear index {linear} out of range");
        let x = (linear % u64::from(self.x)) as u32;
        let y = ((linear / u64::from(self.x)) % u64::from(self.y)) as u32;
        let z = (linear / (u64::from(self.x) * u64::from(self.y))) as u32;
        (x, y, z)
    }

    /// Compose coordinates into a linear index (the paper's linearized CTA
    /// id: `x + y*dim.x + z*dim.x*dim.y`).
    pub fn linear(&self, x: u32, y: u32, z: u32) -> u64 {
        u64::from(x)
            + u64::from(y) * u64::from(self.x)
            + u64::from(z) * u64::from(self.x) * u64::from(self.y)
    }
}

impl From<u32> for Dim3 {
    fn from(x: u32) -> Dim3 {
        Dim3::x(x)
    }
}

impl From<(u32, u32)> for Dim3 {
    fn from((x, y): (u32, u32)) -> Dim3 {
        Dim3::xy(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_coords_round_trip() {
        let d = Dim3 { x: 4, y: 3, z: 2 };
        assert_eq!(d.count(), 24);
        for i in 0..24 {
            let (x, y, z) = d.coords(i);
            assert_eq!(d.linear(x, y, z), i);
        }
    }

    #[test]
    fn one_d_helpers() {
        assert_eq!(Dim3::x(7).count(), 7);
        assert_eq!(Dim3::xy(2, 5).count(), 10);
        let d: Dim3 = 9u32.into();
        assert_eq!(d, Dim3::x(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coords_bounds_checked() {
        Dim3::x(4).coords(4);
    }
}
