//! `simsan` — the opt-in runtime sanitizer ([`GpuConfig::sanitize`]).
//!
//! Three checkers, all zero-cost when off:
//!
//! 1. **Request-lifecycle conservation** — every [`gcl_mem::MemRequest`] is
//!    tagged with a launch-unique id at coalescing and driven through the
//!    [`RequestLedger`](gcl_mem::RequestLedger) state machine at every
//!    observable seam (L1 outcome, miss-queue drain, interconnect
//!    inject/eject, partition enqueue, DRAM entry, response return). Illegal
//!    transitions, double responses, responses without a waiting request,
//!    and end-of-launch leaks raise
//!    [`SimError::Sanitizer`](crate::SimError::Sanitizer).
//! 2. **Shared-memory race detection** — per-CTA shadow state over shared
//!    memory records last-writer / last-reader `(warp, pc)` pairs within a
//!    barrier epoch; epochs reset at each `bar.sync N` release. Conflicting
//!    accesses from different warps in one epoch produce a [`RaceReport`]
//!    naming both pcs, the byte range, and the barrier id.
//! 3. **Determinism audit** — a per-launch FNV-1a digest folded over issue,
//!    writeback and response events, exposed as
//!    [`LaunchStats::digest`](crate::LaunchStats::digest); running a
//!    workload twice and comparing digests ([`check_digests`]) hard-fails
//!    on divergence.
//!
//! Violations are *injectable* for testing via [`SanInject`]: documented
//! chaos hooks that corrupt one request's bookkeeping so integration tests
//! can assert each report kind fires (`tests/sanitizer_paths.rs`).
//!
//! [`GpuConfig::sanitize`]: crate::GpuConfig::sanitize

use crate::fault::MemFaultReport;
use gcl_mem::{ConservationReport, Dec, Enc, RequestLedger, WireError};
use std::fmt;

/// FNV-1a offset basis: the initial value of every determinism digest.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold one 64-bit value into an FNV-1a digest (little-endian bytes).
pub fn fnv_fold(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fold a byte slice into an FNV-1a digest (checkpoint checksums and
/// config/kernel fingerprints).
pub fn fnv_fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// One side of a shared-memory race: who touched the bytes, from where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceAccess {
    /// Warp index within its CTA.
    pub warp_in_cta: u32,
    /// Instruction index of the shared-memory access.
    pub pc: usize,
    /// Whether the access was a store.
    pub is_write: bool,
}

impl fmt::Display for RaceAccess {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = if self.is_write { "write" } else { "read" };
        write!(f, "{dir} by warp {} at pc {}", self.warp_in_cta, self.pc)
    }
}

/// A shared-memory race: two warps of one CTA touched overlapping bytes
/// within one barrier epoch, at least one of them writing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// SM the CTA ran on.
    pub sm: u16,
    /// Linear CTA id.
    pub cta: u64,
    /// Barrier epoch (0 before the first release, +1 per release).
    pub epoch: u64,
    /// The `bar.sync` id whose release opened this epoch (`None` for the
    /// epoch before the CTA's first barrier).
    pub barrier: Option<u32>,
    /// First conflicting shared-memory byte offset.
    pub byte_lo: u64,
    /// One past the last byte of the conflicting access.
    pub byte_hi: u64,
    /// The earlier access recorded in the shadow state.
    pub prev: RaceAccess,
    /// The access that completed the race.
    pub curr: RaceAccess,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shared-memory race in CTA {} on SM {}: {} conflicts with earlier {} \
             on shared bytes [0x{:x}, 0x{:x})\n  barrier epoch {}",
            self.cta, self.sm, self.curr, self.prev, self.byte_lo, self.byte_hi, self.epoch
        )?;
        match self.barrier {
            Some(id) => write!(f, " (after release of bar.sync {id})"),
            None => write!(f, " (before the CTA's first barrier)"),
        }
    }
}

/// Two runs of the same workload produced different event digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeterminismReport {
    /// The workload that diverged.
    pub workload: String,
    /// Digest of the first run.
    pub first: u64,
    /// Digest of the rerun.
    pub second: u64,
}

impl fmt::Display for DeterminismReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "determinism violated for `{}`: launch digest {:#018x} on first run, \
             {:#018x} on identical rerun",
            self.workload, self.first, self.second
        )
    }
}

/// A structured violation from one of the three sanitizer checkers — the
/// payload of [`SimError::Sanitizer`](crate::SimError::Sanitizer).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SanitizerReport {
    /// Request-lifecycle conservation broke (see [`ConservationReport`]).
    Conservation(ConservationReport),
    /// The shared-memory race detector fired.
    Race(RaceReport),
    /// The determinism audit found digest divergence.
    Determinism(DeterminismReport),
}

impl fmt::Display for SanitizerReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanitizerReport::Conservation(r) => write!(f, "{r}"),
            SanitizerReport::Race(r) => write!(f, "{r}"),
            SanitizerReport::Determinism(r) => write!(f, "{r}"),
        }
    }
}

/// Compare the digests of two sanitized runs of `workload`.
///
/// # Errors
///
/// A [`SanitizerReport::Determinism`] if both digests are present and differ.
/// Missing digests (unsanitized runs) compare clean.
pub fn check_digests(
    workload: &str,
    first: Option<u64>,
    second: Option<u64>,
) -> Result<(), Box<SanitizerReport>> {
    match (first, second) {
        (Some(a), Some(b)) if a != b => {
            Err(Box::new(SanitizerReport::Determinism(DeterminismReport {
                workload: workload.to_string(),
                first: a,
                second: b,
            })))
        }
        _ => Ok(()),
    }
}

/// What can go wrong inside one SM cycle: a memcheck fault or a sanitizer
/// violation. The GPU maps these onto
/// [`SimError::MemFault`](crate::SimError::MemFault) /
/// [`SimError::Sanitizer`](crate::SimError::Sanitizer).
#[derive(Debug)]
pub enum TickError {
    /// Memcheck caught an out-of-bounds device access.
    Mem(Box<MemFaultReport>),
    /// A sanitizer checker fired.
    San(Box<SanitizerReport>),
}

impl From<Box<MemFaultReport>> for TickError {
    fn from(r: Box<MemFaultReport>) -> TickError {
        TickError::Mem(r)
    }
}

impl From<Box<ConservationReport>> for TickError {
    fn from(r: Box<ConservationReport>) -> TickError {
        TickError::San(Box::new(SanitizerReport::Conservation(*r)))
    }
}

impl From<Box<RaceReport>> for TickError {
    fn from(r: Box<RaceReport>) -> TickError {
        TickError::San(Box::new(SanitizerReport::Race(*r)))
    }
}

/// Sanitizer fault injection: deliberately corrupt one request's
/// bookkeeping so tests can assert the conservation checker reports it.
///
/// These are **documented chaos hooks**, compiled unconditionally (so
/// integration tests outside the crate can reach them) but rejected by
/// [`GpuConfig::validate`](crate::GpuConfig::validate) unless
/// [`sanitize`](crate::GpuConfig::sanitize) is on, and never active on the
/// default [`SanInject::None`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SanInject {
    /// No injection (the only setting valid outside tests).
    #[default]
    None,
    /// Silently drop the `nth` (1-based) store at interconnect injection.
    /// Stores are fire-and-forget, so nothing hangs and the launch
    /// completes — only the end-of-launch drain check can catch the loss.
    DropIcntStore {
        /// Which store to drop (1-based).
        nth: u64,
    },
    /// Deliver the `nth` read response twice, modeling a duplicated packet;
    /// the second delivery must report a double response.
    DuplicateResponse {
        /// Which response to duplicate (1-based).
        nth: u64,
    },
    /// Forget the L1 MSHR entry just before the `nth` fill, modeling lost
    /// MSHR bookkeeping; the fill must report response-without-request.
    DropMshrEntry {
        /// Which fill to corrupt (1-based).
        nth: u64,
    },
    /// Salt the launch digest with a process-global counter so two
    /// otherwise identical runs diverge; the determinism audit must fail.
    DigestNoise,
}

/// Per-launch sanitizer state shared across SMs: the conservation ledger
/// and the fault-injection counters. Created by the GPU when
/// [`GpuConfig::sanitize`](crate::GpuConfig::sanitize) is on and handed to
/// each SM through [`TickCtx`](crate::TickCtx).
#[derive(Debug)]
pub struct SanRun {
    /// The request-conservation ledger.
    pub ledger: RequestLedger,
    inject: SanInject,
    seen: u64,
    fired: bool,
}

impl SanRun {
    /// Create the per-launch sanitizer state.
    pub fn new(inject: SanInject) -> SanRun {
        SanRun {
            ledger: RequestLedger::new(),
            inject,
            seen: 0,
            fired: false,
        }
    }

    fn fire(&mut self, nth: u64) -> bool {
        self.seen += 1;
        if !self.fired && self.seen == nth {
            self.fired = true;
            return true;
        }
        false
    }

    /// Whether to silently drop this store at interconnect injection.
    pub(crate) fn should_drop_store(&mut self, is_write: bool) -> bool {
        match self.inject {
            SanInject::DropIcntStore { nth } if is_write => self.fire(nth),
            _ => false,
        }
    }

    /// Whether to deliver this read response a second time.
    pub(crate) fn should_duplicate_response(&mut self) -> bool {
        match self.inject {
            SanInject::DuplicateResponse { nth } => self.fire(nth),
            _ => false,
        }
    }

    /// Whether to forget the MSHR entry before this fill.
    pub(crate) fn should_drop_mshr(&mut self) -> bool {
        match self.inject {
            SanInject::DropMshrEntry { nth } => self.fire(nth),
            _ => false,
        }
    }

    /// Whether the digest should be salted with process-global noise.
    pub(crate) fn digest_noise(&self) -> bool {
        self.inject == SanInject::DigestNoise
    }

    /// Checkpoint-encode the per-launch sanitizer state. The injection
    /// setting comes from the configuration, so only the ledger and the
    /// injection counters are written.
    pub(crate) fn ckpt_encode(&self, e: &mut Enc) {
        self.ledger.ckpt_encode(e);
        e.u64(self.seen);
        e.bool(self.fired);
    }

    /// Checkpoint-decode sanitizer state written by
    /// [`ckpt_encode`](Self::ckpt_encode), with the injection setting
    /// supplied by the configuration.
    pub(crate) fn ckpt_decode(d: &mut Dec<'_>, inject: SanInject) -> Result<SanRun, WireError> {
        let ledger = RequestLedger::ckpt_decode(d)?;
        let seen = d.u64()?;
        let fired = d.bool()?;
        Ok(SanRun {
            ledger,
            inject,
            seen,
            fired,
        })
    }
}

/// Per-byte shadow record of one CTA's shared memory within the current
/// barrier epoch. Two reader slots are enough: the detector only needs to
/// know *some* other-warp reader exists, and a warp already recorded never
/// evicts another.
#[derive(Debug, Clone, Copy, Default)]
struct ShadowByte {
    /// Last writer `(warp_in_cta, pc)` this epoch.
    writer: Option<(u32, u32)>,
    /// Up to two distinct-warp readers `(warp_in_cta, pc)` this epoch.
    readers: [Option<(u32, u32)>; 2],
}

#[derive(Debug)]
struct SmemShadow {
    epoch: u64,
    barrier: Option<u32>,
    bytes: Vec<ShadowByte>,
}

/// Per-SM sanitizer state: the determinism digest and the shared-memory
/// shadow of each resident CTA.
#[derive(Debug)]
pub(crate) struct SmSan {
    pub(crate) digest: u64,
    shadows: Vec<SmemShadow>,
}

impl SmSan {
    pub(crate) fn new(n_cta_slots: usize, shared_bytes: usize) -> SmSan {
        SmSan {
            digest: FNV_OFFSET,
            shadows: (0..n_cta_slots)
                .map(|_| SmemShadow {
                    epoch: 0,
                    barrier: None,
                    bytes: vec![ShadowByte::default(); shared_bytes],
                })
                .collect(),
        }
    }

    /// Fold one event value into the determinism digest.
    pub(crate) fn fold(&mut self, v: u64) {
        self.digest = fnv_fold(self.digest, v);
    }

    /// Reset the shadow for a freshly dispatched CTA.
    pub(crate) fn clear_slot(&mut self, cta_slot: usize) {
        let shadow = &mut self.shadows[cta_slot];
        shadow.epoch = 0;
        shadow.barrier = None;
        shadow.bytes.fill(ShadowByte::default());
    }

    /// A `bar.sync barrier` released in this CTA: open a new epoch.
    pub(crate) fn barrier_release(&mut self, cta_slot: usize, barrier: u32) {
        let shadow = &mut self.shadows[cta_slot];
        shadow.epoch += 1;
        shadow.barrier = Some(barrier);
        shadow.bytes.fill(ShadowByte::default());
    }

    /// Check one warp shared-memory access against the CTA's shadow state
    /// and record it.
    ///
    /// # Errors
    ///
    /// A [`RaceReport`] if any touched byte was accessed by a different
    /// warp within this barrier epoch with at least one side writing.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn check_shared(
        &mut self,
        cta_slot: usize,
        sm: u16,
        cta: u64,
        warp_in_cta: u32,
        pc: usize,
        is_store: bool,
        lane_addrs: &[(u32, u64)],
        bytes: u32,
    ) -> Result<(), Box<RaceReport>> {
        let shadow = &mut self.shadows[cta_slot];
        let pc32 = pc as u32;
        for &(_lane, addr) in lane_addrs {
            let lo = addr as usize;
            let hi = (lo + bytes as usize).min(shadow.bytes.len());
            for off in lo..hi {
                let b = &mut shadow.bytes[off];
                let conflict = if is_store {
                    b.writer
                        .filter(|&(w, _)| w != warp_in_cta)
                        .map(|prev| (prev, true))
                        .or_else(|| {
                            b.readers
                                .iter()
                                .flatten()
                                .find(|&&(w, _)| w != warp_in_cta)
                                .map(|&prev| (prev, false))
                        })
                } else {
                    b.writer
                        .filter(|&(w, _)| w != warp_in_cta)
                        .map(|prev| (prev, true))
                };
                if let Some(((pw, ppc), prev_write)) = conflict {
                    return Err(Box::new(RaceReport {
                        sm,
                        cta,
                        epoch: shadow.epoch,
                        barrier: shadow.barrier,
                        byte_lo: addr,
                        byte_hi: addr + u64::from(bytes),
                        prev: RaceAccess {
                            warp_in_cta: pw,
                            pc: ppc as usize,
                            is_write: prev_write,
                        },
                        curr: RaceAccess {
                            warp_in_cta,
                            pc,
                            is_write: is_store,
                        },
                    }));
                }
                if is_store {
                    b.writer = Some((warp_in_cta, pc32));
                } else if !b.readers.iter().flatten().any(|&(w, _)| w == warp_in_cta) {
                    if let Some(slot) = b.readers.iter_mut().find(|r| r.is_none()) {
                        *slot = Some((warp_in_cta, pc32));
                    }
                }
            }
        }
        Ok(())
    }

    /// Checkpoint-encode the per-SM sanitizer state.
    pub(crate) fn ckpt_encode(&self, e: &mut Enc) {
        e.u64(self.digest);
        e.seq(&self.shadows, |e, shadow| {
            e.u64(shadow.epoch);
            e.opt(&shadow.barrier, |e, &b| e.u32(b));
            e.seq(&shadow.bytes, |e, b| {
                e.opt(&b.writer, |e, &(w, pc)| {
                    e.u32(w);
                    e.u32(pc);
                });
                for r in &b.readers {
                    e.opt(r, |e, &(w, pc)| {
                        e.u32(w);
                        e.u32(pc);
                    });
                }
            });
        });
    }

    /// Checkpoint-decode per-SM sanitizer state written by
    /// [`ckpt_encode`](Self::ckpt_encode), validated against the expected
    /// CTA-slot count and shared-memory size.
    pub(crate) fn ckpt_decode(
        d: &mut Dec<'_>,
        n_cta_slots: usize,
        shared_bytes: usize,
    ) -> Result<SmSan, WireError> {
        let digest = d.u64()?;
        let pair = |d: &mut Dec<'_>| -> Result<(u32, u32), WireError> {
            let w = d.u32()?;
            let pc = d.u32()?;
            Ok((w, pc))
        };
        let shadows = d.seq(|d| {
            let epoch = d.u64()?;
            let barrier = d.opt(|d| d.u32())?;
            let bytes = d.seq(|d| {
                let writer = d.opt(pair)?;
                let mut readers = [None; 2];
                for r in &mut readers {
                    *r = d.opt(pair)?;
                }
                Ok(ShadowByte { writer, readers })
            })?;
            if bytes.len() != shared_bytes {
                return Err(WireError::Malformed("shadow byte count mismatch"));
            }
            Ok(SmemShadow {
                epoch,
                barrier,
                bytes,
            })
        })?;
        if shadows.len() != n_cta_slots {
            return Err(WireError::Malformed("shadow CTA slot count mismatch"));
        }
        Ok(SmSan { digest, shadows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_fold_is_deterministic_and_order_sensitive() {
        let a = fnv_fold(fnv_fold(FNV_OFFSET, 1), 2);
        let b = fnv_fold(fnv_fold(FNV_OFFSET, 1), 2);
        let c = fnv_fold(fnv_fold(FNV_OFFSET, 2), 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, FNV_OFFSET);
    }

    #[test]
    fn digests_compare_clean_unless_both_present_and_different() {
        check_digests("w", None, None).unwrap();
        check_digests("w", Some(1), None).unwrap();
        check_digests("w", Some(7), Some(7)).unwrap();
        let report = check_digests("w", Some(7), Some(8)).unwrap_err();
        let SanitizerReport::Determinism(d) = report.as_ref() else {
            panic!("wrong report kind: {report:?}");
        };
        assert_eq!((d.first, d.second), (7, 8));
        assert!(report.to_string().contains("determinism violated"));
    }

    fn lanes(addr: u64) -> Vec<(u32, u64)> {
        vec![(0, addr)]
    }

    #[test]
    fn same_warp_accesses_never_race() {
        let mut s = SmSan::new(1, 64);
        s.check_shared(0, 0, 0, 3, 10, true, &lanes(0), 4).unwrap();
        s.check_shared(0, 0, 0, 3, 11, false, &lanes(0), 4).unwrap();
        s.check_shared(0, 0, 0, 3, 12, true, &lanes(2), 4).unwrap();
    }

    #[test]
    fn cross_warp_write_read_races_with_both_pcs() {
        let mut s = SmSan::new(1, 64);
        s.check_shared(0, 1, 9, 0, 10, true, &lanes(8), 4).unwrap();
        let r = s
            .check_shared(0, 1, 9, 1, 20, false, &lanes(8), 4)
            .unwrap_err();
        assert_eq!(r.prev.pc, 10);
        assert!(r.prev.is_write);
        assert_eq!(r.curr.pc, 20);
        assert!(!r.curr.is_write);
        assert_eq!((r.byte_lo, r.byte_hi), (8, 12));
        assert_eq!(r.barrier, None);
        let text = r.to_string();
        assert!(text.contains("shared-memory race"), "{text}");
        assert!(text.contains("before the CTA's first barrier"), "{text}");
    }

    #[test]
    fn barrier_release_separates_epochs() {
        let mut s = SmSan::new(1, 64);
        s.check_shared(0, 0, 0, 0, 10, true, &lanes(0), 4).unwrap();
        s.barrier_release(0, 2);
        // Same bytes, different warp, new epoch: clean.
        s.check_shared(0, 0, 0, 1, 20, false, &lanes(0), 4).unwrap();
        // But a write inside this epoch now races and names the barrier.
        let r = s
            .check_shared(0, 0, 0, 2, 30, true, &lanes(0), 4)
            .unwrap_err();
        assert_eq!(r.barrier, Some(2));
        assert_eq!(r.epoch, 1);
        assert!(!r.prev.is_write, "reader recorded in new epoch");
        assert!(r.to_string().contains("bar.sync 2"), "{r}");
    }

    #[test]
    fn reader_slots_keep_two_distinct_warps() {
        let mut s = SmSan::new(1, 16);
        for warp in 0..4 {
            s.check_shared(0, 0, 0, warp, 10, false, &lanes(0), 4)
                .unwrap();
        }
        // Any writer still conflicts with a recorded reader.
        let r = s
            .check_shared(0, 0, 0, 9, 50, true, &lanes(0), 4)
            .unwrap_err();
        assert!(!r.prev.is_write);
    }

    #[test]
    fn injection_counters_fire_once_on_nth() {
        let mut run = SanRun::new(SanInject::DuplicateResponse { nth: 2 });
        assert!(!run.should_duplicate_response());
        assert!(run.should_duplicate_response());
        assert!(!run.should_duplicate_response());
        let mut run = SanRun::new(SanInject::DropIcntStore { nth: 1 });
        assert!(!run.should_drop_store(false), "reads never dropped");
        assert!(run.should_drop_store(true));
        assert!(!run.should_drop_store(true));
        let mut none = SanRun::new(SanInject::None);
        assert!(!none.should_drop_mshr());
        assert!(!none.digest_noise());
    }
}
