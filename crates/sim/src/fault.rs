//! Structured fault taxonomy for the simulator: configuration rejection,
//! allocation failures, device-memcheck violations, and forward-progress
//! hang reports.
//!
//! The types here are the payloads of [`SimError`](crate::SimError). They
//! are deliberately plain data — every field a debugger or test would want
//! to assert on is public — with `Display` implementations that render the
//! way a CUDA programmer would expect `cuda-memcheck` or a kernel-timeout
//! dump to read.

use gcl_core::LoadClass;
use gcl_ptx::Space;
use std::fmt;

/// Why a [`GpuConfig`](crate::GpuConfig) was rejected by
/// [`validate`](crate::GpuConfig::validate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending field (or field group).
    pub field: &'static str,
    /// The constraint that was violated.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid GPU configuration ({}): {}",
            self.field, self.message
        )
    }
}

impl std::error::Error for ConfigError {}

/// Why a device allocation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// The requested alignment was zero or not a power of two.
    BadAlign {
        /// The rejected alignment.
        align: u64,
    },
    /// The allocation would overflow the 64-bit device address space.
    TooLarge {
        /// Bytes requested.
        bytes: u64,
    },
    /// `count * elem_bytes` overflowed in an array allocation.
    CountOverflow {
        /// Elements requested.
        count: u64,
        /// Size of each element in bytes.
        elem_bytes: u32,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::BadAlign { align } => {
                write!(f, "alignment {align} is not a nonzero power of two")
            }
            AllocError::TooLarge { bytes } => {
                write!(
                    f,
                    "allocation of {bytes} bytes exceeds the device address space"
                )
            }
            AllocError::CountOverflow { count, elem_bytes } => {
                write!(
                    f,
                    "array of {count} x {elem_bytes}-byte elements overflows a 64-bit size"
                )
            }
        }
    }
}

impl std::error::Error for AllocError {}

/// How a faulting instruction touched memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load instruction.
    Load,
    /// A store instruction.
    Store,
    /// An atomic read-modify-write.
    Atomic,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Load => "load",
            AccessKind::Store => "store",
            AccessKind::Atomic => "atomic",
        })
    }
}

/// An out-of-bounds device access caught by memcheck at execution time
/// (no live allocation contains the accessed bytes).
///
/// Raised from [`Warp::step`](crate::Warp::step) with the per-lane facts;
/// the SM and GPU layers wrap it into a [`MemFaultReport`] with placement
/// and classification context attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemViolation {
    /// Instruction index of the faulting access.
    pub pc: usize,
    /// Address space accessed.
    pub space: Space,
    /// Load, store, or atomic.
    pub kind: AccessKind,
    /// First lane whose address fell outside every allocation.
    pub lane: u32,
    /// The faulting byte address.
    pub addr: u64,
    /// Bytes the lane tried to access.
    pub bytes: u32,
    /// The live allocation `(base, len)` closest below the address, if any
    /// — usually the buffer the kernel ran off the end of.
    pub nearest: Option<(u64, u64)>,
}

impl fmt::Display for MemViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out-of-bounds {} {} of {} bytes at 0x{:x} (pc {}, lane {})",
            self.space, self.kind, self.bytes, self.addr, self.pc, self.lane
        )?;
        match self.nearest {
            Some((base, len)) => {
                let end = base + len;
                if self.addr >= end {
                    write!(
                        f,
                        "; nearest allocation is [0x{base:x}, 0x{end:x}), address is {} bytes \
                         past its end",
                        self.addr - end
                    )
                } else {
                    write!(
                        f,
                        "; access runs past the end of allocation [0x{base:x}, 0x{end:x})"
                    )
                }
            }
            None => write!(f, "; no allocation below this address"),
        }
    }
}

/// A fully attributed memcheck fault: the raw [`MemViolation`] plus where
/// it happened (SM, warp, CTA) and what the classifier knows about the
/// faulting instruction (D/N class and the def-chain witness of its
/// address) — the paper's static analysis doubling as a debugging aid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemFaultReport {
    /// Kernel the fault occurred in.
    pub kernel: String,
    /// SM the faulting warp was resident on.
    pub sm: u16,
    /// Warp slot within the SM.
    pub warp_slot: usize,
    /// Linearized CTA id.
    pub cta: u64,
    /// The raw violation.
    pub violation: MemViolation,
    /// D/N class of the faulting load (`None` for stores/atomics or
    /// instructions the classifier did not record).
    pub class: Option<LoadClass>,
    /// Def-chain witness of the faulting access's address: instruction
    /// indices from the access back to the tainting load (empty for
    /// deterministic addresses).
    pub witness: Vec<usize>,
}

impl fmt::Display for MemFaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "device memory fault in kernel `{}`:", self.kernel)?;
        writeln!(f, "  {}", self.violation)?;
        write!(
            f,
            "  SM {}, warp slot {}, CTA {}",
            self.sm, self.warp_slot, self.cta
        )?;
        if let Some(class) = self.class {
            write!(f, "\n  load class: {class}")?;
        }
        if !self.witness.is_empty() {
            let chain: Vec<String> = self.witness.iter().map(|pc| format!("pc {pc}")).collect();
            write!(f, "\n  address def-chain: {}", chain.join(" <- "))?;
        }
        Ok(())
    }
}

/// State of one resident warp at the moment a hang was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpSnapshot {
    /// Warp slot within the SM.
    pub slot: usize,
    /// Linearized CTA id the warp belongs to.
    pub cta: u64,
    /// Current pc, or `None` if every lane has exited.
    pub pc: Option<usize>,
    /// The named CTA barrier the warp waits at, if any.
    pub at_barrier: Option<u32>,
    /// Operations in flight (memory requests, pending writebacks).
    pub pending_ops: u32,
    /// Whether the scoreboard holds any register reservation for this warp.
    pub scoreboard_busy: bool,
}

impl fmt::Display for WarpSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "warp {:>2} (CTA {}): ", self.slot, self.cta)?;
        match self.pc {
            None => write!(f, "finished")?,
            Some(pc) => write!(f, "pc {pc}")?,
        }
        if let Some(id) = self.at_barrier {
            write!(f, ", at barrier {id}")?;
        }
        if self.pending_ops > 0 {
            write!(f, ", {} op(s) in flight", self.pending_ops)?;
        }
        if self.scoreboard_busy {
            write!(f, ", scoreboard busy")?;
        }
        Ok(())
    }
}

/// State of one SM at the moment a hang was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmSnapshot {
    /// SM index.
    pub id: u16,
    /// Warp memory instructions queued at the LD/ST unit.
    pub ldst_queue: usize,
    /// L1 misses outstanding (MSHR occupancy).
    pub l1_inflight: usize,
    /// Resident warps (empty slots omitted).
    pub warps: Vec<WarpSnapshot>,
}

impl fmt::Display for SmSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SM {}: {} ldst queue entries, {} L1 misses in flight",
            self.id, self.ldst_queue, self.l1_inflight
        )?;
        for w in &self.warps {
            write!(f, "\n    {w}")?;
        }
        Ok(())
    }
}

/// The forward-progress watchdog fired: no instruction issued, no memory
/// response landed, and no CTA was dispatched or retired for
/// [`hang_cycles`](crate::GpuConfig::hang_cycles) consecutive cycles.
///
/// Cycle counts are relative to the start of the hung launch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// Launch cycle at which the hang was detected.
    pub cycle: u64,
    /// Launch cycle of the last observed progress.
    pub last_progress: u64,
    /// The watchdog threshold that fired.
    pub hang_cycles: u64,
    /// CTAs still waiting for dispatch.
    pub ctas_outstanding: u64,
    /// Per-SM state at detection time.
    pub sms: Vec<SmSnapshot>,
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kernel hang: no forward progress for {} cycles (last progress at cycle {}, \
             detected at cycle {})",
            self.cycle - self.last_progress,
            self.last_progress,
            self.cycle
        )?;
        write!(f, "  {} CTA(s) waiting for dispatch", self.ctas_outstanding)?;
        for sm in &self.sms {
            write!(f, "\n  {sm}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_fault_report_renders_all_context() {
        let report = MemFaultReport {
            kernel: "bfs_expand".to_string(),
            sm: 3,
            warp_slot: 5,
            cta: 17,
            violation: MemViolation {
                pc: 12,
                space: Space::Global,
                kind: AccessKind::Load,
                lane: 7,
                addr: 0x1000_1040,
                bytes: 4,
                nearest: Some((0x1000_0000, 0x1000)),
            },
            class: Some(LoadClass::NonDeterministic),
            witness: vec![12, 8, 5],
        };
        let text = report.to_string();
        assert!(text.contains("bfs_expand"), "{text}");
        assert!(text.contains("pc 12"), "{text}");
        assert!(text.contains("SM 3"), "{text}");
        assert!(text.contains("lane 7"), "{text}");
        assert!(text.contains("0x10001040"), "{text}");
        assert!(text.contains("non-deterministic"), "{text}");
        assert!(text.contains("pc 12 <- pc 8 <- pc 5"), "{text}");
    }

    #[test]
    fn hang_report_renders_warp_states() {
        let report = HangReport {
            cycle: 100_500,
            last_progress: 500,
            hang_cycles: 100_000,
            ctas_outstanding: 3,
            sms: vec![SmSnapshot {
                id: 0,
                ldst_queue: 1,
                l1_inflight: 2,
                warps: vec![
                    WarpSnapshot {
                        slot: 0,
                        cta: 4,
                        pc: Some(9),
                        at_barrier: Some(0),
                        pending_ops: 0,
                        scoreboard_busy: false,
                    },
                    WarpSnapshot {
                        slot: 1,
                        cta: 4,
                        pc: None,
                        at_barrier: None,
                        pending_ops: 0,
                        scoreboard_busy: false,
                    },
                ],
            }],
        };
        let text = report.to_string();
        assert!(text.contains("100000 cycles"), "{text}");
        assert!(text.contains("3 CTA(s)"), "{text}");
        assert!(text.contains("at barrier"), "{text}");
        assert!(text.contains("finished"), "{text}");
    }

    #[test]
    fn alloc_and_config_errors_display() {
        let e = AllocError::CountOverflow {
            count: u64::MAX,
            elem_bytes: 4,
        };
        assert!(e.to_string().contains("overflows"));
        let e = AllocError::BadAlign { align: 0 };
        assert!(e.to_string().contains("power of two"));
        let e = ConfigError {
            field: "n_sms",
            message: "need at least one SM".into(),
        };
        assert!(e.to_string().contains("n_sms"));
        assert!(e.to_string().contains("need at least one SM"));
    }
}
