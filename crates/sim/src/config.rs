//! GPU configuration (the paper's Table II, Tesla C2050-like defaults).

use crate::fault::ConfigError;
use crate::san::SanInject;
use gcl_mem::{CacheConfig, IcntConfig, L2Topology, PartitionConfig};

/// CTA-to-SM dispatch policy (Section X-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtaSchedPolicy {
    /// Baseline: CTAs are handed out in issue order to whichever SM has a
    /// free slot, which interleaves neighbors across SMs (the paper's
    /// "round-robin" behavior).
    RoundRobin,
    /// Section X-B proposal: consecutive groups of `group` CTAs go to the
    /// same SM, so neighboring CTAs share an L1.
    Clustered {
        /// CTAs per group.
        group: u32,
    },
}

/// Which load classes a next-line L1 prefetcher reacts to (Section X-A:
/// "instruction-feature-aware mechanisms that can be selectively applied to
/// load instructions according to their characteristics").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchFilter {
    /// No prefetching (baseline).
    Off,
    /// Prefetch only on deterministic-load misses (streaming-friendly).
    DeterministicOnly,
    /// Prefetch only on non-deterministic-load misses.
    NonDeterministicOnly,
    /// Prefetch on every global-load miss (class-oblivious).
    All,
}

impl PrefetchFilter {
    /// Whether a miss of class `tag` should trigger a prefetch.
    pub fn triggers(self, tag: gcl_mem::ClassTag) -> bool {
        match self {
            PrefetchFilter::Off => false,
            PrefetchFilter::DeterministicOnly => tag == gcl_mem::ClassTag::Deterministic,
            PrefetchFilter::NonDeterministicOnly => tag == gcl_mem::ClassTag::NonDeterministic,
            PrefetchFilter::All => tag != gcl_mem::ClassTag::Other,
        }
    }
}

/// Warp scheduler policy within an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpSchedPolicy {
    /// Loose round-robin.
    Lrr,
    /// Greedy-then-oldest.
    Gto,
}

/// Full GPU configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of SMs (paper: 14).
    pub n_sms: usize,
    /// Threads per warp (paper: 32).
    pub warp_size: u32,
    /// Max resident threads per SM (paper: 1536).
    pub max_threads_per_sm: u32,
    /// Max resident CTAs per SM (Fermi: 8).
    pub max_ctas_per_sm: u32,
    /// Shared memory per SM in bytes (paper: 48 KB).
    pub shared_mem_per_sm: u32,
    /// Warp schedulers per SM (Fermi: 2).
    pub n_schedulers: usize,
    /// Warp scheduling policy.
    pub warp_sched: WarpSchedPolicy,
    /// CTA dispatch policy.
    pub cta_sched: CtaSchedPolicy,
    /// SP (ALU) result latency in cycles.
    pub sp_latency: u32,
    /// SFU result latency in cycles.
    pub sfu_latency: u32,
    /// Latency of `ld.param` / `ld.const` (ideal constant cache).
    pub const_latency: u32,
    /// Shared-memory access latency (no bank conflicts).
    pub shared_latency: u32,
    /// LD/ST queue depth per SM (pending warp memory instructions).
    pub ldst_queue_len: usize,
    /// L1 accesses attempted per cycle (cache ports).
    pub l1_ports: usize,
    /// L1 data cache configuration.
    pub l1: CacheConfig,
    /// Number of L2 partitions / DRAM channels (Fermi C2050: 6).
    pub n_partitions: usize,
    /// One L2 slice + DRAM channel.
    pub partition: PartitionConfig,
    /// L2 topology (unified baseline or Section X-C clusters).
    pub l2_topology: L2Topology,
    /// Interconnect configuration.
    pub icnt: IcntConfig,
    /// Split non-deterministic loads into sub-warps generating at most this
    /// many requests each (Section X-A proposal). `None` = off.
    pub warp_split_nd: Option<usize>,
    /// Class-selective next-line L1 prefetcher (Section X-A proposal).
    pub prefetch: PrefetchFilter,
    /// Safety limit on simulated cycles per launch.
    pub max_cycles: u64,
    /// Device memcheck: validate every global/local/tex access against the
    /// live allocation ranges and fail the launch with
    /// [`SimError::MemFault`](crate::SimError::MemFault) on the first
    /// out-of-bounds access. Off by default (small but nonzero cost).
    pub memcheck: bool,
    /// Forward-progress watchdog: if no instruction issues, no memory
    /// response lands, and no CTA is dispatched or retired for this many
    /// consecutive cycles, the launch fails with
    /// [`SimError::Hang`](crate::SimError::Hang) carrying a per-warp state
    /// dump. Must be positive; far larger than any legitimate memory
    /// round-trip.
    pub hang_cycles: u64,
    /// `simsan` runtime sanitizer: request-lifecycle
    /// conservation checking, shared-memory race detection, and a per-launch
    /// determinism digest in
    /// [`LaunchStats::digest`](crate::LaunchStats::digest). Violations fail
    /// the launch with [`SimError::Sanitizer`](crate::SimError::Sanitizer).
    /// Off by default; zero-cost when off.
    pub sanitize: bool,
    /// Sanitizer fault injection for tests (requires `sanitize`); see
    /// [`SanInject`]. Always [`SanInject::None`] outside sanitizer tests.
    pub san_inject: SanInject,
}

impl GpuConfig {
    /// The paper's simulated configuration (Table II): Tesla C2050,
    /// 14 SMs @ 32 lanes, 16 KB L1 (128 B lines, 4-way, 64 MSHRs),
    /// 768 KB unified L2, GDDR5 with ~100-cycle latency.
    pub fn fermi() -> GpuConfig {
        GpuConfig {
            n_sms: 14,
            warp_size: 32,
            max_threads_per_sm: 1536,
            max_ctas_per_sm: 8,
            shared_mem_per_sm: 48 * 1024,
            n_schedulers: 2,
            warp_sched: WarpSchedPolicy::Lrr,
            cta_sched: CtaSchedPolicy::RoundRobin,
            sp_latency: 4,
            sfu_latency: 16,
            const_latency: 8,
            shared_latency: 24,
            ldst_queue_len: 8,
            l1_ports: 1,
            l1: CacheConfig::fermi_l1(),
            n_partitions: 6,
            partition: PartitionConfig::fermi(),
            l2_topology: L2Topology::Unified,
            icnt: IcntConfig::fermi(),
            warp_split_nd: None,
            prefetch: PrefetchFilter::Off,
            max_cycles: 200_000_000,
            memcheck: false,
            hang_cycles: 2_000_000,
            sanitize: false,
            san_inject: SanInject::None,
        }
    }

    /// A scaled-down configuration for fast tests: 2 SMs, 2 partitions,
    /// small caches. Behavior-preserving, just smaller.
    pub fn small() -> GpuConfig {
        let mut cfg = GpuConfig::fermi();
        cfg.n_sms = 2;
        cfg.n_partitions = 2;
        cfg.max_threads_per_sm = 256;
        cfg.max_ctas_per_sm = 4;
        cfg.max_cycles = 20_000_000;
        cfg.hang_cycles = 100_000;
        cfg
    }

    /// Unloaded L1-miss round-trip latency implied by this configuration:
    /// L1 hit check + two interconnect hops + L2 hit + DRAM access. Used as
    /// the "un-loaded memory system latency" baseline of Figures 5 and 7.
    pub fn unloaded_miss_latency(&self) -> u64 {
        u64::from(self.l1.hit_latency)
            + 2 * u64::from(self.icnt.hop_latency)
            + u64::from(self.partition.l2.hit_latency)
            + u64::from(self.partition.dram.access_latency)
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field on
    /// inconsistent configurations (zero SMs, zero warp size, a clustered
    /// L2 that does not divide evenly, ...).
    pub fn validate(&self) -> Result<(), ConfigError> {
        fn err(field: &'static str, message: impl Into<String>) -> Result<(), ConfigError> {
            Err(ConfigError {
                field,
                message: message.into(),
            })
        }
        if self.n_sms == 0 {
            return err("n_sms", "need at least one SM");
        }
        if self.warp_size == 0 || self.warp_size > 64 {
            return err(
                "warp_size",
                format!("warp size must be 1..=64, got {}", self.warp_size),
            );
        }
        if self.max_threads_per_sm < self.warp_size {
            return err(
                "max_threads_per_sm",
                format!(
                    "must hold at least one warp ({} < warp size {})",
                    self.max_threads_per_sm, self.warp_size
                ),
            );
        }
        if self.max_ctas_per_sm == 0 {
            return err("max_ctas_per_sm", "need at least one CTA slot per SM");
        }
        if self.n_schedulers == 0 {
            return err("n_schedulers", "need at least one warp scheduler");
        }
        if self.n_partitions == 0 {
            return err("n_partitions", "need at least one memory partition");
        }
        if self.ldst_queue_len == 0 {
            return err("ldst_queue_len", "LD/ST queue must hold at least one entry");
        }
        if self.l1_ports == 0 {
            return err("l1_ports", "need at least one L1 port");
        }
        if let L2Topology::Clustered { clusters } = self.l2_topology {
            if clusters == 0 {
                return err("l2_topology", "cluster count must be positive");
            }
            if !self.n_partitions.is_multiple_of(clusters) {
                return err(
                    "l2_topology",
                    format!(
                        "{} partitions do not divide into {clusters} clusters",
                        self.n_partitions
                    ),
                );
            }
            if !self.n_sms.is_multiple_of(clusters) {
                return err(
                    "l2_topology",
                    format!("{} SMs do not divide into {clusters} clusters", self.n_sms),
                );
            }
        }
        if let Some(k) = self.warp_split_nd {
            if k == 0 {
                return err("warp_split_nd", "warp split chunk must be positive");
            }
        }
        if self.max_cycles == 0 {
            return err("max_cycles", "cycle budget must be positive");
        }
        if self.hang_cycles == 0 {
            return err("hang_cycles", "hang watchdog threshold must be positive");
        }
        if self.san_inject != SanInject::None && !self.sanitize {
            return err(
                "san_inject",
                "sanitizer fault injection requires `sanitize` to be on",
            );
        }
        Ok(())
    }
}

impl Default for GpuConfig {
    fn default() -> GpuConfig {
        GpuConfig::fermi()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_matches_table_ii() {
        let c = GpuConfig::fermi();
        c.validate().expect("fermi config is self-consistent");
        assert_eq!(c.n_sms, 14);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.max_threads_per_sm, 1536);
        assert_eq!(c.l1.capacity_bytes(), 16 * 1024);
        assert_eq!(c.n_partitions * c.partition.l2.capacity_bytes(), 768 * 1024);
        assert_eq!(c.partition.dram.access_latency, 100);
    }

    #[test]
    fn unloaded_latency_is_sum_of_stages() {
        let c = GpuConfig::fermi();
        let want = 1 + 16 + 4 + 100;
        assert_eq!(c.unloaded_miss_latency(), want);
    }

    #[test]
    fn zero_sms_rejected() {
        let mut c = GpuConfig::fermi();
        c.n_sms = 0;
        let e = c.validate().unwrap_err();
        assert_eq!(e.field, "n_sms");
        assert!(e.to_string().contains("at least one SM"), "{e}");
    }

    #[test]
    fn watchdog_thresholds_must_be_positive() {
        let mut c = GpuConfig::small();
        c.hang_cycles = 0;
        assert_eq!(c.validate().unwrap_err().field, "hang_cycles");
        let mut c = GpuConfig::small();
        c.max_cycles = 0;
        assert_eq!(c.validate().unwrap_err().field, "max_cycles");
    }

    #[test]
    fn memcheck_defaults_off() {
        assert!(!GpuConfig::fermi().memcheck);
        let mut c = GpuConfig::small();
        c.memcheck = true;
        c.validate().expect("memcheck is a valid mode everywhere");
    }

    #[test]
    fn sanitize_defaults_off_and_gates_injection() {
        let c = GpuConfig::fermi();
        assert!(!c.sanitize);
        assert_eq!(c.san_inject, SanInject::None);
        let mut c = GpuConfig::small();
        c.sanitize = true;
        c.validate().expect("sanitize is a valid mode everywhere");
        c.san_inject = SanInject::DropIcntStore { nth: 1 };
        c.validate().expect("injection under sanitize is valid");
        c.sanitize = false;
        let e = c.validate().unwrap_err();
        assert_eq!(e.field, "san_inject");
        assert!(e.to_string().contains("requires `sanitize`"), "{e}");
    }

    #[test]
    fn prefetch_filter_triggers() {
        use gcl_mem::ClassTag;
        assert!(!PrefetchFilter::Off.triggers(ClassTag::Deterministic));
        assert!(PrefetchFilter::DeterministicOnly.triggers(ClassTag::Deterministic));
        assert!(!PrefetchFilter::DeterministicOnly.triggers(ClassTag::NonDeterministic));
        assert!(PrefetchFilter::NonDeterministicOnly.triggers(ClassTag::NonDeterministic));
        assert!(PrefetchFilter::All.triggers(ClassTag::Deterministic));
        assert!(PrefetchFilter::All.triggers(ClassTag::NonDeterministic));
        assert!(!PrefetchFilter::All.triggers(ClassTag::Other));
    }

    #[test]
    fn bad_l2_clustering_rejected() {
        let mut c = GpuConfig::fermi();
        c.l2_topology = L2Topology::Clustered { clusters: 4 }; // 6 % 4 != 0
        let e = c.validate().unwrap_err();
        assert_eq!(e.field, "l2_topology");
        assert!(e.to_string().contains("divide"), "{e}");
    }
}
