//! Bounded instruction-issue tracing, for debugging kernels and validating
//! scheduler behavior.

use gcl_mem::Cycle;

/// One issued warp instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Issue cycle.
    pub cycle: Cycle,
    /// SM that issued.
    pub sm: u16,
    /// Warp slot within the SM.
    pub warp_slot: u16,
    /// Linearized CTA id of the warp.
    pub cta: u64,
    /// Program counter of the instruction.
    pub pc: u32,
    /// Active-lane mask at issue.
    pub active: u32,
}

/// A bounded issue trace: once `capacity` events are recorded, further
/// events are counted but dropped.
///
/// # Examples
///
/// ```
/// use gcl_sim::Trace;
/// let mut t = Trace::new(2);
/// t.record(0, 0, 0, 0, 0, 0xF);
/// t.record(1, 0, 0, 0, 1, 0xF);
/// t.record(2, 0, 0, 0, 2, 0xF); // dropped
/// assert_eq!(t.events().len(), 2);
/// assert_eq!(t.dropped(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace that keeps at most `capacity` events.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            events: Vec::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Build one issue event (the schema shared by the bounded debug trace
    /// and the [`TraceSink`](crate::TraceSink) capture hook).
    pub fn event(
        cycle: Cycle,
        sm: u16,
        warp_slot: u16,
        cta: u64,
        pc: u32,
        active: u32,
    ) -> TraceEvent {
        TraceEvent {
            cycle,
            sm,
            warp_slot,
            cta,
            pc,
            active,
        }
    }

    /// Record one issue event.
    pub fn record(
        &mut self,
        cycle: Cycle,
        sm: u16,
        warp_slot: u16,
        cta: u64,
        pc: u32,
        active: u32,
    ) {
        self.record_event(Self::event(cycle, sm, warp_slot, cta, pc, active));
    }

    /// Record one already-built issue event.
    pub fn record_event(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// The recorded events, in issue order (per SM; cross-SM events at the
    /// same cycle appear in SM-id order).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that did not fit in `capacity`.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_capacity_counts_drops() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.record(i, 0, 0, 0, i as u32, 1);
        }
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.events()[2].pc, 2);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut t = Trace::new(0);
        t.record(0, 0, 0, 0, 0, 1);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
