//! The streaming multiprocessor: warp scheduling, issue, LD/ST unit with
//! coalescing and L1 access retry, writeback, barriers and CTA retirement.

use crate::fault::{MemFaultReport, SmSnapshot, WarpSnapshot};
use crate::replay::{warps_per_cta, LaunchReplay, ReplayKind, TraceSink};
use crate::san::{SanRun, SmSan, TickError};
use crate::warp::{ExecCtx, MemAccess, ReplayCursor, StepResult, Warp};
use crate::{
    coalesce, BlockTracker, Dim3, GlobalMem, GpuConfig, LoadTracker, Scoreboard, Trace,
    WarpScheduler,
};
use gcl_core::{Classification, LoadClass};
use gcl_mem::{
    AccessOutcome, AddrMap, Cache, ClassTag, Cycle, Dec, Enc, Icnt, MemRequest, ReqInfo, SanStage,
    WireError,
};
use gcl_ptx::{Kernel, Reg, Space, Unit};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Sentinel `meta` value marking prefetch requests (no load-tracker entry).
const PREFETCH_META: u64 = u64::MAX;

/// Per-SM execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmStats {
    /// Warp-level instructions issued.
    pub warp_insts: u64,
    /// Thread-level instructions (warp instructions × active lanes).
    pub thread_insts: u64,
    /// Dynamic global-load warp instructions by class `[D, N]`.
    pub global_load_warps: [u64; 2],
    /// Dynamic shared-load warp instructions (profiler `shared_load`).
    pub shared_load_warps: u64,
    /// Cycles each unit's first stage was occupied `[SP, SFU, LDST]`.
    pub unit_busy: [u64; 3],
    /// Cycles this SM was ticked.
    pub cycles: u64,
    /// Extra cycles spent serializing shared-memory bank conflicts.
    pub bank_conflict_cycles: u64,
    /// CTAs retired.
    pub ctas_retired: u64,
    /// Next-line prefetches issued into the L1.
    pub prefetches_issued: u64,
    /// Branch warp instructions executed.
    pub branches: u64,
    /// Branches that split the warp (control-flow divergence).
    pub divergent_branches: u64,
}

impl SmStats {
    /// Merge another SM's stats into this one.
    pub fn merge(&mut self, o: &SmStats) {
        self.warp_insts += o.warp_insts;
        self.thread_insts += o.thread_insts;
        self.global_load_warps[0] += o.global_load_warps[0];
        self.global_load_warps[1] += o.global_load_warps[1];
        self.shared_load_warps += o.shared_load_warps;
        for u in 0..3 {
            self.unit_busy[u] += o.unit_busy[u];
        }
        self.cycles += o.cycles;
        self.bank_conflict_cycles += o.bank_conflict_cycles;
        self.ctas_retired += o.ctas_retired;
        self.prefetches_issued += o.prefetches_issued;
        self.branches += o.branches;
        self.divergent_branches += o.divergent_branches;
    }
}

/// Shared-memory bank-conflict degree: the maximum number of distinct words
/// mapped to one of the 32 four-byte-interleaved banks (broadcasts of the
/// same word are conflict-free).
pub fn bank_conflict_degree(lane_addrs: &[(u32, u64)]) -> u32 {
    let mut per_bank: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(_, addr) in lane_addrs {
        let word = addr / 4;
        let bank = word % 32;
        let words = per_bank.entry(bank).or_default();
        if !words.contains(&word) {
            words.push(word);
        }
    }
    per_bank
        .values()
        .map(|w| w.len() as u32)
        .max()
        .unwrap_or(1)
        .max(1)
}

#[derive(Debug)]
struct CtaState {
    warp_slots: Vec<usize>,
}

#[derive(Debug)]
enum LdstEntry {
    /// Global-backed access: requests retried against the L1 until accepted.
    Global {
        warp_slot: usize,
        /// Load-tracker handle (loads only).
        meta: Option<u64>,
        is_store: bool,
        pending: VecDeque<MemRequest>,
        /// Warp-split chunk (Section X-A): rotate to the back of the queue
        /// after accepting this many requests.
        split: Option<usize>,
        accepted_since_rotate: usize,
    },
    /// Shared-memory access: occupies the unit for the conflict-serialized
    /// cycles, then completes after the shared latency.
    Shared {
        warp_slot: usize,
        dst: Option<Reg>,
        cycles_left: u32,
    },
    /// Parameter/constant-cache access: ideal, fixed latency.
    Const {
        warp_slot: usize,
        dst: Option<Reg>,
        cycles_left: u32,
    },
}

/// Events completing inside the SM (L1 hits, shared/const loads).
#[derive(Debug, PartialEq, Eq)]
struct LocalDone {
    at: Cycle,
    seq: u64,
    meta: Option<u64>,
    req: Option<MemRequestOrd>,
    warp_slot: usize,
    dst: Option<Reg>,
}

/// Wrapper to keep `MemRequest` out of the heap's Ord.
#[derive(Debug, PartialEq, Eq)]
struct MemRequestOrd(u64);

impl Ord for LocalDone {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for LocalDone {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Everything an SM needs from the GPU for one cycle.
pub struct TickCtx<'a> {
    /// Current cycle.
    pub cycle: Cycle,
    /// The running kernel.
    pub kernel: &'a Kernel,
    /// Branch reconvergence table.
    pub reconv: &'a HashMap<usize, usize>,
    /// Load classification of the kernel.
    pub classification: &'a Classification,
    /// Kernel parameter block.
    pub params: &'a [u8],
    /// Device memory.
    pub gmem: &'a mut GlobalMem,
    /// Interconnect.
    pub icnt: &'a mut Icnt,
    /// Address-to-partition mapping.
    pub addrmap: &'a AddrMap,
    /// Cross-SM block locality tracker.
    pub blocktrack: &'a mut BlockTracker,
    /// GPU configuration.
    pub cfg: &'a GpuConfig,
    /// CTA dimensions of the launch.
    pub ntid: Dim3,
    /// Grid dimensions of the launch.
    pub nctaid: Dim3,
    /// Optional bounded issue trace.
    pub trace: &'a mut Option<Trace>,
    /// Optional trace-capture sink observing every issued instruction.
    pub sink: &'a mut Option<Box<dyn TraceSink>>,
    /// Per-launch sanitizer state (ledger + injection), present when
    /// [`GpuConfig::sanitize`] is on.
    pub san: Option<&'a mut SanRun>,
}

/// One streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: u16,
    l1: Cache,
    warps: Vec<Option<Warp>>,
    warp_age: Vec<u64>,
    pending_ops: Vec<u32>,
    next_age: u64,
    cta_slots: Vec<Option<CtaState>>,
    smem: Vec<Vec<u8>>,
    scoreboard: Scoreboard,
    schedulers: Vec<WarpScheduler>,
    ldst_queue: VecDeque<LdstEntry>,
    local_done: BinaryHeap<Reverse<LocalDone>>,
    /// Side table for requests riding `local_done` (L1 hits keep stamps).
    local_reqs: HashMap<u64, MemRequest>,
    writebacks: BinaryHeap<Reverse<(Cycle, usize, Reg)>>,
    loadtrack: LoadTracker,
    stats: SmStats,
    next_seq: u64,
    issued_mem_this_cycle: bool,
    /// Per-SM sanitizer state (digest + shared-memory shadow), present when
    /// [`GpuConfig::sanitize`] is on.
    san: Option<SmSan>,
}

impl Sm {
    /// Create an SM for one kernel launch, attaching a (possibly warm) L1.
    pub fn new(id: u16, cfg: &GpuConfig, kernel: &Kernel, n_cta_slots: usize, l1: Cache) -> Sm {
        let max_warps = (cfg.max_threads_per_sm / cfg.warp_size) as usize;
        Sm {
            id,
            l1,
            warps: (0..max_warps).map(|_| None).collect(),
            warp_age: vec![0; max_warps],
            pending_ops: vec![0; max_warps],
            next_age: 0,
            cta_slots: (0..n_cta_slots).map(|_| None).collect(),
            smem: (0..n_cta_slots)
                .map(|_| vec![0u8; kernel.shared_bytes() as usize])
                .collect(),
            scoreboard: Scoreboard::new(max_warps, kernel.num_regs()),
            schedulers: (0..cfg.n_schedulers)
                .map(|_| WarpScheduler::new(cfg.warp_sched))
                .collect(),
            ldst_queue: VecDeque::new(),
            local_done: BinaryHeap::new(),
            local_reqs: HashMap::new(),
            writebacks: BinaryHeap::new(),
            loadtrack: LoadTracker::new(),
            stats: SmStats::default(),
            next_seq: 0,
            issued_mem_this_cycle: false,
            san: cfg
                .sanitize
                .then(|| SmSan::new(n_cta_slots, kernel.shared_bytes() as usize)),
        }
    }

    /// Whether a CTA slot is free.
    pub fn has_free_cta_slot(&self) -> bool {
        self.cta_slots.iter().any(Option::is_none)
    }

    /// Whether this SM has any resident work.
    pub fn is_idle(&self) -> bool {
        self.cta_slots.iter().all(Option::is_none)
            && self.ldst_queue.is_empty()
            && self.local_done.is_empty()
            && self.writebacks.is_empty()
            && self.l1.inflight() == 0
    }

    /// Assert that every per-launch structure has fully drained. Called on
    /// the success path of a launch (debug builds): a completed launch with
    /// residue here means a request or op-count leaked.
    pub(crate) fn assert_drained(&self) {
        assert!(
            self.ldst_queue.is_empty(),
            "SM{}: LD/ST queue not drained",
            self.id
        );
        assert!(
            self.local_done.is_empty(),
            "SM{}: local-done heap not drained",
            self.id
        );
        assert!(
            self.local_reqs.is_empty(),
            "SM{}: local request map not drained",
            self.id
        );
        assert!(
            self.writebacks.is_empty(),
            "SM{}: writeback heap not drained",
            self.id
        );
        assert_eq!(self.l1.inflight(), 0, "SM{}: L1 MSHRs not drained", self.id);
        assert_eq!(
            self.loadtrack.inflight_count(),
            0,
            "SM{}: load tracker not drained",
            self.id
        );
        for (slot, &n) in self.pending_ops.iter().enumerate() {
            assert_eq!(n, 0, "SM{}: warp slot {slot} has pending ops", self.id);
        }
    }

    /// This SM's event digest for the launch, when sanitizing.
    pub(crate) fn san_digest(&self) -> Option<u64> {
        self.san.as_ref().map(|s| s.digest)
    }

    /// Re-attach stream contents to replay cursors decoded from a snapshot
    /// (only the cursor position is serialized). Validates each cursor
    /// against the supplied trace.
    pub(crate) fn relink_replay(
        &mut self,
        rep: &LaunchReplay,
    ) -> Result<(), crate::ckpt::CheckpointError> {
        use crate::ckpt::CheckpointError;
        for warp in self.warps.iter_mut().flatten() {
            let Some(c) = &mut warp.replay else { continue };
            if c.recs.is_some() {
                continue;
            }
            let stream = rep
                .streams
                .get(c.stream as usize)
                .ok_or(CheckpointError::Malformed("replay stream out of range"))?;
            if c.pos > stream.len() {
                return Err(CheckpointError::Malformed(
                    "replay cursor past end of stream",
                ));
            }
            c.recs = Some(stream.clone());
        }
        Ok(())
    }

    /// Place one CTA onto this SM.
    ///
    /// # Panics
    ///
    /// Panics if no CTA slot or not enough warp slots are free (the GPU's
    /// occupancy computation should prevent this).
    pub fn dispatch_cta(
        &mut self,
        linear_cta: u64,
        ctaid: (u32, u32, u32),
        ntid: Dim3,
        cfg: &GpuConfig,
        kernel: &Kernel,
        replay: Option<&LaunchReplay>,
    ) {
        let cta_slot = self
            .cta_slots
            .iter()
            .position(Option::is_none)
            .expect("no free CTA slot");
        let n_warps = ntid.count().div_ceil(u64::from(cfg.warp_size)) as usize;
        let free_slots: Vec<usize> = self
            .warps
            .iter()
            .enumerate()
            .filter(|(_, w)| w.is_none())
            .map(|(i, _)| i)
            .take(n_warps)
            .collect();
        assert_eq!(free_slots.len(), n_warps, "not enough free warp slots");
        for (w, &slot) in free_slots.iter().enumerate() {
            let mut warp = Warp::new(
                slot,
                cta_slot,
                linear_cta,
                ctaid,
                w as u32,
                ntid,
                cfg.warp_size,
                kernel.num_regs(),
            );
            if let Some(rep) = replay {
                let stream = linear_cta * warps_per_cta(ntid, cfg.warp_size) + w as u64;
                warp.replay = Some(ReplayCursor {
                    stream,
                    pos: 0,
                    recs: Some(rep.streams[stream as usize].clone()),
                });
            }
            self.warps[slot] = Some(warp);
            self.warp_age[slot] = self.next_age;
            self.next_age += 1;
            self.pending_ops[slot] = 0;
        }
        self.smem[cta_slot].iter_mut().for_each(|b| *b = 0);
        if let Some(s) = &mut self.san {
            s.clear_slot(cta_slot);
        }
        self.cta_slots[cta_slot] = Some(CtaState {
            warp_slots: free_slots,
        });
    }

    fn class_tag(class: LoadClass) -> ClassTag {
        match class {
            LoadClass::Deterministic => ClassTag::Deterministic,
            LoadClass::NonDeterministic => ClassTag::NonDeterministic,
        }
    }

    /// Advance this SM one cycle.
    ///
    /// Returns whether the SM made forward progress this cycle (issued an
    /// instruction, completed a writeback or memory response, accepted a
    /// request into the L1, or retired a CTA) — the signal the GPU's hang
    /// watchdog integrates.
    ///
    /// # Errors
    ///
    /// Under [`GpuConfig::memcheck`], returns [`TickError::Mem`] with a
    /// partially attributed [`MemFaultReport`] (placement filled in;
    /// classification context is added by the GPU) on the first
    /// out-of-bounds device access. Under [`GpuConfig::sanitize`], returns
    /// [`TickError::San`] when a sanitizer checker fires.
    pub fn tick(&mut self, ctx: &mut TickCtx<'_>) -> Result<bool, TickError> {
        let cycle = ctx.cycle;
        self.stats.cycles += 1;
        self.issued_mem_this_cycle = false;
        let mut progress = false;

        progress |= self.process_writebacks(cycle);
        progress |= self.process_responses(ctx)?;
        progress |= self.process_local_done(ctx)?;
        let (sp_issued, sfu_issued, any_issued) = self.issue(ctx)?;
        progress |= any_issued;
        self.release_barriers();
        let ldst_active = !self.ldst_queue.is_empty();
        progress |= self.process_ldst(ctx)?;
        self.drain_misses(ctx)?;

        if sp_issued {
            self.stats.unit_busy[0] += 1;
        }
        if sfu_issued {
            self.stats.unit_busy[1] += 1;
        }
        if ldst_active || self.issued_mem_this_cycle {
            self.stats.unit_busy[2] += 1;
        }

        progress |= self.retire_ctas();
        Ok(progress)
    }

    fn process_writebacks(&mut self, cycle: Cycle) -> bool {
        let mut any = false;
        while let Some(&Reverse((at, slot, reg))) = self.writebacks.peek() {
            if at > cycle {
                break;
            }
            self.writebacks.pop();
            self.scoreboard.release(slot, reg);
            self.pending_ops[slot] -= 1;
            if let Some(s) = &mut self.san {
                s.fold(at);
                s.fold(((slot as u64) << 32) | u64::from(reg.0));
            }
            any = true;
        }
        any
    }

    /// Accept fills coming back from the interconnect.
    fn process_responses(&mut self, ctx: &mut TickCtx<'_>) -> Result<bool, TickError> {
        let cycle = ctx.cycle;
        let mut any = false;
        while let Some(resp) = ctx.icnt.pop_response(self.id.into(), cycle) {
            any = true;
            let duplicate = ctx
                .san
                .as_deref_mut()
                .is_some_and(SanRun::should_duplicate_response);
            self.accept_response(resp, ctx)?;
            if duplicate {
                // Injected fault: the packet arrives a second time. The
                // conservation checker must report a double response.
                self.accept_response(resp, ctx)?;
            }
        }
        Ok(any)
    }

    /// Handle one response from the interconnect: fill the L1 and release
    /// its waiters.
    fn accept_response(
        &mut self,
        resp: MemRequest,
        ctx: &mut TickCtx<'_>,
    ) -> Result<(), TickError> {
        let cycle = ctx.cycle;
        if resp.is_write {
            return Ok(()); // stores are fire-and-forget
        }
        if let Some(s) = &mut self.san {
            s.fold(cycle);
            s.fold(resp.block_addr);
        }
        if let Some(sr) = ctx.san.as_deref_mut() {
            if resp.san != 0 {
                sr.ledger.transition(resp.san, SanStage::Returned, cycle)?;
            }
            if sr.should_drop_mshr() {
                // Injected fault: lose the MSHR bookkeeping just before the
                // fill; the empty fill below must be reported.
                self.l1.forget_mshr(resp.block_addr);
            }
        }
        let waiters = self.l1.fill(resp.block_addr, cycle);
        if waiters.is_empty() {
            // A fill with no waiting request means MSHR bookkeeping was lost
            // somewhere in the hierarchy. With the sanitizer on, the ledger
            // attributes the violation; without it, surface a bare
            // conservation report instead of panicking or silently dropping
            // the response.
            if let Some(sr) = ctx.san.as_deref_mut() {
                return Err(sr
                    .ledger
                    .response_without_request(resp.san, resp.block_addr, self.id, resp.class, cycle)
                    .into());
            }
            return Err(TickError::San(Box::new(
                crate::san::SanitizerReport::Conservation(gcl_mem::ConservationReport {
                    kind: gcl_mem::ConservationKind::ResponseWithoutRequest,
                    san_id: resp.san,
                    pc: None,
                    class: resp.class,
                    is_write: false,
                    block_addr: resp.block_addr,
                    sm: self.id,
                    stage: SanStage::Returned,
                    cycle,
                }),
            )));
        }
        for mut w in waiters {
            w.t_icnt_inject = resp.t_icnt_inject;
            w.t_l2_done = resp.t_l2_done;
            w.t_returned = cycle;
            if w.san != 0 {
                if let Some(sr) = ctx.san.as_deref_mut() {
                    sr.ledger.retire(w.san, cycle)?;
                }
            }
            self.finish_request(w, cycle);
        }
        Ok(())
    }

    fn finish_request(&mut self, req: MemRequest, cycle: Cycle) {
        let meta = req.meta;
        if meta == PREFETCH_META {
            return; // prefetched data is now resident; nothing waits on it
        }
        if self.loadtrack.complete_request(meta, &req, cycle) {
            // Whole warp load finished: find its record (dst/warp) via the
            // request's packed routing info.
            let warp_slot = (req.id >> 32) as usize;
            let dst = Reg((req.id & 0xFFFF_FFFF) as u32);
            self.scoreboard.release(warp_slot, dst);
            self.pending_ops[warp_slot] -= 1;
        }
    }

    fn process_local_done(&mut self, ctx: &mut TickCtx<'_>) -> Result<bool, TickError> {
        let cycle = ctx.cycle;
        let mut any = false;
        while let Some(Reverse(head)) = self.local_done.peek() {
            if head.at > cycle {
                break;
            }
            any = true;
            let Reverse(done) = self.local_done.pop().unwrap();
            match (done.meta, done.req) {
                // An L1-hit request of a tracked load.
                (Some(_meta), Some(MemRequestOrd(key))) => {
                    let mut req = self.local_reqs.remove(&key).expect("missing local request");
                    req.t_returned = cycle;
                    if req.san != 0 {
                        if let Some(sr) = ctx.san.as_deref_mut() {
                            sr.ledger.retire(req.san, cycle)?;
                        }
                    }
                    self.finish_request(req, cycle);
                }
                // Shared/const load completion.
                _ => {
                    if let Some(dst) = done.dst {
                        self.scoreboard.release(done.warp_slot, dst);
                    }
                    self.pending_ops[done.warp_slot] -= 1;
                }
            }
        }
        Ok(any)
    }

    /// Issue up to one instruction per scheduler. Returns
    /// `(sp, sfu, any_issued)` flags for occupancy accounting and the hang
    /// watchdog.
    fn issue(&mut self, ctx: &mut TickCtx<'_>) -> Result<(bool, bool, bool), TickError> {
        let n_sched = self.schedulers.len();
        let mut sp = false;
        let mut sfu = false;
        let mut any = false;
        for s in 0..n_sched {
            let candidates: Vec<usize> = (0..self.warps.len())
                .filter(|slot| slot % n_sched == s && self.warps[*slot].is_some())
                .collect();
            let ldst_space = self.ldst_queue.len() < ctx.cfg.ldst_queue_len;
            let picked = {
                let warps = &self.warps;
                let sb = &self.scoreboard;
                let kernel = ctx.kernel;
                self.schedulers[s].pick(
                    &candidates,
                    |slot| {
                        let Some(w) = warps[slot].as_ref() else {
                            return false;
                        };
                        if w.is_finished() || w.at_barrier.is_some() {
                            return false;
                        }
                        let Some(inst) = w.next_inst(kernel) else {
                            return false;
                        };
                        if !sb.can_issue(slot, inst) {
                            return false;
                        }
                        if inst.op.unit() == Unit::LdSt && !ldst_space {
                            return false;
                        }
                        true
                    },
                    |slot| self.warp_age[slot],
                )
            };
            let Some(slot) = picked else { continue };
            let unit = {
                let w = self.warps[slot].as_ref().unwrap();
                w.next_inst(ctx.kernel).unwrap().op.unit()
            };
            match unit {
                Unit::Sp => sp = true,
                Unit::Sfu => sfu = true,
                _ => {}
            }
            any = true;
            self.issue_warp(slot, ctx)?;
        }
        Ok((sp, sfu, any))
    }

    fn issue_warp(&mut self, slot: usize, ctx: &mut TickCtx<'_>) -> Result<(), TickError> {
        let cycle = ctx.cycle;
        let mut warp = self.warps[slot].take().expect("issuing empty warp slot");
        let active_mask = warp.active_mask();
        let active = active_mask.count_ones();
        let cta_slot = warp.cta_slot;
        let pc = warp.pc();
        let inst_unit = warp.next_inst(ctx.kernel).unwrap().op.unit();
        let result = if warp.replay.is_some() {
            // Replay: re-inject the recorded step outcome; no functional
            // execution (a recorded stream cannot fault).
            Ok(warp.step_replay())
        } else {
            let mut ectx = ExecCtx {
                kernel: ctx.kernel,
                reconv: ctx.reconv,
                params: ctx.params,
                gmem: ctx.gmem,
                smem: &mut self.smem[cta_slot],
                ntid: ctx.ntid,
                nctaid: ctx.nctaid,
                memcheck: ctx.cfg.memcheck,
            };
            warp.step(&mut ectx)
        };
        let result = match result {
            Ok(r) => r,
            Err(violation) => {
                // Leave the warp in place (pc still at the faulting
                // instruction) so the state is inspectable, and hand the
                // placement-attributed report up; the GPU attaches the
                // classification context.
                let cta = warp.linear_cta;
                self.warps[slot] = Some(warp);
                return Err(TickError::Mem(Box::new(MemFaultReport {
                    kernel: ctx.kernel.name().to_string(),
                    sm: self.id,
                    warp_slot: slot,
                    cta,
                    violation,
                    class: None,
                    witness: Vec::new(),
                })));
            }
        };
        self.stats.warp_insts += 1;
        self.stats.thread_insts += u64::from(active);
        if let Some(s) = &mut self.san {
            s.fold(cycle);
            s.fold(((pc as u64) << 32) | u64::from(active_mask));
        }
        let linear_cta = warp.linear_cta;
        if ctx.trace.is_some() || ctx.sink.is_some() {
            let ev = Trace::event(
                cycle,
                self.id,
                slot as u16,
                linear_cta,
                pc as u32,
                active_mask,
            );
            if let Some(trace) = ctx.trace.as_mut() {
                trace.record_event(ev);
            }
            if let Some(sink) = ctx.sink.as_deref_mut() {
                let stream = linear_cta * warps_per_cta(ctx.ntid, ctx.cfg.warp_size)
                    + u64::from(warp.warp_in_cta);
                let kind = ReplayKind::of_step(&result, warp.at_barrier);
                sink.issue(stream, &ev, &kind);
            }
        }
        self.warps[slot] = Some(warp);

        match result {
            StepResult::Alu { dst } => {
                let latency = match inst_unit {
                    Unit::Sfu => ctx.cfg.sfu_latency,
                    _ => ctx.cfg.sp_latency,
                };
                if let Some(d) = dst {
                    self.scoreboard.reserve(slot, d);
                    self.pending_ops[slot] += 1;
                    self.writebacks
                        .push(Reverse((cycle + Cycle::from(latency), slot, d)));
                }
            }
            StepResult::Mem(access) => {
                self.issued_mem_this_cycle = true;
                self.dispatch_mem(slot, linear_cta, pc, access, ctx)?;
            }
            StepResult::Branch { diverged } => {
                self.stats.branches += 1;
                if diverged {
                    self.stats.divergent_branches += 1;
                }
            }
            StepResult::Predicated | StepResult::Exit => {}
            StepResult::Barrier => {}
        }
        Ok(())
    }

    fn dispatch_mem(
        &mut self,
        slot: usize,
        linear_cta: u64,
        pc: usize,
        access: MemAccess,
        ctx: &mut TickCtx<'_>,
    ) -> Result<(), TickError> {
        let cycle = ctx.cycle;
        match access.space {
            Space::Param | Space::Const => {
                if let Some(d) = access.dst {
                    self.scoreboard.reserve(slot, d);
                }
                self.pending_ops[slot] += 1;
                self.ldst_queue.push_back(LdstEntry::Const {
                    warp_slot: slot,
                    dst: access.dst,
                    cycles_left: 1,
                });
            }
            Space::Shared => {
                if let Some(s) = &mut self.san {
                    let w = self.warps[slot]
                        .as_ref()
                        .expect("warp resident at dispatch");
                    s.check_shared(
                        w.cta_slot,
                        self.id,
                        linear_cta,
                        w.warp_in_cta,
                        pc,
                        access.is_store,
                        &access.lane_addrs,
                        access.bytes,
                    )?;
                }
                if !access.is_store {
                    self.stats.shared_load_warps += 1;
                }
                let degree = bank_conflict_degree(&access.lane_addrs);
                self.stats.bank_conflict_cycles += u64::from(degree - 1);
                if let Some(d) = access.dst {
                    self.scoreboard.reserve(slot, d);
                }
                self.pending_ops[slot] += 1;
                self.ldst_queue.push_back(LdstEntry::Shared {
                    warp_slot: slot,
                    dst: access.dst,
                    cycles_left: degree,
                });
            }
            Space::Global | Space::Local | Space::Tex => {
                let blocks = coalesce(&access.lane_addrs, access.bytes, ctx.cfg.l1.line_bytes);
                let n_requests = blocks.len() as u32;
                let is_store = access.is_store;
                let (class_tag, meta) = if is_store {
                    (ClassTag::Other, None)
                } else {
                    let class = ctx
                        .classification
                        .class_of(pc)
                        .unwrap_or(LoadClass::Deterministic);
                    self.stats.global_load_warps[match class {
                        LoadClass::Deterministic => 0,
                        LoadClass::NonDeterministic => 1,
                    }] += 1;
                    let active = access.lane_addrs.len() as u32;
                    let meta = self.loadtrack.begin(pc, class, n_requests, active, cycle);
                    for &b in &blocks {
                        ctx.blocktrack.record_at(b, linear_cta, pc as u64);
                    }
                    (Self::class_tag(class), Some(meta))
                };
                let dst = access.dst;
                if let Some(d) = dst {
                    self.scoreboard.reserve(slot, d);
                }
                self.pending_ops[slot] += 1;
                let mut pending = VecDeque::with_capacity(blocks.len());
                for b in blocks {
                    let id = (slot as u64) << 32 | u64::from(dst.map_or(0, |d| d.0));
                    let mut req = if is_store {
                        MemRequest::write(id, b, self.id, cycle)
                    } else {
                        MemRequest::read(id, b, self.id, class_tag, meta.unwrap_or(0), cycle)
                    };
                    req.class = class_tag;
                    if let Some(sr) = ctx.san.as_deref_mut() {
                        req.san = sr.ledger.create(
                            ReqInfo {
                                pc: Some(pc),
                                class: class_tag,
                                is_write: is_store,
                                block_addr: b,
                                sm: self.id,
                            },
                            cycle,
                        );
                    }
                    pending.push_back(req);
                }
                let split = match (ctx.cfg.warp_split_nd, class_tag) {
                    (Some(k), ClassTag::NonDeterministic) => Some(k),
                    _ => None,
                };
                self.ldst_queue.push_back(LdstEntry::Global {
                    warp_slot: slot,
                    meta,
                    is_store,
                    pending,
                    split,
                    accepted_since_rotate: 0,
                });
            }
        }
        Ok(())
    }

    fn release_barriers(&mut self) {
        for idx in 0..self.cta_slots.len() {
            let Some(cta) = &self.cta_slots[idx] else {
                continue;
            };
            // A barrier releases only when every live warp of the CTA waits
            // at the SAME named barrier. Warps parked on different ids never
            // release each other (the named-barrier deadlock the watchdog
            // reports as a hang).
            let mut barrier: Option<u32> = None;
            let mut releasable = true;
            let mut any_live = false;
            for &slot in &cta.warp_slots {
                if let Some(w) = &self.warps[slot] {
                    if !w.is_finished() {
                        any_live = true;
                        match (w.at_barrier, barrier) {
                            (None, _) => {
                                releasable = false;
                                break;
                            }
                            (Some(id), Some(prev)) if id != prev => {
                                releasable = false;
                                break;
                            }
                            (Some(id), _) => barrier = Some(id),
                        }
                    }
                }
            }
            if any_live && releasable {
                for &slot in &cta.warp_slots {
                    if let Some(w) = self.warps[slot].as_mut() {
                        w.at_barrier = None;
                    }
                }
                // A barrier release opens a new race-detection epoch: accesses
                // before the barrier can no longer conflict with accesses after.
                if let Some(s) = &mut self.san {
                    s.barrier_release(idx, barrier.unwrap_or(0));
                }
            }
        }
    }

    /// Process the head of the LD/ST queue: shared/const countdowns and L1
    /// access attempts for global requests. Returns whether the unit moved
    /// (countdown advanced or a request was accepted by the L1).
    fn process_ldst(&mut self, ctx: &mut TickCtx<'_>) -> Result<bool, TickError> {
        let cycle = ctx.cycle;
        let Some(head) = self.ldst_queue.front_mut() else {
            return Ok(false);
        };
        match head {
            LdstEntry::Const {
                warp_slot,
                dst,
                cycles_left,
            } => {
                *cycles_left -= 1;
                if *cycles_left == 0 {
                    let done = LocalDone {
                        at: cycle + Cycle::from(ctx.cfg.const_latency),
                        seq: self.next_seq,
                        meta: None,
                        req: None,
                        warp_slot: *warp_slot,
                        dst: *dst,
                    };
                    self.next_seq += 1;
                    self.local_done.push(Reverse(done));
                    self.ldst_queue.pop_front();
                }
                Ok(true)
            }
            LdstEntry::Shared {
                warp_slot,
                dst,
                cycles_left,
            } => {
                *cycles_left -= 1;
                if *cycles_left == 0 {
                    let done = LocalDone {
                        at: cycle + Cycle::from(ctx.cfg.shared_latency),
                        seq: self.next_seq,
                        meta: None,
                        req: None,
                        warp_slot: *warp_slot,
                        dst: *dst,
                    };
                    self.next_seq += 1;
                    self.local_done.push(Reverse(done));
                    self.ldst_queue.pop_front();
                }
                Ok(true)
            }
            LdstEntry::Global { .. } => self.process_global_head(ctx),
        }
    }

    fn process_global_head(&mut self, ctx: &mut TickCtx<'_>) -> Result<bool, TickError> {
        let cycle = ctx.cycle;
        let hit_latency = Cycle::from(ctx.cfg.l1.hit_latency);
        let mut rotate = false;
        let mut finished = false;
        let mut accepted = false;
        let mut hits: Vec<(u64, MemRequest)> = Vec::new();
        {
            let Some(LdstEntry::Global {
                meta,
                is_store,
                pending,
                split,
                accepted_since_rotate,
                warp_slot,
                ..
            }) = self.ldst_queue.front_mut()
            else {
                unreachable!()
            };
            let warp_slot = *warp_slot;
            for _port in 0..ctx.cfg.l1_ports {
                let Some(req) = pending.front().copied() else {
                    break;
                };
                let outcome = self.l1.access(req, cycle);
                if !outcome.accepted() {
                    break; // retry next cycle; head-of-line blocks
                }
                pending.pop_front();
                accepted = true;
                if req.san != 0 {
                    if let Some(sr) = ctx.san.as_deref_mut() {
                        // Stores only ever return MissIssued when accepted
                        // (write-through), so the Hit/HitReserved arms are
                        // load-only.
                        let stage = match outcome {
                            AccessOutcome::Hit => SanStage::L1Hit,
                            AccessOutcome::HitReserved => SanStage::MshrMerged,
                            _ => SanStage::MissQueue,
                        };
                        sr.ledger.transition(req.san, stage, cycle)?;
                    }
                }
                if let Some(m) = meta {
                    self.loadtrack.note_accept(*m, cycle);
                }
                if outcome == AccessOutcome::Hit && !*is_store {
                    let mut r = req;
                    r.t_l1_accepted = cycle;
                    hits.push((cycle + hit_latency, r));
                }
                if outcome == AccessOutcome::MissIssued
                    && !*is_store
                    && ctx.cfg.prefetch.triggers(req.class)
                {
                    // Section X-A: class-selective next-line prefetch. Best
                    // effort — reservation failures are simply dropped.
                    let mut pf = MemRequest::read(
                        req.id,
                        req.block_addr + u64::from(ctx.cfg.l1.line_bytes),
                        self.id,
                        ClassTag::Other,
                        PREFETCH_META,
                        cycle,
                    );
                    pf.meta = PREFETCH_META;
                    if let Some(sr) = ctx.san.as_deref_mut() {
                        // Tag before the access: on MissIssued/HitReserved the
                        // MSHR stores a copy of `pf`, so the id must be set now.
                        pf.san = sr.ledger.create(
                            ReqInfo {
                                pc: None,
                                class: ClassTag::Other,
                                is_write: false,
                                block_addr: pf.block_addr,
                                sm: self.id,
                            },
                            cycle,
                        );
                    }
                    let pf_outcome = self.l1.access(pf, cycle);
                    if pf_outcome == AccessOutcome::MissIssued {
                        self.stats.prefetches_issued += 1;
                    }
                    if pf.san != 0 {
                        if let Some(sr) = ctx.san.as_deref_mut() {
                            match pf_outcome {
                                AccessOutcome::MissIssued => {
                                    sr.ledger.transition(pf.san, SanStage::MissQueue, cycle)?;
                                }
                                // Merged into an existing MSHR entry: it will
                                // come back with the fill, so it must stay live
                                // or the fill would double-retire it.
                                AccessOutcome::HitReserved => {
                                    sr.ledger.transition(pf.san, SanStage::MshrMerged, cycle)?;
                                }
                                // Hit or reservation failure: dropped prefetch.
                                _ => sr.ledger.retire(pf.san, cycle)?,
                            }
                        }
                    }
                }
                if let Some(k) = split {
                    *accepted_since_rotate += 1;
                    if *accepted_since_rotate >= *k && !pending.is_empty() {
                        *accepted_since_rotate = 0;
                        rotate = true;
                        break;
                    }
                }
            }
            if pending.is_empty() {
                finished = true;
                if *is_store {
                    // All store requests handed to the memory system; the
                    // LD/ST slot is free.
                    self.pending_ops[warp_slot] -= 1;
                }
            }
        }
        for (at, req) in hits {
            let key = self.next_seq;
            self.next_seq += 1;
            self.local_reqs.insert(key, req);
            self.local_done.push(Reverse(LocalDone {
                at,
                seq: key,
                meta: Some(req.meta),
                req: Some(MemRequestOrd(key)),
                warp_slot: 0,
                dst: None,
            }));
        }
        if finished {
            self.ldst_queue.pop_front();
        } else if rotate {
            let entry = self.ldst_queue.pop_front().unwrap();
            self.ldst_queue.push_back(entry);
        }
        Ok(accepted)
    }

    /// Move L1 misses into the interconnect.
    fn drain_misses(&mut self, ctx: &mut TickCtx<'_>) -> Result<(), TickError> {
        let cycle = ctx.cycle;
        while self.l1.peek_miss().is_some() && ctx.icnt.can_inject_request(self.id.into()) {
            let mut req = self.l1.pop_miss().unwrap();
            if ctx
                .san
                .as_deref_mut()
                .is_some_and(|s| s.should_drop_store(req.is_write))
            {
                // Injected fault: the store vanishes between the L1 miss
                // queue and the interconnect. Nothing waits on a store, so
                // only the conservation ledger can notice.
                continue;
            }
            if req.san != 0 {
                if let Some(sr) = ctx.san.as_deref_mut() {
                    sr.ledger.transition(req.san, SanStage::IcntReq, cycle)?;
                }
            }
            req.t_icnt_inject = cycle;
            let part = ctx.addrmap.partition_of(req.block_addr, self.id.into());
            let ok = ctx.icnt.inject_request(self.id.into(), part, req);
            debug_assert!(ok, "inject after can_inject check");
        }
        Ok(())
    }

    /// Retire CTAs whose warps have finished and drained. Returns whether
    /// any CTA retired.
    fn retire_ctas(&mut self) -> bool {
        let mut any = false;
        for cta_idx in 0..self.cta_slots.len() {
            let Some(cta) = &self.cta_slots[cta_idx] else {
                continue;
            };
            let done = cta.warp_slots.iter().all(|&slot| {
                self.warps[slot].as_ref().is_some_and(|w| w.is_finished())
                    && self.pending_ops[slot] == 0
            });
            if done {
                let cta = self.cta_slots[cta_idx].take().unwrap();
                for slot in cta.warp_slots {
                    self.warps[slot] = None;
                    self.scoreboard.clear(slot);
                }
                self.stats.ctas_retired += 1;
                any = true;
            }
        }
        any
    }

    /// Freeze this SM's scheduling-relevant state for a hang report: every
    /// resident warp's pc/barrier/in-flight status plus LD/ST queue and
    /// MSHR occupancy.
    pub fn snapshot(&self) -> SmSnapshot {
        let warps = self
            .warps
            .iter()
            .enumerate()
            .filter_map(|(slot, w)| {
                let w = w.as_ref()?;
                Some(WarpSnapshot {
                    slot,
                    cta: w.linear_cta,
                    pc: (!w.is_finished()).then(|| w.pc()),
                    at_barrier: w.at_barrier,
                    pending_ops: self.pending_ops[slot],
                    scoreboard_busy: self.scoreboard.busy(slot),
                })
            })
            .collect();
        SmSnapshot {
            id: self.id,
            ldst_queue: self.ldst_queue.len(),
            l1_inflight: self.l1.inflight(),
            warps,
        }
    }

    /// This SM's L1 cache (for statistics).
    pub fn l1(&self) -> &Cache {
        &self.l1
    }

    /// This SM's execution statistics.
    pub fn stats(&self) -> &SmStats {
        &self.stats
    }

    /// This SM's load tracker.
    pub fn loadtrack(&self) -> &LoadTracker {
        &self.loadtrack
    }

    /// Consume the SM, returning (stats, the L1 cache, load tracker). The
    /// cache keeps its contents so it can stay warm across launches.
    pub fn into_parts(self) -> (SmStats, Cache, LoadTracker) {
        (self.stats, self.l1, self.loadtrack)
    }

    /// Checkpoint-encode the complete mid-launch state of this SM: warps,
    /// CTA slots, shared memory, scoreboard, schedulers, LD/ST queue, local
    /// completion heaps, writebacks, load tracker, statistics and (when
    /// sanitizing) the per-SM sanitizer state. Heaps are written as sorted
    /// vectors and hash maps in sorted key order so equal states produce
    /// identical bytes.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.u16(self.id);
        self.l1.ckpt_encode(e);
        e.seq(&self.warps, |e, w| e.opt(w, |e, w| w.ckpt_encode(e)));
        e.seq(&self.warp_age, |e, &a| e.u64(a));
        e.seq(&self.pending_ops, |e, &p| e.u32(p));
        e.u64(self.next_age);
        e.seq(&self.cta_slots, |e, slot| {
            e.opt(slot, |e, cta| {
                e.seq(&cta.warp_slots, |e, &s| e.usize(s));
            });
        });
        e.seq(&self.smem, |e, mem| e.bytes(mem));
        self.scoreboard.ckpt_encode(e);
        e.seq(&self.schedulers, |e, s| s.ckpt_encode(e));
        e.usize(self.ldst_queue.len());
        for entry in &self.ldst_queue {
            match entry {
                LdstEntry::Global {
                    warp_slot,
                    meta,
                    is_store,
                    pending,
                    split,
                    accepted_since_rotate,
                } => {
                    e.u8(0);
                    e.usize(*warp_slot);
                    e.opt(meta, |e, &m| e.u64(m));
                    e.bool(*is_store);
                    e.usize(pending.len());
                    for req in pending {
                        req.ckpt_encode(e);
                    }
                    e.opt(split, |e, &k| e.usize(k));
                    e.usize(*accepted_since_rotate);
                }
                LdstEntry::Shared {
                    warp_slot,
                    dst,
                    cycles_left,
                } => {
                    e.u8(1);
                    e.usize(*warp_slot);
                    e.opt(dst, |e, d| e.u32(d.0));
                    e.u32(*cycles_left);
                }
                LdstEntry::Const {
                    warp_slot,
                    dst,
                    cycles_left,
                } => {
                    e.u8(2);
                    e.usize(*warp_slot);
                    e.opt(dst, |e, d| e.u32(d.0));
                    e.u32(*cycles_left);
                }
            }
        }
        let mut done: Vec<&LocalDone> = self.local_done.iter().map(|r| &r.0).collect();
        done.sort_unstable_by_key(|d| (d.at, d.seq));
        e.usize(done.len());
        for ld in done {
            e.u64(ld.at);
            e.u64(ld.seq);
            e.opt(&ld.meta, |e, &m| e.u64(m));
            e.opt(&ld.req, |e, r| e.u64(r.0));
            e.usize(ld.warp_slot);
            e.opt(&ld.dst, |e, d| e.u32(d.0));
        }
        let mut keys: Vec<&u64> = self.local_reqs.keys().collect();
        keys.sort_unstable();
        e.usize(keys.len());
        for k in keys {
            e.u64(*k);
            self.local_reqs[k].ckpt_encode(e);
        }
        let mut wbs: Vec<(Cycle, usize, Reg)> = self.writebacks.iter().map(|r| r.0).collect();
        wbs.sort_unstable();
        e.usize(wbs.len());
        for (at, slot, reg) in wbs {
            e.u64(at);
            e.usize(slot);
            e.u32(reg.0);
        }
        self.loadtrack.ckpt_encode(e);
        e.u64(self.stats.warp_insts);
        e.u64(self.stats.thread_insts);
        e.u64(self.stats.global_load_warps[0]);
        e.u64(self.stats.global_load_warps[1]);
        e.u64(self.stats.shared_load_warps);
        for u in self.stats.unit_busy {
            e.u64(u);
        }
        e.u64(self.stats.cycles);
        e.u64(self.stats.bank_conflict_cycles);
        e.u64(self.stats.ctas_retired);
        e.u64(self.stats.prefetches_issued);
        e.u64(self.stats.branches);
        e.u64(self.stats.divergent_branches);
        e.u64(self.next_seq);
        e.bool(self.issued_mem_this_cycle);
        e.opt(&self.san, |e, s| s.ckpt_encode(e));
    }

    /// Checkpoint-decode an SM written by
    /// [`ckpt_encode`](Self::ckpt_encode), validating the state against the
    /// configuration and the kernel's shared-memory footprint (recorded in
    /// the snapshot, since the kernel itself is re-supplied only at resume).
    pub fn ckpt_decode(
        d: &mut Dec<'_>,
        cfg: &GpuConfig,
        shared_bytes: usize,
    ) -> Result<Sm, WireError> {
        let max_warps = (cfg.max_threads_per_sm / cfg.warp_size) as usize;
        let id = d.u16()?;
        let l1 = Cache::ckpt_decode(d, cfg.l1)?;
        let warps = d.seq(|d| d.opt(Warp::ckpt_decode))?;
        if warps.len() != max_warps {
            return Err(WireError::Malformed("warp slot count mismatch"));
        }
        let warp_age = d.seq(|d| d.u64())?;
        let pending_ops = d.seq(|d| d.u32())?;
        if warp_age.len() != max_warps || pending_ops.len() != max_warps {
            return Err(WireError::Malformed("warp side-table size mismatch"));
        }
        let next_age = d.u64()?;
        let cta_slots = d.seq(|d| {
            d.opt(|d| {
                let warp_slots = d.seq(|d| d.usize())?;
                if warp_slots.iter().any(|&s| s >= max_warps) {
                    return Err(WireError::Malformed("CTA warp slot out of range"));
                }
                Ok(CtaState { warp_slots })
            })
        })?;
        let smem = d.seq(|d| Ok(d.bytes()?.to_vec()))?;
        if smem.len() != cta_slots.len() {
            return Err(WireError::Malformed("shared-memory slot count mismatch"));
        }
        if smem.iter().any(|m| m.len() != shared_bytes) {
            return Err(WireError::Malformed("shared-memory size mismatch"));
        }
        let scoreboard = Scoreboard::ckpt_decode(d)?;
        let schedulers = d.seq(|d| WarpScheduler::ckpt_decode(d, cfg.warp_sched))?;
        if schedulers.len() != cfg.n_schedulers {
            return Err(WireError::Malformed("scheduler count mismatch"));
        }
        let n_ldst = d.seq_len()?;
        let mut ldst_queue = VecDeque::with_capacity(n_ldst);
        for _ in 0..n_ldst {
            let entry = match d.u8()? {
                0 => {
                    let warp_slot = d.usize()?;
                    let meta = d.opt(|d| d.u64())?;
                    let is_store = d.bool()?;
                    let n = d.seq_len()?;
                    let mut pending = VecDeque::with_capacity(n);
                    for _ in 0..n {
                        pending.push_back(MemRequest::ckpt_decode(d)?);
                    }
                    let split = d.opt(|d| d.usize())?;
                    let accepted_since_rotate = d.usize()?;
                    LdstEntry::Global {
                        warp_slot,
                        meta,
                        is_store,
                        pending,
                        split,
                        accepted_since_rotate,
                    }
                }
                1 => LdstEntry::Shared {
                    warp_slot: d.usize()?,
                    dst: d.opt(|d| Ok(Reg(d.u32()?)))?,
                    cycles_left: d.u32()?,
                },
                2 => LdstEntry::Const {
                    warp_slot: d.usize()?,
                    dst: d.opt(|d| Ok(Reg(d.u32()?)))?,
                    cycles_left: d.u32()?,
                },
                _ => return Err(WireError::Malformed("bad LD/ST entry tag")),
            };
            let slot = match &entry {
                LdstEntry::Global { warp_slot, .. }
                | LdstEntry::Shared { warp_slot, .. }
                | LdstEntry::Const { warp_slot, .. } => *warp_slot,
            };
            if slot >= max_warps {
                return Err(WireError::Malformed("LD/ST warp slot out of range"));
            }
            ldst_queue.push_back(entry);
        }
        let n_done = d.seq_len()?;
        let mut local_done = BinaryHeap::with_capacity(n_done);
        let mut done_keys = Vec::new();
        for _ in 0..n_done {
            let at = d.u64()?;
            let seq = d.u64()?;
            let meta = d.opt(|d| d.u64())?;
            let req = d.opt(|d| Ok(MemRequestOrd(d.u64()?)))?;
            let warp_slot = d.usize()?;
            let dst = d.opt(|d| Ok(Reg(d.u32()?)))?;
            if warp_slot >= max_warps {
                return Err(WireError::Malformed("local-done warp slot out of range"));
            }
            if let Some(MemRequestOrd(k)) = req {
                done_keys.push(k);
            }
            local_done.push(Reverse(LocalDone {
                at,
                seq,
                meta,
                req,
                warp_slot,
                dst,
            }));
        }
        let n_reqs = d.seq_len()?;
        let mut local_reqs = HashMap::with_capacity(n_reqs);
        for _ in 0..n_reqs {
            let k = d.u64()?;
            let req = MemRequest::ckpt_decode(d)?;
            if local_reqs.insert(k, req).is_some() {
                return Err(WireError::Malformed("duplicate local request key"));
            }
        }
        if done_keys.iter().any(|k| !local_reqs.contains_key(k)) {
            return Err(WireError::Malformed("dangling local request key"));
        }
        let n_wb = d.seq_len()?;
        let mut writebacks = BinaryHeap::with_capacity(n_wb);
        for _ in 0..n_wb {
            let at = d.u64()?;
            let slot = d.usize()?;
            let reg = Reg(d.u32()?);
            if slot >= max_warps {
                return Err(WireError::Malformed("writeback warp slot out of range"));
            }
            writebacks.push(Reverse((at, slot, reg)));
        }
        let loadtrack = LoadTracker::ckpt_decode(d)?;
        let stats = SmStats {
            warp_insts: d.u64()?,
            thread_insts: d.u64()?,
            global_load_warps: [d.u64()?, d.u64()?],
            shared_load_warps: d.u64()?,
            unit_busy: [d.u64()?, d.u64()?, d.u64()?],
            cycles: d.u64()?,
            bank_conflict_cycles: d.u64()?,
            ctas_retired: d.u64()?,
            prefetches_issued: d.u64()?,
            branches: d.u64()?,
            divergent_branches: d.u64()?,
        };
        let next_seq = d.u64()?;
        let issued_mem_this_cycle = d.bool()?;
        let n_cta_slots = cta_slots.len();
        let san = d.opt(|d| SmSan::ckpt_decode(d, n_cta_slots, shared_bytes))?;
        if san.is_some() != cfg.sanitize {
            return Err(WireError::Malformed("sanitizer state presence mismatch"));
        }
        Ok(Sm {
            id,
            l1,
            warps,
            warp_age,
            pending_ops,
            next_age,
            cta_slots,
            smem,
            scoreboard,
            schedulers,
            ldst_queue,
            local_done,
            local_reqs,
            writebacks,
            loadtrack,
            stats,
            next_seq,
            issued_mem_this_cycle,
            san,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_conflicts_counted() {
        // All lanes hit the same bank, different words: degree 4.
        let addrs: Vec<(u32, u64)> = (0..4).map(|l| (l, u64::from(l) * 128)).collect();
        assert_eq!(bank_conflict_degree(&addrs), 4);
        // Conflict-free: consecutive words.
        let addrs: Vec<(u32, u64)> = (0..32).map(|l| (l, u64::from(l) * 4)).collect();
        assert_eq!(bank_conflict_degree(&addrs), 1);
        // Broadcast: same word everywhere.
        let addrs: Vec<(u32, u64)> = (0..32).map(|l| (l, 64)).collect();
        assert_eq!(bank_conflict_degree(&addrs), 1);
        assert_eq!(bank_conflict_degree(&[]), 1);
    }
}
