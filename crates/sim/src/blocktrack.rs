//! Data-block access tracking across CTAs: cold misses, reuse, and the
//! hidden inter-CTA locality of the paper's Figures 10–12.

use gcl_mem::{Dec, Enc, WireError};
use std::collections::HashMap;

/// Summary statistics extracted from a [`BlockTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    /// Distinct 128 B blocks touched.
    pub blocks: u64,
    /// Total (global-load) memory requests.
    pub accesses: u64,
    /// Cold-miss ratio: first-touches over all accesses (Figure 10).
    pub cold_miss_ratio: f64,
    /// Mean accesses per block (Figure 10's line).
    pub mean_accesses_per_block: f64,
    /// Fraction of blocks touched by ≥ 2 CTAs (Figure 11, blue bars).
    pub shared_block_ratio: f64,
    /// Fraction of accesses that go to such shared blocks (Figure 11, red).
    pub shared_access_ratio: f64,
    /// Mean number of CTAs touching a shared block (Figure 11, line).
    pub mean_ctas_per_shared_block: f64,
}

/// Tracks, per 128 B data block, how often and by which CTAs it is accessed.
///
/// CTA distances (Figure 12) use the *consecutive-accessor* definition: each
/// access to a block by a CTA different from the block's previous accessor
/// contributes one sample `|cta - prev_cta|`. This is linear in the access
/// count (the all-pairs definition is quadratic in sharers) and reflects the
/// runtime proximity of sharing that a scheduler could actually exploit.
#[derive(Debug, Default)]
pub struct BlockTracker {
    blocks: HashMap<u64, BlockInfo>,
    total_accesses: u64,
    distance_hist: HashMap<u64, u64>,
}

#[derive(Debug, Default)]
struct BlockInfo {
    count: u64,
    ctas: HashMap<u64, u64>,
    last_cta: u64,
}

impl BlockTracker {
    /// An empty tracker.
    pub fn new() -> BlockTracker {
        BlockTracker::default()
    }

    /// Record one memory request for `block_addr` issued by (linearized)
    /// CTA `cta`.
    pub fn record(&mut self, block_addr: u64, cta: u64) {
        self.total_accesses += 1;
        let info = self.blocks.entry(block_addr).or_default();
        if info.count > 0 && info.last_cta != cta {
            let d = info.last_cta.abs_diff(cta);
            *self.distance_hist.entry(d).or_insert(0) += 1;
        }
        info.count += 1;
        info.last_cta = cta;
        *info.ctas.entry(cta).or_insert(0) += 1;
    }

    /// Whether `block_addr` has been touched before (i.e. the next access
    /// would *not* be a cold miss).
    pub fn is_warm(&self, block_addr: u64) -> bool {
        self.blocks.contains_key(&block_addr)
    }

    /// Total recorded accesses.
    pub fn accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Compute the Figure 10/11 summary.
    pub fn summary(&self) -> BlockSummary {
        let blocks = self.blocks.len() as u64;
        let accesses = self.total_accesses;
        let shared: Vec<&BlockInfo> = self.blocks.values().filter(|b| b.ctas.len() >= 2).collect();
        let shared_blocks = shared.len() as u64;
        let shared_accesses: u64 = shared.iter().map(|b| b.count).sum();
        let shared_cta_total: u64 = shared.iter().map(|b| b.ctas.len() as u64).sum();
        BlockSummary {
            blocks,
            accesses,
            cold_miss_ratio: ratio(blocks, accesses),
            mean_accesses_per_block: ratio(accesses, blocks),
            shared_block_ratio: ratio(shared_blocks, blocks),
            shared_access_ratio: ratio(shared_accesses, accesses),
            mean_ctas_per_shared_block: ratio(shared_cta_total, shared_blocks),
        }
    }

    /// The CTA-distance histogram (Figure 12), normalized to fractions.
    /// Returns `(distance, fraction)` pairs sorted by distance.
    pub fn distance_histogram(&self) -> Vec<(u64, f64)> {
        let total: u64 = self.distance_hist.values().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut out: Vec<(u64, f64)> = self
            .distance_hist
            .iter()
            .map(|(&d, &c)| (d, c as f64 / total as f64))
            .collect();
        out.sort_unstable_by_key(|(d, _)| *d);
        out
    }

    /// Checkpoint-encode the tracker (all maps in sorted key order).
    pub fn ckpt_encode(&self, e: &mut Enc) {
        let mut addrs: Vec<&u64> = self.blocks.keys().collect();
        addrs.sort_unstable();
        e.usize(addrs.len());
        for a in addrs {
            let info = &self.blocks[a];
            e.u64(*a);
            e.u64(info.count);
            let mut ctas: Vec<(&u64, &u64)> = info.ctas.iter().collect();
            ctas.sort_unstable_by_key(|(c, _)| **c);
            e.usize(ctas.len());
            for (c, n) in ctas {
                e.u64(*c);
                e.u64(*n);
            }
            e.u64(info.last_cta);
        }
        e.u64(self.total_accesses);
        let mut dist: Vec<(&u64, &u64)> = self.distance_hist.iter().collect();
        dist.sort_unstable_by_key(|(d, _)| **d);
        e.usize(dist.len());
        for (dv, c) in dist {
            e.u64(*dv);
            e.u64(*c);
        }
    }

    /// Checkpoint-decode a tracker written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<BlockTracker, WireError> {
        let n = d.seq_len()?;
        let mut blocks = HashMap::with_capacity(n);
        for _ in 0..n {
            let addr = d.u64()?;
            let count = d.u64()?;
            let nc = d.seq_len()?;
            let mut ctas = HashMap::with_capacity(nc);
            for _ in 0..nc {
                let c = d.u64()?;
                let v = d.u64()?;
                ctas.insert(c, v);
            }
            let last_cta = d.u64()?;
            blocks.insert(
                addr,
                BlockInfo {
                    count,
                    ctas,
                    last_cta,
                },
            );
        }
        let total_accesses = d.u64()?;
        let nd = d.seq_len()?;
        let mut distance_hist = HashMap::with_capacity(nd);
        for _ in 0..nd {
            let dv = d.u64()?;
            let c = d.u64()?;
            distance_hist.insert(dv, c);
        }
        Ok(BlockTracker {
            blocks,
            total_accesses,
            distance_hist,
        })
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_ratio_counts_first_touches() {
        let mut t = BlockTracker::new();
        t.record(0, 0);
        t.record(0, 0);
        t.record(128, 0);
        t.record(0, 0);
        let s = t.summary();
        assert_eq!(s.blocks, 2);
        assert_eq!(s.accesses, 4);
        assert!((s.cold_miss_ratio - 0.5).abs() < 1e-12);
        assert!((s.mean_accesses_per_block - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sharing_ratios() {
        let mut t = BlockTracker::new();
        // Block 0: CTAs 0 and 1 (shared). Block 128: only CTA 0.
        t.record(0, 0);
        t.record(0, 1);
        t.record(0, 1);
        t.record(128, 0);
        let s = t.summary();
        assert!((s.shared_block_ratio - 0.5).abs() < 1e-12);
        assert!((s.shared_access_ratio - 0.75).abs() < 1e-12);
        assert!((s.mean_ctas_per_shared_block - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_histogram_uses_consecutive_accessors() {
        let mut t = BlockTracker::new();
        t.record(0, 0); // first touch: no sample
        t.record(0, 1); // |1-0| = 1
        t.record(0, 1); // same CTA: no sample
        t.record(0, 33); // |33-1| = 32
        t.record(0, 1); // |1-33| = 32
        let h = t.distance_histogram();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].0, 1);
        assert!((h[0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h[1].0, 32);
        assert!((h[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_has_nan_ratios_and_empty_hist() {
        let t = BlockTracker::new();
        let s = t.summary();
        assert!(s.cold_miss_ratio.is_nan());
        assert!(t.distance_histogram().is_empty());
        assert!(!t.is_warm(0));
    }

    #[test]
    fn is_warm_after_first_touch() {
        let mut t = BlockTracker::new();
        assert!(!t.is_warm(256));
        t.record(256, 5);
        assert!(t.is_warm(256));
    }
}
