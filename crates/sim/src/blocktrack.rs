//! Data-block access tracking across CTAs: cold misses, reuse, and the
//! hidden inter-CTA locality of the paper's Figures 10–12.

use gcl_mem::{Dec, Enc, WireError};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Summary statistics extracted from a [`BlockTracker`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockSummary {
    /// Distinct 128 B blocks touched.
    pub blocks: u64,
    /// Total (global-load) memory requests.
    pub accesses: u64,
    /// Cold-miss ratio: first-touches over all accesses (Figure 10).
    pub cold_miss_ratio: f64,
    /// Mean accesses per block (Figure 10's line).
    pub mean_accesses_per_block: f64,
    /// Fraction of blocks touched by ≥ 2 CTAs (Figure 11, blue bars).
    pub shared_block_ratio: f64,
    /// Fraction of accesses that go to such shared blocks (Figure 11, red).
    pub shared_access_ratio: f64,
    /// Mean number of CTAs touching a shared block (Figure 11, line).
    pub mean_ctas_per_shared_block: f64,
}

/// Tracks, per 128 B data block, how often and by which CTAs it is accessed.
///
/// CTA distances (Figure 12) use the *consecutive-accessor* definition: each
/// access to a block by a CTA different from the block's previous accessor
/// contributes one sample `|cta - prev_cta|`. This is linear in the access
/// count (the all-pairs definition is quadratic in sharers) and reflects the
/// runtime proximity of sharing that a scheduler could actually exploit.
#[derive(Debug, Default)]
pub struct BlockTracker {
    blocks: HashMap<u64, BlockInfo>,
    total_accesses: u64,
    distance_hist: HashMap<u64, u64>,
    /// Interned kernel names of launches seen via
    /// [`begin_launch`](Self::begin_launch).
    kernels: Vec<String>,
    /// Index into `kernels` for the launch in flight.
    current_kernel: Option<u32>,
    /// Current launch only: pc → block → CTAs. Folded into `per_pc` at the
    /// next launch boundary, so CTA-id reuse across launches never counts
    /// as sharing.
    live: HashMap<u64, HashMap<u64, BTreeSet<u64>>>,
    /// Aggregated per-(kernel, pc) sharing statistics.
    per_pc: BTreeMap<(u32, u64), PcAgg>,
}

#[derive(Debug, Default)]
struct BlockInfo {
    count: u64,
    ctas: HashMap<u64, u64>,
    last_cta: u64,
}

#[derive(Debug, Default, Clone)]
struct PcAgg {
    accesses: u64,
    blocks: u64,
    shared_blocks: u64,
    max_ctas_per_block: u64,
    pairs: BTreeMap<(u64, u64), u64>,
}

/// Measured inter-CTA sharing for one static load (one pc of one kernel),
/// aggregated over launches but with CTA sets scoped *per launch* — two
/// launches reusing CTA id 0 do not make a block "shared".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcSharing {
    /// Kernel name the pc belongs to.
    pub kernel: String,
    /// Instruction index of the load.
    pub pc: u64,
    /// Memory requests recorded for this pc.
    pub accesses: u64,
    /// Block-launch instances touched (a block touched in two launches
    /// counts twice).
    pub blocks: u64,
    /// Instances touched by ≥ 2 CTAs within one launch.
    pub shared_blocks: u64,
    /// Largest CTA count on a single instance.
    pub max_ctas_per_block: u64,
    /// Per unordered CTA pair `(i, j)`, `i < j`: instances both touched.
    pub pairs: Vec<((u64, u64), u64)>,
}

impl PcSharing {
    /// Fraction of this pc's block instances shared by ≥ 2 CTAs.
    pub fn shared_ratio(&self) -> f64 {
        ratio(self.shared_blocks, self.blocks)
    }
}

impl BlockTracker {
    /// An empty tracker.
    pub fn new() -> BlockTracker {
        BlockTracker::default()
    }

    /// Record one memory request for `block_addr` issued by (linearized)
    /// CTA `cta`.
    pub fn record(&mut self, block_addr: u64, cta: u64) {
        self.total_accesses += 1;
        let info = self.blocks.entry(block_addr).or_default();
        if info.count > 0 && info.last_cta != cta {
            let d = info.last_cta.abs_diff(cta);
            *self.distance_hist.entry(d).or_insert(0) += 1;
        }
        info.count += 1;
        info.last_cta = cta;
        *info.ctas.entry(cta).or_insert(0) += 1;
    }

    /// Start a new launch of `kernel`: folds the previous launch's per-PC
    /// CTA sets into the aggregate and scopes subsequent
    /// [`record_at`](Self::record_at) calls to this launch.
    pub fn begin_launch(&mut self, kernel: &str) {
        self.flush_live();
        let id = match self.kernels.iter().position(|k| k == kernel) {
            Some(i) => i as u32,
            None => {
                self.kernels.push(kernel.to_string());
                (self.kernels.len() - 1) as u32
            }
        };
        self.current_kernel = Some(id);
    }

    /// [`record`](Self::record), attributed to the static load at `pc` of
    /// the kernel most recently passed to [`begin_launch`](Self::begin_launch).
    pub fn record_at(&mut self, block_addr: u64, cta: u64, pc: u64) {
        self.record(block_addr, cta);
        let Some(k) = self.current_kernel else {
            return;
        };
        self.per_pc.entry((k, pc)).or_default().accesses += 1;
        self.live
            .entry(pc)
            .or_default()
            .entry(block_addr)
            .or_default()
            .insert(cta);
    }

    fn flush_live(&mut self) {
        let Some(k) = self.current_kernel else {
            self.live.clear();
            return;
        };
        for (pc, blocks) in std::mem::take(&mut self.live) {
            let agg = self.per_pc.entry((k, pc)).or_default();
            fold_launch(agg, &blocks);
        }
    }

    /// Measured per-(kernel, pc) sharing, including the launch in flight,
    /// sorted by kernel name then pc.
    pub fn pc_sharing(&self) -> Vec<PcSharing> {
        let mut agg = self.per_pc.clone();
        if let Some(k) = self.current_kernel {
            for (pc, blocks) in &self.live {
                fold_launch(agg.entry((k, *pc)).or_default(), blocks);
            }
        }
        agg.into_iter()
            .map(|((k, pc), a)| PcSharing {
                kernel: self.kernels[k as usize].clone(),
                pc,
                accesses: a.accesses,
                blocks: a.blocks,
                shared_blocks: a.shared_blocks,
                max_ctas_per_block: a.max_ctas_per_block,
                pairs: a.pairs.into_iter().collect(),
            })
            .collect()
    }

    /// Whether `block_addr` has been touched before (i.e. the next access
    /// would *not* be a cold miss).
    pub fn is_warm(&self, block_addr: u64) -> bool {
        self.blocks.contains_key(&block_addr)
    }

    /// Total recorded accesses.
    pub fn accesses(&self) -> u64 {
        self.total_accesses
    }

    /// Compute the Figure 10/11 summary.
    pub fn summary(&self) -> BlockSummary {
        let blocks = self.blocks.len() as u64;
        let accesses = self.total_accesses;
        let shared: Vec<&BlockInfo> = self.blocks.values().filter(|b| b.ctas.len() >= 2).collect();
        let shared_blocks = shared.len() as u64;
        let shared_accesses: u64 = shared.iter().map(|b| b.count).sum();
        let shared_cta_total: u64 = shared.iter().map(|b| b.ctas.len() as u64).sum();
        BlockSummary {
            blocks,
            accesses,
            cold_miss_ratio: ratio(blocks, accesses),
            mean_accesses_per_block: ratio(accesses, blocks),
            shared_block_ratio: ratio(shared_blocks, blocks),
            shared_access_ratio: ratio(shared_accesses, accesses),
            mean_ctas_per_shared_block: ratio(shared_cta_total, shared_blocks),
        }
    }

    /// The CTA-distance histogram (Figure 12), normalized to fractions.
    /// Returns `(distance, fraction)` pairs sorted by distance.
    pub fn distance_histogram(&self) -> Vec<(u64, f64)> {
        let total: u64 = self.distance_hist.values().sum();
        if total == 0 {
            return Vec::new();
        }
        let mut out: Vec<(u64, f64)> = self
            .distance_hist
            .iter()
            .map(|(&d, &c)| (d, c as f64 / total as f64))
            .collect();
        out.sort_unstable_by_key(|(d, _)| *d);
        out
    }

    /// Checkpoint-encode the tracker (all maps in sorted key order).
    pub fn ckpt_encode(&self, e: &mut Enc) {
        let mut addrs: Vec<&u64> = self.blocks.keys().collect();
        addrs.sort_unstable();
        e.usize(addrs.len());
        for a in addrs {
            let info = &self.blocks[a];
            e.u64(*a);
            e.u64(info.count);
            let mut ctas: Vec<(&u64, &u64)> = info.ctas.iter().collect();
            ctas.sort_unstable_by_key(|(c, _)| **c);
            e.usize(ctas.len());
            for (c, n) in ctas {
                e.u64(*c);
                e.u64(*n);
            }
            e.u64(info.last_cta);
        }
        e.u64(self.total_accesses);
        let mut dist: Vec<(&u64, &u64)> = self.distance_hist.iter().collect();
        dist.sort_unstable_by_key(|(d, _)| **d);
        e.usize(dist.len());
        for (dv, c) in dist {
            e.u64(*dv);
            e.u64(*c);
        }
        e.usize(self.kernels.len());
        for k in &self.kernels {
            e.str(k);
        }
        e.u32(self.current_kernel.map_or(u32::MAX, |k| k));
        let mut live: Vec<(&u64, &HashMap<u64, BTreeSet<u64>>)> = self.live.iter().collect();
        live.sort_unstable_by_key(|(pc, _)| **pc);
        e.usize(live.len());
        for (pc, blocks) in live {
            e.u64(*pc);
            let mut bs: Vec<(&u64, &BTreeSet<u64>)> = blocks.iter().collect();
            bs.sort_unstable_by_key(|(b, _)| **b);
            e.usize(bs.len());
            for (b, ctas) in bs {
                e.u64(*b);
                e.usize(ctas.len());
                for &c in ctas {
                    e.u64(c);
                }
            }
        }
        e.usize(self.per_pc.len());
        for ((k, pc), a) in &self.per_pc {
            e.u32(*k);
            e.u64(*pc);
            e.u64(a.accesses);
            e.u64(a.blocks);
            e.u64(a.shared_blocks);
            e.u64(a.max_ctas_per_block);
            e.usize(a.pairs.len());
            for ((i, j), n) in &a.pairs {
                e.u64(*i);
                e.u64(*j);
                e.u64(*n);
            }
        }
    }

    /// Checkpoint-decode a tracker written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<BlockTracker, WireError> {
        let n = d.seq_len()?;
        let mut blocks = HashMap::with_capacity(n);
        for _ in 0..n {
            let addr = d.u64()?;
            let count = d.u64()?;
            let nc = d.seq_len()?;
            let mut ctas = HashMap::with_capacity(nc);
            for _ in 0..nc {
                let c = d.u64()?;
                let v = d.u64()?;
                ctas.insert(c, v);
            }
            let last_cta = d.u64()?;
            blocks.insert(
                addr,
                BlockInfo {
                    count,
                    ctas,
                    last_cta,
                },
            );
        }
        let total_accesses = d.u64()?;
        let nd = d.seq_len()?;
        let mut distance_hist = HashMap::with_capacity(nd);
        for _ in 0..nd {
            let dv = d.u64()?;
            let c = d.u64()?;
            distance_hist.insert(dv, c);
        }
        let nk = d.seq_len()?;
        let mut kernels = Vec::with_capacity(nk);
        for _ in 0..nk {
            kernels.push(d.str()?);
        }
        let ck = d.u32()?;
        let current_kernel = if ck == u32::MAX { None } else { Some(ck) };
        let nl = d.seq_len()?;
        let mut live = HashMap::with_capacity(nl);
        for _ in 0..nl {
            let pc = d.u64()?;
            let nb = d.seq_len()?;
            let mut bs = HashMap::with_capacity(nb);
            for _ in 0..nb {
                let b = d.u64()?;
                let ncs = d.seq_len()?;
                let mut ctas = BTreeSet::new();
                for _ in 0..ncs {
                    ctas.insert(d.u64()?);
                }
                bs.insert(b, ctas);
            }
            live.insert(pc, bs);
        }
        let np = d.seq_len()?;
        let mut per_pc = BTreeMap::new();
        for _ in 0..np {
            let k = d.u32()?;
            let pc = d.u64()?;
            let accesses = d.u64()?;
            let bcount = d.u64()?;
            let shared_blocks = d.u64()?;
            let max_ctas_per_block = d.u64()?;
            let npairs = d.seq_len()?;
            let mut pairs = BTreeMap::new();
            for _ in 0..npairs {
                let i = d.u64()?;
                let j = d.u64()?;
                let n = d.u64()?;
                pairs.insert((i, j), n);
            }
            per_pc.insert(
                (k, pc),
                PcAgg {
                    accesses,
                    blocks: bcount,
                    shared_blocks,
                    max_ctas_per_block,
                    pairs,
                },
            );
        }
        Ok(BlockTracker {
            blocks,
            total_accesses,
            distance_hist,
            kernels,
            current_kernel,
            live,
            per_pc,
        })
    }
}

/// Fold one launch's `block → CTA set` map for one pc into its aggregate.
fn fold_launch(agg: &mut PcAgg, blocks: &HashMap<u64, BTreeSet<u64>>) {
    for ctas in blocks.values() {
        agg.blocks += 1;
        agg.max_ctas_per_block = agg.max_ctas_per_block.max(ctas.len() as u64);
        if ctas.len() >= 2 {
            agg.shared_blocks += 1;
            let list: Vec<u64> = ctas.iter().copied().collect();
            for (n, &i) in list.iter().enumerate() {
                for &j in &list[n + 1..] {
                    *agg.pairs.entry((i, j)).or_insert(0) += 1;
                }
            }
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        f64::NAN
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_ratio_counts_first_touches() {
        let mut t = BlockTracker::new();
        t.record(0, 0);
        t.record(0, 0);
        t.record(128, 0);
        t.record(0, 0);
        let s = t.summary();
        assert_eq!(s.blocks, 2);
        assert_eq!(s.accesses, 4);
        assert!((s.cold_miss_ratio - 0.5).abs() < 1e-12);
        assert!((s.mean_accesses_per_block - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sharing_ratios() {
        let mut t = BlockTracker::new();
        // Block 0: CTAs 0 and 1 (shared). Block 128: only CTA 0.
        t.record(0, 0);
        t.record(0, 1);
        t.record(0, 1);
        t.record(128, 0);
        let s = t.summary();
        assert!((s.shared_block_ratio - 0.5).abs() < 1e-12);
        assert!((s.shared_access_ratio - 0.75).abs() < 1e-12);
        assert!((s.mean_ctas_per_shared_block - 2.0).abs() < 1e-12);
    }

    #[test]
    fn distance_histogram_uses_consecutive_accessors() {
        let mut t = BlockTracker::new();
        t.record(0, 0); // first touch: no sample
        t.record(0, 1); // |1-0| = 1
        t.record(0, 1); // same CTA: no sample
        t.record(0, 33); // |33-1| = 32
        t.record(0, 1); // |1-33| = 32
        let h = t.distance_histogram();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].0, 1);
        assert!((h[0].1 - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(h[1].0, 32);
        assert!((h[1].1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_tracker_has_nan_ratios_and_empty_hist() {
        let t = BlockTracker::new();
        let s = t.summary();
        assert!(s.cold_miss_ratio.is_nan());
        assert!(t.distance_histogram().is_empty());
        assert!(!t.is_warm(0));
    }

    #[test]
    fn per_pc_sharing_is_launch_scoped() {
        let mut t = BlockTracker::new();
        t.begin_launch("k");
        t.record_at(0, 0, 7); // CTA 0 and 1 share block 0 at pc 7
        t.record_at(0, 1, 7);
        t.record_at(128, 0, 9); // pc 9 private
                                // Second launch reuses CTA id 0 on the same block: NOT sharing.
        t.begin_launch("k");
        t.record_at(128, 0, 9);
        let s = t.pc_sharing();
        assert_eq!(s.len(), 2);
        assert_eq!((s[0].pc, s[0].shared_blocks, s[0].blocks), (7, 1, 1));
        assert_eq!(s[0].pairs, vec![((0, 1), 1)]);
        assert_eq!(s[0].max_ctas_per_block, 2);
        // pc 9: two block instances (one per launch), neither shared.
        assert_eq!((s[1].pc, s[1].shared_blocks, s[1].blocks), (9, 0, 2));
        assert!(s[1].pairs.is_empty());
        // The flat tracker still sees one block with one CTA.
        assert_eq!(t.summary().accesses, 4);
    }

    #[test]
    fn per_pc_sharing_round_trips_through_checkpoint() {
        let mut t = BlockTracker::new();
        t.begin_launch("a");
        t.record_at(0, 0, 1);
        t.record_at(0, 3, 1);
        t.begin_launch("b");
        t.record_at(256, 2, 4); // left in the live map on purpose
        let mut e = Enc::new();
        t.ckpt_encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let t2 = BlockTracker::ckpt_decode(&mut d).expect("decode");
        assert!(d.is_done());
        assert_eq!(t.pc_sharing(), t2.pc_sharing());
        // And the restored tracker keeps scoping new launches correctly.
        let mut t2 = t2;
        t2.begin_launch("a");
        t2.record_at(256, 9, 4);
        let s = t2.pc_sharing();
        let b4 = s.iter().find(|p| p.kernel == "b" && p.pc == 4).unwrap();
        assert_eq!(b4.shared_blocks, 0);
    }

    #[test]
    fn is_warm_after_first_touch() {
        let mut t = BlockTracker::new();
        assert!(!t.is_warm(256));
        t.record(256, 5);
        assert!(t.is_warm(256));
    }
}
