//! Per-warp SIMT divergence stack with ipdom reconvergence.

use gcl_mem::{Dec, Enc, WireError};
use gcl_ptx::RECONV_EXIT;

/// One stack entry: execute from `pc` with `mask` until `reconv`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimtEntry {
    /// Next pc to execute for this entry.
    pub pc: usize,
    /// Lanes active under this entry.
    pub mask: u32,
    /// Reconvergence pc ([`RECONV_EXIT`] = only thread exit rejoins).
    pub reconv: usize,
}

/// The per-warp SIMT stack (the standard immediate-post-dominator scheme).
///
/// Lanes that execute `exit` are tracked by the *warp* in an `exited` mask;
/// the stack prunes entries whose live lanes have all exited.
#[derive(Debug, Clone)]
pub struct SimtStack {
    entries: Vec<SimtEntry>,
}

/// Generous divergence-depth bound; exceeding it indicates runaway
/// divergence (or a simulator bug).
const MAX_DEPTH: usize = 64;

impl SimtStack {
    /// A fresh stack: all `mask` lanes at pc 0, reconverging only at exit.
    pub fn new(mask: u32) -> SimtStack {
        SimtStack {
            entries: vec![SimtEntry {
                pc: 0,
                mask,
                reconv: RECONV_EXIT,
            }],
        }
    }

    /// Whether the stack has no live entries (warp retired).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The current pc.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty.
    pub fn pc(&self) -> usize {
        self.entries.last().expect("empty SIMT stack").pc
    }

    /// Lanes active right now, excluding `exited` lanes.
    pub fn active_mask(&self, exited: u32) -> u32 {
        self.entries.last().map_or(0, |e| e.mask & !exited)
    }

    /// Current stack depth (for divergence statistics).
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Advance past a non-branch instruction, popping at reconvergence.
    pub fn advance(&mut self) {
        let top = self.entries.last_mut().expect("empty SIMT stack");
        top.pc += 1;
        self.pop_reconverged();
    }

    /// Apply a branch executed at the top entry.
    ///
    /// * `taken` — lanes (⊆ active) that take the branch to `target`.
    /// * `fallthrough` — pc of the next instruction.
    /// * `reconv` — the branch's reconvergence pc.
    ///
    /// # Panics
    ///
    /// Panics if divergence exceeds the internal depth bound.
    pub fn branch(
        &mut self,
        taken: u32,
        active: u32,
        target: usize,
        fallthrough: usize,
        reconv: usize,
    ) {
        let not_taken = active & !taken;
        let top = self.entries.last_mut().expect("empty SIMT stack");
        if not_taken == 0 {
            // Uniformly taken.
            top.pc = target;
        } else if taken == 0 {
            // Uniformly not taken.
            top.pc = fallthrough;
        } else {
            // Divergence: the current entry waits at the reconvergence
            // point; the two sides execute on top of it, fall-through first
            // (so the taken side runs first, matching GPGPU-Sim).
            top.pc = reconv;
            self.entries.push(SimtEntry {
                pc: fallthrough,
                mask: not_taken,
                reconv,
            });
            self.entries.push(SimtEntry {
                pc: target,
                mask: taken,
                reconv,
            });
            assert!(self.entries.len() <= MAX_DEPTH, "SIMT stack depth exceeded");
        }
        self.pop_reconverged();
    }

    /// Drop entries whose live lanes (under `exited`) are all gone, e.g.
    /// after lanes execute `exit`.
    pub fn prune_exited(&mut self, exited: u32) {
        while let Some(top) = self.entries.last() {
            if top.mask & !exited == 0 {
                self.entries.pop();
            } else {
                break;
            }
        }
        self.pop_reconverged();
    }

    /// Checkpoint-encode the stack entries, bottom to top.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.seq(&self.entries, |e, entry| {
            e.usize(entry.pc);
            e.u32(entry.mask);
            e.usize(entry.reconv);
        });
    }

    /// Checkpoint-decode a stack written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<SimtStack, WireError> {
        let entries = d.seq(|d| {
            let pc = d.usize()?;
            let mask = d.u32()?;
            let reconv = d.usize()?;
            Ok(SimtEntry { pc, mask, reconv })
        })?;
        if entries.len() > MAX_DEPTH {
            return Err(WireError::Malformed("SIMT stack too deep"));
        }
        Ok(SimtStack { entries })
    }

    fn pop_reconverged(&mut self) {
        // An entry that has reached its reconvergence point merges into the
        // entry below (which is parked at the same pc).
        while self.entries.len() > 1 {
            let top = *self.entries.last().unwrap();
            if top.reconv != RECONV_EXIT && top.pc == top.reconv {
                // Reveals either the sibling divergent side (at its own pc)
                // or the parked original entry (at the reconvergence pc).
                self.entries.pop();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: u32 = 0xFFFF_FFFF;

    #[test]
    fn uniform_branch_moves_pc() {
        let mut s = SimtStack::new(ALL);
        s.branch(ALL, ALL, 10, 1, 20);
        assert_eq!(s.pc(), 10);
        assert_eq!(s.depth(), 1);
        s.branch(0, ALL, 5, 11, 20);
        assert_eq!(s.pc(), 11);
    }

    #[test]
    fn divergent_branch_runs_taken_side_first_then_reconverges() {
        let mut s = SimtStack::new(0b1111);
        // Lanes 0-1 take the branch to pc 10; reconvergence at pc 20.
        s.branch(0b0011, 0b1111, 10, 1, 20);
        assert_eq!(s.pc(), 10);
        assert_eq!(s.active_mask(0), 0b0011);
        assert_eq!(s.depth(), 3);
        // Taken side runs 10..20.
        for _ in 10..20 {
            s.advance();
        }
        // Now the fall-through side is on top.
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active_mask(0), 0b1100);
        for _ in 1..20 {
            s.advance();
        }
        // Reconverged: full mask at pc 20.
        assert_eq!(s.pc(), 20);
        assert_eq!(s.active_mask(0), 0b1111);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn nested_divergence() {
        let mut s = SimtStack::new(0b1111);
        s.branch(0b0011, 0b1111, 10, 1, 30);
        // Inside the taken side, diverge again.
        s.branch(0b0001, 0b0011, 15, 11, 25);
        assert_eq!(s.pc(), 15);
        assert_eq!(s.active_mask(0), 0b0001);
        assert_eq!(s.depth(), 5);
        // Run lane 0 to inner reconv (25), then lane 1's side (11..25).
        for _ in 15..25 {
            s.advance();
        }
        assert_eq!(s.pc(), 11);
        assert_eq!(s.active_mask(0), 0b0010);
        for _ in 11..25 {
            s.advance();
        }
        // Inner reconverged at 25 with mask 0b0011.
        assert_eq!(s.pc(), 25);
        assert_eq!(s.active_mask(0), 0b0011);
        assert_eq!(s.depth(), 3);
    }

    #[test]
    fn exited_lanes_prune_entries() {
        let mut s = SimtStack::new(0b1111);
        s.branch(0b0011, 0b1111, 10, 1, gcl_ptx::RECONV_EXIT);
        // Taken lanes exit.
        let exited = 0b0011;
        s.prune_exited(exited);
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active_mask(exited), 0b1100);
        // Remaining lanes exit too.
        s.prune_exited(0b1111);
        assert!(s.is_empty());
    }

    #[test]
    fn active_mask_excludes_exited() {
        let s = SimtStack::new(0b1111);
        assert_eq!(s.active_mask(0b0101), 0b1010);
    }

    #[test]
    #[should_panic(expected = "depth exceeded")]
    fn runaway_divergence_detected() {
        let mut s = SimtStack::new(0b11);
        for _ in 0..40 {
            s.branch(0b01, 0b11, 10, 1, 1000);
            // Never advance to reconvergence: keep splitting the same entry.
            let top_mask = s.active_mask(0);
            s.branch(top_mask & 0b01, top_mask, 10, 1, 1000);
        }
    }
}
