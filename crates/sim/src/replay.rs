//! Trace-driven replay: the shared issue-event schema, the capture sink at
//! the SM issue boundary, and the per-launch replay streams that feed the
//! timing model without functional execution.
//!
//! ## Capture / replay contract
//!
//! Execution-driven simulation and replay share one issue path
//! ([`crate::Sm`]'s `issue_warp`): the only difference is where the
//! [`StepResult`] comes from. At capture time a [`TraceSink`] observes, per
//! issued warp instruction, exactly the payload the timing model consumes —
//! pc, active mask, and the step outcome (ALU destination, resolved
//! per-lane addresses, branch divergence, barrier id). At replay time the
//! same payloads are fed back as [`ReplayRecord`]s, so the scheduler,
//! scoreboard, coalescer, caches, interconnect, DRAM, sanitizer ledger, and
//! event digest all see byte-identical inputs and therefore produce
//! identical timing, statistics, and digests.
//!
//! Streams are per *warp*: stream `linear_cta * warps_per_cta + warp_in_cta`
//! holds that warp's issued instructions in issue order, where
//! `warps_per_cta = ceil(block.count() / warp_size)`.

use crate::san::{fnv_fold, FNV_OFFSET};
use crate::warp::{MemAccess, StepResult};
use crate::{Dim3, TraceEvent};
use gcl_ptx::{Reg, Space};
use std::fmt;
use std::sync::Arc;

/// The step outcome of one issued warp instruction, as recorded at capture
/// and re-injected at replay. Mirrors [`StepResult`] minus anything the
/// timing model does not consume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayKind {
    /// Arithmetic/move: schedule a writeback for `dst` on the unit latency.
    Alu {
        /// Register awaiting writeback, if any.
        dst: Option<Reg>,
    },
    /// A memory access with its resolved per-lane addresses.
    Mem {
        /// Space accessed.
        space: Space,
        /// True for stores.
        is_store: bool,
        /// Destination register for loads/atomics.
        dst: Option<Reg>,
        /// Bytes accessed per lane.
        bytes: u32,
        /// Per-lane effective byte addresses `(lane, addr)`, ascending lanes.
        lane_addrs: Vec<(u32, u64)>,
    },
    /// A branch; `diverged` is true when the warp split.
    Branch {
        /// Whether this branch split the warp.
        diverged: bool,
    },
    /// The warp reached named barrier `id`.
    Barrier {
        /// Barrier id.
        id: u32,
    },
    /// Lanes exited.
    Exit,
    /// All lanes predicated off.
    Predicated,
}

impl ReplayKind {
    /// Build the record payload from a successful [`StepResult`].
    /// `at_barrier` is the warp's barrier id after the step (set by a
    /// barrier instruction; the `StepResult` itself does not carry it).
    pub fn of_step(result: &StepResult, at_barrier: Option<u32>) -> ReplayKind {
        match result {
            StepResult::Alu { dst } => ReplayKind::Alu { dst: *dst },
            StepResult::Mem(a) => ReplayKind::Mem {
                space: a.space,
                is_store: a.is_store,
                dst: a.dst,
                bytes: a.bytes,
                lane_addrs: a.lane_addrs.clone(),
            },
            StepResult::Branch { diverged } => ReplayKind::Branch {
                diverged: *diverged,
            },
            StepResult::Barrier => ReplayKind::Barrier {
                id: at_barrier.unwrap_or(0),
            },
            StepResult::Exit => ReplayKind::Exit,
            StepResult::Predicated => ReplayKind::Predicated,
        }
    }

    fn fold(&self, mut h: u64) -> u64 {
        match self {
            ReplayKind::Alu { dst } => {
                h = fnv_fold(h, 0);
                fnv_fold(h, dst.map_or(0, |d| u64::from(d.0) + 1))
            }
            ReplayKind::Mem {
                space,
                is_store,
                dst,
                bytes,
                lane_addrs,
            } => {
                h = fnv_fold(h, 1);
                h = fnv_fold(h, u64::from(space_code(*space)));
                h = fnv_fold(h, u64::from(*is_store));
                h = fnv_fold(h, dst.map_or(0, |d| u64::from(d.0) + 1));
                h = fnv_fold(h, u64::from(*bytes));
                h = fnv_fold(h, lane_addrs.len() as u64);
                for &(lane, addr) in lane_addrs {
                    h = fnv_fold(h, u64::from(lane));
                    h = fnv_fold(h, addr);
                }
                h
            }
            ReplayKind::Branch { diverged } => {
                h = fnv_fold(h, 2);
                fnv_fold(h, u64::from(*diverged))
            }
            ReplayKind::Barrier { id } => {
                h = fnv_fold(h, 3);
                fnv_fold(h, u64::from(*id))
            }
            ReplayKind::Exit => fnv_fold(h, 4),
            ReplayKind::Predicated => fnv_fold(h, 5),
        }
    }
}

/// Stable one-byte encoding of [`Space`] for trace containers and
/// fingerprints (never reorder: recorded traces depend on it).
pub fn space_code(space: Space) -> u8 {
    match space {
        Space::Global => 0,
        Space::Shared => 1,
        Space::Param => 2,
        Space::Const => 3,
        Space::Local => 4,
        Space::Tex => 5,
    }
}

/// Inverse of [`space_code`].
pub fn space_from_code(code: u8) -> Option<Space> {
    Some(match code {
        0 => Space::Global,
        1 => Space::Shared,
        2 => Space::Param,
        3 => Space::Const,
        4 => Space::Local,
        5 => Space::Tex,
        _ => return None,
    })
}

/// One recorded issued instruction of one warp stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayRecord {
    /// Program counter at issue.
    pub pc: u32,
    /// Active-lane mask at issue.
    pub mask: u32,
    /// Step outcome payload.
    pub kind: ReplayKind,
}

/// Identity of a launch as seen by a [`TraceSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchInfo {
    /// Kernel fingerprint ([`crate::kernel_fingerprint`]).
    pub kernel_fp: u64,
    /// Kernel name (diagnostic; the fingerprint is authoritative).
    pub kernel_name: String,
    /// Grid dimensions.
    pub grid: Dim3,
    /// Block dimensions.
    pub block: Dim3,
    /// Number of warp streams: `grid.count() * warps_per_cta`.
    pub n_streams: u64,
}

/// Observer of the SM issue boundary, attached with
/// [`Gpu::set_trace_sink`](crate::Gpu::set_trace_sink). Receives every
/// issued warp instruction of every launch, bracketed by launch begin/end.
pub trait TraceSink: fmt::Debug + Send {
    /// A launch is starting.
    fn begin_launch(&mut self, info: &LaunchInfo);
    /// One warp instruction issued on stream `stream`.
    fn issue(&mut self, stream: u64, ev: &TraceEvent, kind: &ReplayKind);
    /// The launch completed successfully.
    fn end_launch(&mut self);
    /// The launch was abandoned (fault/hang/timeout); discard its partial
    /// capture. May be called with no launch open (then a no-op).
    fn abort_launch(&mut self) {}
}

/// Number of warps per CTA for a block geometry.
pub fn warps_per_cta(block: Dim3, warp_size: u32) -> u64 {
    block.count().div_ceil(u64::from(warp_size))
}

/// One launch's worth of replay streams, ready to feed
/// [`Gpu::launch_replay`](crate::Gpu::launch_replay).
#[derive(Debug, Clone)]
pub struct LaunchReplay {
    /// Fingerprint of the kernel the trace was captured from; replay
    /// validates the supplied kernel against it.
    pub kernel_fp: u64,
    /// Grid dimensions of the captured launch.
    pub grid: Dim3,
    /// Block dimensions of the captured launch.
    pub block: Dim3,
    /// Per-warp record streams, indexed
    /// `linear_cta * warps_per_cta + warp_in_cta`.
    pub streams: Vec<Arc<[ReplayRecord]>>,
}

impl LaunchReplay {
    /// Content fingerprint over geometry and every record. Stored in
    /// mid-replay snapshots so a resumed replay rejects a different trace.
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv_fold(FNV_OFFSET, self.kernel_fp);
        for v in [
            self.grid.x,
            self.grid.y,
            self.grid.z,
            self.block.x,
            self.block.y,
            self.block.z,
        ] {
            h = fnv_fold(h, u64::from(v));
        }
        h = fnv_fold(h, self.streams.len() as u64);
        for s in &self.streams {
            h = fnv_fold(h, s.len() as u64);
            for r in s.iter() {
                h = fnv_fold(h, u64::from(r.pc));
                h = fnv_fold(h, u64::from(r.mask));
                h = r.kind.fold(h);
            }
        }
        h
    }

    /// Total recorded warp instructions across all streams.
    pub fn n_records(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }
}

/// Why a replay launch was rejected or diverged structurally. The payload
/// of [`SimError::Replay`](crate::SimError::Replay).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The supplied kernel is not the one the trace was captured from.
    KernelMismatch {
        /// Kernel fingerprint recorded in the trace.
        found: u64,
        /// Fingerprint of the kernel supplied at replay.
        expected: u64,
    },
    /// The trace's stream count does not match its launch geometry.
    StreamCount {
        /// Streams present in the trace.
        found: u64,
        /// Streams the geometry requires.
        expected: u64,
    },
    /// A resumed replay was given a different trace than the snapshot's
    /// launch was replaying.
    TraceMismatch {
        /// Fingerprint of the supplied trace.
        found: u64,
        /// Fingerprint recorded in the snapshot.
        expected: u64,
    },
    /// The active launch is a replay but was stepped without its trace
    /// (e.g. [`Gpu::launch_step`](crate::Gpu::launch_step) on a replay).
    MissingReplay,
    /// A trace was supplied but the active launch is execution-driven.
    NotReplayLaunch,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::KernelMismatch { found, expected } => write!(
                f,
                "trace was captured from a different kernel \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            ReplayError::StreamCount { found, expected } => write!(
                f,
                "trace has {found} warp streams but its geometry requires {expected}"
            ),
            ReplayError::TraceMismatch { found, expected } => write!(
                f,
                "resumed replay was given a different trace \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            ReplayError::MissingReplay => {
                write!(f, "active launch is a replay but no trace was supplied")
            }
            ReplayError::NotReplayLaunch => {
                write!(
                    f,
                    "a trace was supplied but the active launch is execution-driven"
                )
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// An in-memory [`TraceSink`] that keeps every captured launch, convertible
/// into [`LaunchReplay`]s. The zero-dependency capture path used by tests
/// and by anything that replays in-process without a container file.
#[derive(Debug, Default)]
pub struct MemorySink {
    launches: Vec<CapturedLaunch>,
    open: bool,
}

/// One launch captured by [`MemorySink`].
#[derive(Debug)]
pub struct CapturedLaunch {
    /// Launch identity.
    pub info: LaunchInfo,
    /// Per-warp streams (same indexing as [`LaunchReplay::streams`]).
    pub streams: Vec<Vec<ReplayRecord>>,
}

impl CapturedLaunch {
    /// Convert into the replay form.
    pub fn into_replay(self) -> LaunchReplay {
        LaunchReplay {
            kernel_fp: self.info.kernel_fp,
            grid: self.info.grid,
            block: self.info.block,
            streams: self.streams.into_iter().map(Arc::from).collect(),
        }
    }
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// The completed captured launches, in launch order.
    pub fn into_launches(self) -> Vec<CapturedLaunch> {
        self.launches
    }

    /// Convert every completed launch into its replay form.
    pub fn into_replays(self) -> Vec<LaunchReplay> {
        self.launches
            .into_iter()
            .map(CapturedLaunch::into_replay)
            .collect()
    }
}

impl TraceSink for MemorySink {
    fn begin_launch(&mut self, info: &LaunchInfo) {
        assert!(!self.open, "begin_launch with a launch already open");
        self.open = true;
        self.launches.push(CapturedLaunch {
            info: info.clone(),
            streams: vec![Vec::new(); info.n_streams as usize],
        });
    }

    fn issue(&mut self, stream: u64, ev: &TraceEvent, kind: &ReplayKind) {
        let launch = self.launches.last_mut().expect("issue without a launch");
        launch.streams[stream as usize].push(ReplayRecord {
            pc: ev.pc,
            mask: ev.active,
            kind: kind.clone(),
        });
    }

    fn end_launch(&mut self) {
        assert!(self.open, "end_launch without a launch open");
        self.open = false;
    }

    fn abort_launch(&mut self) {
        if self.open {
            self.open = false;
            self.launches.pop();
        }
    }
}

/// Forwarding impl so a capture sink can be shared between the GPU and the
/// caller: install a clone of an `Arc<Mutex<sink>>` with
/// [`Gpu::set_trace_sink`](crate::Gpu::set_trace_sink), run, detach, and
/// harvest the capture from the retained clone.
impl<S: TraceSink> TraceSink for std::sync::Arc<std::sync::Mutex<S>> {
    fn begin_launch(&mut self, info: &LaunchInfo) {
        self.lock()
            .expect("trace sink lock poisoned")
            .begin_launch(info);
    }

    fn issue(&mut self, stream: u64, ev: &TraceEvent, kind: &ReplayKind) {
        self.lock()
            .expect("trace sink lock poisoned")
            .issue(stream, ev, kind);
    }

    fn end_launch(&mut self) {
        self.lock().expect("trace sink lock poisoned").end_launch();
    }

    fn abort_launch(&mut self) {
        self.lock()
            .expect("trace sink lock poisoned")
            .abort_launch();
    }
}

/// Rebuild a [`MemAccess`] from a recorded memory payload (replay's input
/// to the LD/ST dispatch path).
pub(crate) fn mem_access_of_record(pc: u32, kind: &ReplayKind) -> Option<MemAccess> {
    match kind {
        ReplayKind::Mem {
            space,
            is_store,
            dst,
            bytes,
            lane_addrs,
        } => Some(MemAccess {
            pc: pc as usize,
            space: *space,
            is_store: *is_store,
            dst: *dst,
            lane_addrs: lane_addrs.clone(),
            bytes: *bytes,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pc: u32, kind: ReplayKind) -> ReplayRecord {
        ReplayRecord {
            pc,
            mask: 0xF,
            kind,
        }
    }

    #[test]
    fn space_codes_roundtrip() {
        for s in [
            Space::Global,
            Space::Shared,
            Space::Param,
            Space::Const,
            Space::Local,
            Space::Tex,
        ] {
            assert_eq!(space_from_code(space_code(s)), Some(s));
        }
        assert_eq!(space_from_code(6), None);
    }

    #[test]
    fn fingerprint_sensitive_to_content() {
        let base = LaunchReplay {
            kernel_fp: 1,
            grid: Dim3::x(1),
            block: Dim3::x(32),
            streams: vec![Arc::from(vec![
                rec(0, ReplayKind::Alu { dst: Some(Reg(3)) }),
                rec(1, ReplayKind::Exit),
            ])],
        };
        let fp = base.fingerprint();
        assert_eq!(fp, base.clone().fingerprint(), "fingerprint is stable");

        let mut other = base.clone();
        other.kernel_fp = 2;
        assert_ne!(fp, other.fingerprint());

        let mut other = base.clone();
        other.streams = vec![Arc::from(vec![
            rec(0, ReplayKind::Alu { dst: Some(Reg(4)) }),
            rec(1, ReplayKind::Exit),
        ])];
        assert_ne!(fp, other.fingerprint());

        let mut other = base.clone();
        other.block = Dim3::x(64);
        assert_ne!(fp, other.fingerprint());
    }

    #[test]
    fn memory_sink_collects_streams_and_discards_aborts() {
        let info = LaunchInfo {
            kernel_fp: 7,
            kernel_name: "k".into(),
            grid: Dim3::x(1),
            block: Dim3::x(64),
            n_streams: 2,
        };
        let ev = |pc: u32| TraceEvent {
            cycle: 0,
            sm: 0,
            warp_slot: 0,
            cta: 0,
            pc,
            active: 0xF,
        };
        let mut sink = MemorySink::new();
        sink.begin_launch(&info);
        sink.issue(0, &ev(0), &ReplayKind::Exit);
        sink.issue(1, &ev(5), &ReplayKind::Exit);
        sink.end_launch();
        sink.begin_launch(&info);
        sink.issue(0, &ev(9), &ReplayKind::Exit);
        sink.abort_launch();
        // A stray abort with nothing open is a no-op.
        sink.abort_launch();

        let replays = sink.into_replays();
        assert_eq!(replays.len(), 1, "aborted launch discarded");
        assert_eq!(replays[0].streams.len(), 2);
        assert_eq!(replays[0].streams[0][0].pc, 0);
        assert_eq!(replays[0].streams[1][0].pc, 5);
        assert_eq!(replays[0].n_records(), 2);
    }

    #[test]
    fn of_step_maps_every_variant() {
        assert_eq!(
            ReplayKind::of_step(&StepResult::Barrier, Some(3)),
            ReplayKind::Barrier { id: 3 }
        );
        assert_eq!(
            ReplayKind::of_step(&StepResult::Alu { dst: None }, None),
            ReplayKind::Alu { dst: None }
        );
        assert_eq!(
            ReplayKind::of_step(&StepResult::Branch { diverged: true }, None),
            ReplayKind::Branch { diverged: true }
        );
        let m = MemAccess {
            pc: 4,
            space: Space::Global,
            is_store: false,
            dst: Some(Reg(2)),
            lane_addrs: vec![(0, 128), (1, 132)],
            bytes: 4,
        };
        let kind = ReplayKind::of_step(&StepResult::Mem(m.clone()), None);
        let back = mem_access_of_record(4, &kind).unwrap();
        assert_eq!(back, m);
        assert_eq!(mem_access_of_record(0, &ReplayKind::Exit), None);
    }
}
