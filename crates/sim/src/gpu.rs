//! The whole GPU: SMs, interconnect, memory partitions, CTA dispatch, and
//! the cycle loop.

use crate::ckpt::{
    config_fingerprint, kernel_fingerprint, CheckpointError, Snapshot, SNAPSHOT_VERSION,
};
use crate::fault::{AllocError, ConfigError, HangReport, MemFaultReport};
use crate::replay::{warps_per_cta, LaunchInfo, LaunchReplay, ReplayError, TraceSink};
use crate::san::{SanRun, SanitizerReport, TickError};
use crate::sm::TickCtx;
use crate::{
    BlockSummary, BlockTracker, CtaSchedPolicy, Dim3, GlobalMem, GpuConfig, LaunchStats, Sm,
};
use gcl_core::{classify, Classification};
use gcl_mem::{AddrMap, ConservationReport, Dec, Enc, Icnt, L2Partition, PartitionEvent, SanStage};
use gcl_ptx::Kernel;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Everything that can go wrong constructing a [`Gpu`] or running a
/// launch. Each variant carries the full structured report; the `Display`
/// form is what `gcl` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed [`GpuConfig::validate`].
    InvalidConfig(ConfigError),
    /// A device allocation failed (bad alignment, overflowing size).
    Alloc(AllocError),
    /// Memcheck caught an out-of-bounds device access.
    MemFault(Box<MemFaultReport>),
    /// The forward-progress watchdog fired (barrier deadlock, scheduler
    /// livelock): no instruction issued, response landed, or CTA moved for
    /// [`GpuConfig::hang_cycles`] consecutive cycles.
    Hang(Box<HangReport>),
    /// The launch made progress but did not finish within
    /// [`GpuConfig::max_cycles`].
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
    /// The kernel's CTA cannot fit on an SM under this configuration.
    CtaTooLarge {
        /// Threads per CTA requested.
        threads: u64,
        /// The limiting resource.
        reason: &'static str,
    },
    /// The simsan runtime sanitizer ([`GpuConfig::sanitize`]) caught a
    /// violation: broken request conservation, a shared-memory race, or
    /// digest divergence between runs.
    Sanitizer(Box<SanitizerReport>),
    /// A checkpoint could not be loaded, restored, or resumed: corrupted or
    /// truncated image, format-version / configuration / kernel mismatch,
    /// or an i/o failure (see [`CheckpointError`]).
    Checkpoint(CheckpointError),
    /// A trace-driven replay was rejected: wrong kernel, wrong stream
    /// count for the geometry, or a resumed replay given a different trace
    /// (see [`ReplayError`]).
    Replay(ReplayError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(e) => write!(f, "{e}"),
            SimError::Alloc(e) => write!(f, "device allocation failed: {e}"),
            SimError::MemFault(report) => write!(f, "{report}"),
            SimError::Hang(report) => write!(f, "{report}"),
            SimError::Timeout { cycles } => {
                write!(f, "kernel did not finish within {cycles} cycles")
            }
            SimError::CtaTooLarge { threads, reason } => {
                write!(
                    f,
                    "CTA of {threads} threads does not fit on an SM: {reason}"
                )
            }
            SimError::Sanitizer(report) => write!(f, "sanitizer: {report}"),
            SimError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            SimError::Replay(e) => write!(f, "replay: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidConfig(e) => Some(e),
            SimError::Alloc(e) => Some(e),
            SimError::Checkpoint(e) => Some(e),
            SimError::Replay(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> SimError {
        SimError::Checkpoint(e)
    }
}

impl From<ReplayError> for SimError {
    fn from(e: ReplayError) -> SimError {
        SimError::Replay(e)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::InvalidConfig(e)
    }
}

impl From<AllocError> for SimError {
    fn from(e: AllocError) -> SimError {
        SimError::Alloc(e)
    }
}

/// Pack kernel parameter values (one raw 64-bit value per declared
/// parameter) into the launch's parameter block.
///
/// # Panics
///
/// Panics if the value count does not match the kernel's parameter count.
pub fn pack_params(kernel: &Kernel, values: &[u64]) -> Vec<u8> {
    assert_eq!(
        values.len(),
        kernel.params().len(),
        "kernel `{}` takes {} parameters, got {}",
        kernel.name(),
        kernel.params().len(),
        values.len()
    );
    let mut block = vec![0u8; kernel.param_bytes() as usize];
    for (i, &v) in values.iter().enumerate() {
        let off = kernel.param_offset(i) as usize;
        let n = kernel.params()[i].ty.size_bytes() as usize;
        for k in 0..n {
            block[off + k] = (v >> (8 * k)) as u8;
        }
    }
    block
}

/// A simulated GPU: owns device memory and cross-launch locality tracking;
/// cores and the memory hierarchy are instantiated per launch.
///
/// # Examples
///
/// ```
/// use gcl_sim::{pack_params, Dim3, Gpu, GpuConfig};
/// use gcl_ptx::{KernelBuilder, Type};
///
/// // out[tid] = tid
/// let mut b = KernelBuilder::new("iota");
/// let p = b.param("out", Type::U64);
/// let base = b.ld_param(Type::U64, p);
/// let tid = b.thread_linear_id();
/// let a = b.index64(base, tid, 4);
/// b.st_global(Type::U32, a, tid);
/// b.exit();
/// let k = b.build()?;
///
/// let mut gpu = Gpu::new(GpuConfig::small())?;
/// let out = gpu.mem().alloc_array(Type::U32, 64)?;
/// let params = pack_params(&k, &[out]);
/// let stats = gpu.launch(&k, Dim3::x(2), Dim3::x(32), &params)?;
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.mem().read_u32_slice(out, 4), vec![0, 1, 2, 3]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    gmem: GlobalMem,
    blocktrack: BlockTracker,
    /// Per-SM L1 caches, kept warm across kernel launches (slots are taken
    /// during a launch and returned afterwards).
    l1s: Vec<Option<gcl_mem::Cache>>,
    icnt: Icnt,
    partitions: Vec<L2Partition>,
    /// Monotonic device clock: launches continue from where the previous
    /// one ended, so persistent component timestamps stay consistent.
    now: gcl_mem::Cycle,
    /// The launch currently in flight (between [`Gpu::launch_begin`] and
    /// completion), if any.
    active: Option<LaunchState>,
    /// Snapshot captured by the hang watchdog just before the launch was
    /// torn down, retrievable via [`Gpu::take_hang_snapshot`].
    hang_snapshot: Option<Snapshot>,
    /// Testing hook: at this relative launch cycle, snapshot, serialize,
    /// restore, and continue — proving resume equivalence in-process.
    resume_selftest: Option<u64>,
    selftest_done: bool,
    /// Trace-capture sink observing every launch's issue stream, if armed.
    sink: Option<Box<dyn TraceSink>>,
    /// Bounded debug trace armed for the stepwise driver
    /// ([`Gpu::launch_step`]); collected with [`Gpu::take_debug_trace`].
    debug_trace: Option<crate::Trace>,
}

/// Everything belonging to one in-flight launch. Serialized wholesale into
/// mid-launch snapshots; `derived` holds state recomputed from the kernel
/// (never serialized, verified against `kernel_fp` at resume).
#[derive(Debug)]
struct LaunchState {
    kernel_name: String,
    kernel_fp: u64,
    grid: Dim3,
    block: Dim3,
    params: Vec<u8>,
    /// The kernel's shared-memory footprint, recorded so SMs can be decoded
    /// before the kernel is re-supplied at resume.
    shared_bytes: u32,
    san_run: Option<SanRun>,
    sms: Vec<Sm>,
    global_queue: VecDeque<u64>,
    per_sm_queue: Vec<VecDeque<u64>>,
    start_cycle: u64,
    cycle: u64,
    last_progress: u64,
    derived: Option<Derived>,
    /// `Some(trace fingerprint)` when this launch is a trace-driven replay;
    /// every step must re-supply a trace with this fingerprint.
    replay_fp: Option<u64>,
}

/// Kernel-derived launch state, recomputed (not serialized) because it is a
/// pure function of the kernel and configuration.
#[derive(Debug)]
struct Derived {
    classification: Classification,
    reconv: HashMap<usize, usize>,
    addrmap: AddrMap,
}

/// How one simulated cycle ended (collected inside the borrow region of
/// [`Gpu::step_inner`], handled after it).
enum StepEnd {
    Continue,
    Done,
    Fault(TickError),
    SanFault(Box<ConservationReport>),
    Hang(Box<HangReport>),
    Timeout(u64),
}

impl Gpu {
    /// Create a GPU with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// inconsistent (see [`GpuConfig::validate`]).
    pub fn new(cfg: GpuConfig) -> Result<Gpu, SimError> {
        cfg.validate()?;
        let l1s = (0..cfg.n_sms)
            .map(|_| Some(gcl_mem::Cache::new(cfg.l1)))
            .collect();
        let icnt = Icnt::new(cfg.icnt, cfg.n_sms, cfg.n_partitions);
        let partitions = (0..cfg.n_partitions)
            .map(|_| L2Partition::new(cfg.partition))
            .collect();
        Ok(Gpu {
            cfg,
            gmem: GlobalMem::new(),
            blocktrack: BlockTracker::new(),
            l1s,
            icnt,
            partitions,
            now: 0,
            active: None,
            hang_snapshot: None,
            resume_selftest: None,
            selftest_done: false,
            sink: None,
            debug_trace: None,
        })
    }

    /// Attach (or detach, with `None`) a trace-capture sink. The sink
    /// observes every subsequent launch: a `begin_launch`/`end_launch`
    /// bracket per completed launch, `abort_launch` for abandoned ones, and
    /// one `issue` call per issued warp instruction.
    pub fn set_trace_sink(&mut self, sink: Option<Box<dyn TraceSink>>) {
        self.sink = sink;
    }

    /// Detach and return the trace-capture sink, if one was attached.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Arm a bounded debug trace for launches driven stepwise through
    /// [`Gpu::launch_step`] / [`Gpu::launch_resume`] (the whole-launch
    /// equivalent of [`Gpu::launch_traced`]). Collect it with
    /// [`Gpu::take_debug_trace`] after the launch.
    pub fn arm_trace(&mut self, capacity: usize) {
        self.debug_trace = Some(crate::Trace::new(capacity));
    }

    /// Detach and return the armed debug trace, if any.
    pub fn take_debug_trace(&mut self) -> Option<crate::Trace> {
        self.debug_trace.take()
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Device memory (allocate and initialize buffers here, inspect results
    /// after launches).
    pub fn mem(&mut self) -> &mut GlobalMem {
        &mut self.gmem
    }

    /// Read-only view of device memory.
    pub fn mem_ref(&self) -> &GlobalMem {
        &self.gmem
    }

    /// Cross-launch block locality summary (the paper's Figures 10–11).
    pub fn block_summary(&self) -> BlockSummary {
        self.blocktrack.summary()
    }

    /// Cross-launch CTA-distance histogram (Figure 12).
    pub fn distance_histogram(&self) -> Vec<(u64, f64)> {
        self.blocktrack.distance_histogram()
    }

    /// Per-(kernel, pc) measured inter-CTA block sharing, for
    /// cross-validating the static locality analysis load by load.
    pub fn pc_sharing(&self) -> Vec<crate::blocktrack::PcSharing> {
        self.blocktrack.pc_sharing()
    }

    /// Resident CTAs per SM for this kernel/launch geometry.
    fn occupancy(&self, kernel: &Kernel, block: Dim3) -> Result<usize, SimError> {
        let threads = block.count();
        let cfg = &self.cfg;
        if threads > u64::from(cfg.max_threads_per_sm) {
            return Err(SimError::CtaTooLarge {
                threads,
                reason: "thread limit",
            });
        }
        if kernel.shared_bytes() > cfg.shared_mem_per_sm {
            return Err(SimError::CtaTooLarge {
                threads,
                reason: "shared memory",
            });
        }
        let by_threads = u64::from(cfg.max_threads_per_sm) / threads;
        let by_shared = if kernel.shared_bytes() == 0 {
            u64::MAX
        } else {
            u64::from(cfg.shared_mem_per_sm / kernel.shared_bytes())
        };
        let ctas = by_threads
            .min(by_shared)
            .min(u64::from(cfg.max_ctas_per_sm))
            .max(1) as usize;
        Ok(ctas)
    }

    /// Tear down a launch abandoned mid-flight so the GPU stays usable:
    /// the partially-run SMs are dropped, every L1 slot (taken by the
    /// failed launch, possibly holding MSHR entries whose fills will never
    /// arrive) is replaced by a fresh cache, the interconnect and
    /// partitions are rebuilt empty, and the device clock advances past
    /// the failure. Warm-cache state is deliberately sacrificed — stale
    /// in-flight requests must never leak into the next launch.
    fn abandon_launch(&mut self) {
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.abort_launch();
        }
        let cycle = self.active.as_ref().map_or(self.now, |a| a.cycle);
        self.active = None;
        for slot in self.l1s.iter_mut() {
            *slot = Some(gcl_mem::Cache::new(self.cfg.l1));
        }
        self.icnt = Icnt::new(self.cfg.icnt, self.cfg.n_sms, self.cfg.n_partitions);
        self.partitions = (0..self.cfg.n_partitions)
            .map(|_| L2Partition::new(self.cfg.partition))
            .collect();
        self.now = cycle;
    }

    /// Run one kernel to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::CtaTooLarge`] if a CTA cannot fit on an SM.
    /// * [`SimError::MemFault`] if [`GpuConfig::memcheck`] is on and the
    ///   kernel touches memory outside every live allocation; the report
    ///   names the faulting pc, SM/warp/lane, address, the load's D/N
    ///   class, and its address def-chain witness.
    /// * [`SimError::Hang`] if nothing makes forward progress for
    ///   [`GpuConfig::hang_cycles`] consecutive cycles (e.g. a barrier
    ///   deadlock); carries a per-SM, per-warp state dump.
    /// * [`SimError::Timeout`] if the launch exceeds
    ///   [`GpuConfig::max_cycles`] while still making progress.
    /// * [`SimError::Sanitizer`] if [`GpuConfig::sanitize`] is on and a
    ///   checker fires: a request left the conservation state machine (or
    ///   leaked past launch end), or two warps of a CTA raced on shared
    ///   memory within one barrier epoch.
    ///
    /// Any error leaves the GPU reusable: L1 caches are reclaimed and the
    /// device clock advances past the failed launch.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        grid: Dim3,
        block: Dim3,
        params: &[u8],
    ) -> Result<LaunchStats, SimError> {
        // An armed debug trace (see `Gpu::arm_trace`) records through this
        // entry point too, so `Runner`-driven workloads can be traced
        // without changing their launch plumbing.
        let mut trace = self.debug_trace.take();
        let r = self.launch_inner(kernel, grid, block, params, &mut trace);
        self.debug_trace = trace;
        r
    }

    /// Run one kernel, recording up to `capacity` issued instructions.
    ///
    /// # Errors
    ///
    /// As for [`Gpu::launch`].
    pub fn launch_traced(
        &mut self,
        kernel: &Kernel,
        grid: Dim3,
        block: Dim3,
        params: &[u8],
        capacity: usize,
    ) -> Result<(LaunchStats, crate::Trace), SimError> {
        let mut trace = Some(crate::Trace::new(capacity));
        let stats = self.launch_inner(kernel, grid, block, params, &mut trace)?;
        Ok((stats, trace.expect("trace preserved across launch")))
    }

    fn launch_inner(
        &mut self,
        kernel: &Kernel,
        grid: Dim3,
        block: Dim3,
        params: &[u8],
        trace: &mut Option<crate::Trace>,
    ) -> Result<LaunchStats, SimError> {
        self.launch_begin(kernel, grid, block, params)?;
        loop {
            if let Some(stats) = self.step_inner(kernel, trace, None)? {
                return Ok(stats);
            }
        }
    }

    /// Run one recorded launch of `trace` through the timing model, with no
    /// functional execution: pcs, active masks, and resolved per-lane
    /// addresses come from the trace; scheduling, coalescing, the cache
    /// hierarchy, DRAM, the sanitizer ledger, and the event digest all run
    /// exactly as in [`Gpu::launch`]. A faithful replay of a trace captured
    /// under this configuration reproduces the execution-driven cycle
    /// count, statistics, and digest byte for byte.
    ///
    /// # Errors
    ///
    /// [`SimError::Replay`] if `kernel` is not the kernel the trace was
    /// captured from or the trace's stream count contradicts its geometry;
    /// timing-model errors as for [`Gpu::launch`].
    pub fn launch_replay(
        &mut self,
        kernel: &Kernel,
        rep: &LaunchReplay,
    ) -> Result<LaunchStats, SimError> {
        self.launch_replay_begin(kernel, rep)?;
        self.launch_replay_resume(kernel, rep)
    }

    /// Start a replay launch without running it; drive it with
    /// [`Gpu::launch_replay_step`] or [`Gpu::launch_replay_resume`].
    ///
    /// # Errors
    ///
    /// As the validation phase of [`Gpu::launch_replay`].
    ///
    /// # Panics
    ///
    /// Panics if a launch is already active.
    pub fn launch_replay_begin(
        &mut self,
        kernel: &Kernel,
        rep: &LaunchReplay,
    ) -> Result<(), SimError> {
        let kfp = kernel_fingerprint(kernel);
        if rep.kernel_fp != kfp {
            return Err(ReplayError::KernelMismatch {
                found: rep.kernel_fp,
                expected: kfp,
            }
            .into());
        }
        let expected = rep.grid.count() * warps_per_cta(rep.block, self.cfg.warp_size);
        if rep.streams.len() as u64 != expected {
            return Err(ReplayError::StreamCount {
                found: rep.streams.len() as u64,
                expected,
            }
            .into());
        }
        // The parameter block is never read during replay (no functional
        // execution); launch with an empty one.
        self.launch_begin(kernel, rep.grid, rep.block, &[])?;
        self.active
            .as_mut()
            .expect("launch_begin just succeeded")
            .replay_fp = Some(rep.fingerprint());
        Ok(())
    }

    /// Advance the active replay launch by one cycle.
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch_replay`], plus [`SimError::Checkpoint`] when no
    /// launch is active.
    pub fn launch_replay_step(
        &mut self,
        kernel: &Kernel,
        rep: &LaunchReplay,
    ) -> Result<Option<LaunchStats>, SimError> {
        self.step_inner(kernel, &mut None, Some(rep))
    }

    /// Run the active replay launch — possibly one just restored from a
    /// [`Snapshot`] — to completion.
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch_replay_step`]. A restored replay additionally
    /// rejects a trace whose fingerprint differs from the snapshot's
    /// ([`ReplayError::TraceMismatch`]).
    pub fn launch_replay_resume(
        &mut self,
        kernel: &Kernel,
        rep: &LaunchReplay,
    ) -> Result<LaunchStats, SimError> {
        loop {
            if let Some(stats) = self.step_inner(kernel, &mut None, Some(rep))? {
                return Ok(stats);
            }
        }
    }

    /// Start a launch without running it: CTAs are queued, SMs built, and
    /// the first cycle is ready to step. Drive it with [`Gpu::launch_step`]
    /// or [`Gpu::launch_resume`].
    ///
    /// # Errors
    ///
    /// As the setup phase of [`Gpu::launch`] ([`SimError::CtaTooLarge`]).
    ///
    /// # Panics
    ///
    /// Panics if a launch is already active.
    pub fn launch_begin(
        &mut self,
        kernel: &Kernel,
        grid: Dim3,
        block: Dim3,
        params: &[u8],
    ) -> Result<(), SimError> {
        assert!(
            self.active.is_none(),
            "launch_begin while a launch is active"
        );
        let cfg = self.cfg.clone();
        let ctas_per_sm = self.occupancy(kernel, block)?;
        // One sanitizer run per launch: the conservation ledger and the
        // fault-injection counters both describe a single launch.
        let san_run = cfg.sanitize.then(|| SanRun::new(cfg.san_inject));
        let sms: Vec<Sm> = (0..cfg.n_sms)
            .map(|i| {
                let l1 = self.l1s[i]
                    .take()
                    .expect("L1 not returned by previous launch");
                Sm::new(i as u16, &cfg, kernel, ctas_per_sm, l1)
            })
            .collect();

        // CTA work queues per dispatch policy.
        let n_ctas = grid.count();
        let mut global_queue: VecDeque<u64> = VecDeque::new();
        let mut per_sm_queue: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.n_sms];
        match cfg.cta_sched {
            CtaSchedPolicy::RoundRobin => {
                global_queue.extend(0..n_ctas);
            }
            CtaSchedPolicy::Clustered { group } => {
                for cta in 0..n_ctas {
                    let sm = ((cta / u64::from(group.max(1))) % cfg.n_sms as u64) as usize;
                    per_sm_queue[sm].push_back(cta);
                }
            }
        }

        self.blocktrack.begin_launch(kernel.name());
        let start_cycle = self.now;
        let kernel_fp = kernel_fingerprint(kernel);
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.begin_launch(&LaunchInfo {
                kernel_fp,
                kernel_name: kernel.name().to_string(),
                grid,
                block,
                n_streams: grid.count() * warps_per_cta(block, cfg.warp_size),
            });
        }
        self.active = Some(LaunchState {
            kernel_name: kernel.name().to_string(),
            kernel_fp,
            grid,
            block,
            params: params.to_vec(),
            shared_bytes: kernel.shared_bytes(),
            san_run,
            sms,
            global_queue,
            per_sm_queue,
            start_cycle,
            cycle: start_cycle,
            last_progress: start_cycle,
            derived: None,
            replay_fp: None,
        });
        self.selftest_done = false;
        Ok(())
    }

    /// Advance the active launch by one cycle. Returns the final statistics
    /// once the launch completes, `None` while it is still running.
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch`], plus [`SimError::Checkpoint`] when no launch is
    /// active or `kernel` differs from the kernel the launch was started
    /// (or snapshotted) with.
    pub fn launch_step(&mut self, kernel: &Kernel) -> Result<Option<LaunchStats>, SimError> {
        let mut t = self.debug_trace.take();
        let r = self.step_inner(kernel, &mut t, None);
        self.debug_trace = t;
        r
    }

    /// Run the active launch — typically one just restored from a
    /// [`Snapshot`] — to completion.
    ///
    /// # Errors
    ///
    /// As [`Gpu::launch_step`].
    pub fn launch_resume(&mut self, kernel: &Kernel) -> Result<LaunchStats, SimError> {
        let mut t = self.debug_trace.take();
        let r = loop {
            match self.step_inner(kernel, &mut t, None) {
                Ok(Some(stats)) => break Ok(stats),
                Ok(None) => {}
                Err(e) => break Err(e),
            }
        };
        self.debug_trace = t;
        r
    }

    /// Whether a launch is currently in flight.
    pub fn launch_active(&self) -> bool {
        self.active.is_some()
    }

    /// Relative cycle of the active launch (0 at launch start), if any.
    pub fn launch_cycle(&self) -> Option<u64> {
        self.active.as_ref().map(|a| a.cycle - a.start_cycle)
    }

    /// Name of the kernel the active launch is running, if any.
    pub fn launch_kernel_name(&self) -> Option<&str> {
        self.active.as_ref().map(|a| a.kernel_name.as_str())
    }

    /// Testing hook: at relative launch cycle `at`, serialize a snapshot,
    /// restore the GPU from those bytes, and continue — an in-process proof
    /// that interrupt-and-resume is digest-identical. Re-arms on each call;
    /// fires at most once per arming.
    pub fn set_resume_selftest(&mut self, at: Option<u64>) {
        self.resume_selftest = at;
        self.selftest_done = false;
    }

    /// The snapshot captured by the hang watchdog just before it tore the
    /// launch down, if a hang fired since the last call.
    pub fn take_hang_snapshot(&mut self) -> Option<Snapshot> {
        self.hang_snapshot.take()
    }

    fn step_inner(
        &mut self,
        kernel: &Kernel,
        trace: &mut Option<crate::Trace>,
        replay: Option<&LaunchReplay>,
    ) -> Result<Option<LaunchStats>, SimError> {
        // Resume self-test: prove interrupt-and-resume equivalence by
        // round-tripping the complete state through snapshot bytes
        // mid-launch and continuing from the decoded copy.
        if let Some(at) = self.resume_selftest {
            if !self.selftest_done && self.launch_cycle() == Some(at) {
                self.selftest_done = true;
                let snap = Snapshot::from_bytes(&self.snapshot().to_bytes())
                    .map_err(SimError::Checkpoint)?;
                self.restore(&snap)?;
            }
        }
        let cfg = self.cfg.clone();
        {
            let Some(active) = self.active.as_mut() else {
                return Err(SimError::Checkpoint(CheckpointError::Malformed(
                    "no active launch to step",
                )));
            };
            // Cheap per-step guard: a replay launch must be driven with its
            // trace and an execution launch without one. The expensive
            // fingerprint comparison happens once, in the derived-init
            // block below.
            match (active.replay_fp, replay) {
                (Some(_), None) => return Err(ReplayError::MissingReplay.into()),
                (None, Some(_)) => return Err(ReplayError::NotReplayLaunch.into()),
                _ => {}
            }
            if active.derived.is_none() {
                // First step since launch_begin or restore: verify the
                // caller's kernel is the one the launch was started with
                // before deriving per-kernel state from it. Checked only
                // here — recomputing the fingerprint (a Debug-format of the
                // whole kernel) every cycle would dominate the step cost.
                let kfp = kernel_fingerprint(kernel);
                if active.kernel_fp != kfp {
                    return Err(SimError::Checkpoint(CheckpointError::KernelMismatch {
                        found: active.kernel_fp,
                        expected: kfp,
                    }));
                }
                if let (Some(fp), Some(rep)) = (active.replay_fp, replay) {
                    // First step of a replay launch (or first after a
                    // restore): the trace the caller supplies must be the
                    // trace the launch was started with — the snapshot
                    // records only a fingerprint, so warp cursors need
                    // relinking to live record streams here.
                    let found = rep.fingerprint();
                    if found != fp {
                        return Err(ReplayError::TraceMismatch {
                            found,
                            expected: fp,
                        }
                        .into());
                    }
                    for sm in &mut active.sms {
                        sm.relink_replay(rep).map_err(SimError::Checkpoint)?;
                    }
                }
                let classification = classify(kernel);
                let cfg_ptx = gcl_ptx::Cfg::build(kernel);
                let reconv = cfg_ptx.reconvergence_pcs(kernel);
                active.derived = Some(Derived {
                    classification,
                    reconv,
                    addrmap: AddrMap::new(cfg.n_partitions, cfg.n_sms, cfg.l2_topology),
                });
            }
        }

        let end = {
            let active = self.active.as_mut().expect("active launch checked above");
            let LaunchState {
                grid,
                block,
                params,
                san_run,
                sms,
                global_queue,
                per_sm_queue,
                start_cycle,
                cycle,
                last_progress,
                derived,
                ..
            } = active;
            let derived = derived.as_ref().expect("derived state ensured above");
            let (grid, block, start_cycle) = (*grid, *block, *start_cycle);
            let now_cycle = *cycle;
            let mut progress = false;

            // Dispatch CTAs to free slots (one per SM per cycle).
            for (i, sm) in sms.iter_mut().enumerate() {
                if !sm.has_free_cta_slot() {
                    continue;
                }
                let next = match cfg.cta_sched {
                    CtaSchedPolicy::RoundRobin => global_queue.pop_front(),
                    CtaSchedPolicy::Clustered { .. } => per_sm_queue[i].pop_front(),
                };
                if let Some(cta) = next {
                    let (x, y, z) = grid.coords(cta);
                    sm.dispatch_cta(cta, (x, y, z), block, &cfg, kernel, replay);
                    progress = true;
                }
            }

            // Cores.
            let mut fault: Option<TickError> = None;
            for sm in sms.iter_mut() {
                let mut ctx = TickCtx {
                    cycle: now_cycle,
                    kernel,
                    reconv: &derived.reconv,
                    classification: &derived.classification,
                    params,
                    gmem: &mut self.gmem,
                    icnt: &mut self.icnt,
                    addrmap: &derived.addrmap,
                    blocktrack: &mut self.blocktrack,
                    cfg: &cfg,
                    ntid: block,
                    nctaid: grid,
                    trace,
                    sink: &mut self.sink,
                    san: san_run.as_mut(),
                };
                match sm.tick(&mut ctx) {
                    Ok(moved) => progress |= moved,
                    Err(f) => {
                        fault = Some(f);
                        break;
                    }
                }
            }
            if let Some(f) = fault {
                StepEnd::Fault(f)
            } else {
                // Interconnect and memory partitions. Conservation
                // transitions at every seam the simulator can observe;
                // partition-internal ones arrive via `pop_event`. A
                // violation is collected rather than returned mid-loop so
                // every partition still ticks.
                let mut san_fault: Option<Box<ConservationReport>> = None;
                self.icnt.tick(now_cycle);
                for (p, part) in self.partitions.iter_mut().enumerate() {
                    if part.can_enqueue() {
                        if let Some(req) = self.icnt.pop_request(p, now_cycle) {
                            if req.san != 0 {
                                if let Some(sr) = san_run.as_mut() {
                                    if let Err(r) =
                                        sr.ledger.transition(req.san, SanStage::L2, now_cycle)
                                    {
                                        san_fault.get_or_insert(r);
                                    }
                                }
                            }
                            let ok = part.enqueue(req);
                            debug_assert!(ok);
                        }
                    }
                    part.tick(now_cycle);
                    if let Some(sr) = san_run.as_mut() {
                        while let Some((id, ev)) = part.pop_event() {
                            let res = match ev {
                                PartitionEvent::DramEntered => {
                                    sr.ledger.transition(id, SanStage::Dram, now_cycle)
                                }
                                PartitionEvent::WriteRetired => sr.ledger.retire(id, now_cycle),
                            };
                            if let Err(r) = res {
                                san_fault.get_or_insert(r);
                            }
                        }
                    }
                    while self.icnt.can_inject_response(p) {
                        match part.pop_response(now_cycle) {
                            Some(resp) => {
                                if resp.san != 0 {
                                    if let Some(sr) = san_run.as_mut() {
                                        if let Err(r) = sr.ledger.transition(
                                            resp.san,
                                            SanStage::IcntResp,
                                            now_cycle,
                                        ) {
                                            san_fault.get_or_insert(r);
                                        }
                                    }
                                }
                                let ok = self.icnt.inject_response(p, resp);
                                debug_assert!(ok);
                            }
                            None => break,
                        }
                    }
                }
                if let Some(report) = san_fault {
                    StepEnd::SanFault(report)
                } else {
                    let next_cycle = now_cycle + 1;
                    *cycle = next_cycle;
                    // Forward-progress watchdog: the last cycle on which any
                    // SM issued an instruction, completed a memory op, or a
                    // CTA was dispatched or retired.
                    if progress {
                        *last_progress = next_cycle;
                    }

                    // Completion: all work dispatched, all SMs drained,
                    // hierarchy empty.
                    let work_left =
                        !global_queue.is_empty() || per_sm_queue.iter().any(|q| !q.is_empty());
                    if !work_left
                        && sms.iter().all(Sm::is_idle)
                        && self.icnt.is_empty()
                        && self.partitions.iter().all(L2Partition::is_empty)
                    {
                        StepEnd::Done
                    } else if next_cycle - *last_progress >= cfg.hang_cycles {
                        StepEnd::Hang(Box::new(HangReport {
                            cycle: next_cycle - start_cycle,
                            last_progress: *last_progress - start_cycle,
                            hang_cycles: cfg.hang_cycles,
                            ctas_outstanding: global_queue.len() as u64
                                + per_sm_queue.iter().map(|q| q.len() as u64).sum::<u64>(),
                            sms: sms.iter().map(Sm::snapshot).collect(),
                        }))
                    } else if next_cycle - start_cycle >= cfg.max_cycles {
                        StepEnd::Timeout(next_cycle - start_cycle)
                    } else {
                        StepEnd::Continue
                    }
                }
            }
        };

        match end {
            StepEnd::Continue => Ok(None),
            StepEnd::Done => {
                let mut stats = self.finish_launch(kernel)?;
                if let Some(t) = trace.as_ref() {
                    stats.trace_dropped = t.dropped();
                }
                Ok(Some(stats))
            }
            StepEnd::Fault(fault) => {
                let classification = self
                    .active
                    .as_mut()
                    .and_then(|a| a.derived.take())
                    .map(|d| d.classification);
                self.abandon_launch();
                Err(match fault {
                    TickError::Mem(mut fault) => {
                        // Attach what the classifier knows about the faulting
                        // instruction: its D/N class and the def-chain witness
                        // of its address.
                        if let Some(load) = classification
                            .as_ref()
                            .and_then(|c| c.load(fault.violation.pc))
                        {
                            fault.class = Some(load.class);
                            fault.witness = load.witness.clone();
                        }
                        SimError::MemFault(fault)
                    }
                    TickError::San(report) => SimError::Sanitizer(report),
                })
            }
            StepEnd::SanFault(report) => {
                self.abandon_launch();
                Err(SimError::Sanitizer(Box::new(
                    SanitizerReport::Conservation(*report),
                )))
            }
            StepEnd::Hang(report) => {
                // Dump the complete mid-flight state for post-mortem
                // inspection (surfaced by `gcl run` as a checkpoint file)
                // before tearing the launch down.
                self.hang_snapshot = Some(self.snapshot());
                self.abandon_launch();
                Err(SimError::Hang(report))
            }
            StepEnd::Timeout(cycles) => {
                self.abandon_launch();
                Err(SimError::Timeout { cycles })
            }
        }
    }

    /// Success path of a completed launch: drain checks, determinism
    /// digest, statistics assembly, and returning the warm L1s to their
    /// slots.
    fn finish_launch(&mut self, kernel: &Kernel) -> Result<LaunchStats, SimError> {
        let active = self.active.take().expect("finishing without active launch");
        let LaunchState {
            sms,
            mut san_run,
            start_cycle,
            cycle,
            derived,
            ..
        } = active;
        self.now = cycle;

        // Success-path drain check: a completed launch must leave no
        // residue in any per-launch structure (satellite of the sanitizer's
        // conservation checker; always on in debug builds).
        if cfg!(debug_assertions) {
            for sm in &sms {
                sm.assert_drained();
            }
        }
        let mut digest = None;
        if let Some(sr) = san_run.as_mut() {
            if let Err(report) = sr.ledger.check_drained(cycle) {
                self.abandon_launch();
                return Err(SimError::Sanitizer(Box::new(
                    SanitizerReport::Conservation(*report),
                )));
            }
            // Determinism digest: per-SM event digests folded in SM order,
            // then the launch length. Any scheduling divergence between two
            // runs of the same workload lands here.
            let mut d = crate::san::FNV_OFFSET;
            for sm in &sms {
                d = crate::san::fnv_fold(d, sm.san_digest().unwrap_or(0));
            }
            d = crate::san::fnv_fold(d, cycle - start_cycle);
            if sr.digest_noise() {
                // DigestNoise injection: fold a process-global counter in so
                // two otherwise-identical runs diverge.
                static NOISE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                d = crate::san::fnv_fold(
                    d,
                    NOISE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                );
            }
            digest = Some(d);
        }
        // Capture hook: the launch completed cleanly, so the recorded
        // stream set is complete — seal it. (Faulted launches go through
        // `abandon_launch`, which discards the open capture instead.)
        if let Some(sink) = self.sink.as_deref_mut() {
            sink.end_launch();
        }
        let classification = match derived {
            Some(d) => d.classification,
            None => classify(kernel),
        };

        // Assemble stats.
        let mut stats = LaunchStats {
            name: kernel.name().to_string(),
            launches: 1,
            cycles: cycle - start_cycle,
            static_loads: classification.global_load_counts(),
            digest,
            ..LaunchStats::default()
        };
        for (i, sm) in sms.into_iter().enumerate() {
            let (sm_stats, mut l1, loadtrack) = sm.into_parts();
            stats.sm.merge(&sm_stats);
            stats.l1.merge(&l1.take_stats());
            self.l1s[i] = Some(l1);
            let (class_agg, per_pc) = loadtrack.into_parts();
            for (agg, merged) in class_agg.iter().zip(stats.class_agg.iter_mut()) {
                merged.merge(agg);
            }
            let mut per_pc: Vec<_> = per_pc.into_iter().collect();
            per_pc.sort_by_key(|&((pc, n), _)| (pc, n));
            for ((pc, n_requests), v) in per_pc {
                let class = classification
                    .class_of(pc)
                    .unwrap_or(gcl_core::LoadClass::Deterministic);
                let key = crate::stats::PcKey {
                    kernel: kernel.name().to_string(),
                    pc,
                    class,
                    n_requests,
                };
                stats.add_pc(key, &v);
            }
        }
        for part in &mut self.partitions {
            let (l2_stats, dram_stats) = part.take_stats();
            stats.l2.merge(&l2_stats);
            stats.add_dram(&dram_stats);
        }
        Ok(stats)
    }

    /// Capture the complete simulator state — idle or mid-launch — as a
    /// versioned, checksummed [`Snapshot`].
    ///
    /// Mid-launch snapshots include every SM's warp contexts, SIMT stacks,
    /// scoreboards, register values, shared memory, L1 tag/MSHR arrays,
    /// the interconnect and DRAM queues, the in-flight request ledger, and
    /// all accumulated statistics, so a restored launch continues
    /// cycle-exactly with an identical event digest. The issue trace of
    /// [`Gpu::launch_traced`] is diagnostic-only and not captured.
    pub fn snapshot(&self) -> Snapshot {
        let mut e = Enc::new();
        self.gmem.ckpt_encode(&mut e);
        self.blocktrack.ckpt_encode(&mut e);
        e.u64(self.now);
        self.icnt.ckpt_encode(&mut e);
        e.usize(self.partitions.len());
        for p in &self.partitions {
            p.ckpt_encode(&mut e);
        }
        match &self.active {
            Some(a) => {
                e.bool(true);
                e.str(&a.kernel_name);
                e.u64(a.kernel_fp);
                for v in [
                    a.grid.x, a.grid.y, a.grid.z, a.block.x, a.block.y, a.block.z,
                ] {
                    e.u32(v);
                }
                e.bytes(&a.params);
                e.u32(a.shared_bytes);
                e.opt(&a.replay_fp, |e, &v| e.u64(v));
                e.u64(a.start_cycle);
                e.u64(a.cycle);
                e.u64(a.last_progress);
                e.usize(a.global_queue.len());
                for &c in &a.global_queue {
                    e.u64(c);
                }
                e.usize(a.per_sm_queue.len());
                for q in &a.per_sm_queue {
                    e.usize(q.len());
                    for &c in q {
                        e.u64(c);
                    }
                }
                e.usize(a.sms.len());
                for sm in &a.sms {
                    sm.ckpt_encode(&mut e);
                }
                e.opt(&a.san_run, |e, s| s.ckpt_encode(e));
            }
            None => {
                e.bool(false);
                e.usize(self.l1s.len());
                for l1 in &self.l1s {
                    l1.as_ref()
                        .expect("L1 present on an idle GPU")
                        .ckpt_encode(&mut e);
                }
            }
        }
        Snapshot {
            version: SNAPSHOT_VERSION,
            config_fp: config_fingerprint(&self.cfg),
            payload: e.into_bytes(),
        }
    }

    /// Replace the simulator state with `snap`'s.
    ///
    /// The payload is decoded into temporaries and validated end to end
    /// before any live state is touched: a rejected restore leaves the GPU
    /// exactly as it was.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] on a format-version mismatch, a
    /// configuration-fingerprint mismatch, or a payload that fails
    /// structural validation.
    pub fn restore(&mut self, snap: &Snapshot) -> Result<(), SimError> {
        self.restore_inner(snap).map_err(SimError::Checkpoint)
    }

    fn restore_inner(&mut self, snap: &Snapshot) -> Result<(), CheckpointError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: snap.version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let expected = config_fingerprint(&self.cfg);
        if snap.config_fp != expected {
            return Err(CheckpointError::ConfigMismatch {
                found: snap.config_fp,
                expected,
            });
        }
        let cfg = &self.cfg;
        let mut d = Dec::new(&snap.payload);
        let gmem = GlobalMem::ckpt_decode(&mut d)?;
        let blocktrack = BlockTracker::ckpt_decode(&mut d)?;
        let now = d.u64()?;
        let icnt = Icnt::ckpt_decode(&mut d, cfg.icnt, cfg.n_sms, cfg.n_partitions)?;
        let n_parts = d.seq_len()?;
        if n_parts != cfg.n_partitions {
            return Err(CheckpointError::Malformed("partition count mismatch"));
        }
        let mut partitions = Vec::with_capacity(n_parts);
        for _ in 0..n_parts {
            partitions.push(L2Partition::ckpt_decode(&mut d, cfg.partition)?);
        }
        let (active, l1s) = if d.bool()? {
            let kernel_name = d.str()?;
            let kernel_fp = d.u64()?;
            let grid = Dim3 {
                x: d.u32()?,
                y: d.u32()?,
                z: d.u32()?,
            };
            let block = Dim3 {
                x: d.u32()?,
                y: d.u32()?,
                z: d.u32()?,
            };
            let params = d.bytes()?.to_vec();
            let shared_bytes = d.u32()?;
            let replay_fp = d.opt(|d| d.u64())?;
            let start_cycle = d.u64()?;
            let cycle = d.u64()?;
            let last_progress = d.u64()?;
            if cycle < start_cycle || last_progress < start_cycle || last_progress > cycle {
                return Err(CheckpointError::Malformed("launch cycle ordering"));
            }
            let global_queue: VecDeque<u64> = d.seq(|d| d.u64())?.into();
            let nq = d.seq_len()?;
            if nq != cfg.n_sms {
                return Err(CheckpointError::Malformed("per-SM queue count mismatch"));
            }
            let mut per_sm_queue: Vec<VecDeque<u64>> = Vec::with_capacity(nq);
            for _ in 0..nq {
                per_sm_queue.push(d.seq(|d| d.u64())?.into());
            }
            let n_sms = d.seq_len()?;
            if n_sms != cfg.n_sms {
                return Err(CheckpointError::Malformed("SM count mismatch"));
            }
            let mut sms = Vec::with_capacity(n_sms);
            for _ in 0..n_sms {
                sms.push(Sm::ckpt_decode(&mut d, cfg, shared_bytes as usize)?);
            }
            let san_run = d.opt(|d| SanRun::ckpt_decode(d, cfg.san_inject))?;
            if san_run.is_some() != cfg.sanitize {
                return Err(CheckpointError::Malformed(
                    "sanitizer run presence mismatch",
                ));
            }
            let l1s = (0..cfg.n_sms).map(|_| None).collect();
            (
                Some(LaunchState {
                    kernel_name,
                    kernel_fp,
                    grid,
                    block,
                    params,
                    shared_bytes,
                    san_run,
                    sms,
                    global_queue,
                    per_sm_queue,
                    start_cycle,
                    cycle,
                    last_progress,
                    derived: None,
                    replay_fp,
                }),
                l1s,
            )
        } else {
            let n = d.seq_len()?;
            if n != cfg.n_sms {
                return Err(CheckpointError::Malformed("L1 count mismatch"));
            }
            let mut l1s = Vec::with_capacity(n);
            for _ in 0..n {
                l1s.push(Some(gcl_mem::Cache::ckpt_decode(&mut d, cfg.l1)?));
            }
            (None, l1s)
        };
        if !d.is_done() {
            return Err(CheckpointError::Malformed("trailing bytes in payload"));
        }
        // Point of no return: everything decoded and validated, so the
        // assignment below can no longer fail partway.
        self.gmem = gmem;
        self.blocktrack = blocktrack;
        self.now = now;
        self.icnt = icnt;
        self.partitions = partitions;
        self.l1s = l1s;
        self.active = active;
        Ok(())
    }
}
