//! The whole GPU: SMs, interconnect, memory partitions, CTA dispatch, and
//! the cycle loop.

use crate::fault::{AllocError, ConfigError, HangReport, MemFaultReport};
use crate::san::{SanRun, SanitizerReport, TickError};
use crate::sm::TickCtx;
use crate::{
    BlockSummary, BlockTracker, CtaSchedPolicy, Dim3, GlobalMem, GpuConfig, LaunchStats, Sm,
};
use gcl_core::classify;
use gcl_mem::{AddrMap, ConservationReport, Icnt, L2Partition, PartitionEvent, SanStage};
use gcl_ptx::Kernel;
use std::collections::VecDeque;
use std::fmt;

/// Everything that can go wrong constructing a [`Gpu`] or running a
/// launch. Each variant carries the full structured report; the `Display`
/// form is what `gcl` prints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed [`GpuConfig::validate`].
    InvalidConfig(ConfigError),
    /// A device allocation failed (bad alignment, overflowing size).
    Alloc(AllocError),
    /// Memcheck caught an out-of-bounds device access.
    MemFault(Box<MemFaultReport>),
    /// The forward-progress watchdog fired (barrier deadlock, scheduler
    /// livelock): no instruction issued, response landed, or CTA moved for
    /// [`GpuConfig::hang_cycles`] consecutive cycles.
    Hang(Box<HangReport>),
    /// The launch made progress but did not finish within
    /// [`GpuConfig::max_cycles`].
    Timeout {
        /// Cycles simulated before giving up.
        cycles: u64,
    },
    /// The kernel's CTA cannot fit on an SM under this configuration.
    CtaTooLarge {
        /// Threads per CTA requested.
        threads: u64,
        /// The limiting resource.
        reason: &'static str,
    },
    /// The simsan runtime sanitizer ([`GpuConfig::sanitize`]) caught a
    /// violation: broken request conservation, a shared-memory race, or
    /// digest divergence between runs.
    Sanitizer(Box<SanitizerReport>),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(e) => write!(f, "{e}"),
            SimError::Alloc(e) => write!(f, "device allocation failed: {e}"),
            SimError::MemFault(report) => write!(f, "{report}"),
            SimError::Hang(report) => write!(f, "{report}"),
            SimError::Timeout { cycles } => {
                write!(f, "kernel did not finish within {cycles} cycles")
            }
            SimError::CtaTooLarge { threads, reason } => {
                write!(
                    f,
                    "CTA of {threads} threads does not fit on an SM: {reason}"
                )
            }
            SimError::Sanitizer(report) => write!(f, "sanitizer: {report}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::InvalidConfig(e) => Some(e),
            SimError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::InvalidConfig(e)
    }
}

impl From<AllocError> for SimError {
    fn from(e: AllocError) -> SimError {
        SimError::Alloc(e)
    }
}

/// Pack kernel parameter values (one raw 64-bit value per declared
/// parameter) into the launch's parameter block.
///
/// # Panics
///
/// Panics if the value count does not match the kernel's parameter count.
pub fn pack_params(kernel: &Kernel, values: &[u64]) -> Vec<u8> {
    assert_eq!(
        values.len(),
        kernel.params().len(),
        "kernel `{}` takes {} parameters, got {}",
        kernel.name(),
        kernel.params().len(),
        values.len()
    );
    let mut block = vec![0u8; kernel.param_bytes() as usize];
    for (i, &v) in values.iter().enumerate() {
        let off = kernel.param_offset(i) as usize;
        let n = kernel.params()[i].ty.size_bytes() as usize;
        for k in 0..n {
            block[off + k] = (v >> (8 * k)) as u8;
        }
    }
    block
}

/// A simulated GPU: owns device memory and cross-launch locality tracking;
/// cores and the memory hierarchy are instantiated per launch.
///
/// # Examples
///
/// ```
/// use gcl_sim::{pack_params, Dim3, Gpu, GpuConfig};
/// use gcl_ptx::{KernelBuilder, Type};
///
/// // out[tid] = tid
/// let mut b = KernelBuilder::new("iota");
/// let p = b.param("out", Type::U64);
/// let base = b.ld_param(Type::U64, p);
/// let tid = b.thread_linear_id();
/// let a = b.index64(base, tid, 4);
/// b.st_global(Type::U32, a, tid);
/// b.exit();
/// let k = b.build()?;
///
/// let mut gpu = Gpu::new(GpuConfig::small())?;
/// let out = gpu.mem().alloc_array(Type::U32, 64)?;
/// let params = pack_params(&k, &[out]);
/// let stats = gpu.launch(&k, Dim3::x(2), Dim3::x(32), &params)?;
/// assert!(stats.cycles > 0);
/// assert_eq!(gpu.mem().read_u32_slice(out, 4), vec![0, 1, 2, 3]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    gmem: GlobalMem,
    blocktrack: BlockTracker,
    /// Per-SM L1 caches, kept warm across kernel launches (slots are taken
    /// during a launch and returned afterwards).
    l1s: Vec<Option<gcl_mem::Cache>>,
    icnt: Icnt,
    partitions: Vec<L2Partition>,
    /// Monotonic device clock: launches continue from where the previous
    /// one ended, so persistent component timestamps stay consistent.
    now: gcl_mem::Cycle,
}

impl Gpu {
    /// Create a GPU with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the configuration is
    /// inconsistent (see [`GpuConfig::validate`]).
    pub fn new(cfg: GpuConfig) -> Result<Gpu, SimError> {
        cfg.validate()?;
        let l1s = (0..cfg.n_sms)
            .map(|_| Some(gcl_mem::Cache::new(cfg.l1)))
            .collect();
        let icnt = Icnt::new(cfg.icnt, cfg.n_sms, cfg.n_partitions);
        let partitions = (0..cfg.n_partitions)
            .map(|_| L2Partition::new(cfg.partition))
            .collect();
        Ok(Gpu {
            cfg,
            gmem: GlobalMem::new(),
            blocktrack: BlockTracker::new(),
            l1s,
            icnt,
            partitions,
            now: 0,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Device memory (allocate and initialize buffers here, inspect results
    /// after launches).
    pub fn mem(&mut self) -> &mut GlobalMem {
        &mut self.gmem
    }

    /// Read-only view of device memory.
    pub fn mem_ref(&self) -> &GlobalMem {
        &self.gmem
    }

    /// Cross-launch block locality summary (the paper's Figures 10–11).
    pub fn block_summary(&self) -> BlockSummary {
        self.blocktrack.summary()
    }

    /// Cross-launch CTA-distance histogram (Figure 12).
    pub fn distance_histogram(&self) -> Vec<(u64, f64)> {
        self.blocktrack.distance_histogram()
    }

    /// Resident CTAs per SM for this kernel/launch geometry.
    fn occupancy(&self, kernel: &Kernel, block: Dim3) -> Result<usize, SimError> {
        let threads = block.count();
        let cfg = &self.cfg;
        if threads > u64::from(cfg.max_threads_per_sm) {
            return Err(SimError::CtaTooLarge {
                threads,
                reason: "thread limit",
            });
        }
        if kernel.shared_bytes() > cfg.shared_mem_per_sm {
            return Err(SimError::CtaTooLarge {
                threads,
                reason: "shared memory",
            });
        }
        let by_threads = u64::from(cfg.max_threads_per_sm) / threads;
        let by_shared = if kernel.shared_bytes() == 0 {
            u64::MAX
        } else {
            u64::from(cfg.shared_mem_per_sm / kernel.shared_bytes())
        };
        let ctas = by_threads
            .min(by_shared)
            .min(u64::from(cfg.max_ctas_per_sm))
            .max(1) as usize;
        Ok(ctas)
    }

    /// Tear down a launch abandoned mid-flight so the GPU stays usable:
    /// the partially-run SMs are dropped, every L1 slot (taken by the
    /// failed launch, possibly holding MSHR entries whose fills will never
    /// arrive) is replaced by a fresh cache, the interconnect and
    /// partitions are rebuilt empty, and the device clock advances past
    /// the failure. Warm-cache state is deliberately sacrificed — stale
    /// in-flight requests must never leak into the next launch.
    fn abandon_launch(&mut self, sms: Vec<Sm>, cycle: u64) {
        drop(sms);
        for slot in self.l1s.iter_mut() {
            *slot = Some(gcl_mem::Cache::new(self.cfg.l1));
        }
        self.icnt = Icnt::new(self.cfg.icnt, self.cfg.n_sms, self.cfg.n_partitions);
        self.partitions = (0..self.cfg.n_partitions)
            .map(|_| L2Partition::new(self.cfg.partition))
            .collect();
        self.now = cycle;
    }

    /// Run one kernel to completion.
    ///
    /// # Errors
    ///
    /// * [`SimError::CtaTooLarge`] if a CTA cannot fit on an SM.
    /// * [`SimError::MemFault`] if [`GpuConfig::memcheck`] is on and the
    ///   kernel touches memory outside every live allocation; the report
    ///   names the faulting pc, SM/warp/lane, address, the load's D/N
    ///   class, and its address def-chain witness.
    /// * [`SimError::Hang`] if nothing makes forward progress for
    ///   [`GpuConfig::hang_cycles`] consecutive cycles (e.g. a barrier
    ///   deadlock); carries a per-SM, per-warp state dump.
    /// * [`SimError::Timeout`] if the launch exceeds
    ///   [`GpuConfig::max_cycles`] while still making progress.
    /// * [`SimError::Sanitizer`] if [`GpuConfig::sanitize`] is on and a
    ///   checker fires: a request left the conservation state machine (or
    ///   leaked past launch end), or two warps of a CTA raced on shared
    ///   memory within one barrier epoch.
    ///
    /// Any error leaves the GPU reusable: L1 caches are reclaimed and the
    /// device clock advances past the failed launch.
    pub fn launch(
        &mut self,
        kernel: &Kernel,
        grid: Dim3,
        block: Dim3,
        params: &[u8],
    ) -> Result<LaunchStats, SimError> {
        let mut trace = None;
        self.launch_inner(kernel, grid, block, params, &mut trace)
    }

    /// Run one kernel, recording up to `capacity` issued instructions.
    ///
    /// # Errors
    ///
    /// As for [`Gpu::launch`].
    pub fn launch_traced(
        &mut self,
        kernel: &Kernel,
        grid: Dim3,
        block: Dim3,
        params: &[u8],
        capacity: usize,
    ) -> Result<(LaunchStats, crate::Trace), SimError> {
        let mut trace = Some(crate::Trace::new(capacity));
        let stats = self.launch_inner(kernel, grid, block, params, &mut trace)?;
        Ok((stats, trace.expect("trace preserved across launch")))
    }

    fn launch_inner(
        &mut self,
        kernel: &Kernel,
        grid: Dim3,
        block: Dim3,
        params: &[u8],
        trace: &mut Option<crate::Trace>,
    ) -> Result<LaunchStats, SimError> {
        let cfg = self.cfg.clone();
        // One sanitizer run per launch: the conservation ledger and the
        // fault-injection counters both describe a single launch.
        let mut san_run = cfg.sanitize.then(|| SanRun::new(cfg.san_inject));
        let ctas_per_sm = self.occupancy(kernel, block)?;
        let classification = classify(kernel);
        let cfg_ptx = gcl_ptx::Cfg::build(kernel);
        let reconv = cfg_ptx.reconvergence_pcs(kernel);

        let mut sms: Vec<Sm> = (0..cfg.n_sms)
            .map(|i| {
                let l1 = self.l1s[i]
                    .take()
                    .expect("L1 not returned by previous launch");
                Sm::new(i as u16, &cfg, kernel, ctas_per_sm, l1)
            })
            .collect();
        let addrmap = AddrMap::new(cfg.n_partitions, cfg.n_sms, cfg.l2_topology);

        // CTA work queues per dispatch policy.
        let n_ctas = grid.count();
        let mut global_queue: VecDeque<u64> = VecDeque::new();
        let mut per_sm_queue: Vec<VecDeque<u64>> = vec![VecDeque::new(); cfg.n_sms];
        match cfg.cta_sched {
            CtaSchedPolicy::RoundRobin => {
                global_queue.extend(0..n_ctas);
            }
            CtaSchedPolicy::Clustered { group } => {
                for cta in 0..n_ctas {
                    let sm = ((cta / u64::from(group.max(1))) % cfg.n_sms as u64) as usize;
                    per_sm_queue[sm].push_back(cta);
                }
            }
        }

        let start_cycle = self.now;
        let mut cycle: u64 = start_cycle;
        // Forward-progress watchdog: the last cycle on which any SM issued
        // an instruction, completed a memory op, or a CTA was dispatched or
        // retired.
        let mut last_progress = start_cycle;
        loop {
            let mut progress = false;

            // Dispatch CTAs to free slots (one per SM per cycle).
            for (i, sm) in sms.iter_mut().enumerate() {
                if !sm.has_free_cta_slot() {
                    continue;
                }
                let next = match cfg.cta_sched {
                    CtaSchedPolicy::RoundRobin => global_queue.pop_front(),
                    CtaSchedPolicy::Clustered { .. } => per_sm_queue[i].pop_front(),
                };
                if let Some(cta) = next {
                    let (x, y, z) = grid.coords(cta);
                    sm.dispatch_cta(cta, (x, y, z), block, &cfg, kernel);
                    progress = true;
                }
            }

            // Cores.
            let mut fault: Option<TickError> = None;
            for sm in sms.iter_mut() {
                let mut ctx = TickCtx {
                    cycle,
                    kernel,
                    reconv: &reconv,
                    classification: &classification,
                    params,
                    gmem: &mut self.gmem,
                    icnt: &mut self.icnt,
                    addrmap: &addrmap,
                    blocktrack: &mut self.blocktrack,
                    cfg: &cfg,
                    ntid: block,
                    nctaid: grid,
                    trace,
                    san: san_run.as_mut(),
                };
                match sm.tick(&mut ctx) {
                    Ok(moved) => progress |= moved,
                    Err(f) => {
                        fault = Some(f);
                        break;
                    }
                }
            }
            if let Some(fault) = fault {
                self.abandon_launch(sms, cycle);
                return Err(match fault {
                    TickError::Mem(mut fault) => {
                        // Attach what the classifier knows about the faulting
                        // instruction: its D/N class and the def-chain witness
                        // of its address.
                        if let Some(load) = classification.load(fault.violation.pc) {
                            fault.class = Some(load.class);
                            fault.witness = load.witness.clone();
                        }
                        SimError::MemFault(fault)
                    }
                    TickError::San(report) => SimError::Sanitizer(report),
                });
            }

            // Interconnect and memory partitions. Conservation transitions
            // at every seam the simulator can observe; partition-internal
            // ones arrive via `pop_event`. A violation is collected rather
            // than returned mid-loop so every partition still ticks.
            let mut san_fault: Option<Box<ConservationReport>> = None;
            self.icnt.tick(cycle);
            for (p, part) in self.partitions.iter_mut().enumerate() {
                if part.can_enqueue() {
                    if let Some(req) = self.icnt.pop_request(p, cycle) {
                        if req.san != 0 {
                            if let Some(sr) = san_run.as_mut() {
                                if let Err(r) = sr.ledger.transition(req.san, SanStage::L2, cycle) {
                                    san_fault.get_or_insert(r);
                                }
                            }
                        }
                        let ok = part.enqueue(req);
                        debug_assert!(ok);
                    }
                }
                part.tick(cycle);
                if let Some(sr) = san_run.as_mut() {
                    while let Some((id, ev)) = part.pop_event() {
                        let res = match ev {
                            PartitionEvent::DramEntered => {
                                sr.ledger.transition(id, SanStage::Dram, cycle)
                            }
                            PartitionEvent::WriteRetired => sr.ledger.retire(id, cycle),
                        };
                        if let Err(r) = res {
                            san_fault.get_or_insert(r);
                        }
                    }
                }
                while self.icnt.can_inject_response(p) {
                    match part.pop_response(cycle) {
                        Some(resp) => {
                            if resp.san != 0 {
                                if let Some(sr) = san_run.as_mut() {
                                    if let Err(r) =
                                        sr.ledger.transition(resp.san, SanStage::IcntResp, cycle)
                                    {
                                        san_fault.get_or_insert(r);
                                    }
                                }
                            }
                            let ok = self.icnt.inject_response(p, resp);
                            debug_assert!(ok);
                        }
                        None => break,
                    }
                }
            }
            if let Some(report) = san_fault {
                self.abandon_launch(sms, cycle);
                return Err(SimError::Sanitizer(Box::new(
                    SanitizerReport::Conservation(*report),
                )));
            }

            cycle += 1;
            if progress {
                last_progress = cycle;
            }

            // Completion: all work dispatched, all SMs drained, hierarchy
            // empty.
            let work_left = !global_queue.is_empty() || per_sm_queue.iter().any(|q| !q.is_empty());
            if !work_left
                && sms.iter().all(Sm::is_idle)
                && self.icnt.is_empty()
                && self.partitions.iter().all(L2Partition::is_empty)
            {
                break;
            }
            if cycle - last_progress >= cfg.hang_cycles {
                let report = HangReport {
                    cycle: cycle - start_cycle,
                    last_progress: last_progress - start_cycle,
                    hang_cycles: cfg.hang_cycles,
                    ctas_outstanding: global_queue.len() as u64
                        + per_sm_queue.iter().map(|q| q.len() as u64).sum::<u64>(),
                    sms: sms.iter().map(Sm::snapshot).collect(),
                };
                self.abandon_launch(sms, cycle);
                return Err(SimError::Hang(Box::new(report)));
            }
            if cycle - start_cycle >= cfg.max_cycles {
                let cycles = cycle - start_cycle;
                self.abandon_launch(sms, cycle);
                return Err(SimError::Timeout { cycles });
            }
        }
        self.now = cycle;

        // Success-path drain check: a completed launch must leave no
        // residue in any per-launch structure (satellite of the sanitizer's
        // conservation checker; always on in debug builds).
        if cfg!(debug_assertions) {
            for sm in &sms {
                sm.assert_drained();
            }
        }
        let mut digest = None;
        if let Some(sr) = san_run.as_mut() {
            if let Err(report) = sr.ledger.check_drained(cycle) {
                self.abandon_launch(sms, cycle);
                return Err(SimError::Sanitizer(Box::new(
                    SanitizerReport::Conservation(*report),
                )));
            }
            // Determinism digest: per-SM event digests folded in SM order,
            // then the launch length. Any scheduling divergence between two
            // runs of the same workload lands here.
            let mut d = crate::san::FNV_OFFSET;
            for sm in &sms {
                d = crate::san::fnv_fold(d, sm.san_digest().unwrap_or(0));
            }
            d = crate::san::fnv_fold(d, cycle - start_cycle);
            if sr.digest_noise() {
                // DigestNoise injection: fold a process-global counter in so
                // two otherwise-identical runs diverge.
                static NOISE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
                d = crate::san::fnv_fold(
                    d,
                    NOISE.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
                );
            }
            digest = Some(d);
        }

        // Assemble stats.
        let mut stats = LaunchStats {
            name: kernel.name().to_string(),
            launches: 1,
            cycles: cycle - start_cycle,
            static_loads: classification.global_load_counts(),
            digest,
            ..LaunchStats::default()
        };
        for (i, sm) in sms.into_iter().enumerate() {
            let (sm_stats, mut l1, loadtrack) = sm.into_parts();
            stats.sm.merge(&sm_stats);
            stats.l1.merge(&l1.take_stats());
            self.l1s[i] = Some(l1);
            let (class_agg, per_pc) = loadtrack.into_parts();
            for (agg, merged) in class_agg.iter().zip(stats.class_agg.iter_mut()) {
                merged.merge(agg);
            }
            let mut per_pc: Vec<_> = per_pc.into_iter().collect();
            per_pc.sort_by_key(|&((pc, n), _)| (pc, n));
            for ((pc, n_requests), v) in per_pc {
                let class = classification
                    .class_of(pc)
                    .unwrap_or(gcl_core::LoadClass::Deterministic);
                let key = crate::stats::PcKey {
                    kernel: kernel.name().to_string(),
                    pc,
                    class,
                    n_requests,
                };
                stats.add_pc(key, &v);
            }
        }
        for part in &mut self.partitions {
            let (l2_stats, dram_stats) = part.take_stats();
            stats.l2.merge(&l2_stats);
            stats.add_dram(&dram_stats);
        }
        Ok(stats)
    }
}
