//! Aggregated simulation statistics for one kernel launch (or a merge of
//! several).

use crate::loadtrack::{ClassAgg, PcReqAgg};
use crate::SmStats;
use gcl_core::LoadClass;
use gcl_mem::{AccessOutcome, CacheStats, ClassTag, Dec, DramStats, Enc, WireError};
use gcl_stats::ProfilerCounters;

fn enc_cache_stats(e: &mut Enc, s: &CacheStats) {
    for row in &s.attempts {
        for &v in row {
            e.u64(v);
        }
    }
    e.u64(s.fills);
    e.u64(s.writes_forwarded);
}

fn dec_cache_stats(d: &mut Dec<'_>) -> Result<CacheStats, WireError> {
    let mut s = CacheStats::default();
    for row in &mut s.attempts {
        for v in row.iter_mut() {
            *v = d.u64()?;
        }
    }
    s.fills = d.u64()?;
    s.writes_forwarded = d.u64()?;
    Ok(s)
}

/// Identifies one static load at one dynamic request count, across merged
/// launches.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PcKey {
    /// Kernel the load belongs to.
    pub kernel: String,
    /// Instruction index of the load.
    pub pc: usize,
    /// Its classification.
    pub class: LoadClass,
    /// The number of memory requests the warp load generated.
    pub n_requests: u32,
}

/// Statistics of one kernel launch; merge several with
/// [`LaunchStats::merge`] to get whole-application numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LaunchStats {
    /// Kernel (or, after merging, workload) name.
    pub name: String,
    /// Number of launches merged in.
    pub launches: u64,
    /// GPU cycles to completion (summed across launches).
    pub cycles: u64,
    /// Merged per-SM execution stats.
    pub sm: SmStats,
    /// Merged L1 stats across SMs.
    pub l1: CacheStats,
    /// Merged L2 stats across partitions.
    pub l2: CacheStats,
    /// Merged DRAM stats across channels.
    pub dram_serviced: u64,
    /// Sum of DRAM latencies (for the mean).
    pub dram_total_latency: u64,
    /// Per-class warp-load aggregates `[D, N]`.
    pub class_agg: [ClassAgg; 2],
    /// Per (kernel, load pc, class, request count) aggregates for
    /// Figures 6–7.
    pub per_pc: Vec<(PcKey, PcReqAgg)>,
    /// Static load classification counts (deterministic, non-deterministic).
    pub static_loads: (usize, usize),
    /// Per-launch event digest from the sanitizer's determinism auditor
    /// (`Some` only when [`GpuConfig::sanitize`](crate::GpuConfig) is on).
    /// Merging folds digests together so a workload's digest covers every
    /// launch.
    pub digest: Option<u64>,
    /// Events the armed debug trace (`gcl run --trace`) had dropped by the
    /// end of this launch. The trace buffer persists across launches, so
    /// the count is cumulative; merging keeps the maximum, which is the
    /// final total.
    pub trace_dropped: u64,
}

impl LaunchStats {
    /// Per-class aggregate accessor.
    pub fn class(&self, class: LoadClass) -> &ClassAgg {
        match class {
            LoadClass::Deterministic => &self.class_agg[0],
            LoadClass::NonDeterministic => &self.class_agg[1],
        }
    }

    /// Table III profiler counters derived from the hierarchy stats.
    pub fn profiler(&self) -> ProfilerCounters {
        let d = ClassTag::Deterministic;
        let n = ClassTag::NonDeterministic;
        let l1_hits = self.l1.outcome_class(AccessOutcome::Hit, d)
            + self.l1.outcome_class(AccessOutcome::Hit, n);
        let l1_misses = [AccessOutcome::MissIssued, AccessOutcome::HitReserved]
            .iter()
            .map(|o| self.l1.outcome_class(*o, d) + self.l1.outcome_class(*o, n))
            .sum::<u64>();
        let l2_queries = self.l2.accepted(d) + self.l2.accepted(n);
        let l2_hits = self.l2.outcome_class(AccessOutcome::Hit, d)
            + self.l2.outcome_class(AccessOutcome::Hit, n);
        ProfilerCounters {
            gld_request: self.sm.global_load_warps[0] + self.sm.global_load_warps[1],
            shared_load: self.sm.shared_load_warps,
            l1_global_load_hit: l1_hits,
            l1_global_load_miss: l1_misses,
            l2_read_hit_sectors: l2_hits,
            l2_read_sector_queries: l2_queries,
        }
    }

    /// Fraction of dynamic global-load warp instructions that are
    /// non-deterministic (Figure 1).
    pub fn nondet_load_fraction(&self) -> f64 {
        let total = self.sm.global_load_warps[0] + self.sm.global_load_warps[1];
        if total == 0 {
            f64::NAN
        } else {
            self.sm.global_load_warps[1] as f64 / total as f64
        }
    }

    /// Idle fraction of each unit's first pipeline stage `[SP, SFU, LDST]`
    /// (Figure 4).
    pub fn unit_idle_fractions(&self) -> [f64; 3] {
        let total = self.sm.cycles as f64;
        if total == 0.0 {
            return [f64::NAN; 3];
        }
        let mut out = [0.0; 3];
        for (i, v) in out.iter_mut().enumerate() {
            *v = 1.0 - self.sm.unit_busy[i] as f64 / total;
        }
        out
    }

    /// Mean DRAM service latency.
    pub fn dram_mean_latency(&self) -> f64 {
        if self.dram_serviced == 0 {
            f64::NAN
        } else {
            self.dram_total_latency as f64 / self.dram_serviced as f64
        }
    }

    /// Mean SIMD lane utilization: active threads per warp instruction over
    /// the warp width (Burtscher et al.'s memory/control irregularity
    /// companion metric, discussed in the paper's related work).
    pub fn simd_utilization(&self, warp_size: u32) -> f64 {
        if self.sm.warp_insts == 0 {
            f64::NAN
        } else {
            self.sm.thread_insts as f64 / (self.sm.warp_insts as f64 * f64::from(warp_size))
        }
    }

    /// Fraction of branch instructions that split their warp.
    pub fn branch_divergence(&self) -> f64 {
        if self.sm.branches == 0 {
            f64::NAN
        } else {
            self.sm.divergent_branches as f64 / self.sm.branches as f64
        }
    }

    /// Fraction of total warp instructions that are global loads (Table I's
    /// last column).
    pub fn global_load_fraction(&self) -> f64 {
        if self.sm.warp_insts == 0 {
            f64::NAN
        } else {
            (self.sm.global_load_warps[0] + self.sm.global_load_warps[1]) as f64
                / self.sm.warp_insts as f64
        }
    }

    /// Wire-encode the complete statistics (every field, including the
    /// per-pc aggregates and digest) with the checkpoint codec. Equal stats
    /// always produce identical bytes — `per_pc` keeps its insertion order,
    /// which is deterministic because the simulator itself is — so the
    /// `gcl-exec` result cache can checksum entries meaningfully.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.str(&self.name);
        e.u64(self.launches);
        e.u64(self.cycles);
        e.u64(self.sm.warp_insts);
        e.u64(self.sm.thread_insts);
        e.u64(self.sm.global_load_warps[0]);
        e.u64(self.sm.global_load_warps[1]);
        e.u64(self.sm.shared_load_warps);
        for u in self.sm.unit_busy {
            e.u64(u);
        }
        e.u64(self.sm.cycles);
        e.u64(self.sm.bank_conflict_cycles);
        e.u64(self.sm.ctas_retired);
        e.u64(self.sm.prefetches_issued);
        e.u64(self.sm.branches);
        e.u64(self.sm.divergent_branches);
        enc_cache_stats(e, &self.l1);
        enc_cache_stats(e, &self.l2);
        e.u64(self.dram_serviced);
        e.u64(self.dram_total_latency);
        for agg in &self.class_agg {
            agg.ckpt_encode(e);
        }
        e.seq(&self.per_pc, |e, (k, v)| {
            e.str(&k.kernel);
            e.usize(k.pc);
            e.u8(match k.class {
                LoadClass::Deterministic => 0,
                LoadClass::NonDeterministic => 1,
            });
            e.u32(k.n_requests);
            v.ckpt_encode(e);
        });
        e.usize(self.static_loads.0);
        e.usize(self.static_loads.1);
        e.opt(&self.digest, |e, &d| e.u64(d));
        e.u64(self.trace_dropped);
    }

    /// Wire-decode stats written by [`ckpt_encode`](Self::ckpt_encode).
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or malformed input.
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<LaunchStats, WireError> {
        let name = d.str()?;
        let launches = d.u64()?;
        let cycles = d.u64()?;
        let sm = SmStats {
            warp_insts: d.u64()?,
            thread_insts: d.u64()?,
            global_load_warps: [d.u64()?, d.u64()?],
            shared_load_warps: d.u64()?,
            unit_busy: [d.u64()?, d.u64()?, d.u64()?],
            cycles: d.u64()?,
            bank_conflict_cycles: d.u64()?,
            ctas_retired: d.u64()?,
            prefetches_issued: d.u64()?,
            branches: d.u64()?,
            divergent_branches: d.u64()?,
        };
        let l1 = dec_cache_stats(d)?;
        let l2 = dec_cache_stats(d)?;
        let dram_serviced = d.u64()?;
        let dram_total_latency = d.u64()?;
        let mut class_agg: [ClassAgg; 2] = Default::default();
        for agg in &mut class_agg {
            *agg = ClassAgg::ckpt_decode(d)?;
        }
        let per_pc = d.seq(|d| {
            let kernel = d.str()?;
            let pc = d.usize()?;
            let class = match d.u8()? {
                0 => LoadClass::Deterministic,
                1 => LoadClass::NonDeterministic,
                _ => return Err(WireError::Malformed("bad load class tag")),
            };
            let n_requests = d.u32()?;
            let agg = PcReqAgg::ckpt_decode(d)?;
            Ok((
                PcKey {
                    kernel,
                    pc,
                    class,
                    n_requests,
                },
                agg,
            ))
        })?;
        let static_loads = (d.usize()?, d.usize()?);
        let digest = d.opt(|d| d.u64())?;
        let trace_dropped = d.u64()?;
        Ok(LaunchStats {
            name,
            launches,
            cycles,
            sm,
            l1,
            l2,
            dram_serviced,
            dram_total_latency,
            class_agg,
            per_pc,
            static_loads,
            digest,
            trace_dropped,
        })
    }

    /// Merge another launch's stats into this one.
    pub fn merge(&mut self, other: &LaunchStats) {
        if self.name.is_empty() {
            self.name = other.name.clone();
        }
        self.launches += other.launches;
        self.cycles += other.cycles;
        self.sm.merge(&other.sm);
        self.l1.merge(&other.l1);
        self.l2.merge(&other.l2);
        self.dram_serviced += other.dram_serviced;
        self.dram_total_latency += other.dram_total_latency;
        for i in 0..2 {
            self.class_agg[i].merge(&other.class_agg[i]);
        }
        for (k, v) in &other.per_pc {
            self.add_pc(k.clone(), v);
        }
        self.static_loads.0 += other.static_loads.0;
        self.static_loads.1 += other.static_loads.1;
        self.digest = match (self.digest, other.digest) {
            (Some(a), Some(b)) => Some(crate::san::fnv_fold(a, b)),
            (a, b) => a.or(b),
        };
        self.trace_dropped = self.trace_dropped.max(other.trace_dropped);
    }

    /// Merge one per-pc aggregate in by key.
    pub fn add_pc(&mut self, key: PcKey, agg: &PcReqAgg) {
        if let Some((_, existing)) = self.per_pc.iter_mut().find(|(k, _)| *k == key) {
            existing.merge(agg);
        } else {
            self.per_pc.push((key, agg.clone()));
        }
    }

    /// Look up the aggregate for a (kernel, pc, class, request-count) tuple.
    pub fn pc_agg(&self, kernel: &str, pc: usize, n_requests: u32) -> Option<&PcReqAgg> {
        self.per_pc
            .iter()
            .find(|(k, _)| k.kernel == kernel && k.pc == pc && k.n_requests == n_requests)
            .map(|(_, v)| v)
    }

    /// Fold in one DRAM channel's stats.
    pub fn add_dram(&mut self, d: &DramStats) {
        self.dram_serviced += d.serviced;
        self.dram_total_latency += d.total_latency;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiler_counters_derive_from_cache_stats() {
        let mut s = LaunchStats::default();
        s.sm.global_load_warps = [3, 2];
        s.sm.shared_load_warps = 7;
        s.l1.attempts[AccessOutcome::Hit.index()][ClassTag::Deterministic.index()] = 10;
        s.l1.attempts[AccessOutcome::MissIssued.index()][ClassTag::NonDeterministic.index()] = 4;
        s.l1.attempts[AccessOutcome::HitReserved.index()][ClassTag::Deterministic.index()] = 1;
        let p = s.profiler();
        assert_eq!(p.gld_request, 5);
        assert_eq!(p.shared_load, 7);
        assert_eq!(p.l1_global_load_hit, 10);
        assert_eq!(p.l1_global_load_miss, 5);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = LaunchStats {
            name: "k".into(),
            launches: 1,
            cycles: 100,
            ..Default::default()
        };
        a.sm.warp_insts = 10;
        a.static_loads = (2, 1);
        let mut b = LaunchStats {
            name: "k".into(),
            launches: 1,
            cycles: 50,
            ..Default::default()
        };
        b.sm.warp_insts = 5;
        b.static_loads = (2, 1);
        let key = PcKey {
            kernel: "k".into(),
            pc: 4,
            class: LoadClass::Deterministic,
            n_requests: 2,
        };
        b.per_pc.push((key.clone(), PcReqAgg::default()));
        a.merge(&b);
        assert_eq!(a.launches, 2);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.sm.warp_insts, 15);
        assert_eq!(a.static_loads, (4, 2));
        assert!(a.pc_agg("k", 4, 2).is_some());
        // Merging the same key again accumulates rather than duplicating.
        a.merge(&b);
        assert_eq!(a.per_pc.len(), 1);
    }

    #[test]
    fn wire_roundtrip_preserves_everything() {
        let mut s = LaunchStats {
            name: "bfs".into(),
            launches: 3,
            cycles: 1234,
            dram_serviced: 17,
            dram_total_latency: 990,
            static_loads: (4, 2),
            digest: Some(0xfeed_beef),
            ..Default::default()
        };
        s.sm.warp_insts = 100;
        s.sm.unit_busy = [1, 2, 3];
        s.l1.attempts[0][1] = 9;
        s.l2.fills = 5;
        s.class_agg[1].warp_loads = 6;
        s.class_agg[1].turnaround.add(42.0);
        s.per_pc.push((
            PcKey {
                kernel: "k".into(),
                pc: 7,
                class: LoadClass::NonDeterministic,
                n_requests: 32,
            },
            PcReqAgg::default(),
        ));
        let mut e = Enc::new();
        s.ckpt_encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let back = LaunchStats::ckpt_decode(&mut d).unwrap();
        assert!(d.is_done());
        assert_eq!(back, s);
        // Byte stability: re-encoding the decoded value is identical.
        let mut e2 = Enc::new();
        back.ckpt_encode(&mut e2);
        assert_eq!(e2.into_bytes(), bytes);
    }

    #[test]
    fn wire_truncation_rejected() {
        let s = LaunchStats {
            name: "k".into(),
            ..Default::default()
        };
        let mut e = Enc::new();
        s.ckpt_encode(&mut e);
        let bytes = e.into_bytes();
        for n in 0..bytes.len() {
            assert!(
                LaunchStats::ckpt_decode(&mut Dec::new(&bytes[..n])).is_err(),
                "truncation to {n} bytes accepted"
            );
        }
    }

    #[test]
    fn fractions_handle_empty() {
        let s = LaunchStats::default();
        assert!(s.nondet_load_fraction().is_nan());
        assert!(s.global_load_fraction().is_nan());
        assert!(s.dram_mean_latency().is_nan());
        assert!(s.unit_idle_fractions()[0].is_nan());
    }

    #[test]
    fn idle_fractions_complement_busy() {
        let mut s = LaunchStats::default();
        s.sm.cycles = 100;
        s.sm.unit_busy = [10, 20, 50];
        let idle = s.unit_idle_fractions();
        assert!((idle[0] - 0.9).abs() < 1e-12);
        assert!((idle[1] - 0.8).abs() < 1e-12);
        assert!((idle[2] - 0.5).abs() < 1e-12);
    }
}
