//! Warp schedulers: loose round-robin and greedy-then-oldest.

use crate::WarpSchedPolicy;
use gcl_mem::{Dec, Enc, WireError};

/// One warp scheduler's selection state. The SM owns one per scheduler and
/// asks it to pick among the ready warps it supervises.
#[derive(Debug)]
pub struct WarpScheduler {
    policy: WarpSchedPolicy,
    /// Last warp slot issued (for LRR rotation / GTO greediness).
    last: Option<usize>,
}

impl WarpScheduler {
    /// Create a scheduler with the given policy.
    pub fn new(policy: WarpSchedPolicy) -> WarpScheduler {
        WarpScheduler { policy, last: None }
    }

    /// Pick a warp slot from `candidates` (slots supervised by this
    /// scheduler), where `ready(slot)` says whether that warp can issue and
    /// `age(slot)` is its dispatch order (smaller = older).
    ///
    /// Returns `None` if nothing is ready.
    pub fn pick(
        &mut self,
        candidates: &[usize],
        mut ready: impl FnMut(usize) -> bool,
        mut age: impl FnMut(usize) -> u64,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let chosen = match self.policy {
            WarpSchedPolicy::Lrr => {
                // Start after the last issued warp and wrap.
                let start = self
                    .last
                    .and_then(|l| candidates.iter().position(|&c| c == l))
                    .map(|p| p + 1)
                    .unwrap_or(0);
                (0..candidates.len())
                    .map(|k| candidates[(start + k) % candidates.len()])
                    .find(|&slot| ready(slot))
            }
            WarpSchedPolicy::Gto => {
                // Greedy: keep issuing the same warp while it is ready;
                // otherwise the oldest ready warp.
                if let Some(l) = self.last {
                    if candidates.contains(&l) && ready(l) {
                        Some(l)
                    } else {
                        candidates
                            .iter()
                            .copied()
                            .filter(|&s| ready(s))
                            .min_by_key(|&s| age(s))
                    }
                } else {
                    candidates
                        .iter()
                        .copied()
                        .filter(|&s| ready(s))
                        .min_by_key(|&s| age(s))
                }
            }
        };
        if chosen.is_some() {
            self.last = chosen;
        }
        chosen
    }

    /// Checkpoint-encode the selection state (the policy comes from the
    /// configuration, so only `last` is written).
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.opt(&self.last, |e, &l| e.usize(l));
    }

    /// Checkpoint-decode a scheduler written by
    /// [`ckpt_encode`](Self::ckpt_encode), with the policy from the
    /// configuration.
    pub fn ckpt_decode(
        d: &mut Dec<'_>,
        policy: WarpSchedPolicy,
    ) -> Result<WarpScheduler, WireError> {
        let last = d.opt(|d| d.usize())?;
        Ok(WarpScheduler { policy, last })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lrr_rotates_through_ready_warps() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        let cands = vec![0, 2, 4];
        let mut picks = Vec::new();
        for _ in 0..6 {
            picks.push(s.pick(&cands, |_| true, |x| x as u64).unwrap());
        }
        assert_eq!(picks, vec![0, 2, 4, 0, 2, 4]);
    }

    #[test]
    fn lrr_skips_unready() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        let cands = vec![0, 1, 2];
        assert_eq!(s.pick(&cands, |w| w != 0, |x| x as u64), Some(1));
        assert_eq!(s.pick(&cands, |w| w != 2, |x| x as u64), Some(0));
    }

    #[test]
    fn gto_sticks_with_current_warp() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Gto);
        let cands = vec![0, 1, 2];
        // Oldest is warp 1 (age 0).
        let age = |w: usize| match w {
            1 => 0,
            0 => 1,
            _ => 2,
        };
        assert_eq!(s.pick(&cands, |_| true, age), Some(1));
        assert_eq!(s.pick(&cands, |_| true, age), Some(1));
        // Warp 1 stalls: falls back to the next oldest.
        assert_eq!(s.pick(&cands, |w| w != 1, age), Some(0));
        // Greedy on warp 0 now.
        assert_eq!(s.pick(&cands, |_| true, age), Some(0));
    }

    #[test]
    fn returns_none_when_nothing_ready() {
        let mut s = WarpScheduler::new(WarpSchedPolicy::Lrr);
        assert_eq!(s.pick(&[0, 1], |_| false, |x| x as u64), None);
        assert_eq!(s.pick(&[], |_| true, |x| x as u64), None);
    }
}
