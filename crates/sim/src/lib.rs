//! # gcl-sim — a cycle-level SIMT GPU simulator
//!
//! The execution substrate for the `gcl` reproduction of *"Revealing
//! Critical Loads and Hidden Data Locality in GPGPU Applications"*
//! (IISWC 2015). It plays the role GPGPU-Sim plays in the paper: a
//! Fermi-class GPU ([`GpuConfig::fermi`], Table II) that runs kernels
//! written in the [`gcl_ptx`] subset and reports memory-system behavior
//! *separately for deterministic and non-deterministic loads*.
//!
//! ## Model
//!
//! * **Execution-driven, cycle-level.** Instructions execute functionally at
//!   issue (real addresses, real data); timing is modeled by a scoreboard,
//!   per-unit latencies, and the full memory hierarchy of [`gcl_mem`]
//!   (L1 with tag/MSHR/miss-queue reservation, crossbar, L2 slices, DRAM
//!   channels with bank/bus contention).
//! * **SIMT control flow** via an immediate-post-dominator reconvergence
//!   stack; predication for guarded non-branch instructions.
//! * **Coalescing** in front of the L1 ([`coalesce`]): the mechanism that
//!   separates the two load classes' behavior.
//! * **Per-class accounting** everywhere: requests per warp (Fig 2), L1
//!   cycle outcomes (Fig 3), unit occupancy (Fig 4), turnaround breakdowns
//!   (Fig 5–7), miss ratios (Fig 8), and inter-CTA block locality
//!   (Fig 10–12).
//!
//! ## Quick start
//!
//! ```
//! use gcl_sim::{pack_params, Dim3, Gpu, GpuConfig};
//! use gcl_ptx::{KernelBuilder, Type};
//!
//! let mut b = KernelBuilder::new("double");
//! let p = b.param("buf", Type::U64);
//! let base = b.ld_param(Type::U64, p);
//! let tid = b.thread_linear_id();
//! let addr = b.index64(base, tid, 4);
//! let v = b.ld_global(Type::U32, addr);
//! let v2 = b.shl(Type::U32, v, 1i64);
//! b.st_global(Type::U32, addr, v2);
//! b.exit();
//! let kernel = b.build()?;
//!
//! let mut gpu = Gpu::new(GpuConfig::small())?;
//! let buf = gpu.mem().alloc_array(Type::U32, 128)?;
//! gpu.mem().write_u32_slice(buf, &(0..128).collect::<Vec<_>>());
//! let params = pack_params(&kernel, &[buf]);
//! let stats = gpu.launch(&kernel, Dim3::x(4), Dim3::x(32), &params)?;
//! assert_eq!(gpu.mem().read_u32_slice(buf, 3), vec![0, 2, 4]);
//! // One deterministic global load per warp, fully coalesced:
//! assert_eq!(stats.sm.global_load_warps, [4, 0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! ## Fault model
//!
//! Launches fail *structurally*, never by panicking: [`SimError`] covers
//! rejected configurations ([`ConfigError`]), failed allocations
//! ([`AllocError`]), out-of-bounds device accesses caught by memcheck
//! ([`MemFaultReport`], with the faulting load's D/N class and def-chain
//! witness attached), hangs caught by the forward-progress watchdog
//! ([`HangReport`], with a per-warp state dump), and — with
//! [`GpuConfig::sanitize`](GpuConfig) on — violations from the *simsan*
//! runtime sanitizer ([`SanitizerReport`]): request-conservation breaks
//! anywhere on the L1→icnt→L2→DRAM path, shared-memory races between warps
//! of a CTA within one barrier epoch, and cross-run digest divergence from
//! the determinism auditor (see [`check_digests`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod blocktrack;
mod ckpt;
mod coalesce;
mod config;
mod fault;
mod gmem;
mod gpu;
mod grid;
mod loadtrack;
mod replay;
mod san;
mod scoreboard;
mod simt;
mod sm;
mod stats;
mod trace;
mod value;
mod warp;
mod warp_sched;

pub use blocktrack::{BlockSummary, BlockTracker, PcSharing};
pub use ckpt::{
    config_fingerprint, kernel_fingerprint, CheckpointError, Snapshot, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
pub use coalesce::coalesce;
pub use config::{CtaSchedPolicy, GpuConfig, PrefetchFilter, WarpSchedPolicy};
pub use fault::{
    AccessKind, AllocError, ConfigError, HangReport, MemFaultReport, MemViolation, SmSnapshot,
    WarpSnapshot,
};
pub use gmem::{GlobalMem, HEAP_BASE};
pub use gpu::{pack_params, Gpu, SimError};
pub use grid::Dim3;
pub use loadtrack::{ClassAgg, LoadTracker, PcReqAgg};
pub use replay::{
    space_code, space_from_code, warps_per_cta, CapturedLaunch, LaunchInfo, LaunchReplay,
    MemorySink, ReplayError, ReplayKind, ReplayRecord, TraceSink,
};
pub use san::{
    check_digests, fnv_fold, fnv_fold_bytes, DeterminismReport, RaceAccess, RaceReport, SanInject,
    SanRun, SanitizerReport, TickError, FNV_OFFSET,
};
pub use scoreboard::Scoreboard;
pub use simt::{SimtEntry, SimtStack};
pub use sm::{bank_conflict_degree, Sm, SmStats, TickCtx};
pub use stats::{LaunchStats, PcKey};
pub use trace::{Trace, TraceEvent};
pub use value::{canon, eval_alu, eval_atom, eval_cmp, eval_cvt, eval_mad, eval_sfu, eval_unary};
pub use warp::{lanes, ExecCtx, MemAccess, ReplayCursor, StepResult, Warp};
pub use warp_sched::WarpScheduler;

pub use gcl_mem::{ConservationKind, ConservationReport, RequestLedger, SanStage};
