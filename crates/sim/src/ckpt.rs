//! Versioned checkpoint container for [`Gpu::snapshot`](crate::Gpu::snapshot)
//! / [`Gpu::restore`](crate::Gpu::restore).
//!
//! A snapshot is a compact binary image of the complete simulator state —
//! idle or mid-launch — wrapped in a self-validating container:
//!
//! ```text
//! magic "GCLSNAP1"  (8 bytes)
//! version           (u32 LE)
//! config fingerprint(u64 LE, FNV-1a over the GpuConfig Debug form)
//! payload length    (u64 LE)
//! payload           (the wire-encoded simulator state)
//! checksum          (u64 LE, FNV-1a over all preceding bytes)
//! ```
//!
//! [`Snapshot::from_bytes`] rejects truncated images, bad magic, checksum
//! mismatches (any flipped byte), and unknown versions; [`Gpu::restore`]
//! additionally rejects snapshots taken under a different configuration and
//! decodes the payload into temporaries before touching any live state, so
//! a rejected restore never leaves the GPU corrupted.
//!
//! [`Gpu::snapshot`]: crate::Gpu::snapshot
//! [`Gpu::restore`]: crate::Gpu::restore

use crate::san::{fnv_fold_bytes, FNV_OFFSET};
use crate::GpuConfig;
use gcl_ptx::Kernel;
use std::fmt;
use std::path::Path;

/// Leading magic of every checkpoint file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"GCLSNAP1";

/// Current checkpoint format version. Bumped whenever the payload layout
/// changes; restore rejects any other version. Version 3 added the replay
/// fingerprint and per-warp replay cursors (trace-driven launches).
pub const SNAPSHOT_VERSION: u32 = 3;

/// Why a checkpoint could not be loaded or restored. The payload of
/// [`SimError::Checkpoint`](crate::SimError::Checkpoint).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The file does not start with the checkpoint magic.
    BadMagic,
    /// The image ends before the declared payload and checksum.
    Truncated,
    /// The trailing checksum does not match the image contents.
    ChecksumMismatch,
    /// The image was written by a different format version.
    VersionMismatch {
        /// Version found in the image.
        found: u32,
        /// Version this build understands.
        expected: u32,
    },
    /// The snapshot was taken under a different GPU configuration.
    ConfigMismatch {
        /// Configuration fingerprint in the image.
        found: u64,
        /// Fingerprint of the restoring GPU's configuration.
        expected: u64,
    },
    /// A resume was attempted with a different kernel than the one the
    /// snapshot's launch was running.
    KernelMismatch {
        /// Kernel fingerprint in the snapshot.
        found: u64,
        /// Fingerprint of the kernel supplied at resume.
        expected: u64,
    },
    /// The payload failed structural validation while decoding.
    Malformed(&'static str),
    /// Reading or writing the checkpoint file failed.
    Io(String),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a checkpoint file (bad magic)"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint format version {found} unsupported (this build reads {expected})"
            ),
            CheckpointError::ConfigMismatch { found, expected } => write!(
                f,
                "checkpoint taken under a different GPU configuration \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::KernelMismatch { found, expected } => write!(
                f,
                "checkpoint's launch ran a different kernel \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::Malformed(what) => write!(f, "checkpoint malformed: {what}"),
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<gcl_mem::WireError> for CheckpointError {
    fn from(e: gcl_mem::WireError) -> CheckpointError {
        match e {
            gcl_mem::WireError::Truncated => CheckpointError::Truncated,
            gcl_mem::WireError::Malformed(what) => CheckpointError::Malformed(what),
        }
    }
}

/// Fingerprint of a GPU configuration (FNV-1a over its `Debug` form).
/// Stored in every snapshot; restore requires an exact match.
pub fn config_fingerprint(cfg: &GpuConfig) -> u64 {
    fnv_fold_bytes(FNV_OFFSET, format!("{cfg:?}").as_bytes())
}

/// Fingerprint of a kernel (FNV-1a over its `Debug` form, covering name,
/// parameters, and every instruction). Stored in mid-launch snapshots;
/// resume requires an exact match.
pub fn kernel_fingerprint(kernel: &Kernel) -> u64 {
    fnv_fold_bytes(FNV_OFFSET, format!("{kernel:?}").as_bytes())
}

/// One checkpoint image: the versioned, fingerprinted, wire-encoded
/// simulator state. Produced by [`Gpu::snapshot`](crate::Gpu::snapshot),
/// consumed by [`Gpu::restore`](crate::Gpu::restore).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Format version ([`SNAPSHOT_VERSION`] when produced by this build).
    pub version: u32,
    /// Fingerprint of the configuration the snapshot was taken under.
    pub config_fp: u64,
    /// The wire-encoded simulator state.
    pub payload: Vec<u8>,
}

impl Snapshot {
    /// Serialize to the on-disk container format (magic, version,
    /// fingerprint, length-prefixed payload, trailing checksum).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.payload.len() + 36);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&self.config_fp.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = fnv_fold_bytes(FNV_OFFSET, &out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parse a container written by [`to_bytes`](Self::to_bytes).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::BadMagic`], [`CheckpointError::Truncated`],
    /// [`CheckpointError::ChecksumMismatch`] (any corrupted byte), or
    /// [`CheckpointError::VersionMismatch`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, CheckpointError> {
        const HEADER: usize = 8 + 4 + 8 + 8;
        if bytes.len() < 8 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[..8] != SNAPSHOT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        if bytes.len() < HEADER + 8 {
            return Err(CheckpointError::Truncated);
        }
        let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
        let stored_sum = u64::from_le_bytes(sum_bytes.try_into().expect("8-byte split"));
        if fnv_fold_bytes(FNV_OFFSET, body) != stored_sum {
            // Distinguish a clean truncation (payload shorter than declared)
            // from in-place corruption: peek at the declared length first.
            let declared =
                u64::from_le_bytes(bytes[20..28].try_into().expect("header slice")) as usize;
            if body.len() - HEADER < declared {
                return Err(CheckpointError::Truncated);
            }
            return Err(CheckpointError::ChecksumMismatch);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("header slice"));
        if version != SNAPSHOT_VERSION {
            return Err(CheckpointError::VersionMismatch {
                found: version,
                expected: SNAPSHOT_VERSION,
            });
        }
        let config_fp = u64::from_le_bytes(bytes[12..20].try_into().expect("header slice"));
        let payload_len =
            u64::from_le_bytes(bytes[20..28].try_into().expect("header slice")) as usize;
        let payload = &body[HEADER..];
        if payload.len() != payload_len {
            return Err(CheckpointError::Malformed("payload length mismatch"));
        }
        Ok(Snapshot {
            version,
            config_fp,
            payload: payload.to_vec(),
        })
    }

    /// Write the container to a file (atomically: a temp file in the same
    /// directory is renamed over the target, so a crash mid-write never
    /// leaves a half-written checkpoint under the final name).
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] with the underlying error's message.
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        let path = path.as_ref();
        let io = |e: std::io::Error| CheckpointError::Io(format!("{}: {e}", path.display()));
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_bytes()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Read and parse a container from a file.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] on read failure, else as
    /// [`from_bytes`](Self::from_bytes).
    pub fn read_file(path: impl AsRef<Path>) -> Result<Snapshot, CheckpointError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path)
            .map_err(|e| CheckpointError::Io(format!("{}: {e}", path.display())))?;
        Snapshot::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            config_fp: 0xDEAD_BEEF,
            payload: (0..=255u8).collect(),
        }
    }

    #[test]
    fn container_roundtrip() {
        let s = sample();
        let bytes = s.to_bytes();
        assert_eq!(Snapshot::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn every_truncation_rejected() {
        let bytes = sample().to_bytes();
        for n in 0..bytes.len() {
            let err = Snapshot::from_bytes(&bytes[..n]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated | CheckpointError::ChecksumMismatch
                ),
                "truncation to {n} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_flipped_byte_rejected() {
        let good = sample().to_bytes();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn version_mismatch_named() {
        let mut s = sample();
        s.version = 99;
        let err = Snapshot::from_bytes(&s.to_bytes()).unwrap_err();
        assert_eq!(
            err,
            CheckpointError::VersionMismatch {
                found: 99,
                expected: SNAPSHOT_VERSION
            }
        );
        assert!(err.to_string().contains("version 99"));
    }

    #[test]
    fn bad_magic_named() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        // Magic is checked before the checksum: garbage files get the
        // clearer report.
        assert_eq!(
            Snapshot::from_bytes(&bytes).unwrap_err(),
            CheckpointError::BadMagic
        );
    }

    #[test]
    fn file_roundtrip_and_io_error() {
        let dir = std::env::temp_dir().join("gcl-ckpt-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.ckpt");
        let s = sample();
        s.write_file(&path).unwrap();
        assert_eq!(Snapshot::read_file(&path).unwrap(), s);
        std::fs::remove_file(&path).unwrap();
        let err = Snapshot::read_file(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
    }
}
