//! Warp state and functional execution of the PTX subset.
//!
//! The simulator is *execution-driven*: when an instruction issues, its
//! architectural effects (register writes, memory reads/writes, atomics)
//! happen immediately and exactly, while the *timing* of result availability
//! is modeled separately (scoreboard + writeback events + the memory
//! hierarchy). Intra-warp dependences are ordered by the scoreboard;
//! inter-warp communication is ordered by barriers and kernel relaunches,
//! matching the synchronization the workloads actually use.

use crate::fault::{AccessKind, MemViolation};
use crate::replay::{mem_access_of_record, ReplayKind, ReplayRecord};
use crate::value::{
    canon, eval_alu, eval_atom, eval_cmp, eval_cvt, eval_mad, eval_sfu, eval_unary,
};
use crate::{Dim3, GlobalMem, SimtStack};
use gcl_ptx::{Address, Instruction, Kernel, Op, Operand, Reg, Space, Special, Type};
use std::collections::HashMap;

/// Execution context shared by the warps of one CTA during one step.
pub struct ExecCtx<'a> {
    /// The kernel being executed.
    pub kernel: &'a Kernel,
    /// Branch pc → reconvergence pc (from [`gcl_ptx::Cfg::reconvergence_pcs`]).
    pub reconv: &'a HashMap<usize, usize>,
    /// The launch's parameter block.
    pub params: &'a [u8],
    /// Device global memory.
    pub gmem: &'a mut GlobalMem,
    /// This CTA's shared memory.
    pub smem: &'a mut [u8],
    /// CTA dimensions.
    pub ntid: Dim3,
    /// Grid dimensions.
    pub nctaid: Dim3,
    /// Validate global-backed accesses against the allocation table and
    /// fail with [`MemViolation`] on the first out-of-bounds lane.
    pub memcheck: bool,
}

/// Whether memcheck polices `space`: the global-backed spaces whose
/// addresses come from `cudaMalloc`-style allocations. Param, const, and
/// shared accesses are bounds-checked against their own regions already.
fn memchecked_space(space: Space) -> bool {
    matches!(space, Space::Global | Space::Local | Space::Tex)
}

/// A memory access produced by one warp instruction, for the LD/ST unit.
#[derive(Debug, Clone, PartialEq)]
pub struct MemAccess {
    /// Instruction index.
    pub pc: usize,
    /// Space accessed.
    pub space: Space,
    /// True for stores.
    pub is_store: bool,
    /// Destination register for loads/atomics (already written functionally;
    /// the LD/ST unit releases its scoreboard entry on completion).
    pub dst: Option<Reg>,
    /// Per-lane effective byte addresses: `(lane, addr)`.
    pub lane_addrs: Vec<(u32, u64)>,
    /// Bytes accessed per lane.
    pub bytes: u32,
}

/// Outcome of issuing one instruction for a warp.
#[derive(Debug, Clone, PartialEq)]
pub enum StepResult {
    /// Arithmetic/move executed; if `dst` is set, a writeback should be
    /// scheduled on the instruction's unit latency.
    Alu {
        /// Register awaiting writeback.
        dst: Option<Reg>,
    },
    /// A memory access for the LD/ST unit (global/shared/param/...).
    Mem(MemAccess),
    /// Control transfer handled inside the warp (branch). `diverged` is
    /// true when the warp split (some active lanes took it, some did not).
    Branch {
        /// Whether this branch split the warp.
        diverged: bool,
    },
    /// The warp reached a CTA barrier; the SM must hold it until release.
    Barrier,
    /// Lanes exited (possibly retiring the warp — check
    /// [`Warp::is_finished`]).
    Exit,
    /// All lanes were predicated off; nothing happened.
    Predicated,
}

/// One warp's architectural state.
#[derive(Debug)]
pub struct Warp {
    /// Warp index within the SM (slot id).
    pub slot: usize,
    /// Resident-CTA slot this warp belongs to.
    pub cta_slot: usize,
    /// Linearized CTA id (for locality tracking).
    pub linear_cta: u64,
    /// Warp index within its CTA.
    pub warp_in_cta: u32,
    /// SIMT divergence stack.
    pub stack: SimtStack,
    /// Lanes that have executed `exit`.
    pub exited: u32,
    /// Lanes that exist (tail warps of odd-sized CTAs have fewer).
    pub valid: u32,
    /// Register file: `num_regs × warp_size`, indexed `reg * warp_size + lane`.
    regs: Vec<u64>,
    /// Per-lane thread coordinates.
    lane_tid: Vec<(u32, u32, u32)>,
    /// CTA coordinates.
    ctaid: (u32, u32, u32),
    /// The named barrier this warp is waiting at, if any.
    pub at_barrier: Option<u32>,
    warp_size: u32,
    /// Replay cursor: when set, this warp is timing-replayed from a
    /// recorded stream instead of functionally executed.
    pub replay: Option<ReplayCursor>,
}

/// Position of a replaying warp within its recorded stream.
#[derive(Debug, Clone)]
pub struct ReplayCursor {
    /// Stream index within the launch's trace
    /// (`linear_cta * warps_per_cta + warp_in_cta`).
    pub stream: u64,
    /// Next record to issue.
    pub pos: usize,
    /// The records. `None` only between checkpoint restore and the relink
    /// performed on the first subsequent step (the stream contents are not
    /// serialized into snapshots; the trace is re-supplied at resume and
    /// validated by fingerprint).
    pub recs: Option<std::sync::Arc<[ReplayRecord]>>,
}

impl ReplayCursor {
    fn recs(&self) -> &[ReplayRecord] {
        self.recs
            .as_deref()
            .expect("replay cursor used before relink")
    }
}

impl Warp {
    /// Create the `warp_in_cta`-th warp of a CTA.
    ///
    /// `threads_in_cta` bounds the valid lanes of the tail warp.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        slot: usize,
        cta_slot: usize,
        linear_cta: u64,
        ctaid: (u32, u32, u32),
        warp_in_cta: u32,
        ntid: Dim3,
        warp_size: u32,
        num_regs: u32,
    ) -> Warp {
        let threads_in_cta = ntid.count();
        let base = u64::from(warp_in_cta) * u64::from(warp_size);
        let mut valid = 0u32;
        let mut lane_tid = Vec::with_capacity(warp_size as usize);
        for lane in 0..warp_size {
            let t = base + u64::from(lane);
            if t < threads_in_cta {
                valid |= 1 << lane;
                lane_tid.push(ntid.coords(t));
            } else {
                lane_tid.push((0, 0, 0));
            }
        }
        Warp {
            slot,
            cta_slot,
            linear_cta,
            warp_in_cta,
            stack: SimtStack::new(valid),
            exited: 0,
            valid,
            regs: vec![0; num_regs as usize * warp_size as usize],
            lane_tid,
            ctaid,
            at_barrier: None,
            warp_size,
            replay: None,
        }
    }

    /// Whether every lane has retired (replay: the stream is exhausted).
    pub fn is_finished(&self) -> bool {
        match &self.replay {
            Some(c) => c.pos >= c.recs().len(),
            None => self.stack.is_empty(),
        }
    }

    /// Current pc (only valid while not finished).
    pub fn pc(&self) -> usize {
        match &self.replay {
            Some(c) => c.recs()[c.pos].pc as usize,
            None => self.stack.pc(),
        }
    }

    /// Lanes that would execute the next instruction.
    pub fn active_mask(&self) -> u32 {
        match &self.replay {
            Some(c) => c.recs()[c.pos].mask,
            None => self.stack.active_mask(self.exited),
        }
    }

    /// The next instruction to issue, or `None` if finished.
    pub fn next_inst<'k>(&self, kernel: &'k Kernel) -> Option<&'k Instruction> {
        if self.is_finished() {
            None
        } else {
            Some(&kernel.insts()[self.pc()])
        }
    }

    /// Read a register for one lane.
    pub fn reg(&self, lane: u32, r: Reg) -> u64 {
        self.regs[r.index() * self.warp_size as usize + lane as usize]
    }

    /// Write a register for one lane.
    pub fn set_reg(&mut self, lane: u32, r: Reg, v: u64) {
        self.regs[r.index() * self.warp_size as usize + lane as usize] = v;
    }

    /// Checkpoint-encode the full architectural state of this warp.
    pub fn ckpt_encode(&self, e: &mut gcl_mem::Enc) {
        e.usize(self.slot);
        e.usize(self.cta_slot);
        e.u64(self.linear_cta);
        e.u32(self.warp_in_cta);
        self.stack.ckpt_encode(e);
        e.u32(self.exited);
        e.u32(self.valid);
        e.seq(&self.regs, |e, &r| e.u64(r));
        e.seq(&self.lane_tid, |e, &(x, y, z)| {
            e.u32(x);
            e.u32(y);
            e.u32(z);
        });
        e.u32(self.ctaid.0);
        e.u32(self.ctaid.1);
        e.u32(self.ctaid.2);
        e.opt(&self.at_barrier, |e, &b| e.u32(b));
        e.u32(self.warp_size);
        // Replay cursor position only; the stream contents are re-supplied
        // (and fingerprint-validated) at resume, then relinked.
        e.opt(&self.replay, |e, c| {
            e.u64(c.stream);
            e.u64(c.pos as u64);
        });
    }

    /// Checkpoint-decode a warp written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut gcl_mem::Dec<'_>) -> Result<Warp, gcl_mem::WireError> {
        let slot = d.usize()?;
        let cta_slot = d.usize()?;
        let linear_cta = d.u64()?;
        let warp_in_cta = d.u32()?;
        let stack = SimtStack::ckpt_decode(d)?;
        let exited = d.u32()?;
        let valid = d.u32()?;
        let regs = d.seq(|d| d.u64())?;
        let lane_tid = d.seq(|d| {
            let x = d.u32()?;
            let y = d.u32()?;
            let z = d.u32()?;
            Ok((x, y, z))
        })?;
        let ctaid = (d.u32()?, d.u32()?, d.u32()?);
        let at_barrier = d.opt(|d| d.u32())?;
        let warp_size = d.u32()?;
        let replay = d.opt(|d| {
            let stream = d.u64()?;
            let pos = d.u64()? as usize;
            Ok(ReplayCursor {
                stream,
                pos,
                recs: None,
            })
        })?;
        if warp_size == 0 || lane_tid.len() != warp_size as usize {
            return Err(gcl_mem::WireError::Malformed("warp lane table size"));
        }
        if regs.len() % warp_size as usize != 0 {
            return Err(gcl_mem::WireError::Malformed("warp register file size"));
        }
        Ok(Warp {
            slot,
            cta_slot,
            linear_cta,
            warp_in_cta,
            stack,
            exited,
            valid,
            regs,
            lane_tid,
            ctaid,
            at_barrier,
            warp_size,
            replay,
        })
    }

    fn special(&self, lane: u32, s: Special, ctx: &ExecCtx<'_>) -> u64 {
        let (tx, ty_, tz) = self.lane_tid[lane as usize];
        let v = match s {
            Special::TidX => tx,
            Special::TidY => ty_,
            Special::TidZ => tz,
            Special::NTidX => ctx.ntid.x,
            Special::NTidY => ctx.ntid.y,
            Special::NTidZ => ctx.ntid.z,
            Special::CtaIdX => self.ctaid.0,
            Special::CtaIdY => self.ctaid.1,
            Special::CtaIdZ => self.ctaid.2,
            Special::NCtaIdX => ctx.nctaid.x,
            Special::NCtaIdY => ctx.nctaid.y,
            Special::NCtaIdZ => ctx.nctaid.z,
            Special::LaneId => lane,
            Special::WarpId => self.warp_in_cta,
        };
        u64::from(v)
    }

    /// Read an operand as the raw bits an instruction of type `ty` expects.
    /// Float immediates are stored as `f64` bits ([`Operand::FImm`]); for
    /// `f32`-typed instructions they are narrowed here.
    fn operand(&self, lane: u32, op: Operand, ty: Type, ctx: &ExecCtx<'_>) -> u64 {
        match op {
            Operand::Reg(r) => self.reg(lane, r),
            Operand::Imm(v) => v as u64,
            Operand::FImm(bits) => {
                if ty == Type::F32 {
                    u64::from((f64::from_bits(bits) as f32).to_bits())
                } else {
                    bits
                }
            }
            Operand::Special(s) => self.special(lane, s, ctx),
        }
    }

    fn effective_addr(&self, lane: u32, addr: Address) -> u64 {
        let base = addr.base.map_or(0, |r| self.reg(lane, r));
        base.wrapping_add(addr.offset as u64)
    }

    /// Lanes (⊆ `active`) whose guard predicate allows execution.
    fn guard_mask(&self, inst: &Instruction, active: u32) -> u32 {
        let Some(g) = inst.guard else { return active };
        let mut mask = 0u32;
        for lane in 0..self.warp_size {
            if active >> lane & 1 == 1 {
                let p = self.reg(lane, g.pred) != 0;
                if p != g.negate {
                    mask |= 1 << lane;
                }
            }
        }
        mask
    }

    /// Issue and functionally execute the instruction at the current pc.
    ///
    /// # Errors
    ///
    /// When [`ExecCtx::memcheck`] is set, returns a [`MemViolation`] for
    /// the first global-backed access outside every live allocation. The
    /// warp's pc stays at the faulting instruction.
    ///
    /// # Panics
    ///
    /// Panics if the warp is finished, or on out-of-bounds shared-memory
    /// accesses (a kernel bug worth failing loudly on).
    pub fn step(&mut self, ctx: &mut ExecCtx<'_>) -> Result<StepResult, MemViolation> {
        assert!(!self.is_finished(), "stepping a finished warp");
        let pc = self.pc();
        let inst = &ctx.kernel.insts()[pc].clone();
        let active = self.active_mask();
        debug_assert_ne!(active, 0, "active entry with no live lanes at pc {pc}");
        let exec = self.guard_mask(inst, active);

        // Branches consume the guard as the branch condition.
        if let Op::Bra { target } = inst.op {
            let reconv = if inst.guard.is_some() {
                *ctx.reconv
                    .get(&pc)
                    .expect("missing reconvergence pc for branch")
            } else {
                gcl_ptx::RECONV_EXIT // unused: uniform
            };
            let diverged = exec != 0 && exec != active;
            self.stack.branch(exec, active, target, pc + 1, reconv);
            return Ok(StepResult::Branch { diverged });
        }

        if exec == 0 {
            self.stack.advance();
            return Ok(StepResult::Predicated);
        }

        let result = match &inst.op {
            Op::Exit => {
                self.exited |= exec;
                self.stack.advance();
                self.stack.prune_exited(self.exited);
                return Ok(StepResult::Exit);
            }
            Op::Bar { id } => {
                self.at_barrier = Some(*id);
                StepResult::Barrier
            }
            Op::Mov { ty, dst, src } => {
                for lane in lanes(exec, self.warp_size) {
                    let v = self.operand(lane, *src, *ty, ctx);
                    self.set_reg(lane, *dst, canon(*ty, v));
                }
                StepResult::Alu { dst: Some(*dst) }
            }
            Op::Cvt {
                dst_ty,
                src_ty,
                dst,
                src,
            } => {
                for lane in lanes(exec, self.warp_size) {
                    let v = self.operand(lane, *src, *src_ty, ctx);
                    self.set_reg(lane, *dst, eval_cvt(*dst_ty, *src_ty, v));
                }
                StepResult::Alu { dst: Some(*dst) }
            }
            Op::Unary { op, ty, dst, a } => {
                for lane in lanes(exec, self.warp_size) {
                    let v = self.operand(lane, *a, *ty, ctx);
                    self.set_reg(lane, *dst, eval_unary(*op, *ty, v));
                }
                StepResult::Alu { dst: Some(*dst) }
            }
            Op::Alu { op, ty, dst, a, b } => {
                for lane in lanes(exec, self.warp_size) {
                    let va = self.operand(lane, *a, *ty, ctx);
                    let vb = self.operand(lane, *b, *ty, ctx);
                    self.set_reg(lane, *dst, eval_alu(*op, *ty, va, vb));
                }
                StepResult::Alu { dst: Some(*dst) }
            }
            Op::Mad {
                ty,
                dst,
                a,
                b,
                c,
                wide,
            } => {
                for lane in lanes(exec, self.warp_size) {
                    let va = self.operand(lane, *a, *ty, ctx);
                    let vb = self.operand(lane, *b, *ty, ctx);
                    let vc = self.operand(lane, *c, *ty, ctx);
                    self.set_reg(lane, *dst, eval_mad(*ty, *wide, va, vb, vc));
                }
                StepResult::Alu { dst: Some(*dst) }
            }
            Op::Sfu { op, ty, dst, a } => {
                for lane in lanes(exec, self.warp_size) {
                    let v = self.operand(lane, *a, *ty, ctx);
                    self.set_reg(lane, *dst, eval_sfu(*op, *ty, v));
                }
                StepResult::Alu { dst: Some(*dst) }
            }
            Op::Setp { cmp, ty, dst, a, b } => {
                for lane in lanes(exec, self.warp_size) {
                    let va = self.operand(lane, *a, *ty, ctx);
                    let vb = self.operand(lane, *b, *ty, ctx);
                    self.set_reg(lane, *dst, eval_cmp(*cmp, *ty, va, vb));
                }
                StepResult::Alu { dst: Some(*dst) }
            }
            Op::Selp {
                ty,
                dst,
                a,
                b,
                pred,
            } => {
                for lane in lanes(exec, self.warp_size) {
                    let p = self.reg(lane, *pred) != 0;
                    let v = if p {
                        self.operand(lane, *a, *ty, ctx)
                    } else {
                        self.operand(lane, *b, *ty, ctx)
                    };
                    self.set_reg(lane, *dst, canon(*ty, v));
                }
                StepResult::Alu { dst: Some(*dst) }
            }
            Op::Ld {
                space,
                ty,
                dst,
                addr,
            } => {
                let mut lane_addrs = Vec::new();
                for lane in lanes(exec, self.warp_size) {
                    let ea = self.effective_addr(lane, *addr);
                    if ctx.memcheck && memchecked_space(*space) {
                        check(
                            ctx.gmem,
                            pc,
                            *space,
                            AccessKind::Load,
                            lane,
                            ea,
                            ty.size_bytes(),
                        )?;
                    }
                    let bits = match space {
                        Space::Param => read_param(ctx.params, ea, *ty),
                        Space::Shared => read_smem(ctx.smem, ea, *ty),
                        // Const and the global-backed spaces read device
                        // memory functionally.
                        _ => ctx.gmem.read_scalar(ea, *ty),
                    };
                    let bits = sign_extend_load(*ty, bits);
                    self.set_reg(lane, *dst, bits);
                    lane_addrs.push((lane, ea));
                }
                StepResult::Mem(MemAccess {
                    pc,
                    space: *space,
                    is_store: false,
                    dst: Some(*dst),
                    lane_addrs,
                    bytes: ty.size_bytes(),
                })
            }
            Op::St {
                space,
                ty,
                addr,
                src,
            } => {
                let mut lane_addrs = Vec::new();
                for lane in lanes(exec, self.warp_size) {
                    let ea = self.effective_addr(lane, *addr);
                    if ctx.memcheck && memchecked_space(*space) {
                        check(
                            ctx.gmem,
                            pc,
                            *space,
                            AccessKind::Store,
                            lane,
                            ea,
                            ty.size_bytes(),
                        )?;
                    }
                    let v = self.operand(lane, *src, *ty, ctx);
                    match space {
                        Space::Shared => write_smem(ctx.smem, ea, *ty, v),
                        Space::Param => panic!("stores to param space are invalid"),
                        _ => ctx.gmem.write_scalar(ea, *ty, v),
                    }
                    lane_addrs.push((lane, ea));
                }
                StepResult::Mem(MemAccess {
                    pc,
                    space: *space,
                    is_store: true,
                    dst: None,
                    lane_addrs,
                    bytes: ty.size_bytes(),
                })
            }
            Op::Atom {
                op,
                ty,
                dst,
                addr,
                src,
            } => {
                // Lanes of a warp perform the RMW in lane order, which is a
                // valid serialization.
                let mut lane_addrs = Vec::new();
                for lane in lanes(exec, self.warp_size) {
                    let ea = self.effective_addr(lane, *addr);
                    if ctx.memcheck {
                        check(
                            ctx.gmem,
                            pc,
                            Space::Global,
                            AccessKind::Atomic,
                            lane,
                            ea,
                            ty.size_bytes(),
                        )?;
                    }
                    let old = ctx.gmem.read_scalar(ea, *ty);
                    let v = self.operand(lane, *src, *ty, ctx);
                    ctx.gmem.write_scalar(ea, *ty, eval_atom(*op, *ty, old, v));
                    self.set_reg(lane, *dst, sign_extend_load(*ty, old));
                    lane_addrs.push((lane, ea));
                }
                StepResult::Mem(MemAccess {
                    pc,
                    space: Space::Global,
                    is_store: false,
                    dst: Some(*dst),
                    lane_addrs,
                    bytes: ty.size_bytes(),
                })
            }
            Op::Bra { .. } => unreachable!("handled above"),
        };

        self.stack.advance();
        Ok(result)
    }

    /// Issue the next recorded instruction of a replaying warp: consume one
    /// [`ReplayRecord`] and rebuild the [`StepResult`] the SM's issue path
    /// expects. No functional execution happens — registers and device
    /// memory are untouched; only the timing-relevant payload (destination
    /// register, resolved lane addresses, barrier id) is re-injected.
    ///
    /// # Panics
    ///
    /// Panics if the warp has no replay cursor, the cursor has not been
    /// relinked after a restore, or the stream is exhausted.
    pub fn step_replay(&mut self) -> StepResult {
        let c = self.replay.as_mut().expect("step_replay without a cursor");
        let recs = c.recs.as_deref().expect("replay cursor used before relink");
        let rec = &recs[c.pos];
        c.pos += 1;
        match &rec.kind {
            ReplayKind::Alu { dst } => StepResult::Alu { dst: *dst },
            ReplayKind::Mem { .. } => StepResult::Mem(
                mem_access_of_record(rec.pc, &rec.kind).expect("Mem record reconstructs"),
            ),
            ReplayKind::Branch { diverged } => StepResult::Branch {
                diverged: *diverged,
            },
            ReplayKind::Barrier { id } => {
                self.at_barrier = Some(*id);
                StepResult::Barrier
            }
            ReplayKind::Exit => StepResult::Exit,
            ReplayKind::Predicated => StepResult::Predicated,
        }
    }
}

/// The memcheck predicate: `[addr, addr + bytes)` must sit inside one live
/// allocation, otherwise a [`MemViolation`] with nearest-allocation
/// attribution.
fn check(
    gmem: &GlobalMem,
    pc: usize,
    space: Space,
    kind: AccessKind,
    lane: u32,
    addr: u64,
    bytes: u32,
) -> Result<(), MemViolation> {
    if gmem.is_allocated(addr, bytes) {
        return Ok(());
    }
    Err(MemViolation {
        pc,
        space,
        kind,
        lane,
        addr,
        bytes,
        nearest: gmem.nearest_allocation(addr),
    })
}

/// Iterate over the set lanes of a mask.
pub fn lanes(mask: u32, warp_size: u32) -> impl Iterator<Item = u32> {
    (0..warp_size).filter(move |l| mask >> l & 1 == 1)
}

fn sign_extend_load(ty: Type, bits: u64) -> u64 {
    match ty {
        Type::S32 => bits as u32 as i32 as i64 as u64,
        _ => bits,
    }
}

fn read_param(params: &[u8], addr: u64, ty: Type) -> u64 {
    let n = ty.size_bytes() as usize;
    let start = addr as usize;
    assert!(
        start + n <= params.len(),
        "ld.param reads [{start}, {}) past the {}-byte parameter block",
        start + n,
        params.len()
    );
    let mut v = 0u64;
    for (i, b) in params[start..start + n].iter().enumerate() {
        v |= u64::from(*b) << (8 * i);
    }
    v
}

fn read_smem(smem: &[u8], addr: u64, ty: Type) -> u64 {
    let n = ty.size_bytes() as usize;
    let start = addr as usize;
    assert!(
        start + n <= smem.len(),
        "ld.shared reads [{start}, {}) past the {}-byte shared memory",
        start + n,
        smem.len()
    );
    let mut v = 0u64;
    for (i, b) in smem[start..start + n].iter().enumerate() {
        v |= u64::from(*b) << (8 * i);
    }
    v
}

fn write_smem(smem: &mut [u8], addr: u64, ty: Type, v: u64) {
    let n = ty.size_bytes() as usize;
    let start = addr as usize;
    assert!(
        start + n <= smem.len(),
        "st.shared writes [{start}, {}) past the {}-byte shared memory",
        start + n,
        smem.len()
    );
    for i in 0..n {
        smem[start + i] = (v >> (8 * i)) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::{Cfg, CmpOp, KernelBuilder};

    fn make_ctx<'a>(
        kernel: &'a Kernel,
        reconv: &'a HashMap<usize, usize>,
        params: &'a [u8],
        gmem: &'a mut GlobalMem,
        smem: &'a mut [u8],
        ntid: Dim3,
    ) -> ExecCtx<'a> {
        ExecCtx {
            kernel,
            reconv,
            params,
            gmem,
            smem,
            ntid,
            nctaid: Dim3::x(4),
            memcheck: false,
        }
    }

    fn run_warp(kernel: &Kernel, params: &[u8], gmem: &mut GlobalMem, ntid: Dim3) -> Warp {
        let cfg = Cfg::build(kernel);
        let reconv = cfg.reconvergence_pcs(kernel);
        let mut smem = vec![0u8; kernel.shared_bytes() as usize];
        let mut warp = Warp::new(0, 0, 0, (0, 0, 0), 0, ntid, 32, kernel.num_regs());
        let mut ctx = make_ctx(kernel, &reconv, params, gmem, &mut smem, ntid);
        let mut steps = 0;
        while !warp.is_finished() {
            let r = warp.step(&mut ctx).expect("memcheck off");
            if matches!(r, StepResult::Barrier) {
                warp.at_barrier = None; // single-warp CTA: barrier is a no-op
            }
            steps += 1;
            assert!(steps < 100_000, "warp did not finish");
        }
        warp
    }

    #[test]
    fn straight_line_arithmetic_per_lane() {
        // out[tid] = tid * 3 + 1
        let mut b = KernelBuilder::new("k");
        let p = b.param("out", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let v = b.mad(Type::U32, tid, 3i64, 1i64);
        let a = b.index64(base, tid, 4);
        b.st_global(Type::U32, a, v);
        b.exit();
        let k = b.build().unwrap();

        let mut gmem = GlobalMem::new();
        let out = gmem.alloc_array(Type::U32, 32).unwrap();
        let params = out.to_le_bytes().to_vec();
        run_warp(&k, &params, &mut gmem, Dim3::x(32));
        let vals = gmem.read_u32_slice(out, 32);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, i as u32 * 3 + 1);
        }
    }

    #[test]
    fn divergent_branch_gives_per_lane_results() {
        // out[tid] = tid < 16 ? 7 : 9
        let mut b = KernelBuilder::new("k");
        let p = b.param("out", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let pr = b.setp(CmpOp::Lt, Type::U32, tid, 16i64);
        let val = b.reg();
        let else_l = b.new_label();
        let done = b.new_label();
        b.bra_unless(pr, else_l);
        b.push(Op::Mov {
            ty: Type::U32,
            dst: val,
            src: 7i64.into(),
        });
        b.bra(done);
        b.place(else_l);
        b.push(Op::Mov {
            ty: Type::U32,
            dst: val,
            src: 9i64.into(),
        });
        b.place(done);
        let a = b.index64(base, tid, 4);
        b.st_global(Type::U32, a, val);
        b.exit();
        let k = b.build().unwrap();

        let mut gmem = GlobalMem::new();
        let out = gmem.alloc_array(Type::U32, 32).unwrap();
        run_warp(&k, &out.to_le_bytes(), &mut gmem, Dim3::x(32));
        let vals = gmem.read_u32_slice(out, 32);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, if i < 16 { 7 } else { 9 }, "lane {i}");
        }
    }

    #[test]
    fn tail_warp_masks_invalid_lanes() {
        // CTA of 20 threads: lanes 20..32 must not store.
        let mut b = KernelBuilder::new("k");
        let p = b.param("out", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let a = b.index64(base, tid, 4);
        b.st_global(Type::U32, a, 1i64);
        b.exit();
        let k = b.build().unwrap();

        let mut gmem = GlobalMem::new();
        let out = gmem.alloc_array(Type::U32, 32).unwrap();
        let w = run_warp(&k, &out.to_le_bytes(), &mut gmem, Dim3::x(20));
        assert_eq!(w.valid.count_ones(), 20);
        let vals = gmem.read_u32_slice(out, 32);
        assert!(vals[..20].iter().all(|&v| v == 1));
        assert!(vals[20..].iter().all(|&v| v == 0));
    }

    #[test]
    fn shared_memory_round_trip() {
        // smem[tid] = tid*2; out[tid] = smem[tid]
        let mut b = KernelBuilder::new("k");
        b.shared(128);
        let p = b.param("out", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let two_tid = b.mul(Type::U32, tid, 2i64);
        let saddr = b.mul(Type::U32, tid, 4i64);
        b.st_shared(Type::U32, saddr, two_tid);
        b.bar();
        let v = b.ld_shared(Type::U32, saddr);
        let a = b.index64(base, tid, 4);
        b.st_global(Type::U32, a, v);
        b.exit();
        let k = b.build().unwrap();

        let mut gmem = GlobalMem::new();
        let out = gmem.alloc_array(Type::U32, 32).unwrap();
        run_warp(&k, &out.to_le_bytes(), &mut gmem, Dim3::x(32));
        let vals = gmem.read_u32_slice(out, 32);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, 2 * i as u32);
        }
    }

    #[test]
    fn loop_executes_correct_trip_count() {
        // out[tid] = sum(0..tid)
        let mut b = KernelBuilder::new("k");
        let p = b.param("out", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let acc = b.reg();
        let i = b.reg();
        b.push(Op::Mov {
            ty: Type::U32,
            dst: acc,
            src: 0i64.into(),
        });
        b.push(Op::Mov {
            ty: Type::U32,
            dst: i,
            src: 0i64.into(),
        });
        let head = b.new_label();
        let done = b.new_label();
        b.place(head);
        let cond = b.setp(CmpOp::Ge, Type::U32, i, tid);
        b.bra_if(cond, done);
        b.push(Op::Alu {
            op: gcl_ptx::AluOp::Add,
            ty: Type::U32,
            dst: acc,
            a: acc.into(),
            b: i.into(),
        });
        b.push(Op::Alu {
            op: gcl_ptx::AluOp::Add,
            ty: Type::U32,
            dst: i,
            a: i.into(),
            b: 1i64.into(),
        });
        b.bra(head);
        b.place(done);
        let a = b.index64(base, tid, 4);
        b.st_global(Type::U32, a, acc);
        b.exit();
        let k = b.build().unwrap();

        let mut gmem = GlobalMem::new();
        let out = gmem.alloc_array(Type::U32, 32).unwrap();
        run_warp(&k, &out.to_le_bytes(), &mut gmem, Dim3::x(32));
        let vals = gmem.read_u32_slice(out, 32);
        for (t, v) in vals.iter().enumerate() {
            let want: u32 = (0..t as u32).sum();
            assert_eq!(*v, want, "lane {t}");
        }
    }

    #[test]
    fn atomics_serialize_within_warp() {
        // Every lane atomically increments the same counter; old values must
        // be a permutation of 0..n_active.
        let mut b = KernelBuilder::new("k");
        let pc_ = b.param("ctr", Type::U64);
        let po = b.param("out", Type::U64);
        let ctr = b.ld_param(Type::U64, pc_);
        let outb = b.ld_param(Type::U64, po);
        let old = b.atom(gcl_ptx::AtomOp::Add, Type::U32, ctr, 1i64);
        let tid = b.sreg(Special::TidX);
        let a = b.index64(outb, tid, 4);
        b.st_global(Type::U32, a, old);
        b.exit();
        let k = b.build().unwrap();

        let mut gmem = GlobalMem::new();
        let ctr = gmem.alloc_array(Type::U32, 1).unwrap();
        let out = gmem.alloc_array(Type::U32, 32).unwrap();
        let mut params = ctr.to_le_bytes().to_vec();
        params.extend_from_slice(&out.to_le_bytes());
        run_warp(&k, &params, &mut gmem, Dim3::x(32));
        assert_eq!(gmem.read_u32_slice(ctr, 1)[0], 32);
        let mut olds = gmem.read_u32_slice(out, 32);
        olds.sort_unstable();
        let want: Vec<u32> = (0..32).collect();
        assert_eq!(olds, want);
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn shared_out_of_bounds_panics() {
        let mut b = KernelBuilder::new("k");
        b.shared(16);
        let addr = b.imm32(64);
        let _ = b.ld_shared(Type::U32, addr);
        b.exit();
        let k = b.build().unwrap();
        let mut gmem = GlobalMem::new();
        run_warp(&k, &[], &mut gmem, Dim3::x(1));
    }

    #[test]
    fn mem_access_reports_active_lane_addrs() {
        let mut b = KernelBuilder::new("k");
        let p = b.param("data", Type::U64);
        let base = b.ld_param(Type::U64, p);
        let tid = b.sreg(Special::TidX);
        let a = b.index64(base, tid, 4);
        let _ = b.ld_global(Type::U32, a);
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let reconv = cfg.reconvergence_pcs(&k);
        let mut gmem = GlobalMem::new();
        let buf = gmem.alloc_array(Type::U32, 32).unwrap();
        let params = buf.to_le_bytes().to_vec();
        let mut smem = vec![];
        let ntid = Dim3::x(8);
        let mut warp = Warp::new(0, 0, 0, (0, 0, 0), 0, ntid, 32, k.num_regs());
        let mut ctx = make_ctx(&k, &reconv, &params, &mut gmem, &mut smem, ntid);
        // Step to the global load.
        let mut access = None;
        while !warp.is_finished() {
            if let StepResult::Mem(m) = warp.step(&mut ctx).unwrap() {
                if m.space == Space::Global {
                    access = Some(m);
                }
            }
        }
        let m = access.expect("no global access seen");
        assert_eq!(m.lane_addrs.len(), 8);
        for (lane, addr) in &m.lane_addrs {
            assert_eq!(*addr, buf + u64::from(*lane) * 4);
        }
    }
}
