//! Device global memory: a sparse byte-addressable store plus a bump
//! allocator, playing the role of `cudaMalloc` + device DRAM contents.
//!
//! The allocator records every live `(base, len)` range so that memcheck
//! ([`GpuConfig::memcheck`](crate::GpuConfig::memcheck)) can reject
//! accesses that fall outside all allocations.

use crate::fault::AllocError;
use gcl_mem::{Dec, Enc, WireError};
use gcl_ptx::Type;
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// Base of the device heap. Nonzero so that address 0 stays an obvious
/// "null" and accidental null derefs read zeros rather than real data.
pub const HEAP_BASE: u64 = 0x1000_0000;

/// Sparse device memory image with functional reads/writes.
///
/// Unwritten memory reads as zero (convenient for synthetic workloads).
///
/// # Examples
///
/// ```
/// use gcl_sim::GlobalMem;
/// use gcl_ptx::Type;
///
/// let mut mem = GlobalMem::new();
/// let buf = mem.alloc(16, 4).unwrap();
/// mem.write_scalar(buf, Type::U32, 42);
/// assert_eq!(mem.read_scalar(buf, Type::U32), 42);
/// assert_eq!(mem.read_scalar(buf + 4, Type::U32), 0);
/// ```
#[derive(Debug, Default)]
pub struct GlobalMem {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    next_alloc: u64,
    /// Live allocations as `(base, len)`, sorted by base (the bump
    /// allocator only moves upward, so pushes keep the order).
    allocs: Vec<(u64, u64)>,
}

impl GlobalMem {
    /// An empty memory image.
    pub fn new() -> GlobalMem {
        GlobalMem {
            pages: HashMap::new(),
            next_alloc: HEAP_BASE,
            allocs: Vec::new(),
        }
    }

    /// Allocate `bytes` of device memory aligned to `align` (a power of
    /// two). Returns the device address.
    ///
    /// Zero-byte requests still get a distinct one-byte range so every
    /// allocation has a unique, checkable address.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::BadAlign`] if `align` is zero or not a power
    /// of two, and [`AllocError::TooLarge`] if the allocation would
    /// overflow the 64-bit device address space.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Result<u64, AllocError> {
        if align == 0 || !align.is_power_of_two() {
            return Err(AllocError::BadAlign { align });
        }
        let base = self
            .next_alloc
            .checked_add(align - 1)
            .ok_or(AllocError::TooLarge { bytes })?
            & !(align - 1);
        let len = bytes.max(1);
        let end = base
            .checked_add(len)
            .ok_or(AllocError::TooLarge { bytes })?;
        self.allocs.push((base, len));
        self.next_alloc = end;
        Ok(base)
    }

    /// Allocate room for `n` elements of `ty`, 128-byte aligned (so buffers
    /// start on cache-line boundaries like `cudaMalloc`'s 256 B alignment).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::CountOverflow`] if `n * size_of(ty)` does not
    /// fit in 64 bits, or any [`AllocError`] from [`GlobalMem::alloc`].
    pub fn alloc_array(&mut self, ty: Type, n: u64) -> Result<u64, AllocError> {
        let elem = ty.size_bytes();
        let bytes = n
            .checked_mul(u64::from(elem))
            .ok_or(AllocError::CountOverflow {
                count: n,
                elem_bytes: elem,
            })?;
        self.alloc(bytes, 128)
    }

    /// Whether `[addr, addr + bytes)` lies entirely inside one live
    /// allocation. This is the memcheck predicate.
    pub fn is_allocated(&self, addr: u64, bytes: u32) -> bool {
        match self.nearest_allocation(addr) {
            Some((base, len)) => addr - base < len && u64::from(bytes) <= len - (addr - base),
            None => false,
        }
    }

    /// The live allocation `(base, len)` with the greatest base at or below
    /// `addr` — the buffer an out-of-bounds access most likely ran off the
    /// end of. `None` if `addr` is below every allocation.
    pub fn nearest_allocation(&self, addr: u64) -> Option<(u64, u64)> {
        let i = self.allocs.partition_point(|&(base, _)| base <= addr);
        (i > 0).then(|| self.allocs[i - 1])
    }

    /// All live allocations as `(base, len)`, in address order.
    pub fn allocations(&self) -> &[(u64, u64)] {
        &self.allocs
    }

    /// Read one byte (zero if never written).
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page = addr >> PAGE_SHIFT;
        match self.pages.get(&page) {
            Some(p) => p[(addr as usize) & (PAGE_SIZE - 1)],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let page = addr >> PAGE_SHIFT;
        let p = self
            .pages
            .entry(page)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
        p[(addr as usize) & (PAGE_SIZE - 1)] = v;
    }

    /// Read `n` bytes little-endian into a u64 (n ≤ 8).
    pub fn read_le(&self, addr: u64, n: u32) -> u64 {
        debug_assert!(n <= 8);
        let mut v = 0u64;
        for i in 0..u64::from(n) {
            v |= u64::from(self.read_u8(addr + i)) << (8 * i);
        }
        v
    }

    /// Write the low `n` bytes of `v` little-endian (n ≤ 8).
    pub fn write_le(&mut self, addr: u64, n: u32, v: u64) {
        debug_assert!(n <= 8);
        for i in 0..u64::from(n) {
            self.write_u8(addr + i, (v >> (8 * i)) as u8);
        }
    }

    /// Read a typed scalar as raw bits (sign/float interpretation is the
    /// caller's concern). Integers narrower than 64 bits are zero-extended.
    pub fn read_scalar(&self, addr: u64, ty: Type) -> u64 {
        self.read_le(addr, ty.size_bytes())
    }

    /// Write a typed scalar from raw bits.
    pub fn write_scalar(&mut self, addr: u64, ty: Type, bits: u64) {
        self.write_le(addr, ty.size_bytes(), bits);
    }

    /// Write a slice of `u32` values starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, data: &[u32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_le(addr + 4 * i as u64, 4, u64::from(v));
        }
    }

    /// Read `n` consecutive `u32` values.
    pub fn read_u32_slice(&self, addr: u64, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| self.read_le(addr + 4 * i as u64, 4) as u32)
            .collect()
    }

    /// Write a slice of `f32` values starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, data: &[f32]) {
        for (i, &v) in data.iter().enumerate() {
            self.write_le(addr + 4 * i as u64, 4, u64::from(v.to_bits()));
        }
    }

    /// Read `n` consecutive `f32` values.
    pub fn read_f32_slice(&self, addr: u64, n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| f32::from_bits(self.read_le(addr + 4 * i as u64, 4) as u32))
            .collect()
    }

    /// Number of resident (written) pages, for memory-footprint sanity.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Checkpoint-encode the memory image: resident pages (in sorted page
    /// order for byte stability), bump pointer and allocation table.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        let mut page_ids: Vec<&u64> = self.pages.keys().collect();
        page_ids.sort_unstable();
        e.usize(page_ids.len());
        for p in page_ids {
            e.u64(*p);
            e.bytes(&self.pages[p][..]);
        }
        e.u64(self.next_alloc);
        e.seq(&self.allocs, |e, &(base, len)| {
            e.u64(base);
            e.u64(len);
        });
    }

    /// Checkpoint-decode a memory image written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<GlobalMem, WireError> {
        let n = d.seq_len()?;
        let mut pages = HashMap::with_capacity(n);
        for _ in 0..n {
            let id = d.u64()?;
            let bytes = d.bytes()?;
            let arr: Box<[u8; PAGE_SIZE]> = bytes
                .to_vec()
                .into_boxed_slice()
                .try_into()
                .map_err(|_| WireError::Malformed("page size mismatch"))?;
            if pages.insert(id, arr).is_some() {
                return Err(WireError::Malformed("duplicate page"));
            }
        }
        let next_alloc = d.u64()?;
        let allocs = d.seq(|d| {
            let base = d.u64()?;
            let len = d.u64()?;
            Ok((base, len))
        })?;
        Ok(GlobalMem {
            pages,
            next_alloc,
            allocs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let mem = GlobalMem::new();
        assert_eq!(mem.read_u8(0xdead_beef), 0);
        assert_eq!(mem.read_scalar(0x42, Type::U64), 0);
    }

    #[test]
    fn read_write_round_trip_across_pages() {
        let mut mem = GlobalMem::new();
        // Straddle a page boundary.
        let addr = (1 << PAGE_SHIFT) - 3;
        mem.write_le(addr, 8, 0x1122_3344_5566_7788);
        assert_eq!(mem.read_le(addr, 8), 0x1122_3344_5566_7788);
        assert_eq!(mem.resident_pages(), 2);
    }

    #[test]
    fn alloc_respects_alignment_and_no_overlap() {
        let mut mem = GlobalMem::new();
        let a = mem.alloc(100, 128).unwrap();
        let b = mem.alloc(10, 128).unwrap();
        assert_eq!(a % 128, 0);
        assert_eq!(b % 128, 0);
        assert!(b >= a + 100);
        assert!(a >= HEAP_BASE);
    }

    #[test]
    fn typed_slices() {
        let mut mem = GlobalMem::new();
        let a = mem.alloc_array(Type::U32, 4).unwrap();
        mem.write_u32_slice(a, &[1, 2, 3, 4]);
        assert_eq!(mem.read_u32_slice(a, 4), vec![1, 2, 3, 4]);
        let f = mem.alloc_array(Type::F32, 2).unwrap();
        mem.write_f32_slice(f, &[1.5, -2.25]);
        assert_eq!(mem.read_f32_slice(f, 2), vec![1.5, -2.25]);
    }

    #[test]
    fn bad_allocations_are_rejected_not_wrapped() {
        let mut mem = GlobalMem::new();
        assert_eq!(
            mem.alloc(16, 0).unwrap_err(),
            AllocError::BadAlign { align: 0 }
        );
        assert_eq!(
            mem.alloc(16, 3).unwrap_err(),
            AllocError::BadAlign { align: 3 }
        );
        assert!(matches!(
            mem.alloc(u64::MAX, 4).unwrap_err(),
            AllocError::TooLarge { .. }
        ));
        assert!(matches!(
            mem.alloc_array(Type::U64, u64::MAX / 4).unwrap_err(),
            AllocError::CountOverflow { .. }
        ));
        // Failed allocations must not move the bump pointer or leave
        // phantom ranges behind.
        assert_eq!(mem.allocations().len(), 0);
        let a = mem.alloc(16, 4).unwrap();
        assert_eq!(a, HEAP_BASE);
    }

    #[test]
    fn allocation_ranges_answer_memcheck_queries() {
        let mut mem = GlobalMem::new();
        let a = mem.alloc(100, 128).unwrap();
        let b = mem.alloc(64, 128).unwrap();
        // Inside each allocation.
        assert!(mem.is_allocated(a, 4));
        assert!(mem.is_allocated(a + 96, 4));
        assert!(mem.is_allocated(b + 60, 4));
        // Straddling the end of `a` (the 128-byte alignment gap after it is
        // not allocated).
        assert!(!mem.is_allocated(a + 98, 4));
        assert!(!mem.is_allocated(a + 100, 1));
        // Below the heap, and past the last allocation.
        assert!(!mem.is_allocated(HEAP_BASE - 8, 4));
        assert!(!mem.is_allocated(b + 64, 1));
        // Nearest-allocation attribution.
        assert_eq!(mem.nearest_allocation(a + 100), Some((a, 100)));
        assert_eq!(mem.nearest_allocation(b + 1000), Some((b, 64)));
        assert_eq!(mem.nearest_allocation(HEAP_BASE - 1), None);
    }

    #[test]
    fn zero_byte_allocations_stay_distinct() {
        let mut mem = GlobalMem::new();
        let a = mem.alloc(0, 4).unwrap();
        let b = mem.alloc(0, 4).unwrap();
        assert_ne!(a, b);
        assert!(mem.is_allocated(a, 1));
    }

    #[test]
    fn narrow_writes_do_not_clobber_neighbors() {
        let mut mem = GlobalMem::new();
        mem.write_le(100, 4, 0xAAAA_AAAA);
        mem.write_le(104, 4, 0xBBBB_BBBB);
        mem.write_le(100, 2, 0x1111);
        assert_eq!(mem.read_le(100, 4), 0xAAAA_1111);
        assert_eq!(mem.read_le(104, 4), 0xBBBB_BBBB);
    }
}
