//! The memory-access coalescer: collapses a warp's per-lane addresses into
//! cache-line-granular memory requests.
//!
//! This sits in front of the L1 (as on real GPUs): a fully coalesced warp
//! load touches one or two 128 B lines; a scattered (non-deterministic) one
//! can touch up to 32 — the paper's central mechanism.

/// Coalesce per-lane byte accesses of `bytes` each into block-aligned
/// requests of `line_bytes`. Returns unique block addresses in first-touch
/// (lane) order. Accesses straddling a block boundary contribute both blocks.
///
/// # Examples
///
/// ```
/// use gcl_sim::coalesce;
///
/// // 32 consecutive 4-byte accesses: one 128 B request.
/// let addrs: Vec<(u32, u64)> = (0..32).map(|l| (l, 0x1000 + 4 * u64::from(l))).collect();
/// assert_eq!(coalesce(&addrs, 4, 128), vec![0x1000]);
///
/// // Stride-128: every lane its own line.
/// let addrs: Vec<(u32, u64)> = (0..32).map(|l| (l, 128 * u64::from(l))).collect();
/// assert_eq!(coalesce(&addrs, 4, 128).len(), 32);
/// ```
pub fn coalesce(lane_addrs: &[(u32, u64)], bytes: u32, line_bytes: u32) -> Vec<u64> {
    let mask = !u64::from(line_bytes - 1);
    let mut blocks: Vec<u64> = Vec::with_capacity(4);
    let push = |b: u64, blocks: &mut Vec<u64>| {
        if !blocks.contains(&b) {
            blocks.push(b);
        }
    };
    for &(_lane, addr) in lane_addrs {
        let first = addr & mask;
        push(first, &mut blocks);
        let last = (addr + u64::from(bytes) - 1) & mask;
        if last != first {
            push(last, &mut blocks);
        }
    }
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: u32, f: impl Fn(u32) -> u64) -> Vec<(u32, u64)> {
        (0..n).map(|l| (l, f(l))).collect()
    }

    #[test]
    fn fully_coalesced_single_block() {
        let a = seq(32, |l| 0x8000 + 4 * u64::from(l));
        assert_eq!(coalesce(&a, 4, 128), vec![0x8000]);
    }

    #[test]
    fn misaligned_warp_touches_two_blocks() {
        // Base offset 64 with 4-byte accesses: lanes 0..15 in block 0,
        // 16..31 in block 1.
        let a = seq(32, |l| 64 + 4 * u64::from(l));
        assert_eq!(coalesce(&a, 4, 128), vec![0, 128]);
    }

    #[test]
    fn scattered_accesses_one_block_each() {
        let a = seq(32, |l| 4096 * u64::from(l));
        let blocks = coalesce(&a, 4, 128);
        assert_eq!(blocks.len(), 32);
    }

    #[test]
    fn duplicate_addresses_merge() {
        // All lanes read the same word (broadcast).
        let a = seq(32, |_| 0x4000);
        assert_eq!(coalesce(&a, 4, 128), vec![0x4000 & !127]);
    }

    #[test]
    fn straddling_access_takes_both_blocks() {
        // 8-byte access at line_end-4 crosses into the next line.
        let a = vec![(0u32, 124u64)];
        assert_eq!(coalesce(&a, 8, 128), vec![0, 128]);
    }

    #[test]
    fn order_is_first_touch() {
        let a = vec![(0u32, 256u64), (1, 0), (2, 300)];
        assert_eq!(coalesce(&a, 4, 128), vec![256, 0]);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(coalesce(&[], 4, 128).is_empty());
    }

    #[test]
    fn works_with_64_byte_lines() {
        let a = seq(32, |l| 4 * u64::from(l));
        assert_eq!(coalesce(&a, 4, 64), vec![0, 64]);
    }
}
