//! Typed evaluation of PTX-subset operations on raw 64-bit register values.
//!
//! Registers hold untyped 64-bit patterns; instructions interpret them via
//! their type suffix, exactly as PTX does. Narrow results are stored
//! zero-extended.

use gcl_ptx::{AluOp, AtomOp, CmpOp, SfuOp, Type, UnaryOp};

fn f32_of(bits: u64) -> f32 {
    f32::from_bits(bits as u32)
}

fn f64_of(bits: u64) -> f64 {
    f64::from_bits(bits)
}

fn of_f32(v: f32) -> u64 {
    u64::from(v.to_bits())
}

fn of_f64(v: f64) -> u64 {
    v.to_bits()
}

/// Truncate/extend a raw value to the width and signedness of `ty`, returning
/// the canonical zero-extended storage form.
pub fn canon(ty: Type, bits: u64) -> u64 {
    match ty.size_bytes() {
        1 => bits & 0xFF,
        2 => bits & 0xFFFF,
        4 => bits & 0xFFFF_FFFF,
        _ => bits,
    }
}

fn as_signed(ty: Type, bits: u64) -> i64 {
    match ty.size_bytes() {
        1 => bits as u8 as i8 as i64,
        2 => bits as u16 as i16 as i64,
        4 => bits as u32 as i32 as i64,
        _ => bits as i64,
    }
}

/// Evaluate a two-source ALU operation. Division/remainder by zero yields 0
/// (CUDA leaves it undefined; a fixed result keeps simulation deterministic).
pub fn eval_alu(op: AluOp, ty: Type, a: u64, b: u64) -> u64 {
    if ty.is_float() {
        return eval_alu_float(op, ty, a, b);
    }
    let (ua, ub) = (canon(ty, a), canon(ty, b));
    let (sa, sb) = (as_signed(ty, a), as_signed(ty, b));
    let width_bits = u32::from(ty.size_bytes() as u8) * 8;
    let shift_mask = u64::from(width_bits - 1);
    let raw = match op {
        AluOp::Add => ua.wrapping_add(ub),
        AluOp::Sub => ua.wrapping_sub(ub),
        AluOp::Mul => {
            if ty.is_signed() {
                sa.wrapping_mul(sb) as u64
            } else {
                ua.wrapping_mul(ub)
            }
        }
        AluOp::MulHi => {
            if ty.is_signed() {
                ((i128::from(sa) * i128::from(sb)) >> width_bits) as u64
            } else {
                ((u128::from(ua) * u128::from(ub)) >> width_bits) as u64
            }
        }
        AluOp::MulWide => {
            // Result is at double width; stored as-is in the 64-bit register.
            return if ty.is_signed() {
                (sa.wrapping_mul(sb)) as u64
            } else {
                ua.wrapping_mul(ub)
            };
        }
        AluOp::Div => {
            if ub == 0 {
                0
            } else if ty.is_signed() {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_div(sb) as u64
                }
            } else {
                ua / ub
            }
        }
        AluOp::Rem => {
            if ub == 0 {
                0
            } else if ty.is_signed() {
                if sb == 0 {
                    0
                } else {
                    sa.wrapping_rem(sb) as u64
                }
            } else {
                ua % ub
            }
        }
        AluOp::Min => {
            if ty.is_signed() {
                sa.min(sb) as u64
            } else {
                ua.min(ub)
            }
        }
        AluOp::Max => {
            if ty.is_signed() {
                sa.max(sb) as u64
            } else {
                ua.max(ub)
            }
        }
        AluOp::And => ua & ub,
        AluOp::Or => ua | ub,
        AluOp::Xor => ua ^ ub,
        AluOp::Shl => ua << (ub & shift_mask),
        AluOp::Shr => {
            if ty.is_signed() {
                (sa >> (ub & shift_mask)) as u64
            } else {
                ua >> (ub & shift_mask)
            }
        }
    };
    canon(ty, raw)
}

fn eval_alu_float(op: AluOp, ty: Type, a: u64, b: u64) -> u64 {
    macro_rules! fop {
        ($fa:expr, $fb:expr, $pack:expr) => {{
            let (fa, fb) = ($fa, $fb);
            let r = match op {
                AluOp::Add => fa + fb,
                AluOp::Sub => fa - fb,
                AluOp::Mul | AluOp::MulWide | AluOp::MulHi => fa * fb,
                AluOp::Div => fa / fb,
                AluOp::Rem => fa % fb,
                AluOp::Min => fa.min(fb),
                AluOp::Max => fa.max(fb),
                AluOp::And | AluOp::Or | AluOp::Xor | AluOp::Shl | AluOp::Shr => {
                    unreachable!("bitwise op on float type")
                }
            };
            $pack(r)
        }};
    }
    match ty {
        Type::F32 => fop!(f32_of(a), f32_of(b), of_f32),
        Type::F64 => fop!(f64_of(a), f64_of(b), of_f64),
        _ => unreachable!(),
    }
}

/// Evaluate a one-source ALU operation.
pub fn eval_unary(op: UnaryOp, ty: Type, a: u64) -> u64 {
    if ty.is_float() {
        return match (op, ty) {
            (UnaryOp::Neg, Type::F32) => of_f32(-f32_of(a)),
            (UnaryOp::Neg, _) => of_f64(-f64_of(a)),
            (UnaryOp::Abs, Type::F32) => of_f32(f32_of(a).abs()),
            (UnaryOp::Abs, _) => of_f64(f64_of(a).abs()),
            _ => unreachable!("bitwise unary op on float type"),
        };
    }
    let width_bits = u32::from(ty.size_bytes() as u8) * 8;
    let ua = canon(ty, a);
    let sa = as_signed(ty, a);
    let raw = match op {
        UnaryOp::Neg => (ua ^ canon(ty, u64::MAX)).wrapping_add(1),
        UnaryOp::Not => ua ^ canon(ty, u64::MAX),
        UnaryOp::Abs => {
            if ty.is_signed() && sa < 0 {
                sa.unsigned_abs()
            } else {
                ua
            }
        }
        UnaryOp::Popc => u64::from(ua.count_ones()),
        UnaryOp::Clz => {
            // Leading zeros within the type's width.
            u64::from(ua.leading_zeros()) - u64::from(64 - width_bits)
        }
    };
    canon(ty, raw)
}

/// Evaluate `a * b + c`, optionally at double width (`mad.wide`).
pub fn eval_mad(ty: Type, wide: bool, a: u64, b: u64, c: u64) -> u64 {
    match ty {
        Type::F32 => of_f32(f32_of(a) * f32_of(b) + f32_of(c)),
        Type::F64 => of_f64(f64_of(a) * f64_of(b) + f64_of(c)),
        _ => {
            if wide {
                let prod = eval_alu(AluOp::MulWide, ty, a, b);
                prod.wrapping_add(c)
            } else {
                let prod = eval_alu(AluOp::Mul, ty, a, b);
                canon(ty, prod.wrapping_add(canon(ty, c)))
            }
        }
    }
}

/// Evaluate a comparison, returning the predicate value (0 or 1).
pub fn eval_cmp(cmp: CmpOp, ty: Type, a: u64, b: u64) -> u64 {
    let ord = if ty.is_float() {
        let (fa, fb) = match ty {
            Type::F32 => (f64::from(f32_of(a)), f64::from(f32_of(b))),
            _ => (f64_of(a), f64_of(b)),
        };
        fa.partial_cmp(&fb)
    } else if ty.is_signed() {
        Some(as_signed(ty, a).cmp(&as_signed(ty, b)))
    } else {
        Some(canon(ty, a).cmp(&canon(ty, b)))
    };
    use std::cmp::Ordering::*;
    let r = match (cmp, ord) {
        // Unordered (NaN) compares false except Ne.
        (CmpOp::Ne, None) => true,
        (_, None) => false,
        (CmpOp::Eq, Some(o)) => o == Equal,
        (CmpOp::Ne, Some(o)) => o != Equal,
        (CmpOp::Lt, Some(o)) => o == Less,
        (CmpOp::Le, Some(o)) => o != Greater,
        (CmpOp::Gt, Some(o)) => o == Greater,
        (CmpOp::Ge, Some(o)) => o != Less,
    };
    u64::from(r)
}

/// Evaluate a special-function operation.
pub fn eval_sfu(op: SfuOp, ty: Type, a: u64) -> u64 {
    macro_rules! sfu {
        ($v:expr, $pack:expr) => {{
            let v = $v;
            let r = match op {
                SfuOp::Sin => v.sin(),
                SfuOp::Cos => v.cos(),
                SfuOp::Sqrt => v.sqrt(),
                SfuOp::Rsqrt => 1.0 / v.sqrt(),
                SfuOp::Rcp => 1.0 / v,
                SfuOp::Ex2 => v.exp2(),
                SfuOp::Lg2 => v.log2(),
            };
            $pack(r)
        }};
    }
    match ty {
        Type::F32 => sfu!(f32_of(a), of_f32),
        Type::F64 => sfu!(f64_of(a), of_f64),
        _ => unreachable!("SFU op on integer type"),
    }
}

/// Evaluate a type conversion.
pub fn eval_cvt(dst_ty: Type, src_ty: Type, v: u64) -> u64 {
    // Decode the source to a wide intermediate.
    enum Wide {
        U(u64),
        S(i64),
        F(f64),
    }
    let w = if src_ty.is_float() {
        Wide::F(match src_ty {
            Type::F32 => f64::from(f32_of(v)),
            _ => f64_of(v),
        })
    } else if src_ty.is_signed() {
        Wide::S(as_signed(src_ty, v))
    } else {
        Wide::U(canon(src_ty, v))
    };
    // Encode into the destination.
    if dst_ty.is_float() {
        let f = match w {
            Wide::U(u) => u as f64,
            Wide::S(s) => s as f64,
            Wide::F(f) => f,
        };
        match dst_ty {
            Type::F32 => of_f32(f as f32),
            _ => of_f64(f),
        }
    } else {
        let raw = match w {
            Wide::U(u) => u,
            Wide::S(s) => s as u64,
            Wide::F(f) => {
                if dst_ty.is_signed() {
                    (f as i64) as u64
                } else {
                    // `as` saturates negatives to 0 for unsigned targets.
                    f as u64
                }
            }
        };
        canon(dst_ty, raw)
    }
}

/// Evaluate an atomic RMW's combine step: `old op src`.
pub fn eval_atom(op: AtomOp, ty: Type, old: u64, src: u64) -> u64 {
    match op {
        AtomOp::Add => eval_alu(AluOp::Add, ty, old, src),
        AtomOp::Min => eval_alu(AluOp::Min, ty, old, src),
        AtomOp::Max => eval_alu(AluOp::Max, ty, old, src),
        AtomOp::And => eval_alu(AluOp::And, ty, old, src),
        AtomOp::Or => eval_alu(AluOp::Or, ty, old, src),
        AtomOp::Exch => canon(ty, src),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_arithmetic_wraps_and_canonicalizes() {
        assert_eq!(eval_alu(AluOp::Add, Type::U32, 0xFFFF_FFFF, 1), 0);
        assert_eq!(eval_alu(AluOp::Sub, Type::U32, 0, 1), 0xFFFF_FFFF);
        assert_eq!(eval_alu(AluOp::Mul, Type::U32, 0x10000, 0x10000), 0);
    }

    #[test]
    fn signed_ops_sign_extend() {
        let neg1 = 0xFFFF_FFFFu64; // -1 as u32 bits
        assert_eq!(eval_alu(AluOp::Max, Type::S32, neg1, 1), 1);
        assert_eq!(eval_alu(AluOp::Min, Type::S32, neg1, 1), neg1);
        assert_eq!(eval_alu(AluOp::Div, Type::S32, neg1, 1), neg1);
        // Arithmetic shift.
        assert_eq!(eval_alu(AluOp::Shr, Type::S32, neg1, 4), neg1);
        assert_eq!(eval_alu(AluOp::Shr, Type::U32, neg1, 4), 0x0FFF_FFFF);
    }

    #[test]
    fn mul_wide_and_hi() {
        // 0xFFFF_FFFF^2 = 0xFFFF_FFFE_0000_0001
        let big = eval_alu(AluOp::MulWide, Type::U32, 0xFFFF_FFFF, 0xFFFF_FFFF);
        assert_eq!(big, 0xFFFF_FFFE_0000_0001);
        let hi = eval_alu(AluOp::MulHi, Type::U32, 0xFFFF_FFFF, 0xFFFF_FFFF);
        assert_eq!(hi, 0xFFFF_FFFE);
        // Signed wide: -2 * 3 = -6 at 64 bits.
        let m = eval_alu(AluOp::MulWide, Type::S32, 0xFFFF_FFFE, 3);
        assert_eq!(m as i64, -6);
    }

    #[test]
    fn division_by_zero_is_zero() {
        assert_eq!(eval_alu(AluOp::Div, Type::U32, 5, 0), 0);
        assert_eq!(eval_alu(AluOp::Rem, Type::S32, 5, 0), 0);
    }

    #[test]
    fn float_ops() {
        let a = u64::from(2.0f32.to_bits());
        let b = u64::from(0.5f32.to_bits());
        assert_eq!(
            f32::from_bits(eval_alu(AluOp::Add, Type::F32, a, b) as u32),
            2.5
        );
        assert_eq!(
            f32::from_bits(eval_alu(AluOp::Div, Type::F32, a, b) as u32),
            4.0
        );
        let x = 9.0f64.to_bits();
        assert_eq!(f64::from_bits(eval_sfu(SfuOp::Sqrt, Type::F64, x)), 3.0);
    }

    #[test]
    fn mad_matches_mul_add() {
        assert_eq!(eval_mad(Type::U32, false, 7, 6, 100), 142);
        // Wide: 0xFFFF_FFFF * 4 + 8 at 64 bits.
        assert_eq!(eval_mad(Type::U32, true, 0xFFFF_FFFF, 4, 8), 0x4_0000_0004);
        let a = u64::from(1.5f32.to_bits());
        let r = eval_mad(Type::F32, false, a, a, a);
        assert_eq!(f32::from_bits(r as u32), 1.5 * 1.5 + 1.5);
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval_cmp(CmpOp::Lt, Type::U32, 1, 2), 1);
        assert_eq!(eval_cmp(CmpOp::Lt, Type::S32, 0xFFFF_FFFF, 2), 1); // -1 < 2
        assert_eq!(eval_cmp(CmpOp::Lt, Type::U32, 0xFFFF_FFFF, 2), 0);
        assert_eq!(eval_cmp(CmpOp::Ge, Type::U32, 5, 5), 1);
        // NaN: only Ne is true.
        let nan = u64::from(f32::NAN.to_bits());
        assert_eq!(eval_cmp(CmpOp::Eq, Type::F32, nan, nan), 0);
        assert_eq!(eval_cmp(CmpOp::Ne, Type::F32, nan, nan), 1);
        assert_eq!(eval_cmp(CmpOp::Lt, Type::F32, nan, nan), 0);
    }

    #[test]
    fn conversions() {
        // u32 -> f32
        let f = eval_cvt(Type::F32, Type::U32, 7);
        assert_eq!(f32::from_bits(f as u32), 7.0);
        // f32 -> u32 truncates; negative saturates to 0.
        let v = u64::from(3.9f32.to_bits());
        assert_eq!(eval_cvt(Type::U32, Type::F32, v), 3);
        let neg = u64::from((-3.9f32).to_bits());
        assert_eq!(eval_cvt(Type::U32, Type::F32, neg), 0);
        assert_eq!(eval_cvt(Type::S32, Type::F32, neg) as u32 as i32, -3);
        // s32 -> s64 sign-extends.
        assert_eq!(eval_cvt(Type::S64, Type::S32, 0xFFFF_FFFF) as i64, -1);
        // u32 -> u64 zero-extends.
        assert_eq!(eval_cvt(Type::U64, Type::U32, 0xFFFF_FFFF), 0xFFFF_FFFF);
        // u64 -> u32 truncates.
        assert_eq!(eval_cvt(Type::U32, Type::U64, 0x1_0000_0002), 2);
        // f64 -> f32 rounds.
        let d = 1.25f64.to_bits();
        assert_eq!(
            f32::from_bits(eval_cvt(Type::F32, Type::F64, d) as u32),
            1.25
        );
    }

    #[test]
    fn atomics_combine() {
        assert_eq!(eval_atom(AtomOp::Add, Type::U32, 10, 5), 15);
        assert_eq!(
            eval_atom(AtomOp::Min, Type::S32, 0xFFFF_FFFF, 3),
            0xFFFF_FFFF
        );
        assert_eq!(eval_atom(AtomOp::Exch, Type::U32, 10, 5), 5);
        assert_eq!(eval_atom(AtomOp::Or, Type::U32, 0b01, 0b10), 0b11);
    }

    #[test]
    fn unary_ops() {
        assert_eq!(eval_unary(UnaryOp::Neg, Type::U32, 1), 0xFFFF_FFFF);
        assert_eq!(eval_unary(UnaryOp::Neg, Type::S32, 0xFFFF_FFFF), 1);
        assert_eq!(eval_unary(UnaryOp::Not, Type::U32, 0), 0xFFFF_FFFF);
        assert_eq!(eval_unary(UnaryOp::Not, Type::U64, 0), u64::MAX);
        assert_eq!(eval_unary(UnaryOp::Abs, Type::S32, 0xFFFF_FFFB), 5); // |-5|
        assert_eq!(eval_unary(UnaryOp::Abs, Type::U32, 7), 7);
        assert_eq!(eval_unary(UnaryOp::Popc, Type::U32, 0b1011), 3);
        assert_eq!(eval_unary(UnaryOp::Clz, Type::U32, 1), 31);
        assert_eq!(eval_unary(UnaryOp::Clz, Type::U64, 1), 63);
        assert_eq!(eval_unary(UnaryOp::Clz, Type::U32, 0), 32);
        let f = u64::from((-2.5f32).to_bits());
        assert_eq!(
            f32::from_bits(eval_unary(UnaryOp::Abs, Type::F32, f) as u32),
            2.5
        );
        assert_eq!(
            f32::from_bits(eval_unary(UnaryOp::Neg, Type::F32, f) as u32),
            2.5
        );
    }

    #[test]
    fn shift_amounts_mask_to_width() {
        assert_eq!(eval_alu(AluOp::Shl, Type::U32, 1, 33), 2);
        assert_eq!(eval_alu(AluOp::Shl, Type::U64, 1, 65), 2);
    }
}
