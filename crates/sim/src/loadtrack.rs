//! Per-warp-load tracking: turnaround times and their component breakdown
//! (the paper's Figures 2, 5, 6 and 7).

use gcl_core::LoadClass;
use gcl_mem::{Cycle, Dec, Enc, MemRequest, WireError};
use gcl_stats::{Accumulator, Histogram};
use std::collections::HashMap;

fn enc_acc(e: &mut Enc, a: &Accumulator) {
    e.u64(a.count);
    e.f64(a.sum);
    e.f64(a.min);
    e.f64(a.max);
}

fn dec_acc(d: &mut Dec<'_>) -> Result<Accumulator, WireError> {
    Ok(Accumulator {
        count: d.u64()?,
        sum: d.f64()?,
        min: d.f64()?,
        max: d.f64()?,
    })
}

fn enc_hist(e: &mut Enc, h: &Histogram) {
    e.seq(h.raw_buckets(), |e, &b| e.u64(b));
}

fn dec_hist(d: &mut Dec<'_>) -> Result<Histogram, WireError> {
    let buckets = d.seq(|d| d.u64())?;
    Histogram::from_raw_buckets(buckets).ok_or(WireError::Malformed("bad histogram bucket count"))
}

/// Aggregated behavior of one load class (Figure 2 + Figure 5).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassAgg {
    /// Dynamic warp-level load instructions.
    pub warp_loads: u64,
    /// Memory requests generated.
    pub requests: u64,
    /// Active threads summed over warp loads.
    pub active_threads: u64,
    /// Full turnaround time (issue → last data written back).
    pub turnaround: Accumulator,
    /// Cycles waiting for the *first* request to be accepted by the L1
    /// (resources held by previous warps).
    pub wait_prev_warps: Accumulator,
    /// Cycles between the first and last request acceptance (reservation of
    /// the current warp's own burst).
    pub wait_current_warp: Accumulator,
    /// Cycles from last acceptance to last data return (memory system time,
    /// split into unloaded latency + wasted cycles at reporting time).
    pub memory_time: Accumulator,
    /// Log2 distribution of turnaround times (for tail-latency reporting).
    pub turnaround_hist: Histogram,
}

impl ClassAgg {
    /// Wire-encode this aggregate (used by both SM checkpoints and the
    /// `gcl-exec` result cache; the byte layout is shared so equal
    /// aggregates always produce identical bytes).
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.u64(self.warp_loads);
        e.u64(self.requests);
        e.u64(self.active_threads);
        enc_acc(e, &self.turnaround);
        enc_acc(e, &self.wait_prev_warps);
        enc_acc(e, &self.wait_current_warp);
        enc_acc(e, &self.memory_time);
        enc_hist(e, &self.turnaround_hist);
    }

    /// Wire-decode an aggregate written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or malformed input.
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<ClassAgg, WireError> {
        Ok(ClassAgg {
            warp_loads: d.u64()?,
            requests: d.u64()?,
            active_threads: d.u64()?,
            turnaround: dec_acc(d)?,
            wait_prev_warps: dec_acc(d)?,
            wait_current_warp: dec_acc(d)?,
            memory_time: dec_acc(d)?,
            turnaround_hist: dec_hist(d)?,
        })
    }

    /// Mean memory requests per warp-level load.
    pub fn requests_per_warp(&self) -> f64 {
        if self.warp_loads == 0 {
            f64::NAN
        } else {
            self.requests as f64 / self.warp_loads as f64
        }
    }

    /// Mean memory requests per active thread.
    pub fn requests_per_active_thread(&self) -> f64 {
        if self.active_threads == 0 {
            f64::NAN
        } else {
            self.requests as f64 / self.active_threads as f64
        }
    }

    /// Merge another aggregate into this one.
    pub fn merge(&mut self, other: &ClassAgg) {
        self.warp_loads += other.warp_loads;
        self.requests += other.requests;
        self.active_threads += other.active_threads;
        self.turnaround.merge(&other.turnaround);
        self.wait_prev_warps.merge(&other.wait_prev_warps);
        self.wait_current_warp.merge(&other.wait_current_warp);
        self.memory_time.merge(&other.memory_time);
        self.turnaround_hist.merge(&other.turnaround_hist);
    }
}

/// Aggregates for one (load pc, request count) pair — the Figure 6 lines and
/// Figure 7 stack components.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PcReqAgg {
    /// Turnaround time samples.
    pub turnaround: Accumulator,
    /// Gap at L1D: first → last request acceptance.
    pub gap_l1d: Accumulator,
    /// Gap at icnt→L2: mean per-request delay from L1 acceptance to
    /// interconnect injection.
    pub gap_icnt_l2: Accumulator,
    /// Gap at L2→icnt: spread between the first and last serviced response.
    pub gap_l2_icnt: Accumulator,
}

impl PcReqAgg {
    /// Wire-encode this aggregate (shared by SM checkpoints and the
    /// `gcl-exec` result cache).
    pub fn ckpt_encode(&self, e: &mut Enc) {
        enc_acc(e, &self.turnaround);
        enc_acc(e, &self.gap_l1d);
        enc_acc(e, &self.gap_icnt_l2);
        enc_acc(e, &self.gap_l2_icnt);
    }

    /// Wire-decode an aggregate written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncated or malformed input.
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<PcReqAgg, WireError> {
        Ok(PcReqAgg {
            turnaround: dec_acc(d)?,
            gap_l1d: dec_acc(d)?,
            gap_icnt_l2: dec_acc(d)?,
            gap_l2_icnt: dec_acc(d)?,
        })
    }

    /// Merge another aggregate into this one.
    pub fn merge(&mut self, other: &PcReqAgg) {
        self.turnaround.merge(&other.turnaround);
        self.gap_l1d.merge(&other.gap_l1d);
        self.gap_icnt_l2.merge(&other.gap_icnt_l2);
        self.gap_l2_icnt.merge(&other.gap_l2_icnt);
    }
}

/// One in-flight warp-level load.
#[derive(Debug, Clone)]
struct InflightLoad {
    pc: usize,
    class: LoadClass,
    n_requests: u32,
    t_issue: Cycle,
    completed: u32,
    first_accept: Cycle,
    last_accept: Cycle,
    first_done: Cycle,
    last_done: Cycle,
    inject_delay_sum: u64,
    injected: u32,
    accepted: u32,
}

/// Tracks in-flight warp loads and folds finished ones into per-class and
/// per-pc aggregates.
#[derive(Debug, Default)]
pub struct LoadTracker {
    inflight: Vec<Option<InflightLoad>>,
    free: Vec<usize>,
    per_class: [ClassAgg; 2],
    per_pc: HashMap<(usize, u32), PcReqAgg>,
}

fn class_index(c: LoadClass) -> usize {
    match c {
        LoadClass::Deterministic => 0,
        LoadClass::NonDeterministic => 1,
    }
}

impl LoadTracker {
    /// Create an empty tracker.
    pub fn new() -> LoadTracker {
        LoadTracker::default()
    }

    /// Register a new warp-level load entering the LD/ST queue. Returns the
    /// handle to pass in the requests' `meta` field.
    pub fn begin(
        &mut self,
        pc: usize,
        class: LoadClass,
        n_requests: u32,
        active_threads: u32,
        cycle: Cycle,
    ) -> u64 {
        let rec = InflightLoad {
            pc,
            class,
            n_requests,
            t_issue: cycle,
            completed: 0,
            first_accept: 0,
            last_accept: 0,
            first_done: 0,
            last_done: 0,
            inject_delay_sum: 0,
            injected: 0,
            accepted: 0,
        };
        let agg = &mut self.per_class[class_index(class)];
        agg.warp_loads += 1;
        agg.requests += u64::from(n_requests);
        agg.active_threads += u64::from(active_threads);
        let idx = if let Some(i) = self.free.pop() {
            self.inflight[i] = Some(rec);
            i
        } else {
            self.inflight.push(Some(rec));
            self.inflight.len() - 1
        };
        idx as u64
    }

    /// Record one request of load `meta` being accepted by the L1 at `cycle`.
    pub fn note_accept(&mut self, meta: u64, cycle: Cycle) {
        let rec = self.inflight[meta as usize]
            .as_mut()
            .expect("accept on finished load");
        if rec.accepted == 0 {
            rec.first_accept = cycle;
        }
        rec.last_accept = cycle;
        rec.accepted += 1;
        debug_assert!(rec.accepted <= rec.n_requests);
    }

    /// Record one request of load `meta` completing at `cycle`. The request
    /// carries its per-stage timestamps. Returns true when the whole warp
    /// load is finished (all requests returned).
    pub fn complete_request(&mut self, meta: u64, req: &MemRequest, cycle: Cycle) -> bool {
        let idx = meta as usize;
        let rec = self.inflight[idx]
            .as_mut()
            .expect("completion on finished load");
        if rec.completed == 0 {
            rec.first_done = cycle;
        }
        rec.last_done = cycle;
        rec.completed += 1;
        if req.t_icnt_inject > 0 {
            rec.inject_delay_sum += req.t_icnt_inject.saturating_sub(req.t_l1_accepted);
            rec.injected += 1;
        }
        if rec.completed < rec.n_requests {
            return false;
        }
        // Finalize.
        let rec = self.inflight[idx].take().expect("double finalize");
        self.free.push(idx);
        let agg = &mut self.per_class[class_index(rec.class)];
        let turnaround = rec.last_done.saturating_sub(rec.t_issue);
        agg.turnaround.add(turnaround as f64);
        agg.turnaround_hist.add(turnaround);
        agg.wait_prev_warps
            .add(rec.first_accept.saturating_sub(rec.t_issue) as f64);
        agg.wait_current_warp
            .add(rec.last_accept.saturating_sub(rec.first_accept) as f64);
        agg.memory_time
            .add(rec.last_done.saturating_sub(rec.last_accept) as f64);

        let pa = self.per_pc.entry((rec.pc, rec.n_requests)).or_default();
        pa.turnaround.add(turnaround as f64);
        pa.gap_l1d
            .add(rec.last_accept.saturating_sub(rec.first_accept) as f64);
        if rec.injected > 0 {
            pa.gap_icnt_l2
                .add(rec.inject_delay_sum as f64 / f64::from(rec.injected));
        } else {
            pa.gap_icnt_l2.add(0.0);
        }
        pa.gap_l2_icnt
            .add(rec.last_done.saturating_sub(rec.first_done) as f64);
        true
    }

    /// Number of loads still in flight.
    pub fn inflight_count(&self) -> usize {
        self.inflight.iter().filter(|r| r.is_some()).count()
    }

    /// Per-class aggregate.
    pub fn class_agg(&self, class: LoadClass) -> &ClassAgg {
        &self.per_class[class_index(class)]
    }

    /// Per-(pc, request-count) aggregates.
    pub fn per_pc(&self) -> &HashMap<(usize, u32), PcReqAgg> {
        &self.per_pc
    }

    /// Consume the tracker, returning (per-class, per-pc) aggregates.
    pub fn into_parts(self) -> ([ClassAgg; 2], HashMap<(usize, u32), PcReqAgg>) {
        (self.per_class, self.per_pc)
    }

    /// Checkpoint-encode the tracker. Slot holes and free-list order are
    /// preserved verbatim (slot indices live inside in-flight request
    /// `meta` fields); maps are written in sorted key order.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.seq(&self.inflight, |e, slot| {
            e.opt(slot, |e, rec| {
                e.usize(rec.pc);
                e.u8(class_index(rec.class) as u8);
                e.u32(rec.n_requests);
                e.u64(rec.t_issue);
                e.u32(rec.completed);
                e.u64(rec.first_accept);
                e.u64(rec.last_accept);
                e.u64(rec.first_done);
                e.u64(rec.last_done);
                e.u64(rec.inject_delay_sum);
                e.u32(rec.injected);
                e.u32(rec.accepted);
            });
        });
        e.seq(&self.free, |e, &i| e.usize(i));
        for agg in &self.per_class {
            agg.ckpt_encode(e);
        }
        let mut keys: Vec<&(usize, u32)> = self.per_pc.keys().collect();
        keys.sort_unstable();
        e.usize(keys.len());
        for k in keys {
            e.usize(k.0);
            e.u32(k.1);
            self.per_pc[k].ckpt_encode(e);
        }
    }

    /// Checkpoint-decode a tracker written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<LoadTracker, WireError> {
        let inflight = d.seq(|d| {
            d.opt(|d| {
                let pc = d.usize()?;
                let class = match d.u8()? {
                    0 => LoadClass::Deterministic,
                    1 => LoadClass::NonDeterministic,
                    _ => return Err(WireError::Malformed("bad load class tag")),
                };
                Ok(InflightLoad {
                    pc,
                    class,
                    n_requests: d.u32()?,
                    t_issue: d.u64()?,
                    completed: d.u32()?,
                    first_accept: d.u64()?,
                    last_accept: d.u64()?,
                    first_done: d.u64()?,
                    last_done: d.u64()?,
                    inject_delay_sum: d.u64()?,
                    injected: d.u32()?,
                    accepted: d.u32()?,
                })
            })
        })?;
        let free = d.seq(|d| d.usize())?;
        for &f in &free {
            if f >= inflight.len() || inflight[f].is_some() {
                return Err(WireError::Malformed("bad load-tracker free slot"));
            }
        }
        let mut per_class: [ClassAgg; 2] = Default::default();
        for agg in &mut per_class {
            *agg = ClassAgg::ckpt_decode(d)?;
        }
        let n = d.seq_len()?;
        let mut per_pc = HashMap::with_capacity(n);
        for _ in 0..n {
            let pc = d.usize()?;
            let nr = d.u32()?;
            let pa = PcReqAgg::ckpt_decode(d)?;
            if per_pc.insert((pc, nr), pa).is_some() {
                return Err(WireError::Malformed("duplicate per-pc key"));
            }
        }
        Ok(LoadTracker {
            inflight,
            free,
            per_class,
            per_pc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_mem::ClassTag;

    fn req_with_stamps(accept: Cycle, inject: Cycle) -> MemRequest {
        let mut r = MemRequest::read(0, 0, 0, ClassTag::NonDeterministic, 0, 0);
        r.t_l1_accepted = accept;
        r.t_icnt_inject = inject;
        r
    }

    #[test]
    fn single_request_load_lifecycle() {
        let mut t = LoadTracker::new();
        let m = t.begin(0x10, LoadClass::Deterministic, 1, 32, 100);
        t.note_accept(m, 105);
        let done = t.complete_request(m, &req_with_stamps(105, 0), 205);
        assert!(done);
        assert_eq!(t.inflight_count(), 0);
        let agg = t.class_agg(LoadClass::Deterministic);
        assert_eq!(agg.warp_loads, 1);
        assert_eq!(agg.requests, 1);
        assert_eq!(agg.active_threads, 32);
        assert_eq!(agg.turnaround.mean(), 105.0);
        assert_eq!(agg.wait_prev_warps.mean(), 5.0);
        assert_eq!(agg.wait_current_warp.mean(), 0.0);
        assert_eq!(agg.memory_time.mean(), 100.0);
    }

    #[test]
    fn multi_request_load_components() {
        let mut t = LoadTracker::new();
        let m = t.begin(0x110, LoadClass::NonDeterministic, 3, 30, 0);
        t.note_accept(m, 10);
        t.note_accept(m, 12);
        t.note_accept(m, 20);
        assert!(!t.complete_request(m, &req_with_stamps(10, 15), 150));
        assert!(!t.complete_request(m, &req_with_stamps(12, 16), 180));
        assert!(t.complete_request(m, &req_with_stamps(20, 30), 260));
        let agg = t.class_agg(LoadClass::NonDeterministic);
        assert_eq!(agg.requests_per_warp(), 3.0);
        assert_eq!(agg.requests_per_active_thread(), 0.1);
        assert_eq!(agg.wait_prev_warps.mean(), 10.0);
        assert_eq!(agg.wait_current_warp.mean(), 10.0);
        assert_eq!(agg.memory_time.mean(), 240.0);
        assert_eq!(agg.turnaround.mean(), 260.0);
        let pa = &t.per_pc()[&(0x110, 3)];
        assert_eq!(pa.gap_l1d.mean(), 10.0);
        // Inject delays: 5, 4, 10 → mean 19/3.
        assert!((pa.gap_icnt_l2.mean() - 19.0 / 3.0).abs() < 1e-9);
        assert_eq!(pa.gap_l2_icnt.mean(), 110.0);
    }

    #[test]
    fn slots_are_recycled() {
        let mut t = LoadTracker::new();
        let a = t.begin(0, LoadClass::Deterministic, 1, 1, 0);
        t.note_accept(a, 1);
        t.complete_request(a, &req_with_stamps(1, 0), 2);
        let b = t.begin(0, LoadClass::Deterministic, 1, 1, 3);
        assert_eq!(a, b, "slot should be reused");
        t.note_accept(b, 4);
        t.complete_request(b, &req_with_stamps(4, 0), 5);
        assert_eq!(t.class_agg(LoadClass::Deterministic).warp_loads, 2);
    }

    #[test]
    fn l1_hits_do_not_pollute_inject_gap() {
        let mut t = LoadTracker::new();
        let m = t.begin(0, LoadClass::Deterministic, 2, 8, 0);
        t.note_accept(m, 1);
        t.note_accept(m, 2);
        // Both requests hit in L1 (t_icnt_inject stays 0).
        t.complete_request(m, &req_with_stamps(1, 0), 2);
        t.complete_request(m, &req_with_stamps(2, 0), 3);
        let pa = &t.per_pc()[&(0, 2)];
        assert_eq!(pa.gap_icnt_l2.mean(), 0.0);
    }

    #[test]
    fn class_agg_merge() {
        let mut a = ClassAgg {
            warp_loads: 2,
            requests: 10,
            active_threads: 40,
            ..Default::default()
        };
        a.turnaround.add(100.0);
        let mut b = ClassAgg {
            warp_loads: 1,
            requests: 1,
            active_threads: 32,
            ..Default::default()
        };
        b.turnaround.add(50.0);
        a.merge(&b);
        assert_eq!(a.warp_loads, 3);
        assert_eq!(a.requests, 11);
        assert_eq!(a.turnaround.count, 2);
        assert!((a.requests_per_warp() - 11.0 / 3.0).abs() < 1e-12);
    }
}
