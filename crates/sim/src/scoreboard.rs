//! Per-warp register scoreboard: blocks issue of instructions whose source
//! or destination registers have writes in flight.

use gcl_mem::{Dec, Enc, WireError};
use gcl_ptx::{Instruction, Reg};

/// Scoreboard for all warps of one SM running one kernel.
#[derive(Debug)]
pub struct Scoreboard {
    /// One bitset per warp, one bit per register.
    pending: Vec<Vec<u64>>,
    words: usize,
}

impl Scoreboard {
    /// Create a scoreboard for `n_warps` warps of a kernel with `num_regs`
    /// registers.
    pub fn new(n_warps: usize, num_regs: u32) -> Scoreboard {
        let words = (num_regs as usize).div_ceil(64).max(1);
        Scoreboard {
            pending: vec![vec![0; words]; n_warps],
            words,
        }
    }

    fn bit(&self, warp: usize, reg: Reg) -> bool {
        let i = reg.index();
        self.pending[warp][i / 64] >> (i % 64) & 1 == 1
    }

    /// Whether `inst` can issue for `warp` (no RAW/WAW hazards pending).
    pub fn can_issue(&self, warp: usize, inst: &Instruction) -> bool {
        if let Some(d) = inst.dst_reg() {
            if self.bit(warp, d) {
                return false;
            }
        }
        inst.src_regs().iter().all(|r| !self.bit(warp, *r))
    }

    /// Mark `reg` as having a write in flight for `warp`.
    pub fn reserve(&mut self, warp: usize, reg: Reg) {
        let i = reg.index();
        self.pending[warp][i / 64] |= 1 << (i % 64);
    }

    /// Clear the in-flight write of `reg` for `warp` (writeback).
    pub fn release(&mut self, warp: usize, reg: Reg) {
        let i = reg.index();
        self.pending[warp][i / 64] &= !(1 << (i % 64));
    }

    /// Whether `warp` has any writes in flight.
    pub fn busy(&self, warp: usize) -> bool {
        self.pending[warp][..self.words].iter().any(|w| *w != 0)
    }

    /// Drop all reservations of `warp` (when a warp slot is recycled).
    pub fn clear(&mut self, warp: usize) {
        self.pending[warp].iter_mut().for_each(|w| *w = 0);
    }

    /// Checkpoint-encode the pending-write bitsets.
    pub fn ckpt_encode(&self, e: &mut Enc) {
        e.usize(self.words);
        e.usize(self.pending.len());
        for warp in &self.pending {
            e.seq(warp, |e, &w| e.u64(w));
        }
    }

    /// Checkpoint-decode a scoreboard written by
    /// [`ckpt_encode`](Self::ckpt_encode).
    pub fn ckpt_decode(d: &mut Dec<'_>) -> Result<Scoreboard, WireError> {
        let words = d.usize()?;
        let n = d.seq_len()?;
        let mut pending = Vec::with_capacity(n);
        for _ in 0..n {
            let warp = d.seq(|d| d.u64())?;
            if warp.len() != words {
                return Err(WireError::Malformed("scoreboard word count mismatch"));
            }
            pending.push(warp);
        }
        Ok(Scoreboard { pending, words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcl_ptx::{AluOp, Instruction, Op, Operand, Type};

    fn add(dst: u32, a: u32, b: u32) -> Instruction {
        Instruction::new(Op::Alu {
            op: AluOp::Add,
            ty: Type::U32,
            dst: Reg(dst),
            a: Operand::Reg(Reg(a)),
            b: Operand::Reg(Reg(b)),
        })
    }

    #[test]
    fn raw_hazard_blocks_issue() {
        let mut sb = Scoreboard::new(2, 8);
        let inst = add(2, 0, 1);
        assert!(sb.can_issue(0, &inst));
        sb.reserve(0, Reg(1));
        assert!(!sb.can_issue(0, &inst));
        // Other warps unaffected.
        assert!(sb.can_issue(1, &inst));
        sb.release(0, Reg(1));
        assert!(sb.can_issue(0, &inst));
    }

    #[test]
    fn waw_hazard_blocks_issue() {
        let mut sb = Scoreboard::new(1, 8);
        sb.reserve(0, Reg(2));
        assert!(!sb.can_issue(0, &add(2, 0, 1)));
    }

    #[test]
    fn busy_and_clear() {
        let mut sb = Scoreboard::new(1, 130);
        assert!(!sb.busy(0));
        sb.reserve(0, Reg(129));
        assert!(sb.busy(0));
        sb.clear(0);
        assert!(!sb.busy(0));
        assert!(sb.can_issue(0, &add(129, 0, 1)));
    }
}
